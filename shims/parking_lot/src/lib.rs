//! Offline shim for the slice of the `parking_lot` API this workspace
//! uses (see `shims/README.md`): `Mutex` and `RwLock` with
//! non-poisoning guards, implemented over `std::sync`. A poisoned std
//! lock is recovered by taking the inner guard — matching
//! parking_lot's behavior of not propagating panics through locks.

use std::fmt;
use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock()` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// A new mutex holding `t`.
    pub const fn new(t: T) -> Self {
        Self(sync::Mutex::new(t))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Exclusive access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock whose guards never return poison errors.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// A new lock holding `t`.
    pub const fn new(t: T) -> Self {
        Self(sync::RwLock::new(t))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn mutex_survives_panic_in_holder() {
        let m = Mutex::new(7);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = m.lock();
            panic!("poison");
        }));
        // parking_lot semantics: the lock is usable afterwards.
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
