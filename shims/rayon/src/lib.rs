//! Offline shim for the slice of the `rayon` API this workspace uses.
//!
//! The build container has no crates.io access, so the workspace
//! vendors minimal drop-in implementations of its external
//! dependencies (see `shims/README.md`). This one provides
//! `into_par_iter()` over integer ranges and vectors with `for_each`,
//! `map`, `sum`, and `collect`, executed on scoped OS threads: one
//! worker per available core, each claiming the next unclaimed item
//! from a shared ticket (rayon-style dynamic load balancing, not
//! static chunking — skewed per-item costs must not serialize on one
//! worker). Closures genuinely run concurrently: the simulator's
//! launch semantics and the atomic-contention behavior the paper
//! profiles depend on that.

use std::num::NonZeroUsize;

pub mod prelude {
    pub use crate::IntoParallelIterator;
}

fn worker_count(len: usize) -> usize {
    let cores = std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(4);
    cores.min(len).max(1)
}

/// Runs `f` over every item, in parallel chunks, returning the mapped
/// results in input order.
fn run_chunks<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let len = items.len();
    if len == 0 {
        return Vec::new();
    }
    let workers = worker_count(len);
    if workers == 1 {
        return items.into_iter().map(f).collect();
    }
    // Dynamic claiming instead of static contiguous chunks: with
    // skewed per-item costs (a power-law degree sweep), pre-splitting
    // leaves most workers idle while one drains the expensive chunk.
    // Workers pull the next unclaimed index from a shared ticket.
    // Each worker is statically seeded with its own first item, so
    // every worker still runs at least one item concurrently even if
    // a fast peer drains the rest of the queue.
    let slots: Vec<std::sync::Mutex<Option<T>>> =
        items.into_iter().map(|t| std::sync::Mutex::new(Some(t))).collect();
    let next = std::sync::atomic::AtomicUsize::new(workers);
    let mut parts: Vec<Vec<(usize, R)>> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let slots = &slots;
                let next = &next;
                s.spawn(move || {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    let mut idx = w; // seeded first item
                    while idx < slots.len() {
                        let item = slots[idx]
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .take()
                            .expect("item claimed twice");
                        local.push((idx, f(item)));
                        idx = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            parts.push(h.join().expect("parallel worker panicked"));
        }
    });
    let mut out: Vec<Option<R>> = std::iter::repeat_with(|| None).take(len).collect();
    for (idx, r) in parts.into_iter().flatten() {
        out[idx] = Some(r);
    }
    out.into_iter().map(|r| r.expect("item never ran")).collect()
}

/// A materialized parallel iterator (rayon's `IntoParallelIterator`
/// output for the types this workspace parallelizes over).
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Runs `f` once per item, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        run_chunks(self.items, &|t| f(t));
    }

    /// Maps each item through `f`; consume with [`Map::sum`],
    /// [`Map::collect`], or [`Map::for_each`].
    pub fn map<R, F>(self, f: F) -> Map<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        Map { items: self.items, f }
    }

    /// Number of items.
    pub fn count(self) -> usize {
        self.items.len()
    }
}

/// A mapped parallel iterator.
pub struct Map<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> Map<T, F> {
    /// Parallel map + sequential sum of the results.
    pub fn sum<S>(self) -> S
    where
        F: Fn(T) -> S::Item + Sync,
        S: SumOf,
        S::Item: Send,
    {
        S::sum_of(run_chunks(self.items, &self.f))
    }

    /// Parallel map collected in input order.
    pub fn collect<C, R>(self) -> C
    where
        F: Fn(T) -> R + Sync,
        R: Send,
        C: FromIterator<R>,
    {
        run_chunks(self.items, &self.f).into_iter().collect()
    }

    /// Runs the mapped closure for its side effects.
    pub fn for_each<R>(self)
    where
        F: Fn(T) -> R + Sync,
        R: Send,
    {
        run_chunks(self.items, &self.f);
    }
}

/// Helper trait so `Map::sum::<u32>()`-style calls resolve like
/// rayon's (`S: Sum<Self::Item>` in the real API).
pub trait SumOf: Sized {
    type Item;
    fn sum_of(items: Vec<Self::Item>) -> Self;
}

macro_rules! sum_of_prim {
    ($($t:ty),*) => {$(
        impl SumOf for $t {
            type Item = $t;
            fn sum_of(items: Vec<$t>) -> $t {
                items.into_iter().sum()
            }
        }
    )*};
}

sum_of_prim!(u8, u16, u32, u64, usize, i32, i64, f32, f64);

/// Conversion into a (materialized) parallel iterator.
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

macro_rules! par_range {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}

par_range!(u32, u64, usize, i32, i64);

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn for_each_visits_every_item_once() {
        let sum = AtomicU64::new(0);
        (0..1000usize).into_par_iter().for_each(|i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 999 * 1000 / 2);
    }

    #[test]
    fn map_sum() {
        let s: u32 = (0..100u32).into_par_iter().map(|i| i * 2).sum();
        assert_eq!(s, 99 * 100);
    }

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..257usize).into_par_iter().map(|i| i + 1).collect();
        assert_eq!(v, (1..=257).collect::<Vec<_>>());
    }

    #[test]
    fn empty_range_is_noop() {
        (0..0usize).into_par_iter().for_each(|_| panic!("no items"));
    }

    #[test]
    fn skewed_costs_still_cover_every_item() {
        // One item 1000x the cost of the rest: dynamic claiming must
        // still visit every item exactly once, in order.
        let v: Vec<u64> = (0..503u64)
            .into_par_iter()
            .map(|i| {
                if i == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                i * 3
            })
            .collect();
        assert_eq!(v, (0..503u64).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn runs_concurrently() {
        // Two items that only complete if both run at once.
        use std::sync::Barrier;
        let b = Barrier::new(2.min(worker_count(2)));
        if worker_count(2) >= 2 {
            (0..2usize).into_par_iter().for_each(|_| {
                b.wait();
            });
        }
    }
}
