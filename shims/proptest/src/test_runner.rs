//! Deterministic per-test RNG, config, and case failure type.

use std::fmt;

/// Run configuration (`cases` is the only knob the workspace uses).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Why a case failed.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed assertion with `message`.
    pub fn fail(message: String) -> Self {
        Self { message }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// SplitMix64 seeded from (test path, case index): every case of every
/// property has its own reproducible stream.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The RNG for `case` of the property at `path`.
    pub fn deterministic(path: &str, case: u32) -> Self {
        // FNV-1a over the path, mixed with the case index.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01B3);
        }
        Self { state: h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)) }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw below `span` (0 when `span` is 0).
    pub fn below(&mut self, span: u64) -> u64 {
        if span == 0 {
            return 0;
        }
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}
