//! Offline shim for the slice of the `proptest` API this workspace
//! uses (see `shims/README.md`): the `proptest!` macro, range/tuple/
//! vec strategies with `prop_map` and `prop_flat_map`, and the
//! `prop_assert*` macros. Cases are generated from a deterministic
//! per-test RNG (seeded by test path + case index) so every failure
//! reproduces exactly. Unlike real proptest there is **no shrinking**:
//! a failure reports the case number, and re-running the test replays
//! the identical input.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    pub use crate::strategy::vec;
}

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Expands property tests. Supports the subset of the real grammar the
/// workspace uses: an optional `#![proptest_config(...)]` header and
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( #[test] fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block )* ) => {$(
        #[test]
        fn $name() {
            let cfg = $cfg;
            for case in 0..cfg.cases {
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $( let $arg = $crate::strategy::Strategy::generate(&$strat, &mut __rng); )+
                let outcome = (move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    Ok(())
                })();
                if let Err(e) = outcome {
                    panic!(
                        "property '{}' failed at case {}/{} (deterministic; rerun reproduces): {}",
                        stringify!($name), case, cfg.cases, e
                    );
                }
            }
        }
    )*};
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", ..)`: fails the
/// current case without panicking through generated values.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `prop_assert_eq!(a, b)`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                a,
                b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                a,
                b
            )));
        }
    }};
}

/// `prop_assert_ne!(a, b)`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                a
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in 0u32..5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn vec_strategy_length(v in crate::collection::vec(0u32..100, 2..7)) {
            prop_assert!((2..7).contains(&v.len()), "len {}", v.len());
            prop_assert!(v.iter().all(|&e| e < 100));
        }

        #[test]
        fn flat_map_dependent_values(
            pair in (2usize..20).prop_flat_map(|n| (0..n).prop_map(move |i| (n, i))),
        ) {
            prop_assert!(pair.1 < pair.0);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        let s = 0u64..1000;
        let a: Vec<u64> = (0..5)
            .map(|c| s.generate(&mut crate::test_runner::TestRng::deterministic("t", c)))
            .collect();
        let b: Vec<u64> = (0..5)
            .map(|c| s.generate(&mut crate::test_runner::TestRng::deterministic("t", c)))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "property")]
    // The nested expansion re-emits `#[test]` on an inner fn, which the
    // harness cannot collect — expected here, we call it by hand below.
    #[allow(unnameable_test_items)]
    fn failing_property_panics_with_case() {
        proptest! {
            #[test]
            fn inner(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner();
    }
}
