//! Value-generation strategies: ranges, tuples, vectors, `prop_map`,
//! and `prop_flat_map`.

use std::ops::Range;

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value` from a test RNG.
pub trait Strategy {
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let v = self.inner.generate(rng);
        (self.f)(v).generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident: $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

/// See [`vec`].
pub struct VecStrategy<S> {
    elem: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.len.start < self.len.end {
            self.len.start + rng.below((self.len.end - self.len.start) as u64) as usize
        } else {
            self.len.start
        };
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
}

/// A vector of `elem`-generated values with a length drawn from `len`
/// (`proptest::collection::vec`).
pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { elem, len }
}
