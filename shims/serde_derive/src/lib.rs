//! Offline shim for `serde_derive` (see `shims/README.md`).
//!
//! The workspace derives `Serialize` for documentation/forward-compat
//! but never serializes through serde (all output formats are
//! hand-rolled text/binary). The serde shim gives `Serialize` a
//! blanket impl, so these derives validly expand to nothing.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`: the `serde` shim's blanket impl
/// already covers every type.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`, for symmetry.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
