//! Offline shim for the slice of the `criterion` API the workspace's
//! benches use (see `shims/README.md`). It keeps the bench sources
//! compiling and running unchanged — groups, `bench_with_input`,
//! `Bencher::iter`, `sample_size` — but replaces criterion's
//! statistical machinery with a plain median-of-samples report printed
//! to stdout. Good enough to compare configurations on one machine;
//! not a substitute for criterion's confidence intervals.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level bench driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup { _c: self, name, sample_size: 20 }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{id}"), 20, &mut f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` against `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.label), self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Benchmarks a closure without an input.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one(label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { samples: Vec::with_capacity(samples), remaining: samples };
    // One untimed warmup plus `samples` timed runs, all through the
    // same `iter` entry point.
    f(&mut b);
    b.report(label);
}

/// Hands the closure under measurement to the timing loop.
pub struct Bencher {
    samples: Vec<Duration>,
    remaining: usize,
}

impl Bencher {
    /// Times `f` over the configured number of samples (after one
    /// warmup call) and records each duration.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        black_box(f()); // warmup
        for _ in 0..self.remaining {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("  {label:<40} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let (lo, hi) = (sorted[0], sorted[sorted.len() - 1]);
        println!(
            "  {label:<40} median {:>12?}  range [{:?} .. {:?}]  ({} samples)",
            median,
            lo,
            hi,
            sorted.len()
        );
    }
}

/// A `group/function/parameter` benchmark label.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A label `function/parameter`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self { label: format!("{function}/{parameter}") }
    }

    /// A label from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { label: format!("{parameter}") }
    }
}

/// Declares a bench entry point running each target function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` for a bench binary (harness = false).
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        let mut count = 0u64;
        g.bench_with_input(BenchmarkId::new("f", "x"), &5u64, |b, &x| {
            b.iter(|| {
                count += x;
            })
        });
        g.finish();
        // warmup + 3 samples.
        assert_eq!(count, 4 * 5);
    }
}
