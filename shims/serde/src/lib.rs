//! Offline shim for the slice of `serde` this workspace uses (see
//! `shims/README.md`): types derive `Serialize` as a forward-compat
//! marker, but every output format in the repo (tables, charts, the
//! `.etr` trace format, graph binaries) is hand-rolled — nothing
//! serializes *through* serde. `Serialize` is therefore a marker trait
//! with a blanket impl, and the derive macro expands to nothing.

/// Marker standing in for `serde::Serialize`.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Deserialize<'_> for T {}

pub use serde_derive::{Deserialize, Serialize};

#[cfg(test)]
mod tests {
    #[derive(super::Serialize)]
    struct Probe {
        _x: u32,
    }

    fn takes_serialize<T: super::Serialize>(_t: &T) {}

    #[test]
    fn derive_and_blanket_impl_coexist() {
        takes_serialize(&Probe { _x: 1 });
        takes_serialize(&vec![1u8, 2]);
    }
}
