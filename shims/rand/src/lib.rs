//! Offline shim for the slice of the `rand` 0.9 API this workspace
//! uses (see `shims/README.md`): `SmallRng::seed_from_u64`, and the
//! `Rng` methods `random`, `random_bool`, and `random_range` over
//! integer ranges. The generator is xoshiro256++ seeded via SplitMix64
//! — the same family the real `SmallRng` uses on 64-bit targets —
//! so quality is adequate for the synthetic-graph generators, and
//! every stream is a pure function of the seed (the reproducibility
//! contract all experiments rely on).

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    pub use crate::small::SmallRng;
    /// The shim maps `StdRng` to the same generator: nothing in this
    /// workspace depends on `StdRng`'s cryptographic strength.
    pub use crate::small::SmallRng as StdRng;
}

/// Seeding from a `u64`, rand's `SeedableRng::seed_from_u64` entry
/// point (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling support for `Rng::random_range`.
pub trait SampleRange<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Types producible by `Rng::random` (the `StandardUniform`
/// distribution of real rand).
pub trait Standard: Sized {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

/// The generator interface.
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform sample of `T`'s full distribution (`f64` in [0, 1)).
    fn random<T: Standard>(&mut self) -> T {
        T::sample_from(self)
    }

    /// `true` with probability `p` (clamped to [0, 1]).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }

    /// A uniform sample from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

mod small {
    use super::{Rng, SeedableRng};

    /// xoshiro256++ — the shim's `SmallRng`.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

impl Standard for f64 {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

/// Uniform draw from `[0, span)` via 128-bit widening multiply
/// (Lemire's method without the rejection step; the bias is below
/// 2^-64 per draw, far under what graph generation can observe).
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_below(rng, span) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = ((hi as u64) - (lo as u64)).wrapping_add(1);
                // span == 0 only for the full u64 domain, which no
                // caller requests; fall back to a raw draw there.
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span) as $t
            }
        }
    )*};
}

sample_range_int!(u8, u16, u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(SmallRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.random_range(10u32..20);
            assert!((10..20).contains(&x));
            let y = r.random_range(5usize..=5);
            assert_eq!(y, 5);
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        // Mean of 10k uniforms is near 0.5.
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn random_bool_probability() {
        let mut r = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = SmallRng::seed_from_u64(0);
        r.random_range(5u32..5);
    }

    #[test]
    fn full_range_coverage_small_domain() {
        let mut r = SmallRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
