//! `ecl-suite-rs` — a Rust reproduction of *Profiling
//! Application-Specific Properties of Irregular Graph Algorithms on
//! GPUs* (Sharma & Burtscher, SC Workshops '25).
//!
//! This facade re-exports the workspace crates under stable module
//! names. Start with [`profiling`] (the paper's contribution: manual
//! counter instrumentation), [`sim`] (the GPU execution-model
//! simulator that substitutes for the paper's RTX 4090), and the five
//! algorithm crates.
//!
//! ```
//! use ecl_suite::{cc, gen, sim};
//!
//! // A small road-network-like input and a simulated device.
//! let g = gen::grid::roadmap(16, 16, 2, 42);
//! let device = sim::Device::rtx4090();
//!
//! // Run ECL-CC with counters on; read the application-specific
//! // metrics the paper's Table 4 reports.
//! let result = cc::run(&device, &g, &cc::CcConfig::baseline());
//! assert!(result.num_components() >= 1);
//! assert_eq!(
//!     result.counters.vertices_initialized.get() as usize,
//!     g.num_vertices()
//! );
//! ```

/// CSR graph substrate ([`ecl_graph`]).
pub use ecl_graph as graph;

/// Synthetic input generators for the paper's Table 1 ([`ecl_graphgen`]).
pub use ecl_graphgen as gen;

/// GPU execution-model simulator ([`ecl_gpusim`]).
pub use ecl_gpusim as sim;

/// Counter-based profiling framework — the paper's primary
/// contribution ([`ecl_profiling`]).
pub use ecl_profiling as profiling;

/// Sequential reference algorithms for validation ([`ecl_ref`]).
pub use ecl_ref as reference;

/// ECL-CC: connected components ([`ecl_cc`]).
pub use ecl_cc as cc;

/// ECL-GC: graph coloring ([`ecl_gc`]).
pub use ecl_gc as gc;

/// ECL-MIS: maximal independent set ([`ecl_mis`]).
pub use ecl_mis as mis;

/// ECL-MST: minimum spanning tree ([`ecl_mst`]).
pub use ecl_mst as mst;

/// ECL-SCC: strongly connected components ([`ecl_scc`]).
pub use ecl_scc as scc;

/// Multi-pool sharded execution with cross-shard frontier exchange
/// ([`ecl_shard`]).
pub use ecl_shard as shard;

/// Multi-tenant graph-analytics service: catalog, scheduler, result
/// cache, HTTP surface, load generator ([`ecl_serve`]).
pub use ecl_serve as serve;
