//! Mesh SCC tuning: the §6.2.1 workflow end to end — profile ECL-SCC's
//! per-block update counts on a fluid-dynamics-style mesh (Figure 1),
//! observe that propagation localizes, then sweep the thread-block
//! size (Table 6) and pick the best configuration.
//!
//! ```text
//! cargo run --release --example mesh_scc_tuning
//! ```

use ecl_suite::{gen, scc, sim};

fn main() {
    let mesh = gen::mesh::star(8, 96, 5);
    println!(
        "mesh: {} cells, {} directed faces (star, 8 layers)",
        mesh.num_vertices(),
        mesh.num_arcs()
    );

    let make_device =
        || sim::Device::new(sim::DeviceConfig { num_sms: 8, ..sim::DeviceConfig::rtx4090() });

    // Profile the original 512-thread-block configuration.
    let device = make_device();
    let r = scc::run(&device, &mesh, &scc::SccConfig::original());
    println!(
        "\noriginal config: {} SCCs found over {} outer iterations",
        r.num_sccs(),
        r.outer_iterations
    );

    // Figure-1 style view: how per-block updates evolve within m = 1.
    let series = &r.counters.series;
    let last_n = series.inner_iterations(1);
    println!("m=1 ran {last_n} signature-propagation iterations:");
    for n in [1, (last_n / 2).max(1), last_n] {
        println!(
            "  n={n:3}: {:4} active blocks, {:6} total updates",
            series.active_blocks(1, n),
            series.total_updates(1, n)
        );
    }
    println!("(updates shrink and localize — the §6.1.2 observation)");

    // Table-6 style sweep: modeled parallel time per block size.
    println!("\nblock-size sweep (modeled parallel cost, lower is better):");
    let mut best = (512usize, f64::INFINITY);
    for bs in [64usize, 128, 256, 512, 1024] {
        let device = make_device();
        let r = scc::run(&device, &mesh, &scc::SccConfig::with_block_size(bs));
        let cost = r.modeled_parallel_time / device.config().occupancy(bs);
        println!(
            "  {bs:5} threads/block: cost {cost:12.0}, occupancy {:4.0}%",
            100.0 * device.config().occupancy(bs)
        );
        if cost < best.1 {
            best = (bs, cost);
        }
    }
    println!("\nbest block size for this mesh: {} threads", best.0);

    // Whatever the block size, the labels must agree with Tarjan.
    let reference = ecl_suite::reference::strongly_connected_components(&mesh);
    let device = make_device();
    let tuned = scc::run(&device, &mesh, &scc::SccConfig::with_block_size(best.0));
    assert_eq!(tuned.min_labels(), reference);
    println!("tuned configuration verified against sequential Tarjan");
}
