//! Quickstart: run all five instrumented ECL algorithms on one small
//! synthetic input and print the application-specific counters that
//! general-purpose profilers cannot capture.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ecl_suite::{cc, gc, gen, mis, mst, profiling, scc, sim};

fn main() {
    // An as-skitter-like power-law graph, scaled to laptop size, plus
    // a directed mesh for SCC.
    let undirected = gen::powerlaw::preferential_attachment(5_000, 6.0, 42);
    let weighted = gen::with_hashed_weights(&undirected, 1 << 16, 42);
    let mesh = gen::mesh::toroid_wedge(64, 64, 42);

    // The simulated GPU: an RTX 4090 shrunk to 4 SMs so the example
    // runs instantly; per-thread metrics keep their meaning.
    let device = sim::Device::new(sim::DeviceConfig { num_sms: 4, ..sim::DeviceConfig::rtx4090() });

    println!("input: {} vertices, {} arcs\n", undirected.num_vertices(), undirected.num_arcs());

    // --- ECL-CC ------------------------------------------------------
    let r = cc::run(&device, &undirected, &cc::CcConfig::baseline());
    println!("ECL-CC: {} components", r.num_components());
    println!(
        "  init: {} vertices initialized, {} neighbors traversed (gap {:.2}x)",
        r.counters.vertices_initialized.get(),
        r.counters.vertices_traversed.get(),
        r.counters.vertices_traversed.get() as f64
            / r.counters.vertices_initialized.get().max(1) as f64
    );
    println!(
        "  hooks: {} atomicCAS attempted, {} failed",
        r.counters.hook_cas.attempted(),
        r.counters.hook_cas.cas_failed()
    );

    // --- ECL-MIS -----------------------------------------------------
    let r = mis::run(&device, &undirected, &mis::MisConfig::default());
    let iters = r.counters.iterations.summary();
    println!("\nECL-MIS: {} vertices selected in {} rounds", r.set_size(), r.rounds);
    println!("  per-thread iterations: avg {:.2}, max {:.0}", iters.avg, iters.max);

    // --- ECL-GC ------------------------------------------------------
    let r = gc::run(&device, &undirected, &gc::GcConfig::default());
    let (best_changed, not_yet) = r.counters.large_vertex_summaries(&undirected, gc::LARGE_DEGREE);
    println!("\nECL-GC: {} colors in {} rounds", r.num_colors(), r.rounds);
    println!(
        "  runLarge vertices: best color changed avg {:.2}, not-yet-possible avg {:.2}",
        best_changed.avg, not_yet.avg
    );

    // --- ECL-MST -----------------------------------------------------
    let r = mst::run(&device, &weighted, &mst::MstConfig::baseline());
    println!("\nECL-MST: {} edges, total weight {}", r.edges.len(), r.total_weight);
    println!(
        "  atomicMin: {} attempted, {:.1}% useless",
        r.counters.atomics.attempted(),
        100.0 * r.counters.atomics.useless_fraction()
    );
    print!("{}", r.counters.bars.to_table("  per-iteration metrics").render());

    // --- ECL-SCC -----------------------------------------------------
    let r = scc::run(&device, &mesh, &scc::SccConfig::original());
    println!("\nECL-SCC: {} SCCs in {} outer iterations", r.num_sccs(), r.outer_iterations);
    println!(
        "  signature atomicMax: {} attempted, {} effective",
        r.counters.max_tally.attempted(),
        r.counters.max_tally.updated()
    );

    // --- The registry view of everything above ------------------------
    let mut reg = profiling::Registry::new();
    let total = reg.global("edges-processed-total");
    reg.get_global(total).add(undirected.num_arcs() as u64 + mesh.num_arcs() as u64);
    print!("\n{}", reg.snapshot().to_table("registry snapshot example").render());
}
