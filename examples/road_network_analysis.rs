//! Road-network analysis: the europe_osm-style scenario the paper's
//! CC/MST experiments run on.
//!
//! A maintenance planner wants (1) the connected sub-networks of a
//! road graph, (2) a minimum-weight spanning backbone per sub-network,
//! and (3) to know whether the CC initialization wastes work on this
//! input class — the exact question the paper's Table 4 counters
//! answer, leading to the §6.2.2 optimization.
//!
//! ```text
//! cargo run --release --example road_network_analysis
//! ```

use ecl_suite::{cc, gen, mst, sim};

fn main() {
    // A roadmap-family input: grid skeleton, polyline subdivisions,
    // junction chords (see ecl-graphgen), with hash-derived edge
    // weights standing in for road lengths.
    let spec = gen::registry::find("europe_osm").expect("registered input");
    let scale = 0.001;
    let roads = spec.generate(scale, 7);
    let weighted = spec.generate_weighted(scale, 7, 10_000);
    println!(
        "road network: {} junctions/waypoints, {} road segments",
        roads.num_vertices(),
        roads.num_edges()
    );

    let device = sim::Device::new(sim::DeviceConfig { num_sms: 4, ..sim::DeviceConfig::rtx4090() });

    // 1. Connected sub-networks, with the init kernel profiled.
    let baseline = cc::run(&device, &roads, &cc::CcConfig::baseline());
    println!("\nconnected sub-networks: {}", baseline.num_components());
    let init = baseline.counters.vertices_initialized.get();
    let trav = baseline.counters.vertices_traversed.get();
    println!(
        "CC init profile: {init} initialized, {trav} traversed (gap {:.2}x)",
        trav as f64 / init as f64
    );

    // 2. Is the §6.2.2 optimization worth it here? Compare modeled
    //    cost of both variants.
    let d_base = sim::Device::new(sim::DeviceConfig { num_sms: 4, ..sim::DeviceConfig::rtx4090() });
    let d_opt = sim::Device::new(sim::DeviceConfig { num_sms: 4, ..sim::DeviceConfig::rtx4090() });
    let a = cc::run(&d_base, &roads, &cc::CcConfig::baseline());
    let b = cc::run(&d_opt, &roads, &cc::CcConfig::optimized());
    assert_eq!(a.labels, b.labels, "the optimization must not change the result");
    println!(
        "first-neighbor-only init: modeled speedup {:.3}x",
        d_base.modeled_time() / d_opt.modeled_time()
    );

    // 3. Minimum spanning backbone (forest if disconnected).
    let forest = mst::run(&device, &weighted, &mst::MstConfig::baseline());
    println!(
        "\nmaintenance backbone: {} segments, total length {}, {} trees",
        forest.edges.len(),
        forest.total_weight,
        forest.num_trees
    );
    // Validate against the sequential reference.
    let kruskal = ecl_suite::reference::kruskal(&weighted);
    assert_eq!(forest.total_weight, kruskal.total_weight);
    assert_eq!(forest.num_trees, kruskal.num_trees);
    println!("verified against Kruskal: weight {}", kruskal.total_weight);
}
