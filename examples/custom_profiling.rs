//! Instrumenting your *own* kernel: the paper's actual recommendation
//! is not the five codes themselves but the practice — "manually
//! adding counters to source code ... to complement existing
//! profilers". This example writes a small user kernel (label
//! propagation) against the simulator and instruments it with every
//! counter kind the framework offers.
//!
//! ```text
//! cargo run --release --example custom_profiling
//! ```

use ecl_suite::{gen, profiling, sim};
use sim::{launch_flat, CostKind, LaunchConfig};

fn main() {
    let g = gen::random::erdos_renyi(20_000, 6.0, 3);
    let device = sim::Device::new(sim::DeviceConfig { num_sms: 4, ..sim::DeviceConfig::rtx4090() });
    let n = g.num_vertices();
    let block_size = 256;

    // Register one counter of each granularity (§3: thread-local or
    // global "depending on the granularity we need").
    let mut reg = profiling::Registry::new();
    let launches = reg.global("kernel-launches");
    let relaxations = reg.per_thread("label-relaxations", n); // per *vertex* here
    let min_outcomes = reg.tally("atomicMin-outcomes");
    let activity = reg.activity("thread-activity");

    // Min-label propagation until fixed point: each vertex repeatedly
    // takes the minimum label of its neighborhood (a naive CC).
    let labels = sim::atomics::atomic_u32_array(n, |i| i as u32);
    let mut rounds = 0u32;
    loop {
        rounds += 1;
        reg.get_global(launches).inc();
        let changed = std::sync::atomic::AtomicBool::new(false);
        launch_flat(&device, LaunchConfig::cover(n, block_size), |t| {
            if t.global >= n {
                device.charge(CostKind::IdleCheck, 1);
                reg.get_activity(activity).record_idle_unassigned();
                return;
            }
            let v = t.global as u32;
            let my = labels[t.global].load();
            let best =
                g.neighbors(v).iter().map(|&u| labels[u as usize].load()).min().unwrap_or(my);
            device.charge(CostKind::ThreadWork, g.degree(v) as u64 + 1);
            if best < my {
                reg.get_activity(activity).record_active();
                // A counted atomicMin: the wrapper classifies the
                // outcome (updated / no effect) into the tally.
                let tally = reg.get_tally(min_outcomes);
                labels[t.global].fetch_min(best, Some(tally));
                reg.get_per_thread(relaxations).inc(t.global);
                changed.store(true, std::sync::atomic::Ordering::Relaxed);
            } else {
                reg.get_activity(activity).record_idle_no_work();
            }
        });
        if !changed.load(std::sync::atomic::Ordering::Relaxed) {
            break;
        }
    }

    // The converged labels are a valid CC labeling.
    let expect = ecl_suite::reference::connected_components(&g);
    let got: Vec<u32> = labels.iter().map(|l| l.load()).collect();
    assert_eq!(got, expect, "min-label propagation must converge to component minima");

    println!("naive min-label CC converged in {rounds} rounds\n");
    print!("{}", reg.snapshot().to_table("custom kernel counters").render());

    // What the counters reveal: per-vertex relaxation counts expose
    // the straggler structure (high-diameter components relax often).
    let s = reg.get_per_thread(relaxations).summary();
    println!(
        "\nrelaxations per vertex: avg {:.2}, max {:.0} — compare with ECL-CC's\n\
         pointer-jumping design, which avoids exactly this repeated relaxation.",
        s.avg, s.max
    );
    println!(
        "modeled cost: {:.0} units over {} launches",
        device.modeled_time(),
        reg.get_global(launches).get()
    );
}
