//! Social-network scenario: select a mutually non-adjacent seed set
//! (MIS) and a conflict-free posting schedule (coloring) for a
//! soc-LiveJournal-like community graph, while profiling the internal
//! non-determinism the paper documents in Table 3.
//!
//! ```text
//! cargo run --release --example social_network_mis
//! ```

use ecl_suite::{gc, gen, mis, profiling, sim};

fn main() {
    let spec = gen::registry::find("soc-LiveJournal1").expect("registered input");
    let social = spec.generate(0.002, 11);
    println!("social graph: {} users, {} follow-pairs", social.num_vertices(), social.num_edges());

    let device =
        || sim::Device::new(sim::DeviceConfig { num_sms: 4, ..sim::DeviceConfig::rtx4090() });

    // Seed-set selection, repeated three times: the selected set must
    // be identical every run (deterministic result), while the
    // per-thread iteration counts wobble (internal non-determinism).
    let mut runs = profiling::MultiRun::new();
    let mut first: Option<Vec<bool>> = None;
    for i in 0..3 {
        let d = device();
        let (r, secs) = sim::run_timed(|| mis::run(&d, &social, &mis::MisConfig::default()));
        let iters = r.counters.iterations.summary();
        println!(
            "run {}: seed set {} users, iterations avg {:.2} max {:.0} ({:.3}s)",
            i + 1,
            r.set_size(),
            iters.avg,
            iters.max,
            secs
        );
        runs.push(iters, secs);
        match &first {
            None => first = Some(r.in_set),
            Some(f) => assert_eq!(f, &r.in_set, "final MIS must be deterministic"),
        }
    }
    println!(
        "iteration-count stability across runs: avg spread {:.1}%, max spread {:.1}%",
        100.0 * runs.avg_spread(),
        100.0 * runs.max_spread()
    );
    println!("(the selected set was bit-identical in all runs)");

    // Posting schedule: color the graph; users sharing an edge never
    // post in the same slot.
    let d = device();
    let r = gc::run(&d, &social, &gc::GcConfig::default());
    assert!(ecl_suite::reference::is_proper_coloring(&social, &r.colors));
    println!(
        "\nposting schedule: {} slots for {} users ({} coloring rounds)",
        r.num_colors(),
        social.num_vertices(),
        r.rounds
    );
    let (bc, nyp) = r.counters.large_vertex_summaries(&social, gc::LARGE_DEGREE);
    println!(
        "influencer accounts (degree > {}): best-slot invalidated avg {:.2} times, \
         deferred avg {:.2} times",
        gc::LARGE_DEGREE,
        bc.avg,
        nyp.avg
    );
    println!();
    print!(
        "{}",
        r.counters
            .uncolored_per_round
            .render("coloring convergence (unscheduled users per round)", 40)
    );
}
