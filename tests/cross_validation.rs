//! Cross-crate validation: every GPU-model algorithm agrees with its
//! sequential reference on every registered paper input (at reduced
//! scale) and on assorted corner-case graphs.

#![allow(clippy::unwrap_used)]

use ecl_suite::{cc, gc, gen, mis, mst, reference, scc, sim};

const SCALE: f64 = 0.001;
const SEED: u64 = 2024;

fn device() -> sim::Device {
    sim::Device::test_small()
}

#[test]
fn cc_matches_union_find_on_all_general_inputs() {
    for spec in gen::general_inputs() {
        let g = spec.generate(SCALE, SEED);
        let r = cc::run(&device(), &g, &cc::CcConfig::baseline());
        assert_eq!(r.labels, reference::connected_components(&g), "{} labels", spec.name);
    }
}

#[test]
fn cc_optimized_matches_baseline_on_all_general_inputs() {
    for spec in gen::general_inputs() {
        let g = spec.generate(SCALE, SEED);
        let a = cc::run(&device(), &g, &cc::CcConfig::baseline());
        let b = cc::run(&device(), &g, &cc::CcConfig::optimized());
        assert_eq!(a.labels, b.labels, "{}", spec.name);
    }
}

#[test]
fn mis_valid_on_all_general_inputs() {
    for spec in gen::general_inputs() {
        let g = spec.generate(SCALE, SEED);
        let r = mis::run(&device(), &g, &mis::MisConfig::default());
        assert!(
            reference::is_maximal_independent_set(&g, &r.in_set),
            "{} produced an invalid MIS",
            spec.name
        );
    }
}

#[test]
fn gc_proper_on_all_general_inputs() {
    for spec in gen::general_inputs() {
        let g = spec.generate(SCALE, SEED);
        let r = gc::run(&device(), &g, &gc::GcConfig::default());
        assert!(
            reference::is_proper_coloring(&g, &r.colors),
            "{} produced an improper coloring",
            spec.name
        );
        let max_deg = (0..g.num_vertices() as u32).map(|v| g.degree(v)).max().unwrap_or(0);
        assert!(r.num_colors() <= max_deg + 1, "{} used too many colors", spec.name);
    }
}

#[test]
fn mst_matches_kruskal_on_all_general_inputs() {
    for spec in gen::general_inputs() {
        let g = spec.generate_weighted(SCALE, SEED, 1 << 20);
        let r = mst::run(&device(), &g, &mst::MstConfig::baseline());
        let k = reference::kruskal(&g);
        assert_eq!(r.total_weight, k.total_weight, "{} weight", spec.name);
        assert_eq!(r.num_trees, k.num_trees, "{} trees", spec.name);
        let mut got = r.edges.clone();
        got.sort_unstable();
        let mut want = k.edges.clone();
        want.sort_unstable();
        assert_eq!(got, want, "{} edge set", spec.name);
    }
}

#[test]
fn scc_matches_tarjan_on_all_mesh_inputs() {
    for spec in gen::scc_inputs() {
        let g = spec.generate(SCALE, SEED);
        let r = scc::run(&device(), &g, &scc::SccConfig::original());
        assert_eq!(
            r.min_labels(),
            reference::strongly_connected_components(&g),
            "{} labels",
            spec.name
        );
    }
}

#[test]
fn scc_block_sizes_agree_on_meshes() {
    for spec in gen::scc_inputs().iter().take(2) {
        let g = spec.generate(SCALE, SEED);
        let base = scc::run(&device(), &g, &scc::SccConfig::original());
        for bs in [64, 1024] {
            let r = scc::run(&device(), &g, &scc::SccConfig::with_block_size(bs));
            assert_eq!(base.labels, r.labels, "{} bs={bs}", spec.name);
        }
    }
}

#[test]
fn cc_degree_bin_ablation_same_labels() {
    // Any binning produces the same components: the bins only change
    // work partitioning, never the hooking semantics.
    use cc::DegreeBins;
    let g = gen::registry::find("as-skitter").unwrap().generate(0.002, 8);
    let base = cc::run(&device(), &g, &cc::CcConfig::baseline());
    for bins in [
        DegreeBins { low_below: 0, medium_below: 0 }, // everything "high"
        DegreeBins { low_below: usize::MAX, medium_below: usize::MAX }, // everything "low"
        DegreeBins { low_below: 4, medium_below: 64 },
    ] {
        let cfg = cc::CcConfig { bins, ..cc::CcConfig::baseline() };
        let r = cc::run(&device(), &g, &cfg);
        assert_eq!(base.labels, r.labels, "bins {bins:?}");
    }
}

#[test]
fn scc_trimming_agrees_on_all_meshes() {
    for spec in gen::scc_inputs() {
        let g = spec.generate(SCALE, SEED);
        let base = scc::run(&device(), &g, &scc::SccConfig::original());
        let trimmed = scc::run(&device(), &g, &scc::SccConfig::trimmed());
        assert_eq!(base.labels, trimmed.labels, "{}", spec.name);
    }
}

#[test]
fn mis_priority_policies_all_valid_on_inputs() {
    use ecl_suite::mis::status::PriorityPolicy;
    for spec in gen::general_inputs().iter().take(6) {
        let g = spec.generate(SCALE, SEED);
        for policy in [PriorityPolicy::RandomPermutation, PriorityPolicy::IdOrder] {
            let r = mis::run(&device(), &g, &mis::MisConfig::with_priority(policy));
            assert!(
                ecl_suite::reference::is_maximal_independent_set(&g, &r.in_set),
                "{} under {policy:?}",
                spec.name
            );
        }
    }
}

#[test]
fn graph_io_roundtrips_generated_inputs() {
    for name in ["internet", "star", "rmat16.sym"] {
        let spec = gen::registry::find(name).unwrap();
        let g = spec.generate(SCALE, SEED);
        let mut buf = Vec::new();
        ecl_suite::graph::io::write_csr(&mut buf, &g).unwrap();
        let g2 = ecl_suite::graph::io::read_csr(&mut buf.as_slice()).unwrap();
        assert_eq!(g, g2, "{name}");
    }
}

#[test]
fn concurrent_runs_share_one_device_safely() {
    // Algorithms take &Device; several may run at once (e.g. a harness
    // sweeping configs). Cost charges must merge without loss and
    // results stay correct.
    let device = sim::Device::test_small();
    let graphs: Vec<_> = (0..4).map(|s| gen::random::erdos_renyi(400, 4.0, s)).collect();
    let labels: Vec<Vec<u32>> = std::thread::scope(|scope| {
        let handles: Vec<_> = graphs
            .iter()
            .map(|g| {
                let device = &device;
                scope.spawn(move || cc::run(device, g, &cc::CcConfig::baseline()).labels)
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("no panic")).collect()
    });
    for (g, l) in graphs.iter().zip(&labels) {
        assert_eq!(l, &reference::connected_components(g));
    }
    // 4 runs × (init + 3 compute + finalize) launches each.
    assert_eq!(device.cost().units(sim::CostKind::KernelLaunch), 20);
}

#[test]
fn all_algorithms_tolerate_trivial_graphs() {
    use ecl_suite::graph::Csr;
    for n in [0usize, 1, 2] {
        let g = Csr::empty(n, false);
        let d = device();
        assert_eq!(cc::run(&d, &g, &cc::CcConfig::baseline()).num_components(), n);
        assert_eq!(mis::run(&d, &g, &mis::MisConfig::default()).set_size(), n);
        let colors = gc::run(&d, &g, &gc::GcConfig::default()).colors;
        assert_eq!(colors.len(), n);
        let w = ecl_suite::graph::WeightedCsr::from_parts(g.clone(), vec![]);
        assert_eq!(mst::run(&d, &w, &mst::MstConfig::baseline()).num_trees, n);
        let dg = Csr::empty(n, true);
        assert_eq!(scc::run(&d, &dg, &scc::SccConfig::original()).num_sccs(), n);
    }
}
