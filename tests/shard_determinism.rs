//! Shard-count determinism: the sharded CC/SCC/MIS runners must be
//! bit-identical to the single-pool kernels at every shard count, and
//! bit-identical to themselves (including the modeled-time bit
//! pattern) across repeated runs — the multi-pool analogue of the
//! PR 3 scheduler-determinism suite.
//!
//! The property is structural, not statistical: every sharded sweep is
//! Jacobi double-buffered and the exchange merges in a fixed shard
//! order, so there is no interleaving anywhere for a shard count to
//! expose.

#![allow(clippy::unwrap_used)]

use ecl_suite::{cc, gen, graph, mis, scc, shard, sim};
use graph::{Csr, GraphBuilder};
use proptest::prelude::*;

const SHARD_COUNTS: [u32; 3] = [1, 2, 4];

fn undirected_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = Csr> {
    (2..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..max_m).prop_map(move |edges| {
            let mut b = GraphBuilder::new_undirected(n).drop_self_loops();
            for (u, v) in edges {
                b.add_edge(u, v);
            }
            b.build()
        })
    })
}

fn directed_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = Csr> {
    (2..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..max_m).prop_map(move |edges| {
            let mut b = GraphBuilder::new_directed(n);
            for (u, v) in edges {
                b.add_edge(u, v);
            }
            b.build()
        })
    })
}

fn devices(shards: u32) -> Vec<sim::Device> {
    shard::devices_for(sim::DeviceConfig::test_small(), shards)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // CC: labels identical to the single-pool kernel at shards 1/2/4,
    // and repeated runs at the same shard count agree down to the
    // modeled-time bits.
    #[test]
    fn prop_cc_bit_identical_across_shard_counts(g in undirected_graph(100, 250)) {
        let single = cc::run(&sim::Device::test_small(), &g, &cc::CcConfig::baseline());
        for shards in SHARD_COUNTS {
            let part = shard::Partition::auto(&g, shards);
            let a = shard::run_cc(&devices(shards), &g, &part);
            let b = shard::run_cc(&devices(shards), &g, &part);
            prop_assert_eq!(&a.labels, &single.labels, "{} shards vs single-pool", shards);
            prop_assert_eq!(&a.labels, &b.labels);
            prop_assert_eq!(a.stats.supersteps, b.stats.supersteps);
            prop_assert_eq!(a.stats.exchange_messages, b.stats.exchange_messages);
            prop_assert_eq!(
                a.stats.modeled_time.to_bits(),
                b.stats.modeled_time.to_bits(),
                "modeled time must be bit-stable at {} shards",
                shards
            );
        }
    }

    // MIS: the salted greedy set is a pure function of (graph, salt) —
    // the shard count must not be observable in the selection.
    #[test]
    fn prop_mis_bit_identical_across_shard_counts(
        g in undirected_graph(100, 250),
        seed in 0u64..1_000,
    ) {
        let cfg = mis::MisConfig::seeded(seed);
        let single = mis::run(&sim::Device::test_small(), &g, &cfg);
        for shards in SHARD_COUNTS {
            let part = shard::Partition::auto(&g, shards);
            let a = shard::run_mis(&devices(shards), &g, &part, cfg.tie_salt);
            let b = shard::run_mis(&devices(shards), &g, &part, cfg.tie_salt);
            prop_assert_eq!(&a.in_set, &single.in_set, "{} shards vs single-pool", shards);
            prop_assert_eq!(&a.in_set, &b.in_set);
            prop_assert_eq!(a.stats.modeled_time.to_bits(), b.stats.modeled_time.to_bits());
        }
    }

    // SCC: labels AND outer-iteration count match the single-pool
    // kernel — the sharded outer loop must walk the same signature
    // fixpoints, not merely reach an equivalent partition.
    #[test]
    fn prop_scc_bit_identical_across_shard_counts(g in directed_graph(80, 200)) {
        let single = scc::run(&sim::Device::test_small(), &g, &scc::SccConfig::default());
        for shards in SHARD_COUNTS {
            let part = shard::Partition::auto(&g, shards);
            let a = shard::run_scc(&devices(shards), &g, &part);
            let b = shard::run_scc(&devices(shards), &g, &part);
            prop_assert_eq!(&a.labels, &single.labels, "{} shards vs single-pool", shards);
            prop_assert_eq!(
                a.outer_iterations, single.outer_iterations,
                "{} shards must take the same outer iterations", shards
            );
            prop_assert_eq!(&a.labels, &b.labels);
            prop_assert_eq!(a.stats.modeled_time.to_bits(), b.stats.modeled_time.to_bits());
        }
    }
}

/// The CI smoke entry point: a fixed torus/RMAT pair (the same shapes
/// the shard bench measures) checked across shard counts. Heavier
/// than a proptest case, deterministic, and fast enough for every run.
#[test]
fn generator_inputs_bit_identical_across_shard_counts() {
    let torus = gen::grid::torus_2d(24, 24);
    let rmat = gen::rmat::rmat(9, 8.0, gen::rmat::RmatParams::rmat(), 42);
    for g in [&torus, &rmat] {
        let single_cc = cc::run(&sim::Device::test_small(), g, &cc::CcConfig::baseline());
        let cfg = mis::MisConfig::seeded(7);
        let single_mis = mis::run(&sim::Device::test_small(), g, &cfg);
        for shards in SHARD_COUNTS {
            let part = shard::Partition::auto(g, shards);
            let r = shard::run_cc(&devices(shards), g, &part);
            assert_eq!(r.labels, single_cc.labels, "cc at {shards} shards");
            let m = shard::run_mis(&devices(shards), g, &part, cfg.tie_salt);
            assert_eq!(m.in_set, single_mis.in_set, "mis at {shards} shards");
        }
    }
}
