//! Scheduler-determinism stress tests: everything the simulator
//! aggregates must be independent of how blocks were mapped onto OS
//! threads.
//!
//! The execution pool dispatches blocks dynamically (workers claim
//! ticket ranges), so block execution order varies with worker count,
//! grain, and timing. That is faithful to a GPU grid — and it is safe
//! *because* every aggregate is a commutative reduction: counter
//! totals and cost charges are relaxed atomic sums, and check
//! verdicts come from structural per-epoch analysis, not the observed
//! interleaving. These tests pin that contract: a contention-heavy
//! power-law workload must produce bit-identical counter totals,
//! cost-model charges, and check reports under a forced single-worker
//! (sequential) schedule, ≥ 8 pooled workers, randomized grains, and
//! the legacy spawn-chunked engine.

#![allow(clippy::unwrap_used)]

use std::sync::atomic::{AtomicU64, Ordering};

use ecl_check::run_checked;
use ecl_suite::sim::atomics::atomic_u32_array;
use ecl_suite::sim::pool::{with_policy, DispatchPolicy};
use ecl_suite::sim::{launch_blocks_named, launch_flat_named, CostKind, Device, LaunchConfig};
use ecl_suite::{gen, graph::Csr, scc};
use proptest::prelude::*;

/// Everything the workload aggregates; compared bit-for-bit across
/// schedules.
#[derive(Debug, PartialEq)]
struct Outcome {
    /// Commutative counter totals from the kernels.
    neighbor_sum: u64,
    touched: u64,
    /// Full device cost breakdown (every `CostKind`, in order).
    cost: Vec<(CostKind, u64)>,
    /// Weighted model output, compared as raw bits.
    modeled_time_bits: u64,
    /// Check-session verdicts.
    report_launches: u64,
    report_accesses: u64,
    report_text: String,
}

/// A contention-heavy instrumented workload over a power-law graph:
/// a flat per-vertex adjacency sweep (iteration counts vary by orders
/// of magnitude across threads — the paper's load-imbalance shape)
/// that funnels into shared accumulator cells, then a block-granular
/// pass with barrier rounds. All aggregates are commutative sums.
fn run_workload(g: &Csr) -> Outcome {
    let n = g.num_vertices();
    let device = Device::test_small();
    let neighbor_sum = AtomicU64::new(0);
    let touched = AtomicU64::new(0);
    let marks = atomic_u32_array(n, |_| 0);
    let _region = ecl_check::register_region("det.marks", &marks);

    let ((), report) = run_checked(&device, || {
        let cfg = LaunchConfig::cover(n, 32);
        launch_flat_named(&device, "det.sweep", cfg, |t| {
            if t.global >= n {
                device.charge(CostKind::IdleCheck, 1);
                return;
            }
            // Per-vertex exclusive store (race-free, checker-visible).
            marks[t.global].store(t.global as u32 + 1);
            let mut local = 0u64;
            for &v in g.neighbors(t.global as u32) {
                local += u64::from(v) + 1;
            }
            device.charge(CostKind::ThreadWork, g.degree(t.global as u32) as u64 + 1);
            // High contention on two shared cells: the sums are
            // commutative, so the totals cannot depend on order.
            neighbor_sum.fetch_add(local, Ordering::Relaxed);
            touched.fetch_add(1, Ordering::Relaxed);
        });

        // Block-granular pass with barrier rounds; sized so the total
        // barrier slots stay below the sync-waste lint threshold (the
        // lint's update/slot ratio would otherwise depend on atomic
        // outcome kinds, which are schedule-dependent by design).
        let cfg = LaunchConfig::new(8, 16);
        launch_blocks_named(&device, "det.rounds", cfg, |b| {
            for t in b.threads() {
                if t.global < n {
                    marks[t.global].load();
                    device.charge(CostKind::ThreadWork, 1);
                }
            }
            b.sync();
        });
    });

    Outcome {
        neighbor_sum: neighbor_sum.load(Ordering::Relaxed),
        touched: touched.load(Ordering::Relaxed),
        cost: device.cost().breakdown(),
        modeled_time_bits: device.modeled_time().to_bits(),
        report_launches: report.launches,
        report_accesses: report.accesses,
        report_text: report.render("determinism"),
    }
}

/// Canonical form of a labelling: components numbered by first
/// appearance, so two labelings describing the same partition
/// compare equal.
fn canonical_partition(labels: &[u32]) -> Vec<u32> {
    let mut map = std::collections::HashMap::new();
    labels
        .iter()
        .map(|&l| {
            let next = map.len() as u32;
            *map.entry(l).or_insert(next)
        })
        .collect()
}

/// Deterministically orient an undirected power-law graph: every edge
/// gets its low→high direction, and every third edge also keeps the
/// reverse, seeding 2-cycles that merge into larger SCCs.
fn orient(g: &Csr) -> Csr {
    let n = g.num_vertices();
    let mut b = ecl_suite::graph::GraphBuilder::new_directed(n);
    let mut k = 0usize;
    for v in 0..n as u32 {
        for &u in g.neighbors(v) {
            if u > v {
                b.add_edge(v, u);
                if k.is_multiple_of(3) {
                    b.add_edge(u, v);
                }
                k += 1;
            }
        }
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // The synthetic contention workload: bit-identical aggregates
    // under sequential, pooled (≥ 8 workers, random grain), and the
    // legacy spawn engine.
    #[test]
    fn aggregates_are_bit_identical_across_schedules(
        seed in 0u64..1_000,
        nv in 64usize..400,
        grain in 1usize..32,
        extra_workers in 0usize..8,
    ) {
        let g = gen::powerlaw::preferential_attachment(nv, 2.5, seed);
        let reference = with_policy(DispatchPolicy::sequential(), || run_workload(&g));
        let workers = 8 + extra_workers;
        let pooled = with_policy(
            DispatchPolicy { grain: Some(grain), ..DispatchPolicy::pooled(workers) },
            || run_workload(&g),
        );
        prop_assert_eq!(&reference, &pooled);
        let spawned = with_policy(DispatchPolicy::spawn_baseline(4), || run_workload(&g));
        prop_assert_eq!(&reference, &spawned);
    }

    // A real algorithm (ECL-SCC on a directed power-law graph): the
    // *result* — the partition into SCCs — must not depend on the
    // schedule, even though its per-block iteration counters
    // legitimately do.
    #[test]
    fn scc_partition_is_schedule_independent(
        seed in 0u64..1_000,
        nv in 32usize..200,
        grain in 1usize..16,
    ) {
        let g = orient(&gen::powerlaw::citation(nv, 3.0, seed));
        let run = || {
            let device = Device::test_small();
            scc::run(&device, &g, &scc::SccConfig::with_block_size(32))
        };
        let reference = with_policy(DispatchPolicy::sequential(), run);
        let pooled = with_policy(
            DispatchPolicy { grain: Some(grain), ..DispatchPolicy::pooled(8) },
            run,
        );
        prop_assert_eq!(reference.num_sccs(), pooled.num_sccs());
        prop_assert_eq!(
            canonical_partition(&reference.labels),
            canonical_partition(&pooled.labels)
        );
    }
}
