//! Degenerate-graph sweeps under the `ecl-check` race sanitizer: the
//! empty graph, a single vertex, self-loops, and duplicate edges must
//! all run race-clean through every algorithm. Degenerate inputs are
//! where launch bounds and worklist handling go wrong first, and a
//! corrupted index tends to surface as an unexpected cross-thread
//! access — exactly what the sanitizer turns into a hard failure.
//!
//! MIS and GC are exercised on every shape except self-loops, which
//! their entry points reject by contract (a self-looped vertex is its
//! own neighbor: it can join no independent set and admits no proper
//! color).

#![allow(clippy::unwrap_used)]

use ecl_check::{run_checked, Report};
use ecl_suite::{cc, gc, mis, mst, scc, sim};
use sim::Device;

fn undirected(n: usize, edges: &[(u32, u32)]) -> ecl_suite::graph::Csr {
    let mut b = ecl_suite::graph::GraphBuilder::new_undirected(n);
    for &(u, v) in edges {
        b.add_edge(u, v);
    }
    b.build()
}

fn directed(n: usize, edges: &[(u32, u32)]) -> ecl_suite::graph::Csr {
    let mut b = ecl_suite::graph::GraphBuilder::new_directed(n);
    for &(u, v) in edges {
        b.add_edge(u, v);
    }
    b.build()
}

fn weighted(n: usize, edges: &[(u32, u32)]) -> ecl_suite::graph::WeightedCsr {
    let mut b = ecl_suite::graph::GraphBuilder::new_undirected(n);
    for (i, &(u, v)) in edges.iter().enumerate() {
        b.add_weighted_edge(u, v, i as u32 + 1);
    }
    b.build_weighted()
}

fn assert_races_clean(algo: &str, shape: &str, report: &Report) {
    assert!(
        report.races_clean(),
        "{algo} on {shape} graph must be race-clean:\n{}",
        report.render(&format!("{algo}/{shape}"))
    );
}

fn check_cc(device: &Device, g: &ecl_suite::graph::Csr, shape: &str) {
    let cfg = cc::CcConfig { block_size: 64, ..cc::CcConfig::baseline() };
    let ((), report) = run_checked(device, || {
        cc::run(device, g, &cfg);
    });
    assert_races_clean("cc", shape, &report);
}

fn check_mis(device: &Device, g: &ecl_suite::graph::Csr, shape: &str) {
    let ((), report) = run_checked(device, || {
        mis::run(device, g, &mis::MisConfig::default());
    });
    assert_races_clean("mis", shape, &report);
}

fn check_gc(device: &Device, g: &ecl_suite::graph::Csr, shape: &str) {
    let cfg = gc::GcConfig { block_size: 64, ..gc::GcConfig::default() };
    let ((), report) = run_checked(device, || {
        gc::run(device, g, &cfg);
    });
    assert_races_clean("gc", shape, &report);
}

fn check_scc(device: &Device, g: &ecl_suite::graph::Csr, shape: &str) {
    let ((), report) = run_checked(device, || {
        scc::run(device, g, &scc::SccConfig::with_block_size(64));
    });
    assert_races_clean("scc", shape, &report);
}

fn check_mst(device: &Device, g: &ecl_suite::graph::WeightedCsr, shape: &str) {
    let cfg = mst::MstConfig { block_size: 64, ..mst::MstConfig::baseline() };
    let ((), report) = run_checked(device, || {
        mst::run(device, g, &cfg);
    });
    assert_races_clean("mst", shape, &report);
}

#[test]
fn zero_block_launches_of_every_shape_are_clean_noops() {
    // `LaunchConfig::cover(0, tpb)` — the grid an empty graph
    // produces — must neither panic nor emit findings from any launch
    // shape: the closure never runs, the launch is still charged and
    // traced, and the linter must not manufacture occupancy /
    // over-launch / sync findings for a zero-block grid.
    let device = Device::test_small();
    let cfg = sim::LaunchConfig::cover(0, 64);
    assert_eq!(cfg.blocks, 0);
    let ((), report) = run_checked(&device, || {
        sim::launch_flat_named(&device, "deg.flat", cfg, |_| panic!("no threads expected"));
        sim::launch_blocks_named(&device, "deg.blocks", cfg, |_| panic!("no blocks expected"));
        sim::launch_warps_named(&device, "deg.warps", cfg, |_| panic!("no warps expected"));
        // The persistent shape has no input-derived grid; it must
        // stay lint-clean with a body that touches nothing.
        sim::launch_persistent_named(&device, "deg.persistent", |_| {});
    });
    assert!(report.findings.is_empty(), "{}", report.render("zero-block sweep"));
    assert!(report.is_clean());
    assert_eq!(report.launches, 4);
    // Each zero-block launch was still charged as a kernel launch.
    assert_eq!(device.cost().units(sim::CostKind::KernelLaunch), 4);
}

#[test]
fn empty_graph_runs_race_clean() {
    let device = Device::test_small();
    check_cc(&device, &undirected(0, &[]), "empty");
    check_mis(&device, &undirected(0, &[]), "empty");
    check_gc(&device, &undirected(0, &[]), "empty");
    check_scc(&device, &directed(0, &[]), "empty");
    check_mst(&device, &weighted(0, &[]), "empty");
}

#[test]
fn single_vertex_runs_race_clean() {
    let device = Device::test_small();
    check_cc(&device, &undirected(1, &[]), "single-vertex");
    check_mis(&device, &undirected(1, &[]), "single-vertex");
    check_gc(&device, &undirected(1, &[]), "single-vertex");
    check_scc(&device, &directed(1, &[]), "single-vertex");
    check_mst(&device, &weighted(1, &[]), "single-vertex");
}

#[test]
fn self_loops_run_race_clean() {
    let device = Device::test_small();
    // A path with a self-loop on each endpoint (MIS and GC excluded:
    // both entry points assert self-loop-free inputs).
    let edges = [(0, 0), (0, 1), (1, 2), (2, 2)];
    check_cc(&device, &undirected(3, &edges), "self-loops");
    check_scc(&device, &directed(3, &edges), "self-loops");
    check_mst(&device, &weighted(3, &edges), "self-loops");
}

#[test]
fn duplicate_edges_run_race_clean() {
    let device = Device::test_small();
    // The same edges added repeatedly: the builder folds them into a
    // simple graph, and the kernels must behave on the result.
    let edges = [(0, 1), (1, 0), (0, 1), (1, 2), (1, 2), (3, 1), (0, 1)];
    check_cc(&device, &undirected(4, &edges), "duplicate-edges");
    check_mis(&device, &undirected(4, &edges), "duplicate-edges");
    check_gc(&device, &undirected(4, &edges), "duplicate-edges");
    check_scc(&device, &directed(4, &edges), "duplicate-edges");
    check_mst(&device, &weighted(4, &edges), "duplicate-edges");
}
