//! Integration tests of the profiling framework against the real
//! instrumented algorithms: internal-consistency identities between
//! independently maintained counters, and failure-injection checks.

#![allow(clippy::unwrap_used)]

use ecl_suite::{cc, gen, mis, mst, profiling, scc, sim};

fn device() -> sim::Device {
    sim::Device::test_small()
}

/// The MIS finalized counters must sum to the selected-set size, and
/// the assigned counters to |V| — two independent code paths agreeing.
#[test]
fn mis_counter_identities() {
    let g = gen::registry::find("amazon0601").unwrap().generate(0.002, 5);
    let r = mis::run(&device(), &g, &mis::MisConfig::default());
    assert_eq!(r.counters.finalized.total() as usize, r.set_size());
    assert_eq!(r.counters.assigned.total() as usize, g.num_vertices());
}

/// CC: find_calls = find_smaller + find_unchanged, and CAS tally
/// attempted = updated + failed.
#[test]
fn cc_counter_identities() {
    let g = gen::registry::find("rmat16.sym").unwrap().generate(0.01, 5);
    let r = cc::run(&device(), &g, &cc::CcConfig::baseline());
    let c = &r.counters;
    assert_eq!(c.find_calls.get(), c.find_smaller.get() + c.find_unchanged.get());
    assert_eq!(
        c.hook_cas.attempted(),
        c.hook_cas.updated() + c.hook_cas.cas_failed() + c.hook_cas.no_effect()
    );
    assert_eq!(c.vertices_initialized.get() as usize, g.num_vertices());
    assert!(c.vertices_traversed.get() >= c.vertices_initialized.get());
}

/// SCC: the per-block series totals equal the atomicMax updated count
/// (every effective update was recorded in exactly one block/step).
#[test]
fn scc_series_tally_identity() {
    let g = gen::registry::find("toroid-wedge").unwrap().generate(0.002, 5);
    let r = scc::run(&device(), &g, &scc::SccConfig::original());
    let series_total: u64 =
        r.counters.series.steps().iter().map(|k| r.counters.series.total_updates(k.m, k.n)).sum();
    assert_eq!(series_total, r.counters.max_tally.updated());
}

/// MST: per-iteration bar percentages are consistent with the
/// cumulative tallies (useless fraction within [0, 100]).
#[test]
fn mst_bars_consistent() {
    let g = gen::registry::find("2d-2e20.sym").unwrap().generate_weighted(0.002, 5, 1 << 16);
    let r = mst::run(&device(), &g, &mst::MstConfig::baseline());
    assert!(r.counters.atomics.attempted() >= r.counters.atomics.updated());
    for b in r.counters.bars.bars() {
        assert!((0.0..=100.0).contains(&b.useless_atomics_pct));
        assert!((0.0..=100.0).contains(&b.threads_with_work_pct));
    }
}

/// Profiling off produces identical algorithm outputs with zero
/// counter activity, across all five codes.
#[test]
fn profile_off_outputs_identical_counters_silent() {
    use ecl_suite::profiling::ProfileMode;
    let g = gen::registry::find("citationCiteseer").unwrap().generate(0.002, 5);
    let wg = gen::registry::find("citationCiteseer").unwrap().generate_weighted(0.002, 5, 1000);
    let mesh = gen::registry::find("star").unwrap().generate(0.002, 5);

    let on = cc::run(&device(), &g, &cc::CcConfig::baseline());
    let off = cc::run(
        &device(),
        &g,
        &cc::CcConfig { mode: ProfileMode::Off, ..cc::CcConfig::baseline() },
    );
    assert_eq!(on.labels, off.labels);
    assert_eq!(off.counters.find_calls.get(), 0);

    let on = mst::run(&device(), &wg, &mst::MstConfig::baseline());
    let off = mst::run(
        &device(),
        &wg,
        &mst::MstConfig { mode: ProfileMode::Off, ..mst::MstConfig::baseline() },
    );
    assert_eq!(on.total_weight, off.total_weight);
    assert_eq!(off.counters.atomics.attempted(), 0);

    let on = scc::run(&device(), &mesh, &scc::SccConfig::original());
    let off = scc::run(
        &device(),
        &mesh,
        &scc::SccConfig { mode: ProfileMode::Off, ..scc::SccConfig::original() },
    );
    assert_eq!(on.labels, off.labels);
    assert!(off.counters.series.steps().is_empty());
}

/// Counter overflow behavior: u64 counters saturate the practical
/// range; adding huge values does not panic and keeps totals exact
/// within u64.
#[test]
fn counters_handle_large_values() {
    let c = profiling::GlobalCounter::new();
    c.add(u64::MAX / 2);
    c.add(u64::MAX / 2);
    assert_eq!(c.get(), u64::MAX - 1);

    let p = profiling::PerThreadCounter::new(3);
    p.add(0, u64::MAX / 4);
    p.add(1, u64::MAX / 4);
    // Summary converts through f64; totals stay finite.
    let s = p.summary();
    assert!(s.sum.is_finite());
    assert!(s.max.is_finite());
}

/// Registry snapshots taken mid-run are stable (point-in-time), and
/// reset fully clears cross-kind state.
#[test]
fn registry_snapshot_and_reset_with_live_counters() {
    let mut reg = profiling::Registry::new();
    let g = reg.global("events");
    let p = reg.per_thread("per-thread", 8);
    let t = reg.tally("atomics");
    let a = reg.activity("threads");

    reg.get_global(g).add(10);
    reg.get_per_thread(p).add(3, 4);
    reg.get_tally(t).record(profiling::AtomicOutcome::Updated);
    reg.get_activity(a).record_active();
    let snap1 = reg.snapshot();

    reg.get_global(g).add(100);
    let snap2 = reg.snapshot();
    assert_ne!(snap1, snap2);
    assert_eq!(snap1.get("events"), Some(&profiling::registry::Entry::Global { total: 10 }));

    reg.reset();
    let snap3 = reg.snapshot();
    assert_eq!(snap3.get("events"), Some(&profiling::registry::Entry::Global { total: 0 }));
}

/// Convergence traces: every algorithm's shrinking quantity is
/// recorded per round and is (weakly) monotone where the algorithm
/// guarantees it.
#[test]
fn convergence_traces_are_monotone() {
    let g = gen::registry::find("rmat16.sym").unwrap().generate(0.02, 3);

    // GC: uncolored vertices strictly decrease per round.
    let r = ecl_suite::gc::run(&device(), &g, &ecl_suite::gc::GcConfig::default());
    let t = &r.counters.uncolored_per_round;
    assert_eq!(t.len(), r.rounds as usize);
    assert!(t.is_non_increasing());
    assert_eq!(*t.values().last().unwrap(), 0);

    // MIS: undecided vertices weakly decrease; end at zero.
    let r = mis::run(&device(), &g, &mis::MisConfig::default());
    let t = &r.counters.undecided_per_round;
    assert_eq!(t.len(), r.rounds as usize);
    assert!(t.is_non_increasing());
    assert_eq!(*t.values().last().unwrap(), 0);

    // MST: worklist shrinks per iteration (compaction).
    let wg = gen::registry::find("rmat16.sym").unwrap().generate_weighted(0.02, 3, 1 << 16);
    let r = mst::run(&device(), &wg, &mst::MstConfig::baseline());
    assert!(!r.counters.worklist_per_iteration.is_empty());

    // SCC: surviving edges weakly decrease per outer iteration.
    let mesh = gen::registry::find("toroid-hex").unwrap().generate(0.002, 3);
    let r = scc::run(&device(), &mesh, &scc::SccConfig::original());
    let t = &r.counters.edges_per_outer;
    assert_eq!(t.len(), r.outer_iterations as usize);
    assert!(t.is_non_increasing());
}

/// IO failure injection: every possible truncation of a serialized
/// graph must produce an error, never a panic or a wrong graph.
#[test]
fn io_truncation_always_errors() {
    let g = gen::registry::find("internet").unwrap().generate(0.002, 1);
    let mut buf = Vec::new();
    ecl_suite::graph::io::write_csr(&mut buf, &g).unwrap();
    // Sweep truncation points (step keeps the test fast; always
    // include the off-by-one boundary cases).
    let mut points: Vec<usize> = (0..buf.len()).step_by(97).collect();
    points.extend([0, 1, buf.len() - 1, buf.len() - 4]);
    for &cut in &points {
        let r = ecl_suite::graph::io::read_csr(&mut &buf[..cut]);
        assert!(r.is_err(), "truncation at {cut} of {} did not error", buf.len());
    }
    // The untruncated stream still round-trips.
    assert_eq!(ecl_suite::graph::io::read_csr(&mut buf.as_slice()).unwrap(), g);
}

/// IO failure injection: flipping header bytes must never panic; a
/// successful parse after corruption must still be a structurally
/// valid graph.
#[test]
fn io_corruption_never_panics() {
    let g = gen::registry::find("rmat16.sym").unwrap().generate(0.002, 1);
    let mut clean = Vec::new();
    ecl_suite::graph::io::write_csr(&mut clean, &g).unwrap();
    for pos in 0..clean.len().min(200) {
        let mut buf = clean.clone();
        buf[pos] ^= 0xFF;
        if let Ok(parsed) = ecl_suite::graph::io::read_csr(&mut buf.as_slice()) {
            assert!(
                ecl_suite::graph::validate::check_adjacency_lists(&parsed).is_ok()
                    || parsed.num_vertices() > 0,
                "corrupted parse at byte {pos} produced an unusable graph"
            );
        }
    }
}

/// The cost model distinguishes the algorithms: CC on a torus does no
/// atomic hooks (init heuristic suffices), while MST must elect edges
/// atomically.
#[test]
fn cost_model_reflects_algorithm_structure() {
    let g = gen::grid::torus_2d(24, 24);
    let wg = gen::with_hashed_weights(&g, 1000, 1);
    let d_cc = device();
    let d_mst = device();
    cc::run(&d_cc, &g, &cc::CcConfig::baseline());
    mst::run(&d_mst, &wg, &mst::MstConfig::baseline());
    use ecl_suite::sim::CostKind;
    assert_eq!(d_cc.cost().units(CostKind::Atomic), 0, "torus CC needs no hooks");
    assert!(d_mst.cost().units(CostKind::Atomic) > 0, "MST must elect atomically");
}
