//! The paper's headline findings as executable assertions.
//!
//! Each test encodes one "shape" claim from §6 — who wins, in which
//! direction a metric moves — rather than absolute numbers, which
//! belong to the authors' RTX 4090 and full-size inputs (see
//! EXPERIMENTS.md for the full paper-vs-measured record).

#![allow(clippy::unwrap_used)]

use ecl_suite::{cc, gc, gen, mis, mst, scc, sim};

const SEED: u64 = 99;

fn device() -> sim::Device {
    sim::Device::new(sim::DeviceConfig { num_sms: 2, ..sim::DeviceConfig::rtx4090() })
}

/// §6.1.3 / Table 4: the init traversal count is bounded by the arc
/// count and at least the vertex count (each vertex touches >= 1
/// neighbor unless isolated); inputs whose ids are uncorrelated with
/// topology show a real gap.
#[test]
fn cc_init_gap_exists_on_id_shuffled_inputs() {
    let spec = gen::registry::find("2d-2e20.sym").unwrap();
    let g = spec.generate(0.002, SEED);
    let r = cc::run(&device(), &g, &cc::CcConfig::baseline());
    let gap =
        r.counters.vertices_traversed.get() as f64 / r.counters.vertices_initialized.get() as f64;
    // A 4-regular graph with random ids: ~1/5 of vertices are local
    // minima and scan all 4 neighbors -> gap ~1.6 (the paper's
    // 1.68e6 / 1.05e6).
    assert!((1.3..2.0).contains(&gap), "grid init gap {gap} outside the expected band");
}

/// §6.2.2 / Table 7: the optimized init never loses and wins on
/// gap-heavy inputs (modeled cost).
#[test]
fn cc_optimization_helps_where_table4_predicts() {
    let spec = gen::registry::find("cit-Patents").unwrap();
    let g = spec.generate(0.002, SEED);
    let d_base = device();
    let d_opt = device();
    cc::run(&d_base, &g, &cc::CcConfig::baseline());
    cc::run(&d_opt, &g, &cc::CcConfig::optimized());
    let speedup = d_base.modeled_time() / d_opt.modeled_time();
    assert!(speedup >= 1.0, "optimized init should not lose: {speedup}");
}

/// §6.1.1 / Table 2: MIS finalized counts track |V| (load balance),
/// and power-law inputs iterate more on average than roadmaps.
#[test]
fn mis_iteration_contrast_between_families() {
    let skitter = gen::registry::find("as-skitter").unwrap().generate(0.002, SEED);
    let europe = gen::registry::find("europe_osm").unwrap().generate(0.002, SEED);
    let r_skitter = mis::run(&device(), &skitter, &mis::MisConfig::default());
    let r_europe = mis::run(&device(), &europe, &mis::MisConfig::default());
    let a = r_skitter.counters.iterations.summary().avg;
    let b = r_europe.counters.iterations.summary().avg;
    assert!(
        a > b,
        "power-law input should average more iterations: as-skitter {a:.2} vs europe {b:.2}"
    );
}

/// §3 / Table 3: the MIS result is deterministic even though the code
/// races internally.
#[test]
fn mis_result_deterministic_across_many_runs() {
    let g = gen::registry::find("amazon0601").unwrap().generate(0.002, SEED);
    let first = mis::run(&device(), &g, &mis::MisConfig::default()).in_set;
    for _ in 0..5 {
        assert_eq!(first, mis::run(&device(), &g, &mis::MisConfig::default()).in_set);
    }
}

/// §6.1.5 / Table 5: denser inputs suffer more color invalidations.
#[test]
fn gc_density_drives_invalidation_counts() {
    let dense = gen::registry::find("coPapersDBLP").unwrap().generate(0.004, SEED);
    let sparse = gen::registry::find("internet").unwrap().generate(0.004, SEED);
    let r_dense = gc::run(&device(), &dense, &gc::GcConfig::default());
    let r_sparse = gc::run(&device(), &sparse, &gc::GcConfig::default());
    let (bc_dense, nyp_dense) = r_dense.counters.large_vertex_summaries(&dense, gc::LARGE_DEGREE);
    let (bc_sparse, nyp_sparse) =
        r_sparse.counters.large_vertex_summaries(&sparse, gc::LARGE_DEGREE);
    assert!(
        bc_dense.avg + nyp_dense.avg > bc_sparse.avg + nyp_sparse.avg,
        "dense {:.2}+{:.2} should exceed sparse {:.2}+{:.2}",
        bc_dense.avg,
        nyp_dense.avg,
        bc_sparse.avg,
        nyp_sparse.avg
    );
}

/// §6.1.4 / Figure 2: MST useful-work fraction collapses after the
/// first Regular iteration.
#[test]
fn mst_useful_work_collapses() {
    let g = gen::registry::find("amazon0601").unwrap().generate_weighted(0.004, SEED, 1 << 20);
    let r = mst::run(&device(), &g, &mst::MstConfig::baseline());
    let regs: Vec<_> = r
        .counters
        .bars
        .bars()
        .into_iter()
        .filter(|b| b.kind == ecl_suite::profiling::series::IterationKind::Regular)
        .collect();
    assert!(regs.len() >= 2, "need multiple Regular iterations");
    assert!(
        regs.last().unwrap().threads_with_work_pct < regs[0].threads_with_work_pct / 2.0,
        "work fraction should collapse: first {:.1}%, last {:.1}%",
        regs[0].threads_with_work_pct,
        regs.last().unwrap().threads_with_work_pct
    );
}

/// §6.2.3 / Table 8: the launch-config fix changes the result never
/// and the modeled runtime only modestly.
#[test]
fn mst_launch_fix_near_neutral() {
    let g = gen::registry::find("rmat16.sym").unwrap().generate_weighted(0.01, SEED, 1 << 20);
    let d_base = device();
    let d_fix = device();
    let a = mst::run(&d_base, &g, &mst::MstConfig::baseline());
    let b = mst::run(&d_fix, &g, &mst::MstConfig::fixed());
    assert_eq!(a.total_weight, b.total_weight);
    let change = (d_base.modeled_time() - d_fix.modeled_time()).abs() / d_base.modeled_time();
    assert!(change < 0.6, "launch fix should be modest, changed {:.0}%", 100.0 * change);
}

/// §6.1.2 / Figure 1: SCC propagation updates localize — late
/// iterations have no more active blocks than early ones — and the
/// star mesh peels ~one layer per outer iteration.
#[test]
fn scc_updates_localize_and_star_peels() {
    let spec = gen::registry::find("star").unwrap();
    let g = spec.generate(0.002, SEED);
    let d = sim::Device::new(sim::DeviceConfig { num_sms: 8, ..sim::DeviceConfig::rtx4090() });
    let r = scc::run(&d, &g, &scc::SccConfig::original());
    assert!(r.outer_iterations >= 8, "star should need many rounds, got {}", r.outer_iterations);
    assert_eq!(r.num_sccs(), 10);
    let s = &r.counters.series;
    let last = s.inner_iterations(1);
    assert!(s.active_blocks(1, last) <= s.active_blocks(1, 1));
    assert!(s.total_updates(1, last) <= s.total_updates(1, 1));
}

/// Cross-device prediction: the 4090's 1024-thread occupancy cliff is
/// an SM-shape artifact. On an A100-shaped device (2048-thread SMs)
/// the same sweep keeps 1024-thread blocks at full occupancy, so the
/// occupancy-corrected penalty shrinks — the kind of what-if a
/// simulator answers that a hardware study cannot.
#[test]
fn scc_1024_penalty_is_device_shape_dependent() {
    let spec = gen::registry::find("toroid-wedge").unwrap();
    let g = spec.generate(0.002, SEED);
    let ratio = |config: sim::DeviceConfig| {
        let cost = |bs: usize| {
            let d = sim::Device::new(sim::DeviceConfig { num_sms: 8, ..config });
            let r = scc::run(&d, &g, &scc::SccConfig::with_block_size(bs));
            r.modeled_parallel_time / d.config().occupancy(bs)
        };
        cost(1024) / cost(512)
    };
    let penalty_4090 = ratio(sim::DeviceConfig::rtx4090());
    let penalty_a100 = ratio(sim::DeviceConfig::a100());
    assert!(
        penalty_a100 < penalty_4090,
        "A100-shaped SMs should shrink the 1024-block penalty: \
         a100 {penalty_a100:.2} vs 4090 {penalty_4090:.2}"
    );
}

/// §6.2.1 / Table 6: oversized blocks lose; the occupancy model gives
/// 1024-thread blocks a hard 2/3 ceiling on the 1536-thread SM.
#[test]
fn scc_block_size_extremes_lose() {
    let spec = gen::registry::find("toroid-hex").unwrap();
    let g = spec.generate(0.002, SEED);
    let cost = |bs: usize| {
        let d = sim::Device::new(sim::DeviceConfig { num_sms: 8, ..sim::DeviceConfig::rtx4090() });
        let r = scc::run(&d, &g, &scc::SccConfig::with_block_size(bs));
        r.modeled_parallel_time / d.config().occupancy(bs)
    };
    let interior = cost(256).min(cost(512));
    assert!(interior < cost(1024), "interior block sizes should beat 1024");
    assert!(interior < cost(32), "interior block sizes should beat tiny blocks");
}
