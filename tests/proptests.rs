//! Property-based tests: validity invariants of every algorithm over
//! arbitrary generated graphs, plus structural invariants of the
//! substrate types.

#![allow(clippy::unwrap_used)]

use proptest::prelude::*;

use ecl_suite::{cc, gc, graph, mis, mst, reference, scc, sim};
use graph::{Csr, GraphBuilder};

fn device() -> sim::Device {
    sim::Device::test_small()
}

/// Strategy: an arbitrary undirected loop-free graph with up to
/// `max_n` vertices and `max_m` candidate edges.
fn undirected_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = Csr> {
    (2..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..max_m).prop_map(move |edges| {
            let mut b = GraphBuilder::new_undirected(n).drop_self_loops();
            for (u, v) in edges {
                b.add_edge(u, v);
            }
            b.build()
        })
    })
}

/// Strategy: an arbitrary directed graph (self-loops allowed — SCC
/// handles them).
fn directed_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = Csr> {
    (2..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..max_m).prop_map(move |edges| {
            let mut b = GraphBuilder::new_directed(n);
            for (u, v) in edges {
                b.add_edge(u, v);
            }
            b.build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prop_cc_matches_reference(g in undirected_graph(120, 300)) {
        let r = cc::run(&device(), &g, &cc::CcConfig::baseline());
        prop_assert_eq!(r.labels, reference::connected_components(&g));
    }

    #[test]
    fn prop_cc_optimized_equivalent(g in undirected_graph(120, 300)) {
        let a = cc::run(&device(), &g, &cc::CcConfig::baseline());
        let b = cc::run(&device(), &g, &cc::CcConfig::optimized());
        prop_assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn prop_mis_maximal_and_independent(g in undirected_graph(120, 300)) {
        let r = mis::run(&device(), &g, &mis::MisConfig::default());
        prop_assert!(reference::is_maximal_independent_set(&g, &r.in_set));
    }

    #[test]
    fn prop_gc_proper_and_bounded(g in undirected_graph(100, 250)) {
        let r = gc::run(&device(), &g, &gc::GcConfig::default());
        prop_assert!(reference::is_proper_coloring(&g, &r.colors));
        let max_deg = (0..g.num_vertices() as u32).map(|v| g.degree(v)).max().unwrap_or(0);
        prop_assert!(r.num_colors() <= max_deg + 1);
    }

    #[test]
    fn prop_gc_shortcuts_preserve_colors(g in undirected_graph(80, 200)) {
        let with = gc::run(&device(), &g, &gc::GcConfig::default());
        let without = gc::run(&device(), &g, &gc::GcConfig::no_shortcuts());
        prop_assert_eq!(with.colors, without.colors);
    }

    #[test]
    fn prop_mst_weight_matches_kruskal(
        g in undirected_graph(100, 250),
        wseed in 0u64..1000,
    ) {
        let wg = ecl_suite::gen::with_hashed_weights(&g, 1 << 12, wseed);
        let r = mst::run(&device(), &wg, &mst::MstConfig::baseline());
        let k = reference::kruskal(&wg);
        prop_assert_eq!(r.total_weight, k.total_weight);
        prop_assert_eq!(r.num_trees, k.num_trees);
    }

    #[test]
    fn prop_mst_edge_count_invariant(g in undirected_graph(100, 250)) {
        // A spanning forest has exactly n - trees edges.
        let wg = ecl_suite::gen::with_hashed_weights(&g, 1 << 12, 7);
        let r = mst::run(&device(), &wg, &mst::MstConfig::baseline());
        prop_assert_eq!(r.edges.len(), g.num_vertices() - r.num_trees);
    }

    #[test]
    fn prop_scc_matches_tarjan(g in directed_graph(100, 250)) {
        let r = scc::run(&device(), &g, &scc::SccConfig::original());
        prop_assert_eq!(r.min_labels(), reference::strongly_connected_components(&g));
    }

    #[test]
    fn prop_scc_labels_are_scc_maxima(g in directed_graph(80, 200)) {
        let r = scc::run(&device(), &g, &scc::SccConfig::original());
        for (v, &l) in r.labels.iter().enumerate() {
            // The label of v is at least v's id and is itself labeled
            // with itself (a fixed point).
            prop_assert!(l >= v as u32 || r.labels[l as usize] == l);
            prop_assert_eq!(r.labels[l as usize], l);
        }
    }

    #[test]
    fn prop_csr_binary_roundtrip(g in undirected_graph(80, 200)) {
        let mut buf = Vec::new();
        graph::io::write_csr(&mut buf, &g).unwrap();
        let g2 = graph::io::read_csr(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(g, g2);
    }

    #[test]
    fn prop_transpose_involution(g in directed_graph(80, 200)) {
        prop_assert_eq!(g.transpose().transpose(), g);
    }

    #[test]
    fn prop_relabel_preserves_components(
        g in undirected_graph(80, 200),
        seed in 0u64..100,
    ) {
        let r = ecl_suite::gen::relabel::relabel_random(&g, seed);
        prop_assert_eq!(
            reference::num_components(&g),
            reference::num_components(&r)
        );
        prop_assert_eq!(g.num_arcs(), r.num_arcs());
    }

    #[test]
    fn prop_summary_invariants(values in proptest::collection::vec(0u64..10_000, 1..200)) {
        let s = ecl_suite::profiling::Summary::of_u64(&values);
        prop_assert!(s.min <= s.avg && s.avg <= s.max);
        prop_assert!((s.sum - values.iter().sum::<u64>() as f64).abs() < 1e-6);
        prop_assert!(s.std >= 0.0);
        prop_assert!(s.std <= (s.max - s.min).max(0.0) + 1e-9);
    }

    #[test]
    fn prop_pearson_bounded(
        pairs in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 2..100)
    ) {
        let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let r = ecl_suite::profiling::pearson(&xs, &ys);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r), "r = {}", r);
    }
}
