//! Sequential strongly connected components (iterative Tarjan).

use ecl_graph::Csr;

/// SCC labels of a directed graph: each vertex mapped to the minimum
/// vertex id of its SCC — the normal form ECL-SCC's signature output is
/// reduced to for comparison.
pub fn strongly_connected_components(g: &Csr) -> Vec<u32> {
    let n = g.num_vertices();
    let mut index = vec![u32::MAX; n]; // discovery index, MAX = unvisited
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut labels = vec![u32::MAX; n];
    let mut next_index = 0u32;

    // Explicit DFS state: (vertex, next-neighbor-position).
    let mut call_stack: Vec<(u32, usize)> = Vec::new();

    for start in 0..n as u32 {
        if index[start as usize] != u32::MAX {
            continue;
        }
        call_stack.push((start, 0));
        index[start as usize] = next_index;
        lowlink[start as usize] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start as usize] = true;

        while let Some(&mut (v, ref mut pos)) = call_stack.last_mut() {
            let adj = g.neighbors(v);
            if *pos < adj.len() {
                let w = adj[*pos];
                *pos += 1;
                if index[w as usize] == u32::MAX {
                    // Tree edge: descend.
                    index[w as usize] = next_index;
                    lowlink[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    call_stack.push((w, 0));
                } else if on_stack[w as usize] {
                    lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                }
            } else {
                // All neighbors processed: close v.
                call_stack.pop();
                if let Some(&mut (parent, _)) = call_stack.last_mut() {
                    lowlink[parent as usize] = lowlink[parent as usize].min(lowlink[v as usize]);
                }
                if lowlink[v as usize] == index[v as usize] {
                    // v is an SCC root: pop its component and label with
                    // the minimum member id.
                    let mut members = Vec::new();
                    loop {
                        let w = stack.pop().expect("SCC stack underflow");
                        on_stack[w as usize] = false;
                        members.push(w);
                        if w == v {
                            break;
                        }
                    }
                    let min = *members.iter().min().expect("non-empty SCC");
                    for w in members {
                        labels[w as usize] = min;
                    }
                }
            }
        }
    }
    labels
}

/// Number of strongly connected components.
pub fn num_sccs(g: &Csr) -> usize {
    let labels = strongly_connected_components(g);
    let mut roots: Vec<u32> =
        labels.iter().enumerate().filter(|&(v, &l)| v as u32 == l).map(|(_, &l)| l).collect();
    roots.dedup();
    roots.len()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use ecl_graph::GraphBuilder;

    fn directed(n: usize, edges: &[(u32, u32)]) -> Csr {
        let mut b = GraphBuilder::new_directed(n);
        for &(u, v) in edges {
            b.add_edge(u, v);
        }
        b.build()
    }

    #[test]
    fn single_cycle_is_one_scc() {
        let g = directed(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(strongly_connected_components(&g), vec![0; 4]);
        assert_eq!(num_sccs(&g), 1);
    }

    #[test]
    fn dag_every_vertex_own_scc() {
        let g = directed(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(strongly_connected_components(&g), vec![0, 1, 2, 3]);
        assert_eq!(num_sccs(&g), 4);
    }

    #[test]
    fn two_cycles_connected_by_bridge() {
        // Cycle {0,1,2} -> bridge -> cycle {3,4}.
        let g = directed(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 3)]);
        let labels = strongly_connected_components(&g);
        assert_eq!(labels, vec![0, 0, 0, 3, 3]);
        assert_eq!(num_sccs(&g), 2);
    }

    #[test]
    fn self_loop_single_vertex() {
        let g = directed(2, &[(0, 0), (0, 1)]);
        assert_eq!(num_sccs(&g), 2);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::empty(3, true);
        assert_eq!(strongly_connected_components(&g), vec![0, 1, 2]);
        assert_eq!(num_sccs(&g), 3);
    }

    #[test]
    fn nested_structure() {
        // 0 <-> 1 (SCC), 2 -> 0, 2 -> 3, 3 -> 2 (SCC {2,3}).
        let g = directed(4, &[(0, 1), (1, 0), (2, 0), (2, 3), (3, 2)]);
        let labels = strongly_connected_components(&g);
        assert_eq!(labels[0], 0);
        assert_eq!(labels[1], 0);
        assert_eq!(labels[2], 2);
        assert_eq!(labels[3], 2);
    }

    #[test]
    fn deep_path_no_stack_overflow() {
        // 100k-vertex path exercises the iterative DFS.
        let n = 100_000;
        let mut b = GraphBuilder::new_directed(n);
        for v in 0..(n as u32 - 1) {
            b.add_edge(v, v + 1);
        }
        let g = b.build();
        assert_eq!(num_sccs(&g), n);
    }

    #[test]
    fn deep_cycle_no_stack_overflow() {
        let n = 100_000;
        let mut b = GraphBuilder::new_directed(n);
        for v in 0..n as u32 {
            b.add_edge(v, (v + 1) % n as u32);
        }
        let g = b.build();
        assert_eq!(num_sccs(&g), 1);
        assert!(strongly_connected_components(&g).iter().all(|&l| l == 0));
    }
}
