//! Sequential disjoint-set (union-find) with path compression and
//! union by size.

/// A disjoint-set forest over `0..n`.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    num_sets: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self { parent: (0..n as u32).collect(), size: vec![1; n], num_sets: n }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True for an empty structure.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Current number of disjoint sets.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Representative of `x`'s set, with full path compression.
    pub fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets of `a` and `b`; returns true if they were
    /// distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) =
            if self.size[ra as usize] >= self.size[rb as usize] { (ra, rb) } else { (rb, ra) };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        self.num_sets -= 1;
        true
    }

    /// True if `a` and `b` share a set.
    pub fn same(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Canonical labels: each element mapped to the *minimum* element
    /// of its set. This normal form lets different CC implementations
    /// be compared element-wise.
    pub fn canonical_labels(&mut self) -> Vec<u32> {
        let n = self.len();
        let mut min_of_root = vec![u32::MAX; n];
        for x in 0..n as u32 {
            let r = self.find(x) as usize;
            min_of_root[r] = min_of_root[r].min(x);
        }
        (0..n as u32).map(|x| min_of_root[self.find(x) as usize]).collect()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn singletons() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.num_sets(), 4);
        for x in 0..4 {
            assert_eq!(uf.find(x), x);
        }
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2));
        assert_eq!(uf.num_sets(), 3);
        assert!(uf.same(0, 2));
        assert!(!uf.same(0, 3));
    }

    #[test]
    fn canonical_labels_are_minima() {
        let mut uf = UnionFind::new(6);
        uf.union(4, 2);
        uf.union(2, 5);
        uf.union(0, 1);
        let labels = uf.canonical_labels();
        assert_eq!(labels, vec![0, 0, 2, 3, 2, 2]);
    }

    #[test]
    fn path_compression_flattens() {
        let mut uf = UnionFind::new(100);
        for x in 0..99 {
            uf.union(x, x + 1);
        }
        let root = uf.find(0);
        for x in 0..100 {
            assert_eq!(uf.find(x), root);
            // After find, the parent pointer is the root itself.
            assert_eq!(uf.parent[x as usize], root);
        }
        assert_eq!(uf.num_sets(), 1);
    }

    #[test]
    fn empty_structure() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.num_sets(), 0);
    }
}
