//! Sequential greedy maximal independent set and checkers.

use ecl_graph::Csr;

/// Greedy MIS favoring low-degree vertices (the same priority bias as
/// ECL-MIS's initialization, §2.3: "a function that favors low-degree
/// vertices and uses vertex IDs to break ties"). Returns a membership
/// bitmap.
pub fn greedy_mis(g: &Csr) -> Vec<bool> {
    let n = g.num_vertices();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_unstable_by_key(|&v| (g.degree(v), v));
    let mut in_set = vec![false; n];
    let mut excluded = vec![false; n];
    for &v in &order {
        if excluded[v as usize] || g.has_arc(v, v) {
            continue;
        }
        in_set[v as usize] = true;
        excluded[v as usize] = true;
        for &u in g.neighbors(v) {
            excluded[u as usize] = true;
        }
    }
    in_set
}

/// Checks that no two set members are adjacent.
pub fn is_independent_set(g: &Csr, in_set: &[bool]) -> bool {
    if in_set.len() != g.num_vertices() {
        return false;
    }
    g.arcs().all(|(u, v)| u == v || !(in_set[u as usize] && in_set[v as usize]))
}

/// Checks that the set is independent *and* no vertex can be added —
/// i.e. every non-member has a member neighbor (loop-free vertices
/// only; a self-looped vertex can never join).
pub fn is_maximal_independent_set(g: &Csr, in_set: &[bool]) -> bool {
    if !is_independent_set(g, in_set) {
        return false;
    }
    (0..g.num_vertices() as u32).all(|v| {
        in_set[v as usize] || g.has_arc(v, v) || g.neighbors(v).iter().any(|&u| in_set[u as usize])
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use ecl_graph::GraphBuilder;

    fn undirected(n: usize, edges: &[(u32, u32)]) -> Csr {
        let mut b = GraphBuilder::new_undirected(n);
        for &(u, v) in edges {
            b.add_edge(u, v);
        }
        b.build()
    }

    #[test]
    fn path_mis() {
        let g = undirected(4, &[(0, 1), (1, 2), (2, 3)]);
        let s = greedy_mis(&g);
        assert!(is_maximal_independent_set(&g, &s));
        assert!(s.iter().filter(|&&b| b).count() >= 2);
    }

    #[test]
    fn star_prefers_leaves() {
        // Low-degree-first greedy picks all leaves, never the hub.
        let g = undirected(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let s = greedy_mis(&g);
        assert!(is_maximal_independent_set(&g, &s));
        assert!(!s[0]);
        assert_eq!(s.iter().filter(|&&b| b).count(), 4);
    }

    #[test]
    fn empty_graph_all_in() {
        let g = Csr::empty(3, false);
        let s = greedy_mis(&g);
        assert!(s.iter().all(|&b| b));
        assert!(is_maximal_independent_set(&g, &s));
    }

    #[test]
    fn clique_exactly_one() {
        let mut b = GraphBuilder::new_undirected(4);
        for u in 0..4 {
            for v in (u + 1)..4 {
                b.add_edge(u, v);
            }
        }
        let g = b.build();
        let s = greedy_mis(&g);
        assert!(is_maximal_independent_set(&g, &s));
        assert_eq!(s.iter().filter(|&&b| b).count(), 1);
    }

    #[test]
    fn checker_rejects_dependent_set() {
        let g = undirected(2, &[(0, 1)]);
        assert!(!is_independent_set(&g, &[true, true]));
        assert!(is_independent_set(&g, &[true, false]));
    }

    #[test]
    fn checker_rejects_non_maximal() {
        let g = undirected(3, &[(0, 1)]);
        // {0} independent but vertex 2 could be added.
        assert!(is_independent_set(&g, &[true, false, false]));
        assert!(!is_maximal_independent_set(&g, &[true, false, false]));
        assert!(is_maximal_independent_set(&g, &[true, false, true]));
    }

    #[test]
    fn self_loop_vertex_excluded_but_maximal() {
        let mut b = GraphBuilder::new_undirected(2);
        b.add_edge(0, 0);
        let g = b.build();
        let s = greedy_mis(&g);
        assert!(!s[0]);
        assert!(s[1]);
        assert!(is_maximal_independent_set(&g, &s));
    }

    #[test]
    fn length_mismatch_rejected() {
        let g = undirected(2, &[(0, 1)]);
        assert!(!is_independent_set(&g, &[true]));
    }
}
