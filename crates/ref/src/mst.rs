//! Sequential minimum spanning forest (Kruskal).

use ecl_graph::{EdgeId, WeightedCsr};

use crate::union_find::UnionFind;

/// Result of a minimum-spanning-forest computation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MstResult {
    /// Ids of the chosen edges (see [`WeightedCsr::unique_edges`]).
    pub edges: Vec<EdgeId>,
    /// Sum of chosen edge weights.
    pub total_weight: u64,
    /// Number of trees in the forest (= number of connected
    /// components of the input).
    pub num_trees: usize,
}

/// Kruskal's algorithm over the unique-edge list. Handles disconnected
/// graphs (produces a minimum spanning *forest*). Ties are broken by
/// edge id, making the result deterministic; ECL-MST applies the same
/// (weight, id) tie-break so *total weights* always agree, and edge
/// sets agree whenever weights are distinct.
pub fn kruskal(g: &WeightedCsr) -> MstResult {
    let mut edges = g.unique_edges();
    // Self-loops can never join two components; drop them up front.
    edges.retain(|&(_, u, v, _)| u != v);
    edges.sort_unstable_by_key(|&(id, _, _, w)| (w, id));
    let mut uf = UnionFind::new(g.num_vertices());
    let mut chosen = Vec::new();
    let mut total = 0u64;
    for (id, u, v, w) in edges {
        if uf.union(u, v) {
            chosen.push(id);
            total += w as u64;
            if uf.num_sets() == 1 {
                break;
            }
        }
    }
    MstResult { edges: chosen, total_weight: total, num_trees: uf.num_sets() }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use ecl_graph::GraphBuilder;

    fn weighted(n: usize, edges: &[(u32, u32, u32)]) -> WeightedCsr {
        let mut b = GraphBuilder::new_undirected(n);
        for &(u, v, w) in edges {
            b.add_weighted_edge(u, v, w);
        }
        b.build_weighted()
    }

    #[test]
    fn triangle_drops_heaviest() {
        let g = weighted(3, &[(0, 1, 1), (1, 2, 2), (0, 2, 3)]);
        let r = kruskal(&g);
        assert_eq!(r.total_weight, 3);
        assert_eq!(r.edges.len(), 2);
        assert_eq!(r.num_trees, 1);
    }

    #[test]
    fn classic_example() {
        // Well-known 7-vertex example with MST weight 39.
        let g = weighted(
            7,
            &[
                (0, 1, 7),
                (0, 3, 5),
                (1, 2, 8),
                (1, 3, 9),
                (1, 4, 7),
                (2, 4, 5),
                (3, 4, 15),
                (3, 5, 6),
                (4, 5, 8),
                (4, 6, 9),
                (5, 6, 11),
            ],
        );
        let r = kruskal(&g);
        assert_eq!(r.total_weight, 39);
        assert_eq!(r.edges.len(), 6);
    }

    #[test]
    fn disconnected_graph_yields_forest() {
        let g = weighted(5, &[(0, 1, 1), (1, 2, 2), (3, 4, 7)]);
        let r = kruskal(&g);
        assert_eq!(r.num_trees, 2);
        assert_eq!(r.edges.len(), 3);
        assert_eq!(r.total_weight, 10);
    }

    #[test]
    fn single_vertex_and_empty() {
        let g = weighted(1, &[]);
        let r = kruskal(&g);
        assert_eq!(r.num_trees, 1);
        assert_eq!(r.total_weight, 0);
        let g0 = weighted(0, &[]);
        assert_eq!(kruskal(&g0).num_trees, 0);
    }

    #[test]
    fn self_loops_ignored() {
        let mut b = GraphBuilder::new_undirected(2);
        b.add_weighted_edge(0, 0, 1);
        b.add_weighted_edge(0, 1, 5);
        let r = kruskal(&b.build_weighted());
        assert_eq!(r.total_weight, 5);
        assert_eq!(r.edges.len(), 1);
    }

    #[test]
    fn parallel_edges_take_lightest() {
        // Builder dedups keeping the lightest.
        let g = weighted(2, &[(0, 1, 9), (0, 1, 2)]);
        let r = kruskal(&g);
        assert_eq!(r.total_weight, 2);
    }

    #[test]
    fn equal_weights_deterministic() {
        let g = weighted(4, &[(0, 1, 5), (1, 2, 5), (2, 3, 5), (3, 0, 5)]);
        let a = kruskal(&g);
        let b = kruskal(&g);
        assert_eq!(a, b);
        assert_eq!(a.total_weight, 15);
    }
}
