//! Sequential CPU reference algorithms.
//!
//! Every GPU-model implementation in this workspace is validated
//! against a straightforward sequential algorithm from this crate:
//!
//! | GPU-model crate | Reference here |
//! |---|---|
//! | `ecl-cc`  | BFS / union-find connected components |
//! | `ecl-scc` | iterative Tarjan strongly connected components |
//! | `ecl-mst` | Kruskal minimum spanning forest |
//! | `ecl-gc`  | greedy coloring + properness checker |
//! | `ecl-mis` | greedy MIS + independence/maximality checkers |
//!
//! The checkers (properness, independence, maximality, forest weight)
//! are also used directly by property-based tests, since ECL-GC/MIS are
//! only required to produce *a* valid answer, not the same one as the
//! sequential algorithm.

pub mod cc;
pub mod coloring;
pub mod mis;
pub mod mst;
pub mod scc;
pub mod union_find;

pub use cc::{connected_components, num_components};
pub use coloring::{greedy_coloring, is_proper_coloring, num_colors};
pub use mis::{greedy_mis, is_independent_set, is_maximal_independent_set};
pub use mst::{kruskal, MstResult};
pub use scc::{num_sccs, strongly_connected_components};
pub use union_find::UnionFind;
