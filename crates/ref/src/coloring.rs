//! Sequential greedy coloring and properness checking.

use ecl_graph::Csr;

/// Greedy coloring in largest-degree-first order (the same LDF
/// priority heuristic ECL-GC uses for its DAG ordering, §2.2). Returns
/// one color per vertex, colors starting at 0.
pub fn greedy_coloring(g: &Csr) -> Vec<u32> {
    let n = g.num_vertices();
    let mut order: Vec<u32> = (0..n as u32).collect();
    // LDF: higher degree first; ties by smaller id (the ECL-GC
    // priority total order).
    order.sort_unstable_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v));
    let mut colors = vec![u32::MAX; n];
    let mut forbidden: Vec<u32> = Vec::new();
    for &v in &order {
        forbidden.clear();
        for &u in g.neighbors(v) {
            if colors[u as usize] != u32::MAX {
                forbidden.push(colors[u as usize]);
            }
        }
        forbidden.sort_unstable();
        forbidden.dedup();
        let mut c = 0u32;
        for &f in &forbidden {
            if f == c {
                c += 1;
            } else if f > c {
                break;
            }
        }
        colors[v as usize] = c;
    }
    colors
}

/// Checks that no two adjacent vertices share a color and every vertex
/// is colored.
pub fn is_proper_coloring(g: &Csr, colors: &[u32]) -> bool {
    if colors.len() != g.num_vertices() {
        return false;
    }
    if colors.contains(&u32::MAX) {
        return false;
    }
    g.arcs().all(|(u, v)| u == v || colors[u as usize] != colors[v as usize])
}

/// Number of distinct colors used.
pub fn num_colors(colors: &[u32]) -> usize {
    let mut cs: Vec<u32> = colors.to_vec();
    cs.sort_unstable();
    cs.dedup();
    cs.len()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use ecl_graph::GraphBuilder;

    fn undirected(n: usize, edges: &[(u32, u32)]) -> Csr {
        let mut b = GraphBuilder::new_undirected(n);
        for &(u, v) in edges {
            b.add_edge(u, v);
        }
        b.build()
    }

    #[test]
    fn triangle_needs_three_colors() {
        let g = undirected(3, &[(0, 1), (1, 2), (0, 2)]);
        let c = greedy_coloring(&g);
        assert!(is_proper_coloring(&g, &c));
        assert_eq!(num_colors(&c), 3);
    }

    #[test]
    fn bipartite_path_two_colors() {
        let g = undirected(4, &[(0, 1), (1, 2), (2, 3)]);
        let c = greedy_coloring(&g);
        assert!(is_proper_coloring(&g, &c));
        assert_eq!(num_colors(&c), 2);
    }

    #[test]
    fn star_two_colors() {
        let g = undirected(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]);
        let c = greedy_coloring(&g);
        assert!(is_proper_coloring(&g, &c));
        assert_eq!(num_colors(&c), 2);
        // LDF colors the hub first with color 0.
        assert_eq!(c[0], 0);
    }

    #[test]
    fn empty_graph_one_color() {
        let g = Csr::empty(4, false);
        let c = greedy_coloring(&g);
        assert!(is_proper_coloring(&g, &c));
        assert_eq!(num_colors(&c), 1);
    }

    #[test]
    fn checker_rejects_conflicts() {
        let g = undirected(2, &[(0, 1)]);
        assert!(!is_proper_coloring(&g, &[0, 0]));
        assert!(is_proper_coloring(&g, &[0, 1]));
    }

    #[test]
    fn checker_rejects_uncolored_or_short() {
        let g = undirected(2, &[(0, 1)]);
        assert!(!is_proper_coloring(&g, &[0]));
        assert!(!is_proper_coloring(&g, &[0, u32::MAX]));
    }

    #[test]
    fn greedy_uses_at_most_maxdeg_plus_one() {
        // 5-clique: exactly 5 colors.
        let mut b = GraphBuilder::new_undirected(5);
        for u in 0..5 {
            for v in (u + 1)..5 {
                b.add_edge(u, v);
            }
        }
        let g = b.build();
        let c = greedy_coloring(&g);
        assert!(is_proper_coloring(&g, &c));
        assert_eq!(num_colors(&c), 5);
    }
}
