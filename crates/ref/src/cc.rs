//! Sequential connected components.

use ecl_graph::Csr;

use crate::union_find::UnionFind;

/// Connected-component labels of an undirected graph: each vertex is
/// mapped to the minimum vertex id of its component, the same normal
/// form ECL-CC's output is reduced to for comparison.
pub fn connected_components(g: &Csr) -> Vec<u32> {
    let mut uf = UnionFind::new(g.num_vertices());
    for (u, v) in g.arcs() {
        uf.union(u, v);
    }
    uf.canonical_labels()
}

/// Number of connected components.
pub fn num_components(g: &Csr) -> usize {
    let mut uf = UnionFind::new(g.num_vertices());
    for (u, v) in g.arcs() {
        uf.union(u, v);
    }
    uf.num_sets()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use ecl_graph::GraphBuilder;

    #[test]
    fn two_components() {
        let mut b = GraphBuilder::new_undirected(5);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(3, 4);
        let g = b.build();
        assert_eq!(connected_components(&g), vec![0, 0, 0, 3, 3]);
        assert_eq!(num_components(&g), 2);
    }

    #[test]
    fn isolated_vertices_each_own_component() {
        let g = Csr::empty(3, false);
        assert_eq!(connected_components(&g), vec![0, 1, 2]);
        assert_eq!(num_components(&g), 3);
    }

    #[test]
    fn fully_connected() {
        let mut b = GraphBuilder::new_undirected(4);
        for u in 0..4 {
            for v in (u + 1)..4 {
                b.add_edge(u, v);
            }
        }
        let g = b.build();
        assert_eq!(connected_components(&g), vec![0; 4]);
        assert_eq!(num_components(&g), 1);
    }

    #[test]
    fn labels_are_component_minima() {
        let mut b = GraphBuilder::new_undirected(6);
        b.add_edge(5, 3);
        b.add_edge(3, 4);
        let g = b.build();
        let labels = connected_components(&g);
        assert_eq!(labels[3], 3);
        assert_eq!(labels[4], 3);
        assert_eq!(labels[5], 3);
    }
}
