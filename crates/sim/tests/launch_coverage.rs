//! Property tests for the launch primitives: every global thread id
//! of a `LaunchConfig` is executed exactly once, by each launch shape,
//! including the degenerate configs (`n = 0`, `block_size = 1`,
//! non-divisible `n`).

#![allow(clippy::unwrap_used)]

use std::sync::atomic::{AtomicU32, Ordering};

use ecl_gpusim::{launch_blocks, launch_flat, launch_warps, Device, LaunchConfig};
use proptest::prelude::*;

/// One counter per launched global id; asserts each was hit once.
fn assert_exactly_once(cfg: LaunchConfig, run: impl Fn(&[AtomicU32])) -> Result<(), TestCaseError> {
    let counts: Vec<AtomicU32> = (0..cfg.total_threads()).map(|_| AtomicU32::new(0)).collect();
    run(&counts);
    for (i, c) in counts.iter().enumerate() {
        let hits = c.load(Ordering::Relaxed);
        prop_assert!(hits == 1, "global id {} hit {} times at cfg {:?}", i, hits, cfg);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn flat_launch_executes_each_global_id_exactly_once(
        blocks in 0usize..20,
        block_size in 1usize..70,
    ) {
        let d = Device::test_small();
        let cfg = LaunchConfig::new(blocks, block_size);
        assert_exactly_once(cfg, |counts| {
            launch_flat(&d, cfg, |t| {
                counts[t.global].fetch_add(1, Ordering::Relaxed);
            });
        })?;
    }

    #[test]
    fn block_launch_enumerates_each_global_id_exactly_once(
        blocks in 0usize..20,
        block_size in 1usize..70,
    ) {
        let d = Device::test_small();
        let cfg = LaunchConfig::new(blocks, block_size);
        assert_exactly_once(cfg, |counts| {
            launch_blocks(&d, cfg, |b| {
                for t in b.threads() {
                    counts[t.global].fetch_add(1, Ordering::Relaxed);
                }
            });
        })?;
    }

    #[test]
    fn warp_launch_covers_each_global_id_exactly_once(
        blocks in 0usize..20,
        block_size in 1usize..70,
    ) {
        let d = Device::test_small(); // warp size 32
        let cfg = LaunchConfig::new(blocks, block_size);
        assert_exactly_once(cfg, |counts| {
            launch_warps(&d, cfg, |w| {
                for lane in 0..w.lanes {
                    counts[w.thread(lane).global].fetch_add(1, Ordering::Relaxed);
                }
            });
        })?;
    }

    #[test]
    fn cover_launches_at_least_n_and_less_than_one_extra_block(
        n in 0usize..5000,
        block_size in 1usize..513,
    ) {
        let cfg = LaunchConfig::cover(n, block_size);
        prop_assert!(cfg.total_threads() >= n);
        prop_assert!(cfg.total_threads() < n + block_size, "no more than one partial block of slack");
        prop_assert_eq!(cfg.block_size, block_size);
    }
}

#[test]
fn explicit_edge_cases() {
    let d = Device::test_small();
    // n = 0: no closure calls, for every shape.
    for cfg in [LaunchConfig::cover(0, 32), LaunchConfig::new(0, 1)] {
        launch_flat(&d, cfg, |_| panic!("no threads expected"));
        launch_blocks(&d, cfg, |_| panic!("no blocks expected"));
        launch_warps(&d, cfg, |_| panic!("no warps expected"));
    }
    // block_size = 1: every block is a single lane / a 1-lane warp.
    let cfg = LaunchConfig::new(5, 1);
    let counts: Vec<AtomicU32> = (0..5).map(|_| AtomicU32::new(0)).collect();
    launch_flat(&d, cfg, |t| {
        assert_eq!(t.lane, 0);
        counts[t.global].fetch_add(1, Ordering::Relaxed);
    });
    launch_warps(&d, cfg, |w| {
        assert_eq!(w.lanes, 1);
        counts[w.base].fetch_add(1, Ordering::Relaxed);
    });
    assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 2));
    // Non-divisible n: cover() launches a padded tail that flat
    // launches do enumerate (kernels bounds-check themselves).
    let cfg = LaunchConfig::cover(33, 32);
    assert_eq!(cfg.total_threads(), 64);
    let in_range = AtomicU32::new(0);
    let tail = AtomicU32::new(0);
    launch_flat(&d, cfg, |t| {
        if t.global < 33 {
            in_range.fetch_add(1, Ordering::Relaxed);
        } else {
            tail.fetch_add(1, Ordering::Relaxed);
        }
    });
    assert_eq!(in_range.load(Ordering::Relaxed), 33);
    assert_eq!(tail.load(Ordering::Relaxed), 31);
}
