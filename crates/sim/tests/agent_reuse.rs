//! Regression tests for per-thread checker state across launches.
//!
//! With the persistent execution pool, the OS threads that run blocks
//! survive from one kernel launch to the next (and so does the
//! calling thread under sequential dispatch). The per-thread agent
//! installed for race attribution therefore must be cleared at launch
//! *boundaries* — including abnormal ones: a launch that unwinds
//! mid-block used to rely on its worker threads dying to discard the
//! agent. If the state leaked, a later launch (possibly an untracked
//! one) on the same OS thread would have its accesses attributed to
//! an agent of the previous launch — cross-launch race and lint
//! attribution.

#![allow(clippy::unwrap_used)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use ecl_gpusim::atomics::atomic_u32_array;
use ecl_gpusim::check::{self, AccessKind, Agent, CheckSink, LaunchShape};
use ecl_gpusim::pool::{with_policy, DispatchPolicy};
use ecl_gpusim::{launch_flat_named, CostKind, Device, DeviceConfig, LaunchConfig};

/// Records every attributed access together with the index of the
/// tracked launch it arrived in.
struct Recorder {
    device: usize,
    tracked_launches: AtomicU64,
    accesses: Mutex<Vec<(u64, Agent)>>,
}

impl CheckSink for Recorder {
    fn launch_begin(
        &self,
        device: usize,
        _config: DeviceConfig,
        _name: &str,
        _shape: LaunchShape,
        _cfg: LaunchConfig,
    ) -> bool {
        if device != self.device {
            return false;
        }
        self.tracked_launches.fetch_add(1, Ordering::SeqCst);
        true
    }
    fn launch_end(&self, _device: usize) {}
    fn access(&self, _addr: usize, _size: usize, _kind: AccessKind, agent: Agent) {
        let launch = self.tracked_launches.load(Ordering::SeqCst);
        self.accesses.lock().unwrap().push((launch, agent));
    }
    fn charge(&self, _kind: CostKind, _units: u64, _agent: Agent) {}
    fn block_sync(&self, _agent: Agent, _participants: u64) {}
    fn lane_sync(&self, _agent: Agent, _lane: u32) {}
    fn block_end(&self, _block: u32, _block_size: usize) {}
}

/// One scenario: a tracked launch that panics mid-block, then an
/// untracked launch, then a tracked launch — all reusing the same OS
/// threads (the calling thread under sequential dispatch, the pooled
/// workers otherwise).
fn exercise(policy: DispatchPolicy) {
    with_policy(policy, || {
        let tracked_dev = Device::test_small();
        let other_dev = Device::test_small();
        let cells = atomic_u32_array(8, |_| 0);
        let rec = Arc::new(Recorder {
            device: check::device_id(&tracked_dev),
            tracked_launches: AtomicU64::new(0),
            accesses: Mutex::new(Vec::new()),
        });
        check::install(rec.clone());

        // Tracked launch 1 unwinds after per-lane agents were
        // installed. Before the pool, the worker threads died here and
        // took the stale agent with them; now the launch-boundary
        // guard must do it.
        let panicked = catch_unwind(AssertUnwindSafe(|| {
            launch_flat_named(&tracked_dev, "reuse.panicking", LaunchConfig::new(2, 2), |t| {
                cells[t.global].store(1);
                if t.lane == 1 {
                    panic!("die mid-launch");
                }
            });
        }));
        assert!(panicked.is_err(), "launch must propagate the block panic");
        assert!(
            check::current_agent().is_none(),
            "agent must be cleared while unwinding out of a launch"
        );

        // An *untracked* launch (different device) reusing the same
        // threads: none of its accesses may reach the sink. A leaked
        // agent from launch 1 would attribute them.
        let before = rec.accesses.lock().unwrap().len();
        launch_flat_named(&other_dev, "reuse.untracked", LaunchConfig::new(2, 2), |t| {
            cells[t.global].store(2);
        });
        assert_eq!(
            rec.accesses.lock().unwrap().len(),
            before,
            "untracked launch leaked attributed accesses ({policy:?})",
        );

        // A second tracked launch with a *smaller* grid: every access
        // it produces must carry one of its own agents, not a stale
        // agent of launch 1's larger grid.
        launch_flat_named(&tracked_dev, "reuse.tracked", LaunchConfig::new(1, 2), |t| {
            cells[t.global].store(3);
        });
        let accesses = rec.accesses.lock().unwrap();
        let second: Vec<&(u64, Agent)> = accesses.iter().filter(|(l, _)| *l == 2).collect();
        assert_eq!(second.len(), 2, "launch 2 stores: {accesses:?}");
        for (_, agent) in &second {
            assert_eq!(agent.block, 0, "cross-launch agent attribution: {agent}");
            assert!(agent.lane < 2, "cross-launch agent attribution: {agent}");
        }
        drop(accesses);
        check::uninstall();
    });
}

// One test body: the check sink is process-global, so the scenarios
// must not interleave with each other under the parallel runner.
#[test]
fn thread_reuse_does_not_leak_agents_across_launches() {
    exercise(DispatchPolicy::sequential());
    exercise(DispatchPolicy::pooled(4));
    exercise(DispatchPolicy { grain: Some(1), ..DispatchPolicy::pooled(2) });
}
