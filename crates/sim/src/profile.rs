//! Per-kernel cost attribution.
//!
//! The paper anchors several arguments on how runtime distributes over
//! kernels (e.g. "the init kernel ... accounts for 10-20% of the total
//! runtime" of ECL-CC, §6.1.3). [`KernelProfile`] scopes the device's
//! cost tally around each host-side kernel phase so the harness can
//! report a per-kernel breakdown like a profiler's kernel table —
//! except in deterministic modeled time.

use parking_lot::Mutex;

use crate::cost::{CostKind, CostTally};
use crate::device::Device;

/// One profiled kernel phase.
#[derive(Clone, Debug)]
pub struct KernelRecord {
    /// Phase name (e.g. "init", "compute-low").
    pub name: String,
    /// Cost units attributed to the phase, by kind.
    pub cost: Vec<(CostKind, u64)>,
    /// Modeled time of the phase under the device's weights.
    pub modeled_time: f64,
    /// Wall time of the phase in seconds.
    pub wall_seconds: f64,
    /// Invocations folded into this record.
    pub calls: u64,
}

/// Accumulates per-phase cost deltas. Phases must not overlap (kernel
/// launches are serialized by the host loop, so scoping around each
/// call site is safe).
#[derive(Debug, Default)]
pub struct KernelProfile {
    records: Mutex<Vec<KernelRecord>>,
}

impl KernelProfile {
    /// An empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `f`, attributing the device-cost delta and wall time to
    /// `name`. Repeated calls under the same name are folded together.
    pub fn measure<T>(&self, device: &Device, name: &str, f: impl FnOnce() -> T) -> T {
        let before: CostTally = device.cost().clone();
        let start = std::time::Instant::now();
        let out = f();
        let wall = start.elapsed().as_secs_f64();
        let after = device.cost();
        let delta: Vec<(CostKind, u64)> =
            CostKind::ALL.iter().map(|&k| (k, after.units(k) - before.units(k))).collect();
        let dt = CostTally::new();
        for &(k, u) in &delta {
            dt.charge(k, u);
        }
        let modeled = dt.modeled_time(device.params());
        let mut records = self.records.lock();
        match records.iter_mut().find(|r| r.name == name) {
            Some(r) => {
                for (acc, &(_, u)) in r.cost.iter_mut().zip(&delta) {
                    acc.1 += u;
                }
                r.modeled_time += modeled;
                r.wall_seconds += wall;
                r.calls += 1;
            }
            None => records.push(KernelRecord {
                name: name.to_string(),
                cost: delta,
                modeled_time: modeled,
                wall_seconds: wall,
                calls: 1,
            }),
        }
        out
    }

    /// All records in first-seen order.
    pub fn records(&self) -> Vec<KernelRecord> {
        self.records.lock().clone()
    }

    /// Total modeled time across phases.
    pub fn total_modeled(&self) -> f64 {
        self.records.lock().iter().map(|r| r.modeled_time).sum()
    }

    /// Fraction of the total modeled time spent in `name` (0 when the
    /// phase is unknown or nothing was measured).
    pub fn fraction(&self, name: &str) -> f64 {
        let total = self.total_modeled();
        if total == 0.0 {
            return 0.0;
        }
        self.records
            .lock()
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.modeled_time / total)
            .unwrap_or(0.0)
    }

    /// Renders the profile as a kernel table (modeled-time ordered).
    pub fn render(&self, title: &str) -> String {
        use std::fmt::Write as _;
        let mut records = self.records();
        records.sort_by(|a, b| b.modeled_time.total_cmp(&a.modeled_time));
        let total = self.total_modeled().max(1e-12);
        let mut out = String::new();
        let _ = writeln!(out, "{title}");
        let _ = writeln!(
            out,
            "  {:<18} {:>6} {:>14} {:>7} {:>10}",
            "kernel", "calls", "modeled", "share", "wall (s)"
        );
        for r in records {
            let _ = writeln!(
                out,
                "  {:<18} {:>6} {:>14.0} {:>6.1}% {:>10.4}",
                r.name,
                r.calls,
                r.modeled_time,
                100.0 * r.modeled_time / total,
                r.wall_seconds
            );
        }
        out
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn attributes_costs_to_phases() {
        let d = Device::test_small();
        let p = KernelProfile::new();
        p.measure(&d, "a", || d.charge(CostKind::ThreadWork, 10));
        p.measure(&d, "b", || d.charge(CostKind::Atomic, 5));
        p.measure(&d, "a", || d.charge(CostKind::ThreadWork, 30));
        let records = p.records();
        assert_eq!(records.len(), 2);
        let a = records.iter().find(|r| r.name == "a").unwrap();
        assert_eq!(a.calls, 2);
        assert_eq!(a.cost.iter().find(|(k, _)| *k == CostKind::ThreadWork).unwrap().1, 40);
        let b = records.iter().find(|r| r.name == "b").unwrap();
        assert_eq!(b.cost.iter().find(|(k, _)| *k == CostKind::Atomic).unwrap().1, 5);
    }

    #[test]
    fn fractions_sum_to_one() {
        let d = Device::test_small();
        let p = KernelProfile::new();
        p.measure(&d, "x", || d.charge(CostKind::ThreadWork, 100));
        p.measure(&d, "y", || d.charge(CostKind::ThreadWork, 300));
        assert!((p.fraction("x") - 0.25).abs() < 1e-9);
        assert!((p.fraction("y") - 0.75).abs() < 1e-9);
        assert_eq!(p.fraction("zzz"), 0.0);
    }

    #[test]
    fn empty_profile() {
        let p = KernelProfile::new();
        assert_eq!(p.total_modeled(), 0.0);
        assert_eq!(p.fraction("anything"), 0.0);
        assert!(p.records().is_empty());
    }

    #[test]
    fn returns_closure_output() {
        let d = Device::test_small();
        let p = KernelProfile::new();
        let v = p.measure(&d, "calc", || 21 * 2);
        assert_eq!(v, 42);
    }

    #[test]
    fn render_contains_phases_and_shares() {
        let d = Device::test_small();
        let p = KernelProfile::new();
        p.measure(&d, "init", || d.charge(CostKind::ThreadWork, 10));
        p.measure(&d, "compute", || d.charge(CostKind::ThreadWork, 90));
        let s = p.render("kernel table");
        assert!(s.contains("init"));
        assert!(s.contains("compute"));
        assert!(s.contains("90.0%"));
    }
}
