//! Shard-context propagation: which simulated device ("shard") of a
//! multi-pool run the calling thread is currently working for.
//!
//! `ecl-shard` models one GPU per shard: every shard gets its own
//! [`crate::Device`] and issues kernel launches through the ordinary
//! launch primitives. Those primitives attach the ambient shard id to
//! every profile sample ([`ecl_prof::LaunchSample::shard`]), so the
//! profiling, observability, and tracing layers distinguish per-shard
//! series without any shard-specific plumbing in kernel code.
//!
//! The mechanism mirrors `ecl-obs`'s request context: a thread-local
//! cell read with one load ([`current`]), an RAII guard
//! ([`ShardGuard::enter`]) that restores the previous value on drop
//! (including panic unwinds), and a trace marker
//! (`EventKind::ShardCtx`) emitted on every context *switch* so
//! per-thread event streams stay attributable after the fact. Shard
//! id 0 doubles as "single-pool run": plain (non-sharded) execution
//! never enters a guard and reports shard 0 everywhere, keeping
//! single-pool output unchanged.

use std::cell::Cell;

use ecl_trace::EventKind;

thread_local! {
    static CURRENT: Cell<u32> = const { Cell::new(0) };
}

/// The shard id the calling thread is currently working for
/// (0 = shard 0, which is also the single-pool default).
#[inline]
pub fn current() -> u32 {
    CURRENT.with(Cell::get)
}

/// Emits the trace marker for a shard switch: payload = shard id + 1
/// so "no shard entered" (0) is distinguishable from "entered shard
/// 0" (1). One relaxed load when tracing is off.
#[inline]
fn mark(shard_plus_one: u32) {
    ecl_trace::sink::emit(EventKind::ShardCtx, u32::MAX, 0, shard_plus_one);
}

/// RAII scope that sets the calling thread's shard context, restoring
/// the previous value (and re-marking the trace stream) on drop.
pub struct ShardGuard {
    prev: u32,
    prev_entered: bool,
}

thread_local! {
    /// Whether the thread is inside any guard (distinguishes ambient
    /// shard 0 from an explicitly entered shard 0 for trace markers).
    static ENTERED: Cell<bool> = const { Cell::new(false) };
}

impl ShardGuard {
    /// Enters `shard` as the thread's current shard.
    pub fn enter(shard: u32) -> ShardGuard {
        let prev = CURRENT.with(|c| c.replace(shard));
        let prev_entered = ENTERED.with(|c| c.replace(true));
        if !prev_entered || prev != shard {
            mark(shard + 1);
        }
        ShardGuard { prev, prev_entered }
    }
}

impl Drop for ShardGuard {
    fn drop(&mut self) {
        let cur = CURRENT.with(|c| c.replace(self.prev));
        let was_entered = ENTERED.with(|c| c.replace(self.prev_entered));
        debug_assert!(was_entered, "ShardGuard dropped outside its scope");
        if !self.prev_entered {
            mark(0);
        } else if cur != self.prev {
            mark(self.prev + 1);
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn default_is_shard_zero() {
        assert_eq!(current(), 0);
    }

    #[test]
    fn guard_nests_and_restores() {
        {
            let _a = ShardGuard::enter(2);
            assert_eq!(current(), 2);
            {
                let _b = ShardGuard::enter(5);
                assert_eq!(current(), 5);
            }
            assert_eq!(current(), 2);
        }
        assert_eq!(current(), 0);
    }

    #[test]
    fn guard_restores_across_panic() {
        let _outer = ShardGuard::enter(1);
        let r = std::panic::catch_unwind(|| {
            let _inner = ShardGuard::enter(3);
            panic!("boom");
        });
        assert!(r.is_err());
        assert_eq!(current(), 1);
    }

    #[test]
    fn switches_emit_trace_markers() {
        let tracer = std::sync::Arc::new(ecl_trace::Tracer::new(ecl_trace::TracerConfig {
            slots: 2,
            events_per_slot: 64,
            clock: ecl_trace::ClockMode::Logical,
        }));
        ecl_trace::sink::install(std::sync::Arc::clone(&tracer));
        {
            let _g = ShardGuard::enter(0);
            // Re-entering the same shard is not a switch: no marker.
            let _h = ShardGuard::enter(0);
        }
        ecl_trace::sink::uninstall();
        let snap = tracer.snapshot();
        let marks: Vec<_> = snap.of_kind(EventKind::ShardCtx).collect();
        assert_eq!(marks.len(), 2, "enter + restore: {marks:?}");
        assert_eq!(marks[0].payload, 1, "entered shard 0 encodes as 1");
        assert_eq!(marks[1].payload, 0, "restore to no-shard encodes as 0");
    }
}
