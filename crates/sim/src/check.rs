//! Checker hooks: the seam `ecl-check` plugs into.
//!
//! The simulator reports four things to an installed [`CheckSink`]:
//! kernel-launch boundaries (with name, shape and [`LaunchConfig`]),
//! every counted-atomic cell access (address, width, read / write /
//! atomic), cost charges attributed to the executing agent, and
//! barrier participation. From those a checker can rebuild per-launch
//! shadow memory and launch statistics without the simulator knowing
//! anything about races or lint rules.
//!
//! The plumbing mirrors `ecl_trace::sink`: one relaxed `AtomicBool`
//! load on the hot path when no checker is installed, an `AtomicPtr`
//! to a never-freed (retired) sink when one is. Which launches are
//! *tracked* is the sink's decision — [`CheckSink::launch_begin`]
//! returns `false` for devices it does not watch, and untracked
//! launches never set the thread-local agent, so their accesses are
//! invisible. Host-side code (no launch in progress on the calling
//! thread) has no agent either and is likewise skipped: only work
//! attributable to a simulated thread participates in race and lint
//! analysis.

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicPtr, Ordering};
use std::sync::{Arc, Mutex};

use crate::cost::CostKind;
use crate::device::{Device, DeviceConfig};
use crate::launch::LaunchConfig;

/// The execution granularity of a launch, as seen by the checker.
///
/// Race agents match what can actually interleave in the simulator:
/// per-lane for flat grids, per-block for [`crate::launch_blocks`]
/// (lanes of a block run in-order inside one closure call, so they
/// cannot race each other), per-warp for [`crate::launch_warps`].
/// `Persistent` grids are exempt from the over-launch lint — sizing
/// the grid to the hardware rather than the input is their point.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LaunchShape {
    /// One closure call per thread ([`crate::launch_flat`]).
    Flat,
    /// One thread per resident hardware slot
    /// ([`crate::launch_persistent`]).
    Persistent,
    /// Block-granular closure ([`crate::launch_blocks`]).
    Blocks,
    /// Warp-synchronous phases ([`crate::launch_warps`]).
    Warps,
}

impl LaunchShape {
    /// Lower-case rule-report name.
    pub fn name(self) -> &'static str {
        match self {
            LaunchShape::Flat => "flat",
            LaunchShape::Persistent => "persistent",
            LaunchShape::Blocks => "blocks",
            LaunchShape::Warps => "warps",
        }
    }
}

/// Classification of one counted-atomic cell access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Plain relaxed load (`CountedU32::load` — a plain CUDA read).
    Read,
    /// Plain relaxed store (`CountedU32::store` — a plain CUDA write).
    Write,
    /// A true atomic RMW that changed the cell (successful CAS,
    /// effective min/max). Exempt from race analysis.
    AtomicUpdated,
    /// A true atomic RMW that left the cell unchanged (failed CAS,
    /// ineffective min/max). Exempt from race analysis.
    AtomicNoEffect,
}

impl AccessKind {
    /// Whether the access was a hardware atomic (and therefore exempt
    /// from the race rules).
    pub fn is_atomic(self) -> bool {
        matches!(self, AccessKind::AtomicUpdated | AccessKind::AtomicNoEffect)
    }
}

/// Lane id of a block-granular agent.
const BLOCK_AGENT_LANE: u32 = u32::MAX;
/// Base lane id of warp-granular agents (`base + warp_in_block`).
const WARP_AGENT_BASE: u32 = 0x8000_0000;

/// The smallest schedulable unit a memory access is attributed to:
/// a (block, lane) pair, with sentinel lanes for block- and
/// warp-granular launches where whole blocks / warps are the unit of
/// interleaving.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Agent {
    /// Block id within the launch.
    pub block: u32,
    /// Lane within the block, or a sentinel for coarser granularity.
    pub lane: u32,
}

impl Agent {
    /// A per-thread agent (flat / persistent launches).
    pub fn thread(block: u32, lane: u32) -> Self {
        Self { block, lane }
    }

    /// A block-granular agent ([`crate::launch_blocks`]).
    pub fn block_wide(block: u32) -> Self {
        Self { block, lane: BLOCK_AGENT_LANE }
    }

    /// A warp-granular agent ([`crate::launch_warps`]).
    pub fn warp(block: u32, warp_in_block: u32) -> Self {
        Self { block, lane: WARP_AGENT_BASE + warp_in_block }
    }
}

impl fmt::Display for Agent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.lane == BLOCK_AGENT_LANE {
            write!(f, "b{}", self.block)
        } else if self.lane >= WARP_AGENT_BASE {
            write!(f, "b{}/w{}", self.block, self.lane - WARP_AGENT_BASE)
        } else {
            write!(f, "b{}/t{}", self.block, self.lane)
        }
    }
}

/// Receiver for checker hooks. Implemented by `ecl-check`; the
/// simulator only ever talks to this trait.
pub trait CheckSink: Send + Sync {
    /// A kernel launch is starting on `device` (an opaque identity —
    /// see [`device_id`]). Returns whether the sink wants this launch
    /// tracked; untracked launches produce no further hook calls.
    fn launch_begin(
        &self,
        device: usize,
        config: DeviceConfig,
        name: &str,
        shape: LaunchShape,
        cfg: LaunchConfig,
    ) -> bool;

    /// A tracked launch completed (all blocks joined).
    fn launch_end(&self, device: usize);

    /// A counted-atomic cell access by `agent` during a tracked launch.
    fn access(&self, addr: usize, size: usize, kind: AccessKind, agent: Agent);

    /// A cost charge issued by `agent` during a tracked launch.
    fn charge(&self, kind: CostKind, units: u64, agent: Agent);

    /// A block-wide synchronization round (`BlockCtx::sync`) with
    /// `participants` charged thread slots.
    fn block_sync(&self, agent: Agent, participants: u64);

    /// One lane arrived at a per-lane barrier (`BlockCtx::lane_sync`).
    fn lane_sync(&self, agent: Agent, lane: u32);

    /// A tracked block finished executing.
    fn block_end(&self, block: u32, block_size: usize);
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static PTR: AtomicPtr<Arc<dyn CheckSink>> = AtomicPtr::new(std::ptr::null_mut());
/// Addresses of retired sink boxes, kept (leaked) forever so a racing
/// hook never dereferences a freed sink. Bounded by `install` calls —
/// a process runs a handful of check sessions at most.
static RETIRED: Mutex<Vec<usize>> = Mutex::new(Vec::new());

thread_local! {
    static AGENT: Cell<Option<Agent>> = const { Cell::new(None) };
}

/// The identity launches report for a device: its address. Stable for
/// the lifetime of the borrow a checker holds on the device.
pub fn device_id(device: &Device) -> usize {
    device as *const Device as usize
}

/// Installs `sink` as the process-global checker and enables hooks.
/// Replaces (and retires) any previously installed sink.
pub fn install(sink: Arc<dyn CheckSink>) {
    let mut retired = RETIRED.lock().unwrap_or_else(|e| e.into_inner());
    ENABLED.store(false, Ordering::SeqCst);
    let old = PTR.swap(Box::into_raw(Box::new(sink)), Ordering::SeqCst);
    if !old.is_null() {
        retired.push(old as usize);
    }
    ENABLED.store(true, Ordering::SeqCst);
}

/// Disables hooks and detaches the sink (retiring its storage).
pub fn uninstall() {
    let mut retired = RETIRED.lock().unwrap_or_else(|e| e.into_inner());
    ENABLED.store(false, Ordering::SeqCst);
    let old = PTR.swap(std::ptr::null_mut(), Ordering::SeqCst);
    if !old.is_null() {
        retired.push(old as usize);
    }
}

/// Whether a checker is installed. One relaxed load — the hot-path
/// guard every hook starts with.
#[inline(always)]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

#[inline(always)]
fn with_sink<R>(f: impl FnOnce(&dyn CheckSink) -> R) -> Option<R> {
    if !is_enabled() {
        return None;
    }
    let ptr = PTR.load(Ordering::Acquire);
    if ptr.is_null() {
        return None;
    }
    // SAFETY: `ptr` came from a leaked `Box<Arc<dyn CheckSink>>` that
    // install/uninstall retire (never free), so the sink outlives
    // every racing reader.
    Some(f(unsafe { (*ptr).as_ref() }))
}

/// The agent currently executing on this thread, if a tracked launch
/// is in progress.
pub fn current_agent() -> Option<Agent> {
    AGENT.with(|a| a.get())
}

pub(crate) fn set_agent(agent: Option<Agent>) {
    AGENT.with(|a| a.set(agent));
}

/// Launch-boundary guard for the per-OS-thread agent state.
///
/// Pooled workers survive launches, so the thread-local agent must be
/// cleared at every block *entry* (a previous launch that unwound
/// mid-block would otherwise leave its agent installed, attributing
/// the next launch's — possibly untracked — accesses to a stale
/// agent) and again on *exit*, including panic unwinds: the `Drop`
/// impl runs while the pool's `catch_unwind` is draining the block.
pub(crate) struct AgentScope;

impl AgentScope {
    /// Clears any stale agent left on this OS thread and returns the
    /// guard that re-clears on scope exit.
    pub(crate) fn enter() -> Self {
        set_agent(None);
        AgentScope
    }
}

impl Drop for AgentScope {
    fn drop(&mut self) {
        set_agent(None);
    }
}

pub(crate) fn launch_begin(
    device: &Device,
    name: &str,
    shape: LaunchShape,
    cfg: LaunchConfig,
) -> bool {
    with_sink(|s| s.launch_begin(device_id(device), *device.config(), name, shape, cfg))
        .unwrap_or(false)
}

pub(crate) fn launch_end(device: &Device, tracked: bool) {
    if tracked {
        with_sink(|s| s.launch_end(device_id(device)));
    }
}

pub(crate) fn block_end(block: u32, block_size: usize) {
    with_sink(|s| s.block_end(block, block_size));
}

/// Reports one counted-atomic access. Skipped unless a checker is
/// installed *and* the calling thread is an agent of a tracked launch
/// (host-side accesses are not race candidates).
#[inline(always)]
pub(crate) fn on_access(addr: usize, size: usize, kind: AccessKind) {
    if is_enabled() {
        access_slow(addr, size, kind);
    }
}

#[cold]
fn access_slow(addr: usize, size: usize, kind: AccessKind) {
    if let Some(agent) = current_agent() {
        with_sink(|s| s.access(addr, size, kind, agent));
    }
}

/// Reports one cost charge (same gating as [`on_access`]).
#[inline(always)]
pub(crate) fn on_charge(kind: CostKind, units: u64) {
    if is_enabled() {
        charge_slow(kind, units);
    }
}

#[cold]
fn charge_slow(kind: CostKind, units: u64) {
    if let Some(agent) = current_agent() {
        with_sink(|s| s.charge(kind, units, agent));
    }
}

#[inline(always)]
pub(crate) fn on_block_sync(participants: u64) {
    if is_enabled() {
        if let Some(agent) = current_agent() {
            with_sink(|s| s.block_sync(agent, participants));
        }
    }
}

#[inline(always)]
pub(crate) fn on_lane_sync(lane: u32) {
    if is_enabled() {
        if let Some(agent) = current_agent() {
            with_sink(|s| s.lane_sync(agent, lane));
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::atomics::atomic_u32_array;
    use crate::launch::{launch_blocks_named, launch_flat_named, launch_warps_named};
    use std::sync::Mutex as StdMutex;

    #[derive(Default)]
    struct Recorder {
        device: usize,
        calls: StdMutex<Vec<String>>,
    }

    impl Recorder {
        fn log(&self, s: String) {
            self.calls.lock().unwrap().push(s);
        }
    }

    impl CheckSink for Recorder {
        fn launch_begin(
            &self,
            device: usize,
            _config: DeviceConfig,
            name: &str,
            shape: LaunchShape,
            cfg: LaunchConfig,
        ) -> bool {
            if device != self.device {
                return false;
            }
            self.log(format!("begin {name} {} {}x{}", shape.name(), cfg.blocks, cfg.block_size));
            true
        }
        fn launch_end(&self, _device: usize) {
            self.log("end".into());
        }
        fn access(&self, _addr: usize, size: usize, kind: AccessKind, agent: Agent) {
            self.log(format!("access {kind:?} {size} {agent}"));
        }
        fn charge(&self, kind: CostKind, units: u64, agent: Agent) {
            self.log(format!("charge {kind:?} {units} {agent}"));
        }
        fn block_sync(&self, agent: Agent, participants: u64) {
            self.log(format!("sync {agent} {participants}"));
        }
        fn lane_sync(&self, agent: Agent, lane: u32) {
            self.log(format!("lane-sync {agent} {lane}"));
        }
        fn block_end(&self, block: u32, block_size: usize) {
            self.log(format!("block-end {block} {block_size}"));
        }
    }

    // The sink is process-global, so (like the trace sink's tests)
    // everything shares one #[test] body to avoid interference under
    // the parallel runner. Launches from *other* concurrently running
    // sim tests hit `launch_begin` with a different device id and are
    // rejected, so they cannot pollute the recording.
    #[test]
    fn hook_lifecycle_and_agent_identity() {
        assert!(!is_enabled());
        assert!(current_agent().is_none());

        let d = Device::test_small();
        let rec = Arc::new(Recorder { device: device_id(&d), ..Default::default() });
        install(rec.clone());
        assert!(is_enabled());

        // Flat launch: per-lane agents; loads/stores visible.
        let cells = atomic_u32_array(4, |_| 0);
        launch_flat_named(&d, "t.flat", LaunchConfig::new(2, 2), |t| {
            cells[t.global].store(t.global as u32);
        });
        {
            let calls = rec.calls.lock().unwrap();
            assert!(calls.iter().any(|c| c == "begin t.flat flat 2x2"), "{calls:?}");
            assert!(calls.iter().any(|c| c == "access Write 4 b0/t1"), "{calls:?}");
            assert!(calls.iter().any(|c| c == "access Write 4 b1/t0"), "{calls:?}");
            assert!(calls.iter().any(|c| c.starts_with("block-end 1")), "{calls:?}");
            assert_eq!(calls.iter().filter(|c| *c == "end").count(), 1);
            // The launch itself charges KernelLaunch host-side (no
            // agent) — must NOT be attributed.
            assert!(!calls.iter().any(|c| c.contains("KernelLaunch")), "{calls:?}");
        }
        rec.calls.lock().unwrap().clear();

        // Block launch: block-wide agents, sync reported.
        launch_blocks_named(&d, "t.blocks", LaunchConfig::new(2, 4), |b| {
            cells[b.block].fetch_min(0, None);
            b.sync();
        });
        {
            let calls = rec.calls.lock().unwrap();
            assert!(calls.iter().any(|c| c == "begin t.blocks blocks 2x4"), "{calls:?}");
            assert!(calls.iter().any(|c| c == "access AtomicUpdated 4 b1"), "{calls:?}");
            assert!(calls.iter().any(|c| c == "sync b0 4"), "{calls:?}");
        }
        rec.calls.lock().unwrap().clear();

        // Warp launch: warp-granular agents.
        launch_warps_named(&d, "t.warps", LaunchConfig::new(1, 64), |w| {
            cells[w.block].load();
            let _ = w.lanes;
        });
        {
            let calls = rec.calls.lock().unwrap();
            assert!(calls.iter().any(|c| c == "access Read 4 b0/w0"), "{calls:?}");
            assert!(calls.iter().any(|c| c == "access Read 4 b0/w1"), "{calls:?}");
        }

        // A launch on a different device is rejected and leaves no
        // agent behind.
        let other = Device::test_small();
        rec.calls.lock().unwrap().clear();
        launch_flat_named(&other, "t.other", LaunchConfig::new(1, 1), |_| {
            assert!(current_agent().is_none());
            cells[0].store(7);
        });
        assert!(rec.calls.lock().unwrap().is_empty());

        // Host-side accesses (no launch) are never reported.
        cells[0].store(9);
        assert!(rec.calls.lock().unwrap().is_empty());

        uninstall();
        assert!(!is_enabled());
        launch_flat_named(&d, "t.after", LaunchConfig::new(1, 1), |_| {});
        assert!(rec.calls.lock().unwrap().is_empty());
    }

    #[test]
    fn agent_display() {
        assert_eq!(Agent::thread(3, 7).to_string(), "b3/t7");
        assert_eq!(Agent::block_wide(12).to_string(), "b12");
        assert_eq!(Agent::warp(2, 5).to_string(), "b2/w5");
        assert!(Agent::warp(0, 0) != Agent::block_wide(0));
    }
}
