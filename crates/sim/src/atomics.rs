//! Counted atomic wrappers (§3.1.5).
//!
//! CUDA distinguishes specialized atomics (`atomicMin`, `atomicMax`),
//! which always complete but may leave the target unchanged, from the
//! generic `atomicCAS`, which fails when the target does not hold the
//! expected value. The paper counts both kinds of outcomes; these
//! wrappers do the same, recording into an optional
//! [`AtomicTally`] so instrumentation can be compiled in but switched
//! off (pass `None`).
//!
//! Orderings are `Relaxed`: the ECL algorithms are monotonic
//! (labels only shrink, signatures only grow, statuses only become more
//! decided), so the usual release/acquire pairing is unnecessary for
//! correctness of the converged result — the host-side join at the end
//! of every launch provides the final synchronization. This mirrors the
//! CUDA originals, which use plain `atomicCAS`/`atomicMin` with device
//! memory semantics.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};

use ecl_profiling::{AtomicOutcome, AtomicTally};
use ecl_trace::{sink, EventKind};

use crate::check::{self, AccessKind};

/// Maps an RMW outcome to the access classification the checker sees.
/// Both map to atomic (race-exempt) kinds; the split lets lint rules
/// count *effective* updates.
#[inline]
fn rmw_access_kind(outcome: AtomicOutcome) -> AccessKind {
    match outcome {
        AtomicOutcome::Updated => AccessKind::AtomicUpdated,
        AtomicOutcome::NoEffect | AtomicOutcome::CasFailed => AccessKind::AtomicNoEffect,
    }
}

/// Mirrors an atomic outcome into the global trace sink. A single
/// relaxed load when tracing is disabled, so counted atomics stay
/// cheap on the hot path.
#[inline]
fn trace_outcome(outcome: AtomicOutcome) {
    if sink::is_enabled() {
        let kind = match outcome {
            AtomicOutcome::Updated => EventKind::AtomicUpdated,
            AtomicOutcome::NoEffect => EventKind::AtomicNoEffect,
            AtomicOutcome::CasFailed => EventKind::AtomicCasFailed,
        };
        sink::emit(kind, u32::MAX, 0, 0);
    }
}

macro_rules! counted_atomic {
    ($name:ident, $atomic:ty, $prim:ty, $doc:expr) => {
        #[doc = $doc]
        #[derive(Debug, Default)]
        pub struct $name {
            inner: $atomic,
        }

        impl $name {
            /// A new cell holding `v`.
            pub fn new(v: $prim) -> Self {
                Self { inner: <$atomic>::new(v) }
            }

            /// Relaxed load. Semantically a *plain* CUDA read: the
            /// race detector treats it as an ordinary access, not an
            /// atomic.
            #[inline]
            pub fn load(&self) -> $prim {
                check::on_access(
                    self as *const Self as usize,
                    std::mem::size_of::<Self>(),
                    AccessKind::Read,
                );
                self.inner.load(Ordering::Relaxed)
            }

            /// Relaxed store. Semantically a *plain* CUDA write: the
            /// race detector treats it as an ordinary access, not an
            /// atomic.
            #[inline]
            pub fn store(&self, v: $prim) {
                check::on_access(
                    self as *const Self as usize,
                    std::mem::size_of::<Self>(),
                    AccessKind::Write,
                );
                self.inner.store(v, Ordering::Relaxed)
            }

            /// CUDA `atomicCAS`: installs `new` iff the cell holds
            /// `expected`; returns the value held before the operation
            /// (CUDA semantics). Records Updated / CasFailed.
            #[inline]
            pub fn cas(&self, expected: $prim, new: $prim, tally: Option<&AtomicTally>) -> $prim {
                match self.inner.compare_exchange(
                    expected,
                    new,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(old) => {
                        if let Some(t) = tally {
                            t.record(AtomicOutcome::Updated);
                        }
                        trace_outcome(AtomicOutcome::Updated);
                        check::on_access(
                            self as *const Self as usize,
                            std::mem::size_of::<Self>(),
                            rmw_access_kind(AtomicOutcome::Updated),
                        );
                        old
                    }
                    Err(old) => {
                        if let Some(t) = tally {
                            t.record(AtomicOutcome::CasFailed);
                        }
                        trace_outcome(AtomicOutcome::CasFailed);
                        check::on_access(
                            self as *const Self as usize,
                            std::mem::size_of::<Self>(),
                            rmw_access_kind(AtomicOutcome::CasFailed),
                        );
                        old
                    }
                }
            }

            /// CUDA `atomicMin`: lowers the cell to `v` if smaller;
            /// returns the previous value and records Updated /
            /// NoEffect.
            #[inline]
            pub fn fetch_min(&self, v: $prim, tally: Option<&AtomicTally>) -> $prim {
                let old = self.inner.fetch_min(v, Ordering::Relaxed);
                let outcome =
                    if v < old { AtomicOutcome::Updated } else { AtomicOutcome::NoEffect };
                if let Some(t) = tally {
                    t.record(outcome);
                }
                trace_outcome(outcome);
                check::on_access(
                    self as *const Self as usize,
                    std::mem::size_of::<Self>(),
                    rmw_access_kind(outcome),
                );
                old
            }

            /// CUDA `atomicMax`: raises the cell to `v` if larger;
            /// returns the previous value and records Updated /
            /// NoEffect.
            #[inline]
            pub fn fetch_max(&self, v: $prim, tally: Option<&AtomicTally>) -> $prim {
                let old = self.inner.fetch_max(v, Ordering::Relaxed);
                let outcome =
                    if v > old { AtomicOutcome::Updated } else { AtomicOutcome::NoEffect };
                if let Some(t) = tally {
                    t.record(outcome);
                }
                trace_outcome(outcome);
                check::on_access(
                    self as *const Self as usize,
                    std::mem::size_of::<Self>(),
                    rmw_access_kind(outcome),
                );
                old
            }

            /// Exclusive-access read (no atomics).
            pub fn get_mut(&mut self) -> &mut $prim {
                self.inner.get_mut()
            }
        }

        impl Clone for $name {
            fn clone(&self) -> Self {
                Self::new(self.load())
            }
        }

        impl From<$prim> for $name {
            fn from(v: $prim) -> Self {
                Self::new(v)
            }
        }
    };
}

counted_atomic!(
    CountedU32,
    AtomicU32,
    u32,
    "A counted 32-bit atomic (vertex labels, colors, signatures)."
);
counted_atomic!(
    CountedU64,
    AtomicU64,
    u64,
    "A counted 64-bit atomic (packed weight/edge-id pairs in ECL-MST)."
);
counted_atomic!(
    CountedU8,
    AtomicU8,
    u8,
    "A counted 8-bit atomic (ECL-MIS one-byte status/priority)."
);

/// Builds a `Vec<CountedU32>` initialized by `f(i)`. Convenience for
/// label/signature arrays.
pub fn atomic_u32_array(n: usize, f: impl Fn(usize) -> u32) -> Vec<CountedU32> {
    (0..n).map(|i| CountedU32::new(f(i))).collect()
}

/// Builds a `Vec<CountedU64>` initialized by `f(i)`.
pub fn atomic_u64_array(n: usize, f: impl Fn(usize) -> u64) -> Vec<CountedU64> {
    (0..n).map(|i| CountedU64::new(f(i))).collect()
}

/// Builds a `Vec<CountedU8>` initialized by `f(i)`.
pub fn atomic_u8_array(n: usize, f: impl Fn(usize) -> u8) -> Vec<CountedU8> {
    (0..n).map(|i| CountedU8::new(f(i))).collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn cas_success_and_failure_counted() {
        let t = AtomicTally::new();
        let a = CountedU32::new(5);
        // Success: returns the old value.
        assert_eq!(a.cas(5, 9, Some(&t)), 5);
        assert_eq!(a.load(), 9);
        // Failure: returns the current (unexpected) value.
        assert_eq!(a.cas(5, 7, Some(&t)), 9);
        assert_eq!(a.load(), 9);
        assert_eq!(t.attempted(), 2);
        assert_eq!(t.updated(), 1);
        assert_eq!(t.cas_failed(), 1);
    }

    #[test]
    fn fetch_min_effectiveness() {
        let t = AtomicTally::new();
        let a = CountedU32::new(10);
        assert_eq!(a.fetch_min(3, Some(&t)), 10);
        assert_eq!(a.load(), 3);
        assert_eq!(a.fetch_min(8, Some(&t)), 3);
        assert_eq!(a.load(), 3);
        assert_eq!(t.updated(), 1);
        assert_eq!(t.no_effect(), 1);
    }

    #[test]
    fn fetch_max_effectiveness() {
        let t = AtomicTally::new();
        let a = CountedU64::new(10);
        a.fetch_max(20, Some(&t));
        a.fetch_max(15, Some(&t));
        assert_eq!(a.load(), 20);
        assert_eq!(t.updated(), 1);
        assert_eq!(t.no_effect(), 1);
    }

    #[test]
    fn equal_value_minmax_is_no_effect() {
        let t = AtomicTally::new();
        let a = CountedU32::new(7);
        a.fetch_min(7, Some(&t));
        a.fetch_max(7, Some(&t));
        assert_eq!(t.no_effect(), 2);
        assert_eq!(t.updated(), 0);
    }

    #[test]
    fn none_tally_skips_recording() {
        let a = CountedU8::new(1);
        a.cas(1, 2, None);
        a.fetch_max(9, None);
        assert_eq!(a.load(), 9);
    }

    #[test]
    fn array_constructors() {
        let xs = atomic_u32_array(4, |i| i as u32 * 2);
        assert_eq!(xs[3].load(), 6);
        let ys = atomic_u64_array(2, |_| u64::MAX);
        assert_eq!(ys[0].load(), u64::MAX);
        let zs = atomic_u8_array(3, |i| i as u8);
        assert_eq!(zs[2].load(), 2);
    }

    #[test]
    fn concurrent_cas_only_one_wins() {
        let a = CountedU32::new(0);
        let t = AtomicTally::new();
        std::thread::scope(|s| {
            for i in 1..=8u32 {
                let (a, t) = (&a, &t);
                s.spawn(move || {
                    a.cas(0, i, Some(t));
                });
            }
        });
        assert_ne!(a.load(), 0);
        assert_eq!(t.updated(), 1);
        assert_eq!(t.cas_failed(), 7);
    }

    #[test]
    fn concurrent_fetch_min_converges() {
        let a = CountedU32::new(u32::MAX);
        std::thread::scope(|s| {
            for i in 0..16u32 {
                let a = &a;
                s.spawn(move || {
                    a.fetch_min(1000 - i, None);
                });
            }
        });
        assert_eq!(a.load(), 985);
    }

    #[test]
    fn get_mut_exclusive() {
        let mut a = CountedU32::new(1);
        *a.get_mut() = 42;
        assert_eq!(a.load(), 42);
    }
}
