//! Persistent execution pool with dynamic (ticket-based) block
//! dispatch.
//!
//! The simulator's previous engine split every launch's blocks into
//! one contiguous chunk per core and spawned a fresh set of OS threads
//! for every kernel launch. Both halves of that design are exactly the
//! defect the paper profiles in its subjects: on power-law inputs the
//! chunk holding the high-degree vertices serializes the launch
//! (load imbalance), and iterative algorithms — ECL-CC's
//! pointer-jumping rounds, ECL-SCC's propagate-until-quiescent loop —
//! pay the spawn/join churn dozens of times per run (launch overhead).
//!
//! This module replaces it with the scheme GPU block schedulers (and
//! Gunrock-style load balancers) use:
//!
//! - **Persistent workers.** A process-wide pool is created lazily on
//!   first parallel dispatch (or warmed by [`prewarm`], which
//!   `Device::new` calls). Workers park on a condvar between launches
//!   instead of being respawned, so a launch costs one queue push and
//!   one wake instead of N `thread::spawn` + join.
//! - **Dynamic block claiming.** Blocks are claimed off a shared
//!   `AtomicUsize` ticket in small ranges (the *grain*, auto-sized
//!   from `blocks / workers` and clamped so claims stay cheap). A
//!   heavy block no longer strands its chunk-mates' work behind it on
//!   one core — idle workers keep pulling tickets, which is faithful
//!   to how hardware SMs pick up the next ready block.
//!
//! Dispatch order is intentionally *not* deterministic — exactly like
//! a GPU grid. Kernel code may only rely on what CUDA guarantees:
//! blocks run in any order, possibly sequentially, and must not
//! spin-wait on other blocks. Everything the simulator aggregates
//! (counter totals, cost charges, check verdicts) is a commutative
//! reduction over per-block contributions, so results are identical
//! across worker counts and grains; `tests/scheduler_determinism.rs`
//! asserts that.
//!
//! # Policy
//!
//! Dispatch behavior is controlled per calling thread with
//! [`with_policy`] (tests, benches) and process-wide through
//! environment variables read once at first use:
//!
//! - `ECL_SIM_WORKERS=n` — worker count (default: available cores),
//! - `ECL_SIM_GRAIN=n` — fixed claim grain (default: auto),
//! - `ECL_SIM_DISPATCH=pool|spawn|seq` — engine selection. `spawn` is
//!   the legacy spawn-per-launch contiguous-chunk engine, kept as the
//!   measurable baseline for `bench_launch_overhead`; `seq` forces
//!   in-order execution on the calling thread (the determinism
//!   reference).

use std::cell::Cell;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

/// What one dispatch participant (a pool worker or the submitting
/// thread) did during a single [`dispatch_profiled`] call. This is the
/// raw material of `ecl-prof`'s per-launch utilization / imbalance /
/// claim-wait metrics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ParticipantStat {
    /// Blocks this participant executed.
    pub blocks: u64,
    /// Ticket ranges it claimed (1 for the chunked/sequential engines).
    pub claims: u64,
    /// Nanoseconds spent executing claimed blocks (claim overhead and
    /// queue scanning excluded).
    pub busy_ns: u64,
}

/// How a dispatch maps block indices onto OS threads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DispatchMode {
    /// Persistent worker pool + dynamic ticket claiming (default).
    Pool,
    /// Legacy engine: spawn fresh scoped threads for this dispatch,
    /// one contiguous chunk of blocks each. Kept as the measurable
    /// pre-PR baseline; do not use outside benchmarks.
    Spawn,
    /// All blocks in index order on the calling thread.
    Sequential,
}

/// Per-thread override of the dispatch defaults. `None` fields fall
/// through to the environment (and then the built-in defaults).
#[derive(Clone, Copy, Debug, Default)]
pub struct DispatchPolicy {
    /// Number of OS threads that execute blocks (the calling thread
    /// participates, so `workers: 1` runs inline).
    pub workers: Option<usize>,
    /// Blocks claimed per ticket. `None` auto-sizes from
    /// `blocks / (workers * 4)`.
    pub grain: Option<usize>,
    /// Engine selection.
    pub mode: Option<DispatchMode>,
}

impl DispatchPolicy {
    /// Forces in-order execution on the calling thread — the
    /// determinism reference schedule.
    pub fn sequential() -> Self {
        Self { workers: Some(1), grain: None, mode: Some(DispatchMode::Sequential) }
    }

    /// `workers` pool workers with automatic grain.
    pub fn pooled(workers: usize) -> Self {
        Self { workers: Some(workers), grain: None, mode: Some(DispatchMode::Pool) }
    }

    /// The legacy spawn-per-launch contiguous-chunk engine with
    /// `workers` threads (benchmark baseline).
    pub fn spawn_baseline(workers: usize) -> Self {
        Self { workers: Some(workers), grain: None, mode: Some(DispatchMode::Spawn) }
    }
}

thread_local! {
    static POLICY: Cell<DispatchPolicy> = const { Cell::new(DispatchPolicy {
        workers: None,
        grain: None,
        mode: None,
    }) };
}

/// Runs `f` with `policy` overriding the dispatch defaults for every
/// launch issued from this thread, restoring the previous override on
/// exit (including on panic).
pub fn with_policy<R>(policy: DispatchPolicy, f: impl FnOnce() -> R) -> R {
    struct Restore(DispatchPolicy);
    impl Drop for Restore {
        fn drop(&mut self) {
            POLICY.with(|p| p.set(self.0));
        }
    }
    let _restore = Restore(POLICY.with(|p| p.replace(policy)));
    f()
}

/// Environment-derived defaults, parsed once.
fn env_policy() -> DispatchPolicy {
    static ENV: OnceLock<DispatchPolicy> = OnceLock::new();
    *ENV.get_or_init(|| {
        let parse = |k: &str| std::env::var(k).ok().and_then(|v| v.parse::<usize>().ok());
        let mode = std::env::var("ECL_SIM_DISPATCH").ok().and_then(|v| match v.as_str() {
            "pool" => Some(DispatchMode::Pool),
            "spawn" => Some(DispatchMode::Spawn),
            "seq" => Some(DispatchMode::Sequential),
            _ => None,
        });
        DispatchPolicy {
            workers: parse("ECL_SIM_WORKERS").filter(|&w| w > 0),
            grain: parse("ECL_SIM_GRAIN").filter(|&g| g > 0),
            mode,
        }
    })
}

fn default_workers() -> usize {
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(4)
}

/// The worker count the next dispatch from this thread would use.
pub fn effective_workers() -> usize {
    let local = POLICY.with(|p| p.get());
    local.workers.or(env_policy().workers).unwrap_or_else(default_workers).max(1)
}

fn effective_policy() -> (usize, Option<usize>, DispatchMode) {
    let local = POLICY.with(|p| p.get());
    let env = env_policy();
    (
        local.workers.or(env.workers).unwrap_or_else(default_workers).max(1),
        local.grain.or(env.grain),
        local.mode.or(env.mode).unwrap_or(DispatchMode::Pool),
    )
}

/// Claim size for `n` blocks over `workers` threads: small enough
/// that a heavy block cannot strand much work behind it (≥ 4 claims
/// per worker), large enough that ticket traffic stays cheap, and
/// capped so pathological grids still interleave.
pub fn auto_grain(n: usize, workers: usize) -> usize {
    (n / (workers.max(1) * 4)).clamp(1, 256)
}

/// Interprets one atomic-ticket claim: `start` is the value a
/// `fetch_add(grain)` on the job's `next` counter returned; the
/// result is the half-open block range this claim owns, or `None`
/// when the tickets ran out (an overshooting final claim observes
/// `start >= n` and retires). Pure so the `ecl-mc` ticket-claim
/// harness explores the *same* arithmetic the pool runs.
pub fn ticket_range(start: usize, n: usize, grain: usize) -> Option<(usize, usize)> {
    (start < n).then(|| (start, (start + grain).min(n)))
}

/// Runs `f(0..n)` across the effective worker set. Blocks run in an
/// unspecified order; each index exactly once. Panics in `f` are
/// propagated to the caller after all claimed blocks finish — worker
/// threads survive (they are pooled, not per-launch).
pub fn dispatch<F>(n: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    dispatch_inner(n, &f, false);
}

/// [`dispatch`] with per-participant execution stats: every thread
/// that executed at least one block contributes one
/// [`ParticipantStat`] (in completion order). Used by the launch layer
/// when `ecl-prof`'s sink is installed; costs one `Instant` pair per
/// ticket claim plus one short mutex per claim, none of which is paid
/// by the unprofiled [`dispatch`] path.
pub fn dispatch_profiled<F>(n: usize, f: F) -> Vec<ParticipantStat>
where
    F: Fn(usize) + Sync,
{
    dispatch_inner(n, &f, true).unwrap_or_default()
}

fn dispatch_inner(
    n: usize,
    f: &(dyn Fn(usize) + Sync),
    profiled: bool,
) -> Option<Vec<ParticipantStat>> {
    if n == 0 {
        return profiled.then(Vec::new);
    }
    let (workers, grain, mode) = effective_policy();
    let workers = workers.min(n);
    if workers <= 1 || mode == DispatchMode::Sequential {
        let started = profiled.then(Instant::now);
        for i in 0..n {
            f(i);
        }
        return started.map(|t0| {
            vec![ParticipantStat {
                blocks: n as u64,
                claims: 1,
                busy_ns: t0.elapsed().as_nanos() as u64,
            }]
        });
    }
    let grain = grain.unwrap_or_else(|| auto_grain(n, workers)).max(1);
    match mode {
        DispatchMode::Pool => pooled_dispatch(n, workers, grain, f, profiled),
        DispatchMode::Spawn => spawn_chunked(n, workers, f, profiled),
        DispatchMode::Sequential => unreachable!("handled above"),
    }
}

/// Number of pool workers spawned so far (0 until the first parallel
/// pooled dispatch or [`prewarm`] call).
pub fn worker_count() -> usize {
    pool().spawned.load(Ordering::Relaxed)
}

/// Ensures the pool can serve the effective worker count without
/// spawning on the first launch's critical path. Idempotent and cheap
/// when already warm; called by `Device::new`.
pub fn prewarm() {
    let target = effective_workers();
    if target > 1 {
        pool().ensure_workers(target - 1);
    }
}

/// One in-flight dispatch. Workers claim `grain`-sized index ranges
/// off `next`; the worker whose claim completes the final block
/// retires the job from the queue and wakes the submitter.
struct Job {
    /// Next unclaimed block index (may overshoot `n` once per worker).
    next: AtomicUsize,
    /// Blocks claimed but not yet finished, plus blocks unclaimed.
    remaining: AtomicUsize,
    n: usize,
    grain: usize,
    /// Request context of the submitting thread (`ecl-obs`
    /// correlation; 0 = none). Workers re-enter it around their claims
    /// so per-thread trace streams stay attributable even when workers
    /// interleave claims from several concurrent jobs.
    ctx: u64,
    /// The dispatch closure with its lifetime erased. See the SAFETY
    /// argument at the transmute in [`pooled_dispatch`].
    func: &'static (dyn Fn(usize) + Sync),
    /// First panic payload observed while running blocks.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// Per-participant stats when this dispatch is profiled. Each
    /// claim's contribution is merged in *before* that claim's
    /// `remaining` decrement, so by the time the job retires (and the
    /// submitter wakes) every executed block is accounted for.
    stats: Option<Mutex<Vec<ParticipantStat>>>,
    done: Mutex<bool>,
    done_cv: Condvar,
}

struct PoolShared {
    /// In-flight jobs. Concurrent dispatches (e.g. two tests launching
    /// at once) coexist; workers scan for any job with tickets left.
    queue: Mutex<Vec<Arc<Job>>>,
    /// Signals workers that the queue gained work.
    work_cv: Condvar,
    /// Workers spawned so far (they park forever when idle; the pool
    /// never shrinks — bounded by the largest worker count requested).
    spawned: AtomicUsize,
    /// Serializes spawning.
    grow: Mutex<()>,
}

fn pool() -> &'static PoolShared {
    static POOL: OnceLock<PoolShared> = OnceLock::new();
    POOL.get_or_init(|| PoolShared {
        queue: Mutex::new(Vec::new()),
        work_cv: Condvar::new(),
        spawned: AtomicUsize::new(0),
        grow: Mutex::new(()),
    })
}

impl PoolShared {
    fn ensure_workers(&self, target: usize) {
        if self.spawned.load(Ordering::Acquire) >= target {
            return;
        }
        let _grow = self.grow.lock().unwrap_or_else(|e| e.into_inner());
        while self.spawned.load(Ordering::Acquire) < target {
            let id = self.spawned.load(Ordering::Relaxed);
            std::thread::Builder::new()
                .name(format!("ecl-sim-{id}"))
                .spawn(|| worker_loop(pool()))
                .expect("failed to spawn simulator pool worker");
            self.spawned.fetch_add(1, Ordering::Release);
        }
    }

    /// Claims and runs ticket ranges of `job` until none remain.
    fn run_job(&self, job: &Arc<Job>) {
        // Adopt the submitter's request context for the duration of
        // this job's claims (restored on return and on panic unwind).
        // On the submitting thread this re-enters the same id — a
        // cheap no-op with no trace marker.
        let _ctx = (job.ctx != 0).then(|| ecl_obs::ctx::CtxGuard::enter(job.ctx));
        // Index of this thread's entry in `job.stats`, claimed lazily
        // on its first executed ticket range.
        let mut stat_slot: Option<usize> = None;
        loop {
            let claimed = job.next.fetch_add(job.grain, Ordering::Relaxed);
            let Some((start, end)) = ticket_range(claimed, job.n, job.grain) else {
                return;
            };
            let started = job.stats.as_ref().map(|_| Instant::now());
            for i in start..end {
                // Panics must not kill the pooled worker: record the
                // payload for the submitter and keep draining (the
                // legacy engine also ran all blocks before failing the
                // launch). Drop guards inside `f` (the launch shapes'
                // agent scope) run during this unwind, so no
                // per-thread checker state leaks past the block.
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| (job.func)(i))) {
                    let mut slot = job.panic.lock().unwrap_or_else(|e| e.into_inner());
                    slot.get_or_insert(payload);
                }
            }
            let finished = end - start;
            if let (Some(stats), Some(t0)) = (&job.stats, started) {
                // Merge before the `remaining` decrement below: the
                // job can only retire (waking the submitter to read
                // these stats) after every claim's decrement.
                let busy = t0.elapsed().as_nanos() as u64;
                let mut stats = stats.lock().unwrap_or_else(|e| e.into_inner());
                let idx = *stat_slot.get_or_insert_with(|| {
                    stats.push(ParticipantStat::default());
                    stats.len() - 1
                });
                stats[idx].blocks += finished as u64;
                stats[idx].claims += 1;
                stats[idx].busy_ns += busy;
            }
            if job.remaining.fetch_sub(finished, Ordering::AcqRel) == finished {
                self.retire(job);
            }
        }
    }

    /// Removes a completed job from the queue and wakes its submitter.
    fn retire(&self, job: &Arc<Job>) {
        let mut queue = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        queue.retain(|j| !Arc::ptr_eq(j, job));
        drop(queue);
        let mut done = job.done.lock().unwrap_or_else(|e| e.into_inner());
        *done = true;
        job.done_cv.notify_all();
    }
}

fn worker_loop(p: &'static PoolShared) {
    loop {
        let job = {
            let mut queue = p.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(job) =
                    queue.iter().find(|j| j.next.load(Ordering::Relaxed) < j.n).cloned()
                {
                    break job;
                }
                queue = p.work_cv.wait(queue).unwrap_or_else(|e| e.into_inner());
            }
        };
        p.run_job(&job);
    }
}

fn pooled_dispatch(
    n: usize,
    workers: usize,
    grain: usize,
    f: &(dyn Fn(usize) + Sync),
    profiled: bool,
) -> Option<Vec<ParticipantStat>> {
    let p = pool();
    p.ensure_workers(workers - 1);
    // SAFETY: the only thing this transmute changes is the reference
    // lifetime. The erased reference is dropped before this function
    // returns: `run_job` stops dereferencing `func` once its final
    // ticket claim completes, `remaining` reaching zero retires the
    // job from the queue (so no parked worker can rediscover it), and
    // this function blocks on `done_cv` until that retirement — after
    // which the only live uses of `func` are gone. Workers that raced
    // a last overshooting `fetch_add` observe `start >= n` and return
    // without touching `func`.
    let func: &'static (dyn Fn(usize) + Sync) =
        unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(f) };
    let job = Arc::new(Job {
        next: AtomicUsize::new(0),
        remaining: AtomicUsize::new(n),
        n,
        grain,
        ctx: ecl_obs::ctx::current(),
        func,
        panic: Mutex::new(None),
        stats: profiled.then(|| Mutex::new(Vec::new())),
        done: Mutex::new(false),
        done_cv: Condvar::new(),
    });
    {
        let mut queue = p.queue.lock().unwrap_or_else(|e| e.into_inner());
        queue.push(Arc::clone(&job));
    }
    p.work_cv.notify_all();
    // The submitting thread is a full participant — with one worker
    // configured no pool thread is involved at all.
    p.run_job(&job);
    let mut done = job.done.lock().unwrap_or_else(|e| e.into_inner());
    while !*done {
        done = job.done_cv.wait(done).unwrap_or_else(|e| e.into_inner());
    }
    drop(done);
    let payload = job.panic.lock().unwrap_or_else(|e| e.into_inner()).take();
    if let Some(payload) = payload {
        resume_unwind(payload);
    }
    job.stats.as_ref().map(|s| std::mem::take(&mut *s.lock().unwrap_or_else(|e| e.into_inner())))
}

/// The legacy engine: one contiguous chunk per worker, fresh scoped
/// threads per call. This is the load-imbalance + launch-churn
/// baseline the pool replaces; `bench_launch_overhead` measures the
/// difference.
fn spawn_chunked(
    n: usize,
    workers: usize,
    f: &(dyn Fn(usize) + Sync),
    profiled: bool,
) -> Option<Vec<ParticipantStat>> {
    let chunk = n.div_ceil(workers);
    let stats = profiled.then(|| Mutex::new(Vec::new()));
    let ctx = ecl_obs::ctx::current();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| (w * chunk, ((w + 1) * chunk).min(n)))
            .take_while(|&(lo, hi)| lo < hi)
            .map(|(lo, hi)| {
                let stats = stats.as_ref();
                s.spawn(move || {
                    let _ctx = (ctx != 0).then(|| ecl_obs::ctx::CtxGuard::enter(ctx));
                    let started = stats.map(|_| Instant::now());
                    for i in lo..hi {
                        f(i);
                    }
                    if let (Some(stats), Some(t0)) = (stats, started) {
                        stats.lock().unwrap_or_else(|e| e.into_inner()).push(ParticipantStat {
                            blocks: (hi - lo) as u64,
                            claims: 1,
                            busy_ns: t0.elapsed().as_nanos() as u64,
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("parallel worker panicked");
        }
    });
    stats.map(Mutex::into_inner).map(|r| r.unwrap_or_else(|e| e.into_inner()))
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn covers_exactly(n: usize, policy: DispatchPolicy) {
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        with_policy(policy, || {
            dispatch(n, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "index {i} under {policy:?}");
        }
    }

    #[test]
    fn every_mode_runs_each_index_exactly_once() {
        for n in [0, 1, 2, 7, 64, 257] {
            covers_exactly(n, DispatchPolicy::sequential());
            covers_exactly(n, DispatchPolicy::pooled(4));
            covers_exactly(n, DispatchPolicy::spawn_baseline(4));
            covers_exactly(n, DispatchPolicy { grain: Some(3), ..DispatchPolicy::pooled(8) });
        }
    }

    #[test]
    fn commutative_sums_are_schedule_independent() {
        let total = |policy: DispatchPolicy| {
            let sum = AtomicU64::new(0);
            with_policy(policy, || {
                dispatch(1000, |i| {
                    sum.fetch_add(i as u64 * i as u64, Ordering::Relaxed);
                });
            });
            sum.load(Ordering::Relaxed)
        };
        let reference = total(DispatchPolicy::sequential());
        assert_eq!(total(DispatchPolicy::pooled(8)), reference);
        assert_eq!(
            total(DispatchPolicy { grain: Some(1), ..DispatchPolicy::pooled(3) }),
            reference
        );
        assert_eq!(total(DispatchPolicy::spawn_baseline(4)), reference);
    }

    #[test]
    fn pool_threads_persist_across_dispatches() {
        with_policy(DispatchPolicy::pooled(4), || {
            dispatch(16, |_| {});
            let after_first = worker_count();
            assert!(after_first >= 3, "pool should have spawned workers");
            for _ in 0..50 {
                dispatch(16, |_| {});
            }
            assert_eq!(worker_count(), after_first, "no per-launch spawning");
        });
    }

    #[test]
    fn panics_propagate_and_workers_survive() {
        let run = || {
            with_policy(DispatchPolicy::pooled(4), || {
                dispatch(64, |i| {
                    if i == 33 {
                        panic!("block 33 failed");
                    }
                });
            })
        };
        let err = catch_unwind(AssertUnwindSafe(run)).expect_err("must propagate");
        let msg = err.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "block 33 failed");
        // The pool is still serviceable after a panicked dispatch.
        covers_exactly(128, DispatchPolicy::pooled(4));
    }

    #[test]
    fn auto_grain_bounds() {
        assert_eq!(auto_grain(0, 4), 1);
        assert_eq!(auto_grain(15, 4), 1);
        assert_eq!(auto_grain(64, 4), 4);
        assert_eq!(auto_grain(1 << 20, 1), 256);
    }

    #[test]
    fn profiled_dispatch_accounts_every_block() {
        for policy in [
            DispatchPolicy::sequential(),
            DispatchPolicy::pooled(4),
            DispatchPolicy::spawn_baseline(4),
            DispatchPolicy { grain: Some(3), ..DispatchPolicy::pooled(8) },
        ] {
            let hits: Vec<AtomicUsize> = (0..257).map(|_| AtomicUsize::new(0)).collect();
            let stats = with_policy(policy, || {
                dispatch_profiled(hits.len(), |i| {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                })
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1), "{policy:?}");
            let blocks: u64 = stats.iter().map(|s| s.blocks).sum();
            assert_eq!(blocks, 257, "stats must account every block under {policy:?}");
            assert!(!stats.is_empty());
            assert!(stats.iter().all(|s| s.claims > 0), "{policy:?}: {stats:?}");
        }
    }

    #[test]
    fn profiled_dispatch_of_empty_grid() {
        assert!(dispatch_profiled(0, |_| {}).is_empty());
    }

    #[test]
    fn profiled_dispatch_measures_busy_time() {
        let stats = with_policy(DispatchPolicy::sequential(), || {
            dispatch_profiled(4, |_| std::thread::sleep(std::time::Duration::from_millis(2)))
        });
        assert_eq!(stats.len(), 1);
        assert!(stats[0].busy_ns >= 4_000_000, "slept ~8ms, got {}ns", stats[0].busy_ns);
    }

    #[test]
    fn with_policy_restores_on_exit() {
        let before = effective_workers();
        with_policy(DispatchPolicy::pooled(7), || {
            assert_eq!(effective_workers(), 7);
        });
        assert_eq!(effective_workers(), before);
    }
}
