//! Kernel launch primitives.
//!
//! Three launch shapes cover all profiled ECL kernels:
//!
//! - [`launch_flat`]: a grid of blocks, one closure call per thread —
//!   the ordinary data-parallel kernel (`<<<blocks, tpb>>>`). All
//!   launched threads are enumerated, including the out-of-range tail
//!   of the last block, so kernels perform their own bounds check and
//!   can count idle threads exactly as the instrumented CUDA does.
//! - [`launch_persistent`]: one thread per resident hardware slot
//!   (196,608 on the RTX 4090 preset) — ECL-MIS's persistent-thread
//!   round-robin kernel.
//! - [`launch_blocks`]: block-granular execution handing the closure a
//!   [`BlockCtx`], which exposes the block's threads and a charged
//!   block-wide synchronization — ECL-SCC's propagate-until-quiescent
//!   kernels.
//!
//! Blocks are dispatched onto the persistent worker pool
//! ([`crate::pool`]): workers claim block indices off a shared ticket,
//! so a heavy block never strands the rest of the grid behind it, and
//! no threads are spawned per launch. Threads inside a block run
//! in-order within one closure invocation; kernels needing block-wide
//! phases call the closure once per block and loop internally. Blocks
//! run in an unspecified order (possibly sequentially) — the CUDA
//! block-scheduling contract — so kernels must not spin-wait on other
//! blocks.

use ecl_trace::{sink, EventKind};

use crate::check::{self, Agent, LaunchShape};
use crate::cost::CostKind;
use crate::device::Device;
use crate::pool;

/// Emits the kernel-launch trace event (payload = grid size). One
/// relaxed load when tracing is disabled.
#[inline]
fn trace_launch(cfg: LaunchConfig) {
    sink::emit(EventKind::KernelLaunch, u32::MAX, 0, cfg.blocks.min(u32::MAX as usize) as u32);
}

/// Runs `body` between block-start / block-end trace events.
#[inline]
fn trace_block<R>(block: usize, block_size: usize, body: impl FnOnce() -> R) -> R {
    sink::emit(EventKind::BlockStart, block as u32, 0, block_size as u32);
    let r = body();
    sink::emit(EventKind::BlockEnd, block as u32, 0, block_size as u32);
    r
}

/// Dispatches a launch's blocks onto the pool, reporting a per-launch
/// profile sample when `ecl-prof`'s sink is installed and/or the
/// launch runs inside a request context with `ecl-obs` installed. The
/// disabled path is the plain [`pool::dispatch`] plus two relaxed
/// atomic loads.
fn dispatch_blocks<F>(name: &str, shape: &'static str, cfg: LaunchConfig, f: F)
where
    F: Fn(usize) + Sync,
{
    let prof = ecl_prof::sink::is_enabled();
    let obs = ecl_obs::sink::wants_samples();
    if !prof && !obs {
        pool::dispatch(cfg.blocks, f);
        return;
    }
    let started = std::time::Instant::now();
    let participants = pool::dispatch_profiled(cfg.blocks, f);
    let wall_ns = started.elapsed().as_nanos() as u64;
    let sample = ecl_prof::LaunchSample {
        kernel: name.to_string(),
        shape,
        blocks: cfg.blocks as u64,
        block_size: cfg.block_size as u64,
        wall_ns,
        workers: participants
            .into_iter()
            .map(|p| ecl_prof::WorkerStat {
                blocks: p.blocks,
                claims: p.claims,
                busy_ns: p.busy_ns,
            })
            .collect(),
        req: ecl_obs::ctx::current(),
        shard: crate::shard::current(),
    };
    if prof {
        ecl_prof::sink::on_launch(&sample);
    }
    if obs {
        ecl_obs::sink::on_launch(&sample);
    }
}

/// The stable shape label a [`LaunchShape`] reports in profile
/// samples.
fn shape_label(shape: LaunchShape) -> &'static str {
    match shape {
        LaunchShape::Flat => "flat",
        LaunchShape::Persistent => "persistent",
        LaunchShape::Blocks => "blocks",
        LaunchShape::Warps => "warps",
    }
}

/// Grid dimensions of one launch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Number of thread blocks.
    pub blocks: usize,
    /// Threads per block.
    pub block_size: usize,
}

impl LaunchConfig {
    /// A grid of exactly `blocks` blocks of `block_size` threads.
    pub fn new(blocks: usize, block_size: usize) -> Self {
        assert!(block_size > 0, "block_size must be positive");
        Self { blocks, block_size }
    }

    /// The smallest grid covering `n` elements with one thread each
    /// (the usual `(n + tpb - 1) / tpb` computation).
    pub fn cover(n: usize, block_size: usize) -> Self {
        assert!(block_size > 0, "block_size must be positive");
        Self { blocks: n.div_ceil(block_size), block_size }
    }

    /// Total threads launched (including the idle tail of the last
    /// block).
    pub fn total_threads(&self) -> usize {
        self.blocks * self.block_size
    }
}

/// Identity of one simulated thread inside a launch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ThreadCtx {
    /// Global thread id (`blockIdx.x * blockDim.x + threadIdx.x`).
    pub global: usize,
    /// Block id.
    pub block: usize,
    /// Thread index within the block.
    pub lane: usize,
}

/// Shared body of the per-thread launch shapes: flat grids and
/// persistent-thread grids differ only in how `cfg` was derived and in
/// the [`LaunchShape`] reported to an installed checker.
fn run_flat<F>(device: &Device, name: &str, shape: LaunchShape, cfg: LaunchConfig, f: F)
where
    F: Fn(ThreadCtx) + Sync,
{
    device.charge(CostKind::KernelLaunch, 1);
    trace_launch(cfg);
    let tracked = check::launch_begin(device, name, shape, cfg);
    dispatch_blocks(name, shape_label(shape), cfg, |block| {
        let _agents = check::AgentScope::enter();
        trace_block(block, cfg.block_size, || {
            for lane in 0..cfg.block_size {
                if tracked {
                    check::set_agent(Some(Agent::thread(block as u32, lane as u32)));
                }
                f(ThreadCtx { global: block * cfg.block_size + lane, block, lane });
            }
            if tracked {
                check::set_agent(None);
                check::block_end(block as u32, cfg.block_size);
            }
        });
    });
    check::launch_end(device, tracked);
}

/// Launches `cfg.blocks × cfg.block_size` threads; `f` runs once per
/// thread. Charges one kernel launch to the device. Blocks execute in
/// parallel; threads of a block execute in lane order.
pub fn launch_flat<F>(device: &Device, cfg: LaunchConfig, f: F)
where
    F: Fn(ThreadCtx) + Sync,
{
    run_flat(device, "flat", LaunchShape::Flat, cfg, f);
}

/// [`launch_flat`] with a kernel name reported to the checker (and in
/// `ecl-check` findings).
pub fn launch_flat_named<F>(device: &Device, name: &str, cfg: LaunchConfig, f: F)
where
    F: Fn(ThreadCtx) + Sync,
{
    run_flat(device, name, LaunchShape::Flat, cfg, f);
}

/// Launches one thread per resident hardware slot using the device's
/// default block size — the persistent-thread model of ECL-MIS.
/// Returns the number of threads launched.
pub fn launch_persistent<F>(device: &Device, f: F) -> usize
where
    F: Fn(ThreadCtx) + Sync,
{
    launch_persistent_named(device, "persistent", f)
}

/// [`launch_persistent`] with a kernel name reported to the checker.
pub fn launch_persistent_named<F>(device: &Device, name: &str, f: F) -> usize
where
    F: Fn(ThreadCtx) + Sync,
{
    let n = device.resident_threads();
    let cfg = LaunchConfig::cover(n, device.config().default_block_size);
    run_flat(device, name, LaunchShape::Persistent, cfg, f);
    n
}

/// Block-granular execution context handed to [`launch_blocks`]
/// closures.
pub struct BlockCtx<'a> {
    /// Block id.
    pub block: usize,
    /// Threads in this block.
    pub block_size: usize,
    device: &'a Device,
}

impl BlockCtx<'_> {
    /// The threads of this block, in lane order.
    pub fn threads(&self) -> impl Iterator<Item = ThreadCtx> + '_ {
        let (block, bs) = (self.block, self.block_size);
        (0..bs).map(move |lane| ThreadCtx { global: block * bs + lane, block, lane })
    }

    /// One block-wide synchronization round: every thread of the block
    /// participates, so the device is charged `block_size` sync units.
    /// This is the cost §6.2.1 attributes to oversized blocks ("even a
    /// single active thread keeps the entire block alive, forcing many
    /// idle threads to participate in block-wide synchronizations").
    pub fn sync(&self) {
        self.device.charge(CostKind::BlockSync, self.block_size as u64);
        check::on_block_sync(self.block_size as u64);
    }

    /// One *lane's* arrival at a block-wide barrier: charges a single
    /// sync unit and reports the lane to an installed checker, which
    /// verifies that every lane of the block reaches the barrier the
    /// same number of times (`__syncthreads()` inside a divergent
    /// branch is undefined behavior on real hardware — the
    /// `divergent-sync` lint). Kernels that iterate lanes explicitly
    /// call this once per lane instead of one [`BlockCtx::sync`].
    pub fn lane_sync(&self, t: ThreadCtx) {
        debug_assert_eq!(t.block, self.block, "lane_sync from a foreign block");
        self.device.charge(CostKind::BlockSync, 1);
        check::on_lane_sync(t.lane as u32);
    }

    /// The device this block runs on (for cost charges from kernel
    /// code).
    pub fn device(&self) -> &Device {
        self.device
    }
}

/// Launches `cfg.blocks` blocks; `f` runs once per block with a
/// [`BlockCtx`]. Charges one kernel launch. Blocks run as parallel
/// rayon tasks.
pub fn launch_blocks<F>(device: &Device, cfg: LaunchConfig, f: F)
where
    F: Fn(BlockCtx<'_>) + Sync,
{
    launch_blocks_named(device, "blocks", cfg, f);
}

/// [`launch_blocks`] with a kernel name reported to the checker. The
/// race agent is the whole block: lanes of a block execute in-order
/// inside one closure call and cannot race each other.
pub fn launch_blocks_named<F>(device: &Device, name: &str, cfg: LaunchConfig, f: F)
where
    F: Fn(BlockCtx<'_>) + Sync,
{
    device.charge(CostKind::KernelLaunch, 1);
    trace_launch(cfg);
    let tracked = check::launch_begin(device, name, LaunchShape::Blocks, cfg);
    dispatch_blocks(name, "blocks", cfg, |block| {
        let _agents = check::AgentScope::enter();
        trace_block(block, cfg.block_size, || {
            if tracked {
                check::set_agent(Some(Agent::block_wide(block as u32)));
            }
            f(BlockCtx { block, block_size: cfg.block_size, device });
            if tracked {
                check::set_agent(None);
                check::block_end(block as u32, cfg.block_size);
            }
        });
    });
    check::launch_end(device, tracked);
}

/// One warp of a warp-synchronous launch.
#[derive(Clone, Copy, Debug)]
pub struct WarpCtx {
    /// Global warp index.
    pub warp: usize,
    /// Block this warp belongs to.
    pub block: usize,
    /// Global thread id of lane 0.
    pub base: usize,
    /// Number of live lanes (the device's warp size, except possibly
    /// in the last warp of a block).
    pub lanes: usize,
}

impl WarpCtx {
    /// The thread context of `lane`.
    pub fn thread(&self, lane: usize) -> ThreadCtx {
        debug_assert!(lane < self.lanes);
        ThreadCtx {
            global: self.base + lane,
            block: self.block,
            lane: (self.base + lane) % self.lanes.max(1),
        }
    }
}

/// Warp-synchronous launch: `f` runs once per warp and typically
/// iterates its lanes in *phases* — all lanes complete phase 1 before
/// any lane runs phase 2, which is the SIMT lockstep CUDA guarantees
/// within a warp. Kernels whose profiled behavior depends on the
/// check-to-atomic race window (ECL-MST's election, §6.1.4) need this
/// launch shape; fully independent threads should prefer
/// [`launch_flat`].
pub fn launch_warps<F>(device: &Device, cfg: LaunchConfig, f: F)
where
    F: Fn(WarpCtx) + Sync,
{
    launch_warps_named(device, "warps", cfg, f);
}

/// [`launch_warps`] with a kernel name reported to the checker. The
/// race agent is the warp: lanes of a warp run lockstep inside one
/// closure call.
pub fn launch_warps_named<F>(device: &Device, name: &str, cfg: LaunchConfig, f: F)
where
    F: Fn(WarpCtx) + Sync,
{
    device.charge(CostKind::KernelLaunch, 1);
    trace_launch(cfg);
    let tracked = check::launch_begin(device, name, LaunchShape::Warps, cfg);
    let warp_size = device.config().warp_size.max(1);
    dispatch_blocks(name, "warps", cfg, |block| {
        let _agents = check::AgentScope::enter();
        trace_block(block, cfg.block_size, || {
            let block_base = block * cfg.block_size;
            let mut offset = 0usize;
            let mut warp_in_block = 0usize;
            while offset < cfg.block_size {
                let lanes = warp_size.min(cfg.block_size - offset);
                if tracked {
                    check::set_agent(Some(Agent::warp(block as u32, warp_in_block as u32)));
                }
                f(WarpCtx {
                    warp: block * cfg.block_size.div_ceil(warp_size) + warp_in_block,
                    block,
                    base: block_base + offset,
                    lanes,
                });
                offset += lanes;
                warp_in_block += 1;
            }
            if tracked {
                check::set_agent(None);
                check::block_end(block as u32, cfg.block_size);
            }
        });
    });
    check::launch_end(device, tracked);
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    #[test]
    fn cover_rounds_up() {
        let cfg = LaunchConfig::cover(100, 32);
        assert_eq!(cfg.blocks, 4);
        assert_eq!(cfg.total_threads(), 128);
        assert_eq!(LaunchConfig::cover(0, 32).blocks, 0);
        assert_eq!(LaunchConfig::cover(32, 32).blocks, 1);
        assert_eq!(LaunchConfig::cover(33, 32).blocks, 2);
    }

    #[test]
    #[should_panic(expected = "block_size must be positive")]
    fn zero_block_size_rejected() {
        LaunchConfig::cover(10, 0);
    }

    #[test]
    fn flat_launch_runs_every_thread_once() {
        let d = Device::test_small();
        let cfg = LaunchConfig::new(7, 13);
        let count = AtomicUsize::new(0);
        let sum = AtomicU64::new(0);
        launch_flat(&d, cfg, |t| {
            count.fetch_add(1, Ordering::Relaxed);
            sum.fetch_add(t.global as u64, Ordering::Relaxed);
        });
        let n = cfg.total_threads();
        assert_eq!(count.load(Ordering::Relaxed), n);
        assert_eq!(sum.load(Ordering::Relaxed), (n as u64 - 1) * n as u64 / 2);
        assert_eq!(d.cost().units(CostKind::KernelLaunch), 1);
    }

    #[test]
    fn thread_ctx_identity() {
        let d = Device::test_small();
        launch_flat(&d, LaunchConfig::new(3, 4), |t| {
            assert_eq!(t.global, t.block * 4 + t.lane);
            assert!(t.lane < 4);
            assert!(t.block < 3);
        });
    }

    #[test]
    fn persistent_launch_covers_resident_threads() {
        let d = Device::test_small();
        let seen = AtomicUsize::new(0);
        let n = launch_persistent(&d, |_| {
            seen.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(n, d.resident_threads());
        // cover() may round launched threads up to a full last block.
        assert!(seen.load(Ordering::Relaxed) >= n);
    }

    #[test]
    fn block_launch_hands_each_block_once() {
        let d = Device::test_small();
        let blocks_seen = AtomicUsize::new(0);
        let threads_seen = AtomicUsize::new(0);
        launch_blocks(&d, LaunchConfig::new(5, 8), |b| {
            blocks_seen.fetch_add(1, Ordering::Relaxed);
            threads_seen.fetch_add(b.threads().count(), Ordering::Relaxed);
            b.sync();
        });
        assert_eq!(blocks_seen.load(Ordering::Relaxed), 5);
        assert_eq!(threads_seen.load(Ordering::Relaxed), 40);
        // 5 blocks × 8 threads each crossed one barrier.
        assert_eq!(d.cost().units(CostKind::BlockSync), 40);
    }

    #[test]
    fn block_ctx_thread_ids_are_global() {
        let d = Device::test_small();
        launch_blocks(&d, LaunchConfig::new(2, 4), |b| {
            for t in b.threads() {
                assert_eq!(t.global, b.block * 4 + t.lane);
                assert_eq!(t.block, b.block);
            }
        });
    }

    #[test]
    fn empty_grid_is_a_noop_launch() {
        let d = Device::test_small();
        launch_flat(&d, LaunchConfig::new(0, 32), |_| panic!("no threads expected"));
        assert_eq!(d.cost().units(CostKind::KernelLaunch), 1);
    }

    #[test]
    fn warp_launch_covers_all_threads_in_warp_chunks() {
        let d = Device::test_small(); // warp size 32
        let cfg = LaunchConfig::new(3, 80); // 80 = 32 + 32 + 16
        let covered = AtomicUsize::new(0);
        let warps_seen = AtomicUsize::new(0);
        launch_warps(&d, cfg, |w| {
            warps_seen.fetch_add(1, Ordering::Relaxed);
            assert!(w.lanes == 32 || w.lanes == 16, "lanes {}", w.lanes);
            covered.fetch_add(w.lanes, Ordering::Relaxed);
            for lane in 0..w.lanes {
                let t = w.thread(lane);
                assert_eq!(t.global, w.base + lane);
                assert_eq!(t.block, w.block);
            }
        });
        assert_eq!(covered.load(Ordering::Relaxed), 240);
        assert_eq!(warps_seen.load(Ordering::Relaxed), 9);
    }

    #[test]
    fn warp_launch_phases_are_lockstep_within_warp() {
        // A warp-synchronous counter: each warp's lanes all read the
        // same snapshot in phase 1, then all add in phase 2 — the sum
        // must reflect per-warp (not per-lane) increments of the
        // shared cell.
        let d = Device::test_small();
        let cell = AtomicU64::new(0);
        launch_warps(&d, LaunchConfig::new(1, 64), |w| {
            let snapshot = cell.load(Ordering::Relaxed);
            let mut pending = 0u64;
            for _lane in 0..w.lanes {
                if snapshot < 100 {
                    pending += 1;
                }
            }
            cell.fetch_add(pending, Ordering::Relaxed);
        });
        // Both 32-lane warps saw snapshot < 100: 64 total.
        assert_eq!(cell.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn device_charge_from_kernel_code() {
        let d = Device::test_small();
        launch_blocks(&d, LaunchConfig::new(2, 2), |b| {
            b.device().charge(CostKind::ThreadWork, 3);
        });
        assert_eq!(d.cost().units(CostKind::ThreadWork), 6);
    }

    #[test]
    fn profiling_sink_sees_every_launch_shape() {
        // One test body: the prof sink is process-global state.
        let d = Device::test_small();
        let collector = std::sync::Arc::new(ecl_prof::Collector::new());
        ecl_prof::sink::install(std::sync::Arc::clone(&collector));
        launch_flat_named(&d, "prof-flat", LaunchConfig::new(4, 8), |_| {});
        launch_blocks_named(&d, "prof-blocks", LaunchConfig::new(3, 8), |_| {});
        launch_warps_named(&d, "prof-warps", LaunchConfig::new(2, 64), |_| {});
        launch_flat_named(&d, "prof-flat", LaunchConfig::new(4, 8), |_| {});
        ecl_prof::sink::uninstall();
        // Launches after uninstall are not recorded.
        launch_flat_named(&d, "prof-flat", LaunchConfig::new(4, 8), |_| {});

        let stats = collector.snapshot();
        let by_name =
            |n: &str| stats.iter().find(|k| k.name == n).unwrap_or_else(|| panic!("missing {n}"));
        let flat = by_name("prof-flat");
        assert_eq!(flat.launches, 2);
        assert_eq!(flat.blocks, 8);
        assert_eq!(flat.threads, 64);
        assert_eq!(flat.shape, "flat");
        assert_eq!(flat.wall_ns.count, 2);
        assert_eq!(by_name("prof-blocks").shape, "blocks");
        assert_eq!(by_name("prof-warps").shape, "warps");
        // Participant accounting covered every block of each launch.
        assert!(flat.utilization >= 0.0 && flat.utilization <= 1.0);
    }
}
