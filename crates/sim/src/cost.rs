//! Deterministic work-based cost model.
//!
//! Measuring wall time of a simulator says little about GPU behavior;
//! the paper's performance arguments are about *work*: idle threads
//! spinning in block-wide loops (ECL-SCC, §6.2.1), unnecessary
//! adjacency traversals (ECL-CC, §6.2.2), and the trade-off between
//! launching excess threads and recomputing launch configurations on
//! the host (ECL-MST, §6.2.3). The cost model charges exactly those
//! categories so speedup tables are deterministic and reproducible.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::Serialize;

/// Categories of charged work.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum CostKind {
    /// A unit of useful per-thread work (e.g. one edge relaxed, one
    /// neighbor examined).
    ThreadWork,
    /// A launched thread that only discovered it had nothing to do
    /// (out-of-range id or failed work condition).
    IdleCheck,
    /// One atomic operation.
    Atomic,
    /// One thread participating in one block-wide synchronization
    /// round (charged per thread per round — the ECL-SCC §6.2.1 cost of
    /// "forcing many idle threads to participate in block-wide
    /// synchronizations").
    BlockSync,
    /// One kernel launch (fixed host+driver overhead).
    KernelLaunch,
    /// One host-side launch reconfiguration (device-to-host readback of
    /// a worklist size before a launch, the ECL-MST §6.2.3 overhead).
    HostReconfig,
}

const NUM_KINDS: usize = 6;

impl CostKind {
    #[inline]
    fn index(self) -> usize {
        match self {
            CostKind::ThreadWork => 0,
            CostKind::IdleCheck => 1,
            CostKind::Atomic => 2,
            CostKind::BlockSync => 3,
            CostKind::KernelLaunch => 4,
            CostKind::HostReconfig => 5,
        }
    }

    /// All kinds, index-ordered.
    pub const ALL: [CostKind; NUM_KINDS] = [
        CostKind::ThreadWork,
        CostKind::IdleCheck,
        CostKind::Atomic,
        CostKind::BlockSync,
        CostKind::KernelLaunch,
        CostKind::HostReconfig,
    ];
}

/// Weights translating unit counts into abstract time. The defaults
/// are order-of-magnitude ratios for a discrete GPU: a kernel launch
/// costs a few microseconds (~thousands of memory-ish operations), an
/// atomic a handful of units, a host round-trip more than a launch.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct CostParams {
    /// Weight of one unit of useful thread work.
    pub thread_work: f64,
    /// Weight of one idle-thread check. Idle threads are cheap on a
    /// GPU (they exit immediately, retiring with the warp) but not
    /// free: they still occupy scheduler slots.
    pub idle_check: f64,
    /// Weight of one atomic operation.
    pub atomic: f64,
    /// Weight of one thread crossing one block-wide barrier.
    pub block_sync: f64,
    /// Weight of one kernel launch.
    pub kernel_launch: f64,
    /// Weight of one host-side reconfiguration round-trip.
    pub host_reconfig: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        Self {
            thread_work: 1.0,
            idle_check: 0.25,
            atomic: 4.0,
            block_sync: 0.5,
            kernel_launch: 4000.0,
            host_reconfig: 6000.0,
        }
    }
}

impl CostParams {
    /// Weight of `kind`.
    pub fn weight(&self, kind: CostKind) -> f64 {
        match kind {
            CostKind::ThreadWork => self.thread_work,
            CostKind::IdleCheck => self.idle_check,
            CostKind::Atomic => self.atomic,
            CostKind::BlockSync => self.block_sync,
            CostKind::KernelLaunch => self.kernel_launch,
            CostKind::HostReconfig => self.host_reconfig,
        }
    }
}

/// Thread-safe per-category unit tallies.
#[derive(Debug, Default)]
pub struct CostTally {
    units: [AtomicU64; NUM_KINDS],
}

impl CostTally {
    /// A zeroed tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges `units` of `kind`.
    #[inline]
    pub fn charge(&self, kind: CostKind, units: u64) {
        self.units[kind.index()].fetch_add(units, Ordering::Relaxed);
    }

    /// Units charged of `kind`.
    pub fn units(&self, kind: CostKind) -> u64 {
        self.units[kind.index()].load(Ordering::Relaxed)
    }

    /// Total units across all categories (unweighted).
    pub fn total_units(&self) -> u64 {
        self.units.iter().map(|u| u.load(Ordering::Relaxed)).sum()
    }

    /// Weighted abstract time under `params`.
    pub fn modeled_time(&self, params: &CostParams) -> f64 {
        CostKind::ALL.iter().map(|&k| self.units(k) as f64 * params.weight(k)).sum()
    }

    /// Copies the tally out as `(kind, units)` pairs.
    pub fn breakdown(&self) -> Vec<(CostKind, u64)> {
        CostKind::ALL.iter().map(|&k| (k, self.units(k))).collect()
    }

    /// Resets all categories (requires exclusive access).
    pub fn reset(&mut self) {
        for u in &mut self.units {
            *u.get_mut() = 0;
        }
    }
}

impl Clone for CostTally {
    fn clone(&self) -> Self {
        let t = CostTally::new();
        for &k in &CostKind::ALL {
            t.charge(k, self.units(k));
        }
        t
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn charge_and_query() {
        let t = CostTally::new();
        t.charge(CostKind::ThreadWork, 100);
        t.charge(CostKind::Atomic, 5);
        t.charge(CostKind::Atomic, 5);
        assert_eq!(t.units(CostKind::ThreadWork), 100);
        assert_eq!(t.units(CostKind::Atomic), 10);
        assert_eq!(t.units(CostKind::KernelLaunch), 0);
        assert_eq!(t.total_units(), 110);
    }

    #[test]
    fn modeled_time_weights() {
        let t = CostTally::new();
        t.charge(CostKind::ThreadWork, 10);
        t.charge(CostKind::KernelLaunch, 1);
        let p = CostParams::default();
        let expect = 10.0 * p.thread_work + p.kernel_launch;
        assert!((t.modeled_time(&p) - expect).abs() < 1e-9);
    }

    #[test]
    fn custom_params() {
        let t = CostTally::new();
        t.charge(CostKind::IdleCheck, 8);
        let p = CostParams { idle_check: 2.0, ..CostParams::default() };
        assert!((t.modeled_time(&p) - 16.0).abs() < 1e-12);
    }

    #[test]
    fn breakdown_covers_all_kinds() {
        let t = CostTally::new();
        t.charge(CostKind::HostReconfig, 3);
        let b = t.breakdown();
        assert_eq!(b.len(), 6);
        assert!(b.contains(&(CostKind::HostReconfig, 3)));
        assert!(b.contains(&(CostKind::BlockSync, 0)));
    }

    #[test]
    fn reset_and_clone() {
        let mut t = CostTally::new();
        t.charge(CostKind::Atomic, 7);
        let c = t.clone();
        t.reset();
        assert_eq!(t.units(CostKind::Atomic), 0);
        assert_eq!(c.units(CostKind::Atomic), 7);
    }

    #[test]
    fn concurrent_charging() {
        let t = CostTally::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        t.charge(CostKind::ThreadWork, 1);
                    }
                });
            }
        });
        assert_eq!(t.units(CostKind::ThreadWork), 8000);
    }

    #[test]
    fn default_weights_order() {
        // The relative ordering the model relies on: reconfig > launch
        // >> atomic > work > sync-step > idle.
        let p = CostParams::default();
        assert!(p.host_reconfig > p.kernel_launch);
        assert!(p.kernel_launch > 100.0 * p.atomic);
        assert!(p.atomic > p.thread_work);
        assert!(p.thread_work > p.idle_check);
    }
}
