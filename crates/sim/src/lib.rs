//! A CPU-hosted GPU *execution-model* simulator.
//!
//! The paper runs five CUDA codes on an NVIDIA RTX 4090. This crate
//! substitutes the GPU with a simulator that reproduces the execution
//! *semantics* the paper's profiling results depend on, not the silicon:
//!
//! - a **grid / block / thread** hierarchy with configurable block size
//!   and an RTX 4090-like device preset (128 SMs × 1536 resident threads
//!   = 196,608 persistent threads, the thread count of Table 2),
//! - **counted atomics** wrapping `AtomicU32`/`AtomicU64` CAS,
//!   fetch-min and fetch-max, classifying every call as updated /
//!   no-effect / CAS-failed — the §3.1.5 metric general-purpose
//!   profilers do not expose,
//! - **block-synchronous execution** for ECL-SCC-style kernels in which
//!   a block keeps iterating while any of its threads performed an
//!   update,
//! - a deterministic **cost model** that charges useful thread work,
//!   idle-thread checks, atomics, block-wide synchronization, kernel
//!   launches, and host-side launch reconfiguration. Speedup tables are
//!   computed from modeled cost so the reproduction is hardware- and
//!   load-independent; wall time is reported alongside.
//!
//! Blocks execute on a persistent worker pool with dynamic
//! ticket-based claiming ([`pool`]) — workers park between launches
//! and pull block indices off a shared atomic, mirroring how hardware
//! SMs pick up ready blocks; threads within a block run as an
//! in-order loop per kernel invocation. This is exact for the
//! profiled ECL kernels, which are either fully asynchronous
//! (per-thread monotonic updates) or block-synchronous (or-reduction
//! loops); none rely on intra-warp communication.

pub mod atomics;
pub mod check;
pub mod cost;
pub mod device;
pub mod launch;
pub mod pool;
pub mod profile;
pub mod schedule;
pub mod shard;
pub mod timing;

pub use atomics::{CountedU32, CountedU64, CountedU8};
pub use check::{AccessKind, Agent, CheckSink, LaunchShape};
pub use cost::{CostKind, CostParams, CostTally};
pub use device::{Device, DeviceConfig};
pub use launch::{
    launch_blocks, launch_blocks_named, launch_flat, launch_flat_named, launch_persistent,
    launch_persistent_named, launch_warps, launch_warps_named, BlockCtx, LaunchConfig, ThreadCtx,
    WarpCtx,
};
pub use pool::{ticket_range, DispatchMode, DispatchPolicy};
pub use profile::{KernelProfile, KernelRecord};
pub use schedule::{default_schedule, knob_registry, KnobDomain, KnobSpec, KnobValue, Schedule};
pub use shard::ShardGuard;
pub use timing::run_timed;
