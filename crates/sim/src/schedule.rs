//! Unified, serializable scheduling knobs.
//!
//! The paper derives its three optimizations (ECL-CC first-neighbor
//! init §6.2.2, ECL-SCC block size §6.2.1, ECL-MST launch config
//! §6.2.3) by hand from profiles. Each of those decisions is a point
//! in a small discrete space that was previously scattered across the
//! suite: `LaunchConfig` block sizes inside algorithm configs,
//! [`DispatchPolicy`] engine/worker/grain overrides, and per-algorithm
//! toggles. A [`Schedule`] collects one assignment of all of them into
//! a single serializable value, and [`knob_registry`] declares, per
//! algorithm, which knobs exist and which values each may take — the
//! search space `ecl-tune` sweeps and the schema its manifests are
//! validated against.
//!
//! Two invariants the rest of the suite relies on:
//!
//! - **Serialization is canonical.** Knobs are kept sorted by name and
//!   rendered deterministically, so `to_json` → [`Schedule::from_json`]
//!   → `to_json` is a fixpoint and schedules can be compared as
//!   strings.
//! - **Dispatch knobs never change results.** `dispatch`, `workers`
//!   and `grain` select how blocks map onto OS threads; the scheduler
//!   determinism suite guarantees modeled cost and algorithm output
//!   are identical across them. They are carried (and applied) so runs
//!   are reproducible end to end, but marked [`KnobSpec::cost_neutral`]
//!   so a modeled-cost search does not waste evaluations sweeping them.

use crate::pool::{DispatchMode, DispatchPolicy};
use ecl_prof::json::{self, Value};

/// One knob's value. Integers and floats are kept distinct so
/// serialization is exact, but the typed accessors coerce (an `Int` is
/// a valid `f64` knob), matching how JSON readers see the file.
#[derive(Clone, Debug, PartialEq)]
pub enum KnobValue {
    /// Boolean toggle.
    Bool(bool),
    /// Integer-valued knob (block sizes, bins, salts, counts).
    Int(i64),
    /// Real-valued knob (fractions).
    Float(f64),
    /// Enumerated string knob (dispatch engine, priority policy).
    Str(&'static str),
}

impl KnobValue {
    fn to_json(&self) -> String {
        match self {
            KnobValue::Bool(b) => b.to_string(),
            KnobValue::Int(i) => i.to_string(),
            KnobValue::Float(f) => json::num(*f),
            KnobValue::Str(s) => format!("\"{}\"", json::escape(s)),
        }
    }
}

/// The set of values a knob may take. Domains are small and discrete
/// by design: every value is something a person could plausibly write
/// in a config, and exhaustive search over a whole algorithm's space
/// stays tractable.
#[derive(Clone, Copy, Debug)]
pub enum KnobDomain {
    /// `false` / `true`.
    Bool,
    /// An explicit list of integers.
    Ints(&'static [i64]),
    /// An explicit list of reals.
    Floats(&'static [f64]),
    /// An explicit list of strings.
    Choice(&'static [&'static str]),
}

impl KnobDomain {
    /// Number of admissible values.
    pub fn len(&self) -> usize {
        match self {
            KnobDomain::Bool => 2,
            KnobDomain::Ints(v) => v.len(),
            KnobDomain::Floats(v) => v.len(),
            KnobDomain::Choice(v) => v.len(),
        }
    }

    /// Whether the domain is empty (never, for registry entries).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `i`-th admissible value.
    pub fn value(&self, i: usize) -> KnobValue {
        match self {
            KnobDomain::Bool => KnobValue::Bool(i != 0),
            KnobDomain::Ints(v) => KnobValue::Int(v[i]),
            KnobDomain::Floats(v) => KnobValue::Float(v[i]),
            KnobDomain::Choice(v) => KnobValue::Str(v[i]),
        }
    }

    /// All admissible values, index-ordered.
    pub fn values(&self) -> Vec<KnobValue> {
        (0..self.len()).map(|i| self.value(i)).collect()
    }

    /// Whether `v` is one of the admissible values (with `Int`/`Float`
    /// coercion, mirroring what a JSON reader can distinguish).
    pub fn admits(&self, v: &KnobValue) -> bool {
        match (self, v) {
            (KnobDomain::Bool, KnobValue::Bool(_)) => true,
            (KnobDomain::Ints(d), KnobValue::Int(x)) => d.contains(x),
            (KnobDomain::Floats(d), KnobValue::Float(x)) => {
                d.iter().any(|f| f.to_bits() == x.to_bits())
            }
            (KnobDomain::Floats(d), KnobValue::Int(x)) => d.contains(&(*x as f64)),
            (KnobDomain::Choice(d), KnobValue::Str(s)) => d.contains(s),
            _ => false,
        }
    }
}

/// One knob's declaration: its name, admissible values, and default.
#[derive(Clone, Copy, Debug)]
pub struct KnobSpec {
    /// Stable knob name (the JSON key).
    pub name: &'static str,
    /// Admissible values.
    pub domain: KnobDomain,
    /// Index of the default value in the domain.
    pub default_ix: usize,
    /// Whether the knob is provably modeled-cost-neutral (dispatch
    /// engine knobs: results and cost are schedule-independent by the
    /// determinism guarantee). Searches skip these; applications
    /// honor them.
    pub cost_neutral: bool,
}

impl KnobSpec {
    /// The default value.
    pub fn default_value(&self) -> KnobValue {
        self.domain.value(self.default_ix)
    }
}

/// Sentinel meaning "inherit" for the `workers` / `grain` knobs (no
/// forced value; environment and auto-sizing apply).
pub const INHERIT: i64 = 0;

const DISPATCH_KNOBS: [KnobSpec; 3] = [
    KnobSpec {
        name: "dispatch",
        domain: KnobDomain::Choice(&["pool", "spawn", "seq"]),
        default_ix: 0,
        cost_neutral: true,
    },
    KnobSpec {
        name: "workers",
        domain: KnobDomain::Ints(&[INHERIT, 1, 2, 4, 8]),
        default_ix: 0,
        cost_neutral: true,
    },
    KnobSpec {
        name: "grain",
        domain: KnobDomain::Ints(&[INHERIT, 1, 4, 16, 64, 256]),
        default_ix: 0,
        cost_neutral: true,
    },
];

const BLOCK_SIZES: &[i64] = &[64, 128, 256, 512, 1024];

macro_rules! knob {
    ($name:literal, $domain:expr, $default_ix:expr) => {
        KnobSpec { name: $name, domain: $domain, default_ix: $default_ix, cost_neutral: false }
    };
}

const CC_KNOBS: [KnobSpec; 7] = [
    DISPATCH_KNOBS[0],
    DISPATCH_KNOBS[1],
    DISPATCH_KNOBS[2],
    knob!("block_size", KnobDomain::Ints(BLOCK_SIZES), 2),
    knob!("optimized_init", KnobDomain::Bool, 0),
    knob!("low_bin", KnobDomain::Ints(&[8, 16, 32]), 1),
    knob!("medium_bin", KnobDomain::Ints(&[176, 352, 704]), 1),
];

const GC_KNOBS: [KnobSpec; 6] = [
    DISPATCH_KNOBS[0],
    DISPATCH_KNOBS[1],
    DISPATCH_KNOBS[2],
    knob!("block_size", KnobDomain::Ints(BLOCK_SIZES), 2),
    knob!("shortcut1", KnobDomain::Bool, 1),
    knob!("shortcut2", KnobDomain::Bool, 1),
];

const MIS_KNOBS: [KnobSpec; 5] = [
    DISPATCH_KNOBS[0],
    DISPATCH_KNOBS[1],
    DISPATCH_KNOBS[2],
    knob!("priority", KnobDomain::Choice(&["degree", "random", "id"]), 0),
    knob!("tie_salt", KnobDomain::Ints(&[0, 0x9E37, 0x85EB, 0xC2B2]), 0),
];

const MST_KNOBS: [KnobSpec; 6] = [
    DISPATCH_KNOBS[0],
    DISPATCH_KNOBS[1],
    DISPATCH_KNOBS[2],
    knob!("block_size", KnobDomain::Ints(BLOCK_SIZES), 2),
    knob!("fixed_launch", KnobDomain::Bool, 0),
    knob!("light_fraction", KnobDomain::Floats(&[0.25, 0.5, 0.75]), 1),
];

const SCC_KNOBS: [KnobSpec; 5] = [
    DISPATCH_KNOBS[0],
    DISPATCH_KNOBS[1],
    DISPATCH_KNOBS[2],
    knob!("block_size", KnobDomain::Ints(BLOCK_SIZES), 3),
    knob!("trim", KnobDomain::Bool, 0),
];

/// The five algorithms with a registered knob space.
pub const ALGOS: [&str; 5] = ["cc", "gc", "mis", "mst", "scc"];

/// The knob space of `algo` (by wire name). Unknown names get the
/// dispatch-only space, so generic tooling degrades gracefully.
pub fn knob_registry(algo: &str) -> &'static [KnobSpec] {
    match algo {
        "cc" => &CC_KNOBS,
        "gc" => &GC_KNOBS,
        "mis" => &MIS_KNOBS,
        "mst" => &MST_KNOBS,
        "scc" => &SCC_KNOBS,
        _ => &DISPATCH_KNOBS,
    }
}

/// The default schedule of `algo`: every registered knob at its
/// default value. Applying it reproduces the untuned configuration.
pub fn default_schedule(algo: &str) -> Schedule {
    let mut s = Schedule::new();
    for spec in knob_registry(algo) {
        s.set(spec.name, spec.default_value());
    }
    s
}

/// One complete assignment of scheduling knobs: a sorted
/// name → value map with canonical JSON round-tripping.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Schedule {
    /// Sorted by name; unique names.
    knobs: Vec<(String, KnobValue)>,
}

impl Schedule {
    /// An empty schedule (applies nothing).
    pub fn new() -> Schedule {
        Schedule::default()
    }

    /// Sets `name` to `value`, replacing an existing assignment.
    pub fn set(&mut self, name: &str, value: KnobValue) {
        match self.knobs.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
            Ok(i) => self.knobs[i].1 = value,
            Err(i) => self.knobs.insert(i, (name.to_string(), value)),
        }
    }

    /// Builder form of [`Schedule::set`].
    pub fn with(mut self, name: &str, value: KnobValue) -> Schedule {
        self.set(name, value);
        self
    }

    /// The raw value of `name`.
    pub fn get(&self, name: &str) -> Option<&KnobValue> {
        self.knobs.binary_search_by(|(n, _)| n.as_str().cmp(name)).ok().map(|i| &self.knobs[i].1)
    }

    /// All assignments, name-sorted.
    pub fn knobs(&self) -> &[(String, KnobValue)] {
        &self.knobs
    }

    /// Number of assigned knobs.
    pub fn len(&self) -> usize {
        self.knobs.len()
    }

    /// Whether no knobs are assigned.
    pub fn is_empty(&self) -> bool {
        self.knobs.is_empty()
    }

    /// Boolean knob accessor.
    pub fn bool_knob(&self, name: &str) -> Option<bool> {
        match self.get(name)? {
            KnobValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Integer knob accessor.
    pub fn int_knob(&self, name: &str) -> Option<i64> {
        match self.get(name)? {
            KnobValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Real knob accessor (accepts `Int` values: JSON cannot tell
    /// `1` from `1.0`).
    pub fn float_knob(&self, name: &str) -> Option<f64> {
        match self.get(name)? {
            KnobValue::Float(f) => Some(*f),
            KnobValue::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// String knob accessor.
    pub fn str_knob(&self, name: &str) -> Option<&str> {
        match self.get(name)? {
            KnobValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The dispatch-policy override this schedule encodes: `dispatch`
    /// selects the engine, `workers`/`grain` force counts
    /// ([`INHERIT`]/absent fields fall through to the environment).
    pub fn dispatch_policy(&self) -> DispatchPolicy {
        let mode = match self.str_knob("dispatch") {
            Some("spawn") => Some(DispatchMode::Spawn),
            Some("seq") => Some(DispatchMode::Sequential),
            Some("pool") => Some(DispatchMode::Pool),
            _ => None,
        };
        let positive = |v: Option<i64>| v.filter(|&x| x > 0).map(|x| x as usize);
        DispatchPolicy {
            workers: positive(self.int_knob("workers")),
            grain: positive(self.int_knob("grain")),
            mode,
        }
    }

    /// Checks every assignment against `algo`'s registry: unknown
    /// knobs and out-of-domain values are errors. The manifest
    /// validator calls this so a hand-edited schedule cannot smuggle
    /// in a value the search space does not admit.
    pub fn check_against_registry(&self, algo: &str) -> Result<(), String> {
        let registry = knob_registry(algo);
        for (name, value) in &self.knobs {
            let spec = registry
                .iter()
                .find(|s| s.name == name)
                .ok_or_else(|| format!("unknown knob {name:?} for algo {algo:?}"))?;
            if !spec.domain.admits(value) {
                return Err(format!(
                    "knob {name:?} value {} outside the {algo} domain",
                    value.to_json()
                ));
            }
        }
        Ok(())
    }

    /// Canonical single-line JSON object, keys sorted.
    pub fn to_json(&self) -> String {
        let fields: Vec<String> = self
            .knobs
            .iter()
            .map(|(n, v)| format!("\"{}\": {}", json::escape(n), v.to_json()))
            .collect();
        format!("{{{}}}", fields.join(", "))
    }

    /// Parses a schedule from a JSON object string.
    pub fn from_json(text: &str) -> Result<Schedule, String> {
        Self::from_value(&json::parse(text)?)
    }

    /// [`Schedule::from_json`] over an already-parsed [`Value`].
    /// String values are interned against the registries' static
    /// vocabulary; a string outside it is rejected (the registry is
    /// the full set of legal enumerated values).
    pub fn from_value(v: &Value) -> Result<Schedule, String> {
        let Value::Obj(members) = v else {
            return Err("schedule must be a JSON object".to_string());
        };
        let mut s = Schedule::new();
        for (name, value) in members {
            let kv = match value {
                Value::Bool(b) => KnobValue::Bool(*b),
                Value::Num(x) if x.fract() == 0.0 && x.abs() < 9e15 => KnobValue::Int(*x as i64),
                Value::Num(x) => KnobValue::Float(*x),
                Value::Str(text) => KnobValue::Str(
                    intern_knob_str(text)
                        .ok_or_else(|| format!("unknown schedule string value {text:?}"))?,
                ),
                other => {
                    return Err(format!("knob {name:?} has non-scalar value {other:?}"));
                }
            };
            s.set(name, kv);
        }
        Ok(s)
    }
}

/// Maps a parsed string back to its `&'static` registry spelling.
fn intern_knob_str(text: &str) -> Option<&'static str> {
    for algo in ALGOS {
        for spec in knob_registry(algo) {
            if let KnobDomain::Choice(options) = spec.domain {
                if let Some(&s) = options.iter().find(|&&o| o == text) {
                    return Some(s);
                }
            }
        }
    }
    None
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn registry_defaults_match_baselines() {
        // The default schedule must reproduce the untuned configs the
        // paper profiles: CC full-init at 256, SCC 512, MST stale
        // launch, GC both shortcuts, MIS degree priority salt 0.
        let cc = default_schedule("cc");
        assert_eq!(cc.int_knob("block_size"), Some(256));
        assert_eq!(cc.bool_knob("optimized_init"), Some(false));
        assert_eq!(cc.int_knob("low_bin"), Some(16));
        assert_eq!(cc.int_knob("medium_bin"), Some(352));
        assert_eq!(default_schedule("scc").int_knob("block_size"), Some(512));
        assert_eq!(default_schedule("mst").bool_knob("fixed_launch"), Some(false));
        assert_eq!(default_schedule("mst").float_knob("light_fraction"), Some(0.5));
        assert_eq!(default_schedule("gc").bool_knob("shortcut1"), Some(true));
        assert_eq!(default_schedule("mis").str_knob("priority"), Some("degree"));
        assert_eq!(default_schedule("mis").int_knob("tie_salt"), Some(0));
    }

    #[test]
    fn every_registry_default_is_in_domain() {
        for algo in ALGOS {
            for spec in knob_registry(algo) {
                assert!(spec.default_ix < spec.domain.len(), "{algo}/{}", spec.name);
                assert!(spec.domain.admits(&spec.default_value()), "{algo}/{}", spec.name);
            }
            assert!(default_schedule(algo).check_against_registry(algo).is_ok());
        }
    }

    #[test]
    fn json_roundtrip_is_canonical() {
        for algo in ALGOS {
            let s = default_schedule(algo);
            let j = s.to_json();
            let back = Schedule::from_json(&j).unwrap();
            assert_eq!(back, s, "{algo}");
            assert_eq!(back.to_json(), j, "canonical fixpoint for {algo}");
        }
        // Floats survive exactly.
        let s = Schedule::new().with("light_fraction", KnobValue::Float(0.25));
        let back = Schedule::from_json(&s.to_json()).unwrap();
        assert_eq!(back.float_knob("light_fraction"), Some(0.25));
    }

    #[test]
    fn set_replaces_and_sorts() {
        let mut s = Schedule::new();
        s.set("b", KnobValue::Int(1));
        s.set("a", KnobValue::Int(2));
        s.set("b", KnobValue::Int(3));
        assert_eq!(s.len(), 2);
        assert_eq!(s.knobs()[0].0, "a");
        assert_eq!(s.int_knob("b"), Some(3));
        assert_eq!(s.to_json(), "{\"a\": 2, \"b\": 3}");
    }

    #[test]
    fn dispatch_policy_extraction() {
        let s = Schedule::new()
            .with("dispatch", KnobValue::Str("seq"))
            .with("workers", KnobValue::Int(4))
            .with("grain", KnobValue::Int(INHERIT));
        let p = s.dispatch_policy();
        assert_eq!(p.mode, Some(DispatchMode::Sequential));
        assert_eq!(p.workers, Some(4));
        assert_eq!(p.grain, None, "INHERIT means no forced grain");
        // An empty schedule forces nothing.
        let empty = Schedule::new().dispatch_policy();
        assert!(empty.mode.is_none() && empty.workers.is_none() && empty.grain.is_none());
    }

    #[test]
    fn registry_rejects_out_of_domain() {
        let bad = Schedule::new().with("block_size", KnobValue::Int(333));
        assert!(bad.check_against_registry("scc").unwrap_err().contains("block_size"));
        let unknown = Schedule::new().with("warp_width", KnobValue::Int(32));
        assert!(unknown.check_against_registry("cc").unwrap_err().contains("warp_width"));
        let ok = Schedule::new().with("block_size", KnobValue::Int(128));
        assert!(ok.check_against_registry("scc").is_ok());
    }

    #[test]
    fn unknown_string_value_is_rejected() {
        assert!(Schedule::from_json("{\"dispatch\": \"gpu\"}").is_err());
        assert!(Schedule::from_json("{\"dispatch\": \"spawn\"}").is_ok());
    }

    #[test]
    fn cost_neutral_marks_exactly_the_dispatch_knobs() {
        for algo in ALGOS {
            for spec in knob_registry(algo) {
                let is_dispatch = matches!(spec.name, "dispatch" | "workers" | "grain");
                assert_eq!(spec.cost_neutral, is_dispatch, "{algo}/{}", spec.name);
            }
        }
    }
}
