//! Wall-clock measurement helpers.

use std::time::Instant;

/// Runs `f` and returns its result together with the elapsed wall time
/// in seconds. Used by the harness to report wall time next to the
/// modeled cost (the paper reports the median of nine runs; see
/// [`ecl_profiling::stats::median_index`]).
pub fn run_timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Runs `f` `reps` times and returns the per-run results and runtimes.
///
/// # Panics
/// Panics if `reps` is zero.
pub fn run_repeated<T>(reps: usize, mut f: impl FnMut(usize) -> T) -> (Vec<T>, Vec<f64>) {
    assert!(reps > 0, "need at least one repetition");
    let mut outs = Vec::with_capacity(reps);
    let mut times = Vec::with_capacity(reps);
    for i in 0..reps {
        let (out, t) = run_timed(|| f(i));
        outs.push(out);
        times.push(t);
    }
    (outs, times)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn timed_returns_result_and_positive_time() {
        let (v, t) = run_timed(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(t >= 0.0);
    }

    #[test]
    fn repeated_runs_each_index() {
        let (outs, times) = run_repeated(3, |i| i * 10);
        assert_eq!(outs, vec![0, 10, 20]);
        assert_eq!(times.len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one repetition")]
    fn zero_reps_panics() {
        run_repeated(0, |_| ());
    }
}
