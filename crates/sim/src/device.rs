//! Simulated device: configuration and cost accounting.

use serde::Serialize;

use crate::cost::{CostKind, CostParams, CostTally};

/// Static configuration of a simulated GPU.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct DeviceConfig {
    /// Streaming multiprocessors.
    pub num_sms: usize,
    /// Maximum resident threads per SM.
    pub threads_per_sm: usize,
    /// Threads per warp (kept for completeness; the profiled kernels do
    /// not use intra-warp communication).
    pub warp_size: usize,
    /// Default threads per block for kernels that do not override it.
    pub default_block_size: usize,
}

impl DeviceConfig {
    /// The paper's test GPU (§5.1): RTX 4090, Ada Lovelace, 128 SMs.
    /// 128 SMs × 1536 resident threads = 196,608 persistent threads,
    /// matching Table 2's "196,608 on the RTX 4090".
    pub fn rtx4090() -> Self {
        Self { num_sms: 128, threads_per_sm: 1536, warp_size: 32, default_block_size: 512 }
    }

    /// A small device for unit tests: keeps persistent-thread kernels
    /// fast while preserving the launch semantics.
    pub fn test_small() -> Self {
        Self { num_sms: 4, threads_per_sm: 64, warp_size: 32, default_block_size: 32 }
    }

    /// NVIDIA A100 (Ampere): 108 SMs × 2048 resident threads. Its SM
    /// accepts two 1024-thread blocks, so — unlike the RTX 4090 — a
    /// 1024-thread configuration reaches full occupancy: the Table 6
    /// block-size prediction changes across device generations.
    pub fn a100() -> Self {
        Self { num_sms: 108, threads_per_sm: 2048, warp_size: 32, default_block_size: 512 }
    }

    /// NVIDIA RTX 3090 (Ampere consumer): 82 SMs × 1536 resident
    /// threads — the same 1536-thread SM shape as the 4090, so the
    /// same occupancy cliff at 1024 threads per block.
    pub fn rtx3090() -> Self {
        Self { num_sms: 82, threads_per_sm: 1536, warp_size: 32, default_block_size: 512 }
    }

    /// Number of simultaneously resident ("persistent") threads.
    pub fn resident_threads(&self) -> usize {
        self.num_sms * self.threads_per_sm
    }

    /// SM occupancy achievable with the given block size: blocks are
    /// scheduled whole, so an SM fits `floor(threads_per_sm /
    /// block_size)` blocks and the rest of its thread slots idle. On
    /// the RTX 4090 (1536 threads/SM) block sizes 64–512 reach 100%
    /// but 1024 only 67% — one hardware ingredient of the paper's
    /// Table 6 result that a work-based cost model cannot derive and
    /// must charge explicitly.
    pub fn occupancy(&self, block_size: usize) -> f64 {
        assert!(block_size > 0, "block_size must be positive");
        if block_size > self.threads_per_sm {
            // A block larger than an SM cannot launch on real
            // hardware; model it as one block per SM.
            return self.threads_per_sm as f64 / block_size as f64;
        }
        let blocks_per_sm = self.threads_per_sm / block_size;
        (blocks_per_sm * block_size) as f64 / self.threads_per_sm as f64
    }
}

/// A simulated device instance: configuration plus a mutable cost
/// tally. One `Device` per measured algorithm run; the tally is read
/// after the run to produce modeled time.
#[derive(Debug)]
pub struct Device {
    config: DeviceConfig,
    params: CostParams,
    cost: CostTally,
}

impl Device {
    /// A device with the given configuration and default cost weights.
    ///
    /// Creating a device warms the process-wide execution pool
    /// ([`crate::pool::prewarm`]) so the first kernel launch does not
    /// pay worker spawn-up on its critical path; the workers park
    /// between launches and are shared by all devices.
    pub fn new(config: DeviceConfig) -> Self {
        crate::pool::prewarm();
        Self { config, params: CostParams::default(), cost: CostTally::new() }
    }

    /// The paper's RTX 4090 preset.
    pub fn rtx4090() -> Self {
        Self::new(DeviceConfig::rtx4090())
    }

    /// Small test device.
    pub fn test_small() -> Self {
        Self::new(DeviceConfig::test_small())
    }

    /// Overrides the cost weights.
    pub fn with_params(mut self, params: CostParams) -> Self {
        self.params = params;
        self
    }

    /// The device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// Number of persistent threads.
    pub fn resident_threads(&self) -> usize {
        self.config.resident_threads()
    }

    /// Charges `units` of `kind` to this device's tally. Also reports
    /// the charge to an installed checker (one relaxed load when none
    /// is) so launch lints can attribute work to the executing agent.
    #[inline]
    pub fn charge(&self, kind: CostKind, units: u64) {
        crate::check::on_charge(kind, units);
        self.cost.charge(kind, units);
    }

    /// The raw cost tally.
    pub fn cost(&self) -> &CostTally {
        &self.cost
    }

    /// The active cost weights.
    pub fn params(&self) -> &CostParams {
        &self.params
    }

    /// Weighted abstract runtime accumulated so far.
    pub fn modeled_time(&self) -> f64 {
        self.cost.modeled_time(&self.params)
    }

    /// Resets the tally for a fresh measurement.
    pub fn reset_cost(&mut self) {
        self.cost.reset();
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn rtx4090_preset_matches_paper() {
        let c = DeviceConfig::rtx4090();
        assert_eq!(c.num_sms, 128);
        assert_eq!(c.resident_threads(), 196_608);
        assert_eq!(c.default_block_size, 512);
    }

    #[test]
    fn charge_flows_to_modeled_time() {
        let d = Device::test_small();
        d.charge(CostKind::ThreadWork, 10);
        assert!(d.modeled_time() > 0.0);
        assert_eq!(d.cost().units(CostKind::ThreadWork), 10);
    }

    #[test]
    fn reset_cost() {
        let mut d = Device::test_small();
        d.charge(CostKind::Atomic, 3);
        d.reset_cost();
        assert_eq!(d.modeled_time(), 0.0);
    }

    #[test]
    fn custom_params_change_time() {
        let d1 = Device::test_small();
        let d2 = Device::test_small()
            .with_params(CostParams { thread_work: 10.0, ..CostParams::default() });
        d1.charge(CostKind::ThreadWork, 5);
        d2.charge(CostKind::ThreadWork, 5);
        assert!(d2.modeled_time() > d1.modeled_time());
    }

    #[test]
    fn test_small_is_small() {
        assert!(DeviceConfig::test_small().resident_threads() <= 1024);
    }

    #[test]
    fn a100_has_no_1024_occupancy_cliff() {
        // The cross-device prediction: 2048-thread SMs schedule two
        // 1024-thread blocks, so the 4090's biggest Table 6 penalty
        // vanishes on an A100.
        let a100 = DeviceConfig::a100();
        assert!((a100.occupancy(1024) - 1.0).abs() < 1e-12);
        assert!((a100.occupancy(512) - 1.0).abs() < 1e-12);
        let rtx3090 = DeviceConfig::rtx3090();
        assert!((rtx3090.occupancy(1024) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn occupancy_matches_rtx4090_shape() {
        let c = DeviceConfig::rtx4090();
        for bs in [64, 128, 256, 512] {
            assert!((c.occupancy(bs) - 1.0).abs() < 1e-12, "bs {bs}");
        }
        assert!((c.occupancy(1024) - 2.0 / 3.0).abs() < 1e-12);
        // Oversized blocks degrade proportionally.
        assert!((c.occupancy(3072) - 0.5).abs() < 1e-12);
    }
}
