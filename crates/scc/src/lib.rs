//! ECL-SCC: strongly connected components on the GPU execution model.
//!
//! Port of the algorithm of Alabandi, Sands, Biros & Burtscher \[4\] as
//! reviewed in §2.5. Each outer iteration `m` runs three stages:
//!
//! 1. **Signature initialization** — every vertex gets two signature
//!    values `v_in = v_out = id`, letting all vertices act as pivots
//!    concurrently.
//! 2. **Maximum-value propagation** — edge-centric `atomicMax` sweeps
//!    push `v_in` forward and pull `v_out` backward along every edge
//!    until a fixed point: `v_out[u] ← max(v_out[u], v_out[v])` and
//!    `v_in[v] ← max(v_in[v], v_in[u])` for each edge `u → v`.
//!    Propagation is **block-local**: a thread block keeps re-scanning
//!    its edge slice while any of its threads performed an update
//!    (inner iterations `n`), and the whole grid relaunches while any
//!    block updated — the §6.1.2 structure Figure 1 visualizes and the
//!    block-size trade-off of §6.2.1 (Table 6) stems from.
//! 3. **Edge removal** — edges whose endpoints' `(v_in, v_out)`
//!    signatures differ cannot be intra-SCC and are pruned.
//!
//! The loop repeats on the pruned graph until every vertex satisfies
//! `v_in = v_out`, at which point that common value (the largest
//! vertex id of the SCC) identifies each vertex's component.

pub mod counters;
pub mod kernel;

use ecl_gpusim::Device;
use ecl_graph::Csr;
use ecl_profiling::ProfileMode;

pub use counters::SccCounters;

/// Configuration of one ECL-SCC run.
#[derive(Clone, Copy, Debug)]
pub struct SccConfig {
    /// Threads per block. The ECL-SCC original uses 512; §6.2.1 tunes
    /// this (Table 6 sweeps 64–1024).
    pub block_size: usize,
    /// Iteratively remove vertices with zero in- or out-degree before
    /// propagating (they are singleton SCCs by definition). A standard
    /// SCC-algorithm extension, off by default to match the profiled
    /// original; the ablation benchmark quantifies its effect.
    pub trim: bool,
    /// Whether counters record.
    pub mode: ProfileMode,
}

impl Default for SccConfig {
    fn default() -> Self {
        Self { block_size: 512, trim: false, mode: ProfileMode::On }
    }
}

impl SccConfig {
    /// The original configuration (512 threads per block).
    pub fn original() -> Self {
        Self::default()
    }

    /// A specific block size (the Table 6 sweep).
    pub fn with_block_size(block_size: usize) -> Self {
        Self { block_size, ..Self::default() }
    }

    /// The trimming extension enabled.
    pub fn trimmed() -> Self {
        Self { trim: true, ..Self::default() }
    }

    /// Overrides fields named in a tuning [`Schedule`] (`block_size`,
    /// `trim`); absent knobs leave the current value untouched.
    pub fn apply_schedule(&mut self, s: &ecl_gpusim::Schedule) {
        if let Some(bs) = s.int_knob("block_size") {
            self.block_size = bs.max(1) as usize;
        }
        if let Some(trim) = s.bool_knob("trim") {
            self.trim = trim;
        }
    }
}

/// Result of an ECL-SCC run.
#[derive(Debug)]
pub struct SccResult {
    /// SCC label per vertex: the *maximum* vertex id of its SCC (the
    /// converged signature value).
    pub labels: Vec<u32>,
    /// Collected counters (per-block update series etc.).
    pub counters: SccCounters,
    /// Outer iterations `m` until convergence.
    pub outer_iterations: u32,
    /// Modeled *parallel* (critical-path) time: per grid pass, the
    /// maximum block cost — blocks run concurrently, so a pass's
    /// latency is its slowest block plus the launch overhead. This is
    /// the quantity the §6.2.1 block-size trade-off acts on: large
    /// blocks create slow straggler blocks (idle threads held through
    /// block-wide syncs), small blocks multiply serialized grid
    /// passes. Unit: the device's cost-weight scale.
    pub modeled_parallel_time: f64,
}

impl SccResult {
    /// Number of SCCs.
    pub fn num_sccs(&self) -> usize {
        self.labels.iter().enumerate().filter(|&(v, &l)| v as u32 == l).count()
    }

    /// Labels normalized to the *minimum* vertex id per SCC, the form
    /// the Tarjan reference produces.
    pub fn min_labels(&self) -> Vec<u32> {
        let n = self.labels.len();
        let mut min_of = vec![u32::MAX; n];
        for (v, &l) in self.labels.iter().enumerate() {
            let slot = &mut min_of[l as usize];
            *slot = (*slot).min(v as u32);
        }
        self.labels.iter().map(|&l| min_of[l as usize]).collect()
    }
}

/// Runs ECL-SCC on a directed graph.
///
/// # Panics
/// Panics if `g` is undirected (SCCs are a directed-graph concept;
/// the paper's SCC inputs are the directed meshes).
pub fn run(device: &Device, g: &Csr, config: &SccConfig) -> SccResult {
    assert!(g.is_directed(), "ECL-SCC consumes directed graphs");
    kernel::strongly_connected_components(device, g, config)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use ecl_graph::GraphBuilder;

    fn device() -> Device {
        Device::test_small()
    }

    fn directed(n: usize, edges: &[(u32, u32)]) -> Csr {
        let mut b = GraphBuilder::new_directed(n);
        for &(u, v) in edges {
            b.add_edge(u, v);
        }
        b.build()
    }

    #[test]
    fn single_cycle() {
        let g = directed(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let r = run(&device(), &g, &SccConfig::original());
        assert_eq!(r.num_sccs(), 1);
        assert!(r.labels.iter().all(|&l| l == 3), "labels {:?}", r.labels);
        assert_eq!(r.min_labels(), vec![0, 0, 0, 0]);
    }

    #[test]
    fn dag_all_singletons() {
        let g = directed(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let r = run(&device(), &g, &SccConfig::original());
        assert_eq!(r.num_sccs(), 5);
        assert_eq!(r.labels, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn matches_tarjan_on_meshes() {
        for (name, g) in [
            ("wedge", ecl_graphgen::mesh::toroid_wedge(12, 12, 1)),
            ("hex", ecl_graphgen::mesh::toroid_hex(10, 10, 2)),
            ("klein", ecl_graphgen::mesh::klein_bottle(10, 10, 3)),
            ("star", ecl_graphgen::mesh::star(4, 6, 4)),
            ("coldflow", ecl_graphgen::mesh::cold_flow(5, 5, 5, 5)),
        ] {
            let r = run(&device(), &g, &SccConfig::original());
            assert_eq!(
                r.min_labels(),
                ecl_ref::strongly_connected_components(&g),
                "{name} mismatch"
            );
        }
    }

    #[test]
    fn matches_tarjan_on_random_digraphs() {
        for seed in 0..4 {
            // Random orientation of an ER graph has rich SCC structure.
            let und = ecl_graphgen::random::erdos_renyi(200, 3.0, seed);
            let mut b = GraphBuilder::new_directed(200);
            for (u, v) in und.arcs() {
                if u < v {
                    if (u + v + seed as u32).is_multiple_of(2) {
                        b.add_edge(u, v);
                    } else {
                        b.add_edge(v, u);
                    }
                }
            }
            let g = b.build();
            let r = run(&device(), &g, &SccConfig::original());
            assert_eq!(r.min_labels(), ecl_ref::strongly_connected_components(&g), "seed {seed}");
        }
    }

    #[test]
    fn star_mesh_peels_one_layer_per_outer_iteration() {
        // The layered masking construction: each outer iteration
        // resolves (at least) the outermost unresolved ring.
        let layers = 5;
        let g = ecl_graphgen::mesh::star(layers, 8, 7);
        let r = run(&device(), &g, &SccConfig::original());
        assert_eq!(r.num_sccs(), layers);
        assert!(
            r.outer_iterations >= layers as u32,
            "expected >= {layers} outer iterations, got {}",
            r.outer_iterations
        );
    }

    #[test]
    fn deterministic_labels() {
        let g = ecl_graphgen::mesh::toroid_wedge(10, 10, 9);
        let first = run(&device(), &g, &SccConfig::original());
        for _ in 0..3 {
            let again = run(&device(), &g, &SccConfig::original());
            assert_eq!(first.labels, again.labels);
        }
    }

    #[test]
    fn block_size_does_not_change_result() {
        let g = ecl_graphgen::mesh::klein_bottle(12, 12, 11);
        let base = run(&device(), &g, &SccConfig::original());
        for bs in [64, 128, 256, 1024] {
            let r = run(&device(), &g, &SccConfig::with_block_size(bs));
            assert_eq!(base.labels, r.labels, "block size {bs}");
        }
    }

    #[test]
    fn series_records_per_block_updates() {
        let g = ecl_graphgen::mesh::star(4, 8, 13);
        let r = run(&device(), &g, &SccConfig::original());
        let series = &r.counters.series;
        assert!(series.outer_iterations() >= 1);
        let n1 = series.inner_iterations(1);
        assert!(n1 >= 1, "no inner iterations recorded");
        // First inner iteration of m=1 must show updates somewhere.
        assert!(series.total_updates(1, 1) > 0);
        // Updates diminish: the last recorded inner iteration has
        // fewer updates than the first (Figure 1's shape).
        if n1 > 1 {
            assert!(series.total_updates(1, n1) <= series.total_updates(1, 1));
        }
    }

    #[test]
    fn active_blocks_shrink_over_inner_iterations() {
        // Figure 1: "an increase in the number of inactive blocks".
        let g = ecl_graphgen::mesh::star(6, 32, 17);
        let r = run(&device(), &g, &SccConfig::with_block_size(64));
        let s = &r.counters.series;
        let n_last = s.inner_iterations(1);
        if n_last > 1 {
            assert!(s.active_blocks(1, n_last) <= s.active_blocks(1, 1));
        }
    }

    #[test]
    fn edges_removed_counted() {
        let g = ecl_graphgen::mesh::star(3, 6, 19);
        let r = run(&device(), &g, &SccConfig::original());
        // Radial inter-ring arcs must be pruned at some point.
        assert!(r.counters.edges_removed.get() > 0);
    }

    #[test]
    fn trimming_preserves_labels() {
        // Cycle {0,1,2} with a pendant DAG tail 3 -> 4 -> 0: the tail
        // is fully trimmable.
        let g = directed(5, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 0)]);
        let base = run(&device(), &g, &SccConfig::original());
        let trimmed = run(&device(), &g, &SccConfig::trimmed());
        assert_eq!(base.labels, trimmed.labels);
        assert_eq!(trimmed.num_sccs(), 3);
    }

    #[test]
    fn trimming_agrees_on_meshes_and_random_digraphs() {
        for (name, g) in [
            ("wedge", ecl_graphgen::mesh::toroid_wedge(10, 10, 31)),
            ("klein", ecl_graphgen::mesh::klein_bottle(10, 10, 32)),
        ] {
            let base = run(&device(), &g, &SccConfig::original());
            let trimmed = run(&device(), &g, &SccConfig::trimmed());
            assert_eq!(base.labels, trimmed.labels, "{name}");
        }
    }

    #[test]
    fn trimming_removes_dag_work_entirely() {
        // A pure DAG trims to nothing: zero propagation updates.
        let g = directed(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let r = run(&device(), &g, &SccConfig::trimmed());
        assert_eq!(r.num_sccs(), 6);
        assert_eq!(r.counters.max_tally.updated(), 0);
        assert_eq!(r.outer_iterations, 1);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::empty(4, true);
        let r = run(&device(), &g, &SccConfig::original());
        assert_eq!(r.num_sccs(), 4);
        assert_eq!(r.outer_iterations, 1);
    }

    #[test]
    fn self_loops_are_fine_for_scc() {
        let g = directed(3, &[(0, 0), (0, 1), (1, 2), (2, 1)]);
        let r = run(&device(), &g, &SccConfig::original());
        assert_eq!(r.min_labels(), ecl_ref::strongly_connected_components(&g));
    }

    #[test]
    fn profile_off_still_correct() {
        let g = ecl_graphgen::mesh::toroid_hex(8, 8, 23);
        let cfg = SccConfig { mode: ProfileMode::Off, ..SccConfig::original() };
        let r = run(&device(), &g, &cfg);
        assert_eq!(r.min_labels(), ecl_ref::strongly_connected_components(&g));
        assert_eq!(r.counters.max_tally.attempted(), 0);
        assert!(r.counters.series.steps().is_empty());
    }

    #[test]
    #[should_panic(expected = "directed")]
    fn rejects_undirected() {
        let mut b = GraphBuilder::new_undirected(2);
        b.add_edge(0, 1);
        run(&device(), &b.build(), &SccConfig::original());
    }
}
