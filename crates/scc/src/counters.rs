//! ECL-SCC's application-specific counters (§6.1.2, Figure 1).

use ecl_profiling::{
    AtomicTally, BlockSeries, ConvergenceTrace, GlobalCounter, LogSketch, ProfileMode,
};

/// Counters embedded in the propagation and pruning kernels.
#[derive(Debug)]
pub struct SccCounters {
    mode: ProfileMode,
    /// Per-(m, n, block) signature-update counts — the data behind
    /// Figure 1 ("we track the number of updates performed by each
    /// thread block during every signature-propagation iteration").
    pub series: BlockSeries,
    /// Outcomes of the signature `atomicMax` operations.
    pub max_tally: AtomicTally,
    /// Edges pruned across all outer iterations.
    pub edges_removed: GlobalCounter,
    /// Grid-level propagation relaunches (outer flag trips).
    pub grid_relaunches: GlobalCounter,
    /// Edges surviving after each outer iteration's pruning.
    pub edges_per_outer: ConvergenceTrace,
    /// Streaming distribution of per-block signature updates per
    /// sweep — Figure 1's raw data as percentiles: the `series` grid
    /// keeps every point, this sketch answers "how skewed" in O(1)
    /// space and is what the run manifest exports.
    pub updates_per_sweep: LogSketch,
}

impl SccCounters {
    /// Fresh counters for a grid of `num_blocks` blocks.
    pub fn new(num_blocks: usize, mode: ProfileMode) -> Self {
        Self {
            mode,
            series: BlockSeries::new(num_blocks),
            max_tally: AtomicTally::new(),
            edges_removed: GlobalCounter::new(),
            grid_relaunches: GlobalCounter::new(),
            edges_per_outer: ConvergenceTrace::new(),
            updates_per_sweep: LogSketch::new(),
        }
    }

    /// Whether counters record.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.mode.enabled()
    }

    /// The atomicMax tally when profiling is on.
    #[inline]
    pub fn tally(&self) -> Option<&AtomicTally> {
        if self.enabled() {
            Some(&self.max_tally)
        } else {
            None
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn mode_gates_tally() {
        let on = SccCounters::new(4, ProfileMode::On);
        assert!(on.tally().is_some());
        let off = SccCounters::new(4, ProfileMode::Off);
        assert!(off.tally().is_none());
    }

    #[test]
    fn series_sized_to_grid() {
        let c = SccCounters::new(16, ProfileMode::On);
        assert_eq!(c.series.num_blocks(), 16);
    }
}
