//! The ECL-SCC kernels: signature init, block-local max propagation,
//! and edge pruning.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};

use ecl_check::register_region;
use ecl_gpusim::atomics::atomic_u32_array;
use ecl_gpusim::{
    launch_blocks_named, launch_flat_named, CostKind, CountedU32, Device, LaunchConfig,
};
use ecl_graph::Csr;

use crate::counters::SccCounters;
use crate::{SccConfig, SccResult};

/// Runs the full ECL-SCC pipeline.
pub fn strongly_connected_components(device: &Device, g: &Csr, config: &SccConfig) -> SccResult {
    let n = g.num_vertices();
    // Grid size follows the original: enough blocks to fill the
    // device's persistent threads, fixed for the whole run (Figure 1
    // plots the same 384 blocks in every iteration).
    let total_threads = device.resident_threads();
    let num_blocks = (total_threads / config.block_size).max(1);
    let counters = SccCounters::new(num_blocks, config.mode);
    let params = *device.params();
    // Critical-path accumulator: per launch, slowest block + launch
    // overhead.
    let mut parallel_time = 0.0f64;

    let v_in = atomic_u32_array(n, |i| i as u32);
    let v_out = atomic_u32_array(n, |i| i as u32);
    // Signatures are *not* benign-allowlisted: init stores are
    // per-vertex exclusive and propagation only ever combines plain
    // loads with counted fetch_max atomics, so the checker must see
    // these regions fully race-free.
    let _v_in_region = register_region("scc.v-in", &v_in);
    let _v_out_region = register_region("scc.v-out", &v_out);

    // The current (pruned) edge list. Pruning is host-side compaction;
    // the removal test itself runs as a kernel.
    let mut edges: Vec<(u32, u32)> = g.arcs().collect();

    // Optional trimming extension: vertices with zero in- or
    // out-degree are singleton SCCs; peeling them (and repeating, as
    // removals expose new zero-degree vertices) shrinks the edge list
    // before any propagation work. Trimmed vertices keep
    // v_in = v_out = id, which is already their correct label.
    if config.trim {
        let trimmed = trim_edges(device, n, &mut edges, config.block_size);
        if counters.enabled() {
            counters.edges_removed.add(trimmed);
        }
    }

    let mut m = 0u32;
    loop {
        m += 1;
        ecl_trace::sink::round(m);
        // Stage 1: signature initialization.
        ecl_trace::sink::phase_start("signature-init");
        let cfg_v = LaunchConfig::cover(n, config.block_size);
        launch_flat_named(device, "scc.signature-init", cfg_v, |t| {
            if t.global >= n {
                device.charge(CostKind::IdleCheck, 1);
                return;
            }
            device.charge(CostKind::ThreadWork, 1);
            v_in[t.global].store(t.global as u32);
            v_out[t.global].store(t.global as u32);
        });
        parallel_time +=
            params.kernel_launch + n.div_ceil(num_blocks.max(1)) as f64 * params.thread_work;
        ecl_trace::sink::phase_end("signature-init");

        // Stage 2: max propagation to a fixed point.
        ecl_trace::sink::phase_start("propagate");
        parallel_time += propagate(device, config, &counters, &edges, &v_in, &v_out, num_blocks, m);
        ecl_trace::sink::phase_end("propagate");

        // Stage 3: edge removal.
        ecl_trace::sink::phase_start("prune");
        let before = edges.len();
        prune(device, config, &edges, &v_in, &v_out);
        parallel_time += params.kernel_launch
            + edges.len().div_ceil(num_blocks.max(1)) as f64 * params.thread_work;
        edges.retain(|&(u, v)| {
            v_in[u as usize].load() == v_in[v as usize].load()
                && v_out[u as usize].load() == v_out[v as usize].load()
        });
        if counters.enabled() {
            counters.edges_removed.add((before - edges.len()) as u64);
            counters.edges_per_outer.push(edges.len() as u64);
        }
        ecl_trace::sink::phase_end("prune");

        // Converged when every vertex has matching signatures.
        let done = (0..n).all(|v| v_in[v].load() == v_out[v].load());
        if done {
            break;
        }
        assert!(
            before > edges.len(),
            "no progress in outer iteration {m}: pruning removed nothing yet \
             signatures disagree — algorithm invariant violated"
        );
    }

    let labels = v_in.iter().map(|s| s.load()).collect();
    SccResult { labels, counters, outer_iterations: m, modeled_parallel_time: parallel_time }
}

/// Block-local propagation: each block re-scans its contiguous edge
/// slice while any of its threads performed an update (inner
/// iterations `n`, recorded per block); the grid relaunches while any
/// block updated. Cost: every local iteration charges the full block
/// width for the block-wide synchronization — the §6.2.1 overhead that
/// makes oversized blocks slow — and every grid relaunch rescans every
/// slice, which is what punishes undersized blocks.
#[allow(clippy::too_many_arguments)]
fn propagate(
    device: &Device,
    config: &SccConfig,
    counters: &SccCounters,
    edges: &[(u32, u32)],
    v_in: &[CountedU32],
    v_out: &[CountedU32],
    num_blocks: usize,
    m: u32,
) -> f64 {
    let len = edges.len();
    let cfg = LaunchConfig::new(num_blocks, config.block_size);
    // Cumulative inner-iteration index per block, persisted across
    // grid relaunches so Figure 1's n keeps counting.
    let base_n: Vec<AtomicU32> = (0..num_blocks).map(|_| AtomicU32::new(0)).collect();
    let profiling = counters.enabled();
    let params = *device.params();
    // Per-pass block costs (f64 bits) for the critical-path model.
    let block_cost: Vec<AtomicU64> = (0..num_blocks).map(|_| AtomicU64::new(0)).collect();
    let mut parallel_time = 0.0f64;

    loop {
        let grid_updated = AtomicBool::new(false);
        for c in &block_cost {
            c.store(0, Ordering::Relaxed);
        }
        launch_blocks_named(device, "scc.propagate", cfg, |blk| {
            let (lo, hi) = partition_bounds(len, num_blocks, blk.block);
            let slice = &edges[lo..hi];
            let mut block_updated = false;
            let mut my_cost = 0.0f64;
            loop {
                // One local iteration: the block's threads sweep the
                // slice (in-order here; the update counts are what
                // matters, not intra-block interleaving).
                let mut updates = 0u64;
                for &(u, v) in slice {
                    // v_out flows backward along the edge...
                    let ov = v_out[v as usize].load();
                    let old_u = v_out[u as usize].fetch_max(ov, None);
                    if ov > old_u {
                        updates += 1;
                    }
                    // ...and v_in flows forward.
                    let iu = v_in[u as usize].load();
                    let old_v = v_in[v as usize].fetch_max(iu, None);
                    if iu > old_v {
                        updates += 1;
                    }
                }
                // Bulk accounting once per sweep: per-edge updates to
                // the shared tallies would serialize the blocks on
                // counter cache lines.
                device.charge(CostKind::ThreadWork, slice.len() as u64);
                device.charge(CostKind::Atomic, 2 * slice.len() as u64);
                if let Some(t) = counters.tally() {
                    t.record_many(ecl_profiling::AtomicOutcome::Updated, updates);
                    t.record_many(
                        ecl_profiling::AtomicOutcome::NoEffect,
                        2 * slice.len() as u64 - updates,
                    );
                }
                // Block-wide or-reduction: every thread of the block
                // participates in the sync even when idle.
                blk.sync();
                // One local iteration's *latency*: the block's threads
                // sweep their slice shares in parallel, so the sweep
                // term is per-thread (slice / width); the block-wide
                // barrier costs grow logarithmically with the block
                // width (tree reduction). A single straggler thread
                // thus re-pays the whole-block barrier every local
                // iteration — §6.2.1's "many idle threads ...
                // participate in block-wide synchronizations".
                let per_thread_edges = slice.len() as f64 / blk.block_size as f64;
                let sync_latency = params.block_sync * (blk.block_size as f64).log2().max(1.0);
                my_cost +=
                    per_thread_edges * (params.thread_work + 2.0 * params.atomic) + sync_latency;
                let n = base_n[blk.block].fetch_add(1, Ordering::Relaxed) + 1;
                if profiling {
                    counters.series.record(m, n, blk.block, updates);
                    counters.updates_per_sweep.record(updates);
                }
                if updates == 0 {
                    break;
                }
                block_updated = true;
            }
            block_cost[blk.block].store(my_cost.to_bits(), Ordering::Relaxed);
            if block_updated {
                grid_updated.store(true, Ordering::Relaxed);
            }
        });
        let slowest = block_cost
            .iter()
            .map(|c| f64::from_bits(c.load(Ordering::Relaxed)))
            .fold(0.0f64, f64::max);
        parallel_time += params.kernel_launch + slowest;
        if !grid_updated.load(Ordering::Relaxed) {
            break;
        }
        if profiling {
            counters.grid_relaunches.inc();
        }
    }
    parallel_time
}

/// Bounds of part `i` when `0..len` is split into `parts` contiguous
/// ranges of `div_ceil(len, parts)` items (the trailing parts may be
/// empty). The naive `len * (i + 1) / parts` arithmetic overflows for
/// edge counts anywhere near `usize::MAX / parts`; saturating on the
/// (already clamped-to-`len`) products keeps every intermediate in
/// range while the bounds still tile `0..len` exactly: consecutive
/// parts share an endpoint, part 0 starts at 0, and the last part
/// ends at `len` because `chunk * parts >= len` by construction.
fn partition_bounds(len: usize, parts: usize, i: usize) -> (usize, usize) {
    debug_assert!(i < parts, "part index {i} out of {parts}");
    let chunk = len.div_ceil(parts.max(1));
    (chunk.saturating_mul(i).min(len), chunk.saturating_mul(i + 1).min(len))
}

/// Iterative trimming: repeatedly drop edges incident to vertices
/// with zero in- or out-degree in the current edge list, until no
/// such vertex remains. Returns the number of edges removed. Each
/// pass is charged like a degree-counting + filtering kernel.
fn trim_edges(device: &Device, n: usize, edges: &mut Vec<(u32, u32)>, block_size: usize) -> u64 {
    let mut removed = 0u64;
    let mut in_deg = vec![0u32; n];
    let mut out_deg = vec![0u32; n];
    loop {
        in_deg.iter_mut().for_each(|d| *d = 0);
        out_deg.iter_mut().for_each(|d| *d = 0);
        for &(u, v) in edges.iter() {
            out_deg[u as usize] += 1;
            in_deg[v as usize] += 1;
        }
        // Degree-count + filter kernels.
        device.charge(CostKind::KernelLaunch, 2);
        device.charge(CostKind::ThreadWork, 2 * edges.len() as u64);
        let before = edges.len();
        edges.retain(|&(u, v)| {
            in_deg[u as usize] > 0
                && out_deg[u as usize] > 0
                && in_deg[v as usize] > 0
                && out_deg[v as usize] > 0
        });
        if edges.len() == before {
            return removed;
        }
        removed += (before - edges.len()) as u64;
        let _ = block_size;
    }
}

/// The removal-test kernel: charges the per-edge signature comparison
/// (the actual compaction happens host-side right after).
fn prune(
    device: &Device,
    config: &SccConfig,
    edges: &[(u32, u32)],
    _v_in: &[CountedU32],
    _v_out: &[CountedU32],
) {
    let len = edges.len();
    let cfg = LaunchConfig::cover(len, config.block_size);
    launch_flat_named(device, "scc.prune", cfg, |t| {
        if t.global >= len {
            device.charge(CostKind::IdleCheck, 1);
        } else {
            device.charge(CostKind::ThreadWork, 1);
        }
    });
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use ecl_graph::GraphBuilder;

    #[test]
    fn two_cycle_converges_first_iteration() {
        let device = Device::test_small();
        let mut b = GraphBuilder::new_directed(2);
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        let g = b.build();
        let r = strongly_connected_components(&device, &g, &SccConfig::original());
        assert_eq!(r.labels, vec![1, 1]);
        assert_eq!(r.outer_iterations, 1);
    }

    #[test]
    fn masked_cycle_needs_second_iteration() {
        // Cycle {0,1} with an arc from high-id vertex 2 into it: v_in
        // of the cycle gets polluted by 2, so m=1 only resolves vertex
        // 2; the cycle resolves in m=2 after the arc is pruned.
        let device = Device::test_small();
        let mut b = GraphBuilder::new_directed(3);
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        b.add_edge(2, 0);
        let g = b.build();
        let r = strongly_connected_components(&device, &g, &SccConfig::original());
        assert_eq!(r.labels, vec![1, 1, 2]);
        assert_eq!(r.outer_iterations, 2);
    }

    #[test]
    fn propagation_reaches_fixed_point_along_long_path() {
        // A long path: v_out of the head must absorb the max id at the
        // tail, which takes many propagation iterations when the path
        // spans block slices.
        let device = Device::test_small();
        let n = 300;
        let mut b = GraphBuilder::new_directed(n);
        for v in 0..(n as u32 - 1) {
            b.add_edge(v, v + 1);
        }
        let g = b.build();
        let r = strongly_connected_components(&device, &g, &SccConfig::with_block_size(32));
        assert_eq!(r.num_sccs(), n);
        // The grid had to relaunch: slices are smaller than the path.
        assert!(r.counters.grid_relaunches.get() > 0);
    }

    /// Asserts the partition tiles `0..len` exactly: starts at 0,
    /// ends at len, consecutive parts share endpoints (no gap, no
    /// overlap), every part is well-formed.
    fn assert_tiles(len: usize, parts: usize) {
        let (first_lo, _) = partition_bounds(len, parts, 0);
        assert_eq!(first_lo, 0, "len {len} parts {parts}");
        let (_, last_hi) = partition_bounds(len, parts, parts - 1);
        assert_eq!(last_hi, len, "len {len} parts {parts}");
        let mut prev_hi = 0;
        for i in 0..parts {
            let (lo, hi) = partition_bounds(len, parts, i);
            assert!(lo <= hi, "inverted part {i} for len {len} parts {parts}");
            assert_eq!(lo, prev_hi, "gap/overlap at part {i} for len {len} parts {parts}");
            prev_hi = hi;
        }
    }

    #[test]
    fn partition_covers_exactly_at_adversarial_sizes() {
        // The sizes where the old `len * (i + 1) / parts` arithmetic
        // wrapped: edge counts within a factor of `parts` of
        // usize::MAX. (A simulated edge list never reaches these, but
        // a 2^40-edge input times 384 blocks already overflows u64 —
        // the same arithmetic on a 32-bit host breaks at 11M edges.)
        for len in [0, 1, 5, 383, 384, 1000, usize::MAX / 384, usize::MAX - 3, usize::MAX] {
            for parts in [1, 2, 3, 7, 384, 1_000_000] {
                assert_tiles(len, parts);
            }
        }
    }

    #[test]
    fn partition_is_balanced_for_typical_grids() {
        // No part exceeds ceil(len / parts) items.
        let (len, parts) = (100_000usize, 384);
        let cap = len.div_ceil(parts);
        for i in 0..parts {
            let (lo, hi) = partition_bounds(len, parts, i);
            assert!(hi - lo <= cap);
        }
    }

    #[test]
    fn update_counts_consistent_with_tally() {
        let device = Device::test_small();
        let g = ecl_graphgen::mesh::toroid_wedge(8, 8, 1);
        let r = strongly_connected_components(&device, &g, &SccConfig::original());
        // Every effective atomicMax is an update; the tally's updated
        // count matches the series totals summed over all steps.
        let series_total: u64 = r
            .counters
            .series
            .steps()
            .iter()
            .map(|k| r.counters.series.total_updates(k.m, k.n))
            .sum();
        assert_eq!(series_total, r.counters.max_tally.updated());
    }
}
