//! ECL-SCC under the race sanitizer and launch linter. Unlike the
//! other four kernels SCC has *no* benign-race idiom — propagation
//! combines plain loads with counted fetch_max atomics and init stores
//! are exclusive — so the signature regions must come back completely
//! race-clean without any allowlist entry. The *linter*, on the other
//! hand, is expected to fire: on a tiny input with wide blocks almost
//! every barrier slot belongs to an idle lane, which is exactly the
//! §6.2.1 oversized-block overhead the block-sync-waste rule encodes.

#![allow(clippy::unwrap_used)]

use ecl_check::{run_checked, Rule};
use ecl_gpusim::Device;
use ecl_scc::{run, SccConfig};

#[test]
fn scc_runs_race_clean_under_checker() {
    let device = Device::test_small();
    let g = ecl_graphgen::mesh::toroid_wedge(8, 8, 1);
    let (result, report) =
        run_checked(&device, || run(&device, &g, &SccConfig::with_block_size(64)));
    assert_eq!(result.labels.len(), g.num_vertices());
    assert!(report.races_clean(), "SCC must be free of data races:\n{}", report.render("scc"));
    assert!(
        report.suppressed.is_empty(),
        "SCC declares no benign regions; nothing may be suppressed: {:?}",
        report.suppressed
    );
    // The §6.2.1 signal: 64-lane blocks re-syncing over a 128-edge
    // graph strand most barrier slots on idle lanes.
    let waste = report.of_rule(Rule::BlockSyncWaste);
    assert!(
        waste.iter().any(|f| f.kernel == "scc.propagate"),
        "oversized blocks on a tiny input must trip block-sync-waste:\n{}",
        report.render("scc")
    );
}
