//! The global trace sink: the zero-cost-when-disabled hook that lets
//! the simulator and algorithm crates emit events without threading a
//! tracer handle through every signature.
//!
//! Hot path (`emit`, `is_enabled`): one relaxed `AtomicBool` load —
//! when tracing is off the compiler sees a never-taken branch and the
//! cost is indistinguishable from noise (the overhead benchmark and
//! `crates/bench/tests/trace_overhead.rs` hold this to account). When
//! on,
//! one `AtomicPtr` load then a lock-free ring write.
//!
//! Safety model: the sink publishes a raw pointer to an `Arc<Tracer>`
//! it owns. Installing a new tracer (or uninstalling) retires the old
//! `Arc` into a never-freed list instead of dropping it, so a pointer
//! loaded by a racing `emit` can never dangle. A session installs a
//! handful of tracers at most, so the intentional leak is bounded and
//! tiny — the classic trade of reclamation complexity for wait-free
//! reads.

use std::sync::atomic::{AtomicBool, AtomicPtr, Ordering};
use std::sync::{Arc, Mutex};

use crate::event::EventKind;
use crate::ring::Tracer;

static ENABLED: AtomicBool = AtomicBool::new(false);
static PTR: AtomicPtr<Tracer> = AtomicPtr::new(std::ptr::null_mut());
static CURRENT: Mutex<SinkState> = Mutex::new(SinkState { current: None, retired: Vec::new() });

struct SinkState {
    current: Option<Arc<Tracer>>,
    /// Arcs kept alive forever so racing `emit`s never dereference a
    /// freed tracer. Bounded by the number of `install` calls.
    retired: Vec<Arc<Tracer>>,
}

fn state() -> std::sync::MutexGuard<'static, SinkState> {
    CURRENT.lock().unwrap_or_else(|e| e.into_inner())
}

/// Installs `tracer` as the global sink and enables emission.
/// A previously installed tracer keeps its recorded events (fetch it
/// with [`current`] before replacing it) but stops receiving new ones.
pub fn install(tracer: Arc<Tracer>) {
    let mut st = state();
    ENABLED.store(false, Ordering::SeqCst);
    if let Some(old) = st.current.take() {
        st.retired.push(old);
    }
    PTR.store(Arc::as_ptr(&tracer) as *mut Tracer, Ordering::SeqCst);
    st.current = Some(tracer);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Stops emission and detaches the tracer, returning it so the caller
/// can snapshot. The tracer's storage stays alive (retired) in case
/// another thread is mid-`emit`.
pub fn uninstall() -> Option<Arc<Tracer>> {
    let mut st = state();
    ENABLED.store(false, Ordering::SeqCst);
    PTR.store(std::ptr::null_mut(), Ordering::SeqCst);
    let tracer = st.current.take()?;
    st.retired.push(Arc::clone(&tracer));
    Some(tracer)
}

/// Pauses emission without detaching the tracer.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Resumes emission into the installed tracer, if any.
pub fn enable() {
    let st = state();
    if st.current.is_some() {
        ENABLED.store(true, Ordering::SeqCst);
    }
}

/// Whether `emit` currently records. The hot-path guard: a single
/// relaxed load.
#[inline(always)]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The installed tracer, if any.
pub fn current() -> Option<Arc<Tracer>> {
    state().current.clone()
}

#[inline(always)]
fn with_tracer(f: impl FnOnce(&Tracer)) {
    if !is_enabled() {
        return;
    }
    let ptr = PTR.load(Ordering::Acquire);
    if !ptr.is_null() {
        // SAFETY: `ptr` came from an Arc that install/uninstall retire
        // instead of dropping, so the Tracer outlives every reader.
        f(unsafe { &*ptr });
    }
}

/// Records one event into the installed tracer; a single branch when
/// tracing is disabled.
#[inline(always)]
pub fn emit(kind: EventKind, block: u32, lane: u16, payload: u32) {
    with_tracer(|t| t.record(kind, block, lane, payload));
}

/// Records a named phase start (interns on the cold path).
pub fn phase_start(name: &str) {
    with_tracer(|t| t.phase_start(name));
}

/// Records a named phase end.
pub fn phase_end(name: &str) {
    with_tracer(|t| t.phase_end(name));
}

/// Records a round boundary.
pub fn round(n: u32) {
    with_tracer(|t| t.round(n));
}

/// Runs `f` between `phase_start(name)` and `phase_end(name)`.
pub fn phase_span<R>(name: &str, f: impl FnOnce() -> R) -> R {
    phase_start(name);
    let r = f();
    phase_end(name);
    r
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::ring::{ClockMode, TracerConfig};

    // The sink is process-global, so its tests share one #[test] body
    // to avoid cross-test interference under the parallel test runner.
    #[test]
    fn sink_lifecycle() {
        assert!(!is_enabled());
        emit(EventKind::Marker, 0, 0, 1); // no sink: must be a no-op

        let t = Arc::new(Tracer::new(TracerConfig {
            slots: 4,
            events_per_slot: 64,
            clock: ClockMode::Logical,
        }));
        install(Arc::clone(&t));
        assert!(is_enabled());
        emit(EventKind::Marker, 0, 0, 2);
        phase_span("p", || emit(EventKind::AtomicUpdated, 1, 0, 0));
        round(3);

        disable();
        emit(EventKind::Marker, 0, 0, 99); // paused: dropped silently
        enable();
        emit(EventKind::Marker, 0, 0, 4);

        let back = uninstall().expect("tracer was installed");
        assert!(!is_enabled());
        assert!(Arc::ptr_eq(&back, &t));
        emit(EventKind::Marker, 0, 0, 100); // detached: no-op

        let s = back.snapshot();
        let payloads: Vec<u32> = s
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Marker.raw())
            .map(|e| e.payload)
            .collect();
        assert_eq!(payloads, vec![2, 4]);
        assert_eq!(s.of_kind(EventKind::PhaseStart).count(), 1);
        assert_eq!(s.of_kind(EventKind::Round).next().unwrap().payload, 3);

        // Re-install after uninstall works, and enable() without a
        // tracer stays off.
        enable();
        assert!(!is_enabled());
        install(Arc::clone(&t));
        assert!(is_enabled());
        uninstall();
    }
}
