//! An epoch capture: every ring drained into one time-ordered event
//! list, with drop accounting and the interned string table.

use std::collections::BTreeMap;

use crate::event::{Event, EventKind};
use crate::ring::ClockMode;

/// A drained capture of a [`crate::Tracer`]'s rings.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// All retained events, stably sorted by timestamp.
    pub events: Vec<Event>,
    /// Events lost to ring overwrites (oldest-first eviction).
    pub dropped_overwritten: u64,
    /// Events lost because every ring slot was already claimed.
    pub dropped_unslotted: u64,
    /// Number of ring slots that were claimed by recording threads.
    pub threads: u32,
    /// Interned strings; `PhaseStart`/`PhaseEnd` payloads index this.
    pub strings: Vec<String>,
    /// Timestamp source the capture was recorded with.
    pub clock: ClockMode,
}

impl Snapshot {
    /// Total events dropped, regardless of cause.
    pub fn dropped_total(&self) -> u64 {
        self.dropped_overwritten + self.dropped_unslotted
    }

    /// The interned string behind `id`, if in range.
    pub fn string(&self, id: u32) -> Option<&str> {
        self.strings.get(id as usize).map(String::as_str)
    }

    /// Event counts keyed by raw kind (unknown kinds included),
    /// ordered by wire value.
    pub fn kind_counts(&self) -> BTreeMap<u16, u64> {
        let mut counts = BTreeMap::new();
        for e in &self.events {
            *counts.entry(e.kind).or_insert(0) += 1;
        }
        counts
    }

    /// Capture duration: last timestamp minus first (0 if < 2 events).
    pub fn span(&self) -> u64 {
        match (self.events.first(), self.events.last()) {
            (Some(a), Some(b)) => b.ts - a.ts,
            _ => 0,
        }
    }

    /// Events of one kind, in time order.
    pub fn of_kind(&self, kind: EventKind) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(move |e| e.kind == kind.raw())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::ring::{Tracer, TracerConfig};

    fn capture() -> Snapshot {
        let t =
            Tracer::new(TracerConfig { slots: 2, events_per_slot: 64, clock: ClockMode::Logical });
        t.record(EventKind::KernelLaunch, 0, 0, 8);
        t.phase_start("compute");
        t.record(EventKind::AtomicUpdated, 3, 1, 0);
        t.record(EventKind::AtomicUpdated, 3, 2, 0);
        t.phase_end("compute");
        t.snapshot()
    }

    #[test]
    fn kind_counts_and_span() {
        let s = capture();
        let counts = s.kind_counts();
        assert_eq!(counts[&EventKind::AtomicUpdated.raw()], 2);
        assert_eq!(counts[&EventKind::KernelLaunch.raw()], 1);
        assert_eq!(s.span(), 4); // logical clock: ts 0..=4
        assert_eq!(s.of_kind(EventKind::AtomicUpdated).count(), 2);
    }

    #[test]
    fn string_lookup() {
        let s = capture();
        let start = s.of_kind(EventKind::PhaseStart).next().unwrap();
        assert_eq!(s.string(start.payload), Some("compute"));
        assert_eq!(s.string(999), None);
    }
}
