//! Terminal timeline rendering, built on `ecl-profiling`'s chart
//! primitives so capture summaries match the harness binaries' look.

use std::fmt::Write as _;

use ecl_profiling::chart::{bar_chart, column_chart};

use crate::event::EventKind;
use crate::ring::ClockMode;
use crate::snapshot::Snapshot;

/// Renders a capture as a text report: summary line, per-kind counts
/// as a bar chart, and event density over time as a column chart.
pub fn render(snap: &Snapshot, width: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "capture: {} events, {} threads, span {} {}, dropped {} (overwritten {}, unslotted {})",
        snap.events.len(),
        snap.threads,
        snap.span(),
        match snap.clock {
            ClockMode::Wall => "ns",
            ClockMode::Logical => "ticks",
        },
        snap.dropped_total(),
        snap.dropped_overwritten,
        snap.dropped_unslotted,
    );

    let entries: Vec<(String, f64)> = snap
        .kind_counts()
        .into_iter()
        .map(|(kind, n)| {
            let name = EventKind::from_raw(kind)
                .map(|k| k.name().to_string())
                .unwrap_or_else(|| format!("kind-{kind}"));
            (name, n as f64)
        })
        .collect();
    if !entries.is_empty() {
        out.push('\n');
        out.push_str(&bar_chart("events by kind", &entries, width.max(16)));
    }

    out.push_str(&density(snap, width));
    out
}

/// Event density: events bucketed over the capture span, rendered as
/// a column chart (the "when was the run busy" view).
fn density(snap: &Snapshot, width: usize) -> String {
    let span = snap.span();
    if snap.events.len() < 2 || span == 0 {
        return String::new();
    }
    let buckets = width.clamp(16, 120);
    let t0 = snap.events[0].ts;
    let mut counts = vec![0u64; buckets];
    for e in &snap.events {
        // span is the max of (e.ts - t0), so the index stays in range;
        // u128 keeps the multiply exact for wall-clock nanoseconds.
        let i = ((e.ts - t0) as u128 * (buckets as u128 - 1) / span as u128) as usize;
        counts[i] += 1;
    }
    let mut out = String::from("\n");
    out.push_str(&column_chart("event density over capture", &counts, buckets, 6));
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::ring::{Tracer, TracerConfig};

    #[test]
    fn renders_summary_and_charts() {
        let t =
            Tracer::new(TracerConfig { slots: 2, events_per_slot: 256, clock: ClockMode::Logical });
        t.record(EventKind::KernelLaunch, u32::MAX, 0, 4);
        for i in 0..100 {
            t.record(EventKind::AtomicUpdated, i % 4, 0, 0);
        }
        let s = t.snapshot();
        let text = render(&s, 60);
        assert!(text.contains("101 events"));
        assert!(text.contains("events by kind"));
        assert!(text.contains("atomic-updated"));
        assert!(text.contains("event density over capture"));
    }

    #[test]
    fn empty_capture_renders_without_charts_panicking() {
        let t =
            Tracer::new(TracerConfig { slots: 1, events_per_slot: 8, clock: ClockMode::Logical });
        let text = render(&t.snapshot(), 60);
        assert!(text.contains("0 events"));
    }

    #[test]
    fn single_event_skips_density() {
        let t =
            Tracer::new(TracerConfig { slots: 1, events_per_slot: 8, clock: ClockMode::Logical });
        t.record(EventKind::Marker, 0, 0, 0);
        let text = render(&t.snapshot(), 60);
        assert!(!text.contains("density"));
    }
}
