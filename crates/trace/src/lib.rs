//! Low-overhead structured event tracing for the suite.
//!
//! Where `ecl-profiling` answers "how many" (the paper's §3 counters),
//! this crate answers "when": kernel launches, block lifetimes, atomic
//! outcomes, and per-round algorithm phases are recorded as 24-byte
//! packed events into lock-free per-thread ring buffers, drained into
//! epoch [`Snapshot`]s, persisted as versioned `.etr` binary captures,
//! and exported to Chrome `trace_event` JSON (Perfetto-loadable) or a
//! terminal timeline.
//!
//! Design constraints, in order:
//!
//! 1. **Disabled is free.** Instrumented code guards every emission
//!    with one relaxed atomic load ([`sink::is_enabled`]); the
//!    overhead benchmark asserts the disabled path is within noise.
//! 2. **Enabled never blocks the hot path.** [`Tracer::record`] is a
//!    thread-local slot lookup plus three relaxed stores into a ring
//!    owned by the calling thread — no locks, no allocation. Full
//!    rings overwrite their oldest events and count the drops rather
//!    than stall (the perturbation concern the paper raises about
//!    manual instrumentation in §3).
//! 3. **Captures are robust artifacts.** The `.etr` reader treats the
//!    file as untrusted: truncation and corruption produce
//!    `io::Error`s, never panics or unbounded allocations — the same
//!    failure-injection discipline as `ecl-graph::io`.
//!
//! Typical capture flow:
//!
//! ```
//! use std::sync::Arc;
//! use ecl_trace::{sink, ClockMode, EventKind, Tracer};
//!
//! sink::install(Arc::new(Tracer::with_clock(ClockMode::Logical)));
//! sink::phase_span("compute", || {
//!     sink::emit(EventKind::AtomicUpdated, 7, 0, 0);
//! });
//! let tracer = sink::uninstall().unwrap();
//! let snap = tracer.snapshot();
//!
//! let mut bytes = Vec::new();
//! ecl_trace::write_snapshot(&mut bytes, &snap).unwrap();
//! let back = ecl_trace::read_snapshot(&mut bytes.as_slice()).unwrap();
//! assert_eq!(back.events, snap.events);
//! ```

pub mod chrome;
pub mod event;
pub mod format;
pub mod ring;
pub mod sink;
pub mod snapshot;
pub mod timeline;

pub use chrome::to_chrome_json;
pub use event::{Event, EventKind};
pub use format::{read_snapshot, write_snapshot, MAGIC, VERSION};
pub use ring::{ClockMode, Tracer, TracerConfig};
pub use snapshot::Snapshot;
pub use timeline::render;
