//! Chrome `trace_event` JSON export.
//!
//! The output loads in Perfetto (ui.perfetto.dev) and `chrome://tracing`:
//! phase and block intervals become "B"/"E" duration events on one
//! track per recording thread, everything else becomes "i" instant
//! events. JSON is emitted by hand — the suite carries no serde
//! runtime — with full string escaping.

use std::fmt::Write as _;

use crate::event::{Event, EventKind};
use crate::ring::ClockMode;
use crate::snapshot::Snapshot;

/// Renders `snap` as a Chrome `trace_event` JSON object.
pub fn to_chrome_json(snap: &Snapshot) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for e in &snap.events {
        let mut emit = |entry: String| {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n  ");
            out.push_str(&entry);
        };
        match e.kind() {
            Some(EventKind::PhaseStart) => {
                emit(duration(snap, e, "B", phase_name(snap, e)));
            }
            Some(EventKind::PhaseEnd) => {
                emit(duration(snap, e, "E", phase_name(snap, e)));
            }
            Some(EventKind::BlockStart) => {
                emit(duration(snap, e, "B", format!("block-{}", e.block)));
            }
            Some(EventKind::BlockEnd) => {
                emit(duration(snap, e, "E", format!("block-{}", e.block)));
            }
            _ => {
                let name = EventKind::from_raw(e.kind)
                    .map(|k| k.name().to_string())
                    .unwrap_or_else(|| format!("kind-{}", e.kind));
                emit(instant(snap, e, &name));
            }
        }
    }
    let _ = write!(
        out,
        "\n],\"displayTimeUnit\":\"ns\",\"otherData\":{{\"clock\":{},\"droppedOverwritten\":{},\"droppedUnslotted\":{},\"threads\":{}}}}}",
        json_string(match snap.clock {
            ClockMode::Wall => "wall-ns",
            ClockMode::Logical => "logical",
        }),
        snap.dropped_overwritten,
        snap.dropped_unslotted,
        snap.threads,
    );
    out
}

fn phase_name(snap: &Snapshot, e: &Event) -> String {
    snap.string(e.payload).map(str::to_string).unwrap_or_else(|| format!("phase-{}", e.payload))
}

/// Timestamp in the microseconds Chrome expects (wall clock), or the
/// raw sequence number (logical clock — relative order is what matters).
fn ts_us(snap: &Snapshot, e: &Event) -> f64 {
    match snap.clock {
        ClockMode::Wall => e.ts as f64 / 1000.0,
        ClockMode::Logical => e.ts as f64,
    }
}

fn duration(snap: &Snapshot, e: &Event, ph: &str, name: String) -> String {
    format!(
        "{{\"name\":{},\"ph\":\"{ph}\",\"ts\":{},\"pid\":0,\"tid\":{}}}",
        json_string(&name),
        ts_us(snap, e),
        e.thread,
    )
}

fn instant(snap: &Snapshot, e: &Event, name: &str) -> String {
    format!(
        "{{\"name\":{},\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":0,\"tid\":{},\"args\":{{\"block\":{},\"lane\":{},\"payload\":{}}}}}",
        json_string(name),
        ts_us(snap, e),
        e.thread,
        e.block,
        e.lane,
        e.payload,
    )
}

/// Escapes `s` as a JSON string literal, quotes included.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::ring::{Tracer, TracerConfig};

    fn capture() -> Snapshot {
        let t =
            Tracer::new(TracerConfig { slots: 2, events_per_slot: 64, clock: ClockMode::Logical });
        t.record(EventKind::KernelLaunch, u32::MAX, 0, 4);
        t.phase_start("compute \"hot\"");
        t.record(EventKind::BlockStart, 2, 0, 32);
        t.record(EventKind::AtomicCasFailed, 2, 7, 0);
        t.record(EventKind::BlockEnd, 2, 0, 32);
        t.phase_end("compute \"hot\"");
        t.snapshot()
    }

    #[test]
    fn emits_balanced_duration_events() {
        let json = to_chrome_json(&capture());
        assert_eq!(json.matches("\"ph\":\"B\"").count(), 2); // phase + block
        assert_eq!(json.matches("\"ph\":\"E\"").count(), 2);
        assert_eq!(json.matches("\"ph\":\"i\"").count(), 2); // launch + CAS
        assert!(json.contains("kernel-launch"));
        assert!(json.contains("block-2"));
        assert!(json.contains("atomic-cas-failed"));
    }

    #[test]
    fn escapes_phase_names() {
        let json = to_chrome_json(&capture());
        assert!(json.contains("compute \\\"hot\\\""));
    }

    #[test]
    fn structure_is_json_parseable() {
        // No serde available: a structural check — balanced braces and
        // brackets outside string literals.
        let json = to_chrome_json(&capture());
        let (mut brace, mut bracket, mut in_str, mut escaped) = (0i64, 0i64, false, false);
        for c in json.chars() {
            if escaped {
                escaped = false;
                continue;
            }
            match c {
                '\\' if in_str => escaped = true,
                '"' => in_str = !in_str,
                '{' if !in_str => brace += 1,
                '}' if !in_str => brace -= 1,
                '[' if !in_str => bracket += 1,
                ']' if !in_str => bracket -= 1,
                _ => {}
            }
            assert!(brace >= 0 && bracket >= 0);
        }
        assert_eq!((brace, bracket, in_str), (0, 0, false));
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with('}'));
    }

    #[test]
    fn unknown_kinds_become_named_instants() {
        let mut s = capture();
        s.events[0].kind = 500;
        let json = to_chrome_json(&s);
        assert!(json.contains("kind-500"));
    }
}
