//! The `.etr` binary capture format.
//!
//! Little-endian throughout:
//!
//! ```text
//! magic    8  b"ECLTRC01"
//! version  u16  (currently 1)
//! clock    u16  (0 = wall ns, 1 = logical)
//! sections u32  count
//! then per section: tag u32, len u64, `len` bytes of body
//! ```
//!
//! Known section tags (unknown tags are skipped, so newer writers stay
//! readable):
//!
//! - `HDR1` — dropped_overwritten u64, dropped_unslotted u64,
//!   threads u32, reserved u32
//! - `STR1` — count u32, then per string: len u32 + UTF-8 bytes
//! - `EVT1` — count u64, then count x 24-byte packed events
//!
//! The reader follows the same failure-injection discipline as
//! `ecl-graph::io`: every malformed, truncated, or hostile input
//! yields `io::ErrorKind::InvalidData` (or `UnexpectedEof`) — never a
//! panic, never an unbounded allocation.

use std::io::{self, Read, Write};

use crate::event::Event;
use crate::ring::ClockMode;
use crate::snapshot::Snapshot;

/// File magic: "ECL trace" plus an on-disk generation digit.
pub const MAGIC: [u8; 8] = *b"ECLTRC01";
/// Current format version.
pub const VERSION: u16 = 1;

const TAG_HDR: u32 = u32::from_le_bytes(*b"HDR1");
const TAG_STR: u32 = u32::from_le_bytes(*b"STR1");
const TAG_EVT: u32 = u32::from_le_bytes(*b"EVT1");

/// Cap on speculative preallocation from untrusted length fields, in
/// elements. Larger claims still load — growth is then driven by
/// actual bytes read, so a corrupt length cannot OOM the reader.
const PREALLOC_CAP: usize = 1 << 20;

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn read_exact_array<const N: usize, R: Read>(r: &mut R) -> io::Result<[u8; N]> {
    let mut buf = [0u8; N];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

fn read_u16<R: Read>(r: &mut R) -> io::Result<u16> {
    Ok(u16::from_le_bytes(read_exact_array(r)?))
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    Ok(u32::from_le_bytes(read_exact_array(r)?))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    Ok(u64::from_le_bytes(read_exact_array(r)?))
}

/// Serializes a snapshot to `w` in `.etr` format.
pub fn write_snapshot<W: Write>(w: &mut W, snap: &Snapshot) -> io::Result<()> {
    w.write_all(&MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&snap.clock.raw().to_le_bytes())?;
    w.write_all(&3u32.to_le_bytes())?;

    // HDR1
    let mut hdr = Vec::with_capacity(24);
    hdr.extend_from_slice(&snap.dropped_overwritten.to_le_bytes());
    hdr.extend_from_slice(&snap.dropped_unslotted.to_le_bytes());
    hdr.extend_from_slice(&snap.threads.to_le_bytes());
    hdr.extend_from_slice(&0u32.to_le_bytes());
    write_section(w, TAG_HDR, &hdr)?;

    // STR1
    let mut strs = Vec::new();
    let count =
        u32::try_from(snap.strings.len()).map_err(|_| bad("string table exceeds u32 entries"))?;
    strs.extend_from_slice(&count.to_le_bytes());
    for s in &snap.strings {
        let len = u32::try_from(s.len()).map_err(|_| bad("string exceeds u32 bytes"))?;
        strs.extend_from_slice(&len.to_le_bytes());
        strs.extend_from_slice(s.as_bytes());
    }
    write_section(w, TAG_STR, &strs)?;

    // EVT1
    let mut evts = Vec::with_capacity(8 + snap.events.len() * 24);
    evts.extend_from_slice(&(snap.events.len() as u64).to_le_bytes());
    for e in &snap.events {
        let (w0, w1, w2) = e.to_disk_words();
        evts.extend_from_slice(&w0.to_le_bytes());
        evts.extend_from_slice(&w1.to_le_bytes());
        evts.extend_from_slice(&w2.to_le_bytes());
    }
    write_section(w, TAG_EVT, &evts)?;
    Ok(())
}

fn write_section<W: Write>(w: &mut W, tag: u32, body: &[u8]) -> io::Result<()> {
    w.write_all(&tag.to_le_bytes())?;
    w.write_all(&(body.len() as u64).to_le_bytes())?;
    w.write_all(body)
}

/// Deserializes a snapshot from `r`, validating structure throughout.
/// Malformed input is an `InvalidData`/`UnexpectedEof` error — this
/// function never panics on hostile bytes.
pub fn read_snapshot<R: Read>(r: &mut R) -> io::Result<Snapshot> {
    let magic = read_exact_array::<8, _>(r)?;
    if magic != MAGIC {
        return Err(bad(format!("bad magic {magic:02x?}, expected {MAGIC:02x?}")));
    }
    let version = read_u16(r)?;
    if version != VERSION {
        return Err(bad(format!("unsupported .etr version {version} (reader supports {VERSION})")));
    }
    let clock = ClockMode::from_raw(read_u16(r)?).ok_or_else(|| bad("unknown clock mode"))?;
    let sections = read_u32(r)?;
    // A section costs ≥ 12 bytes on disk; anything claiming more
    // sections than a multi-GB file could hold is corrupt.
    if sections > 1 << 20 {
        return Err(bad(format!("implausible section count {sections}")));
    }

    let mut snap = Snapshot {
        events: Vec::new(),
        dropped_overwritten: 0,
        dropped_unslotted: 0,
        threads: 0,
        strings: Vec::new(),
        clock,
    };
    let mut saw_evt = false;

    for _ in 0..sections {
        let tag = read_u32(r)?;
        let len = read_u64(r)?;
        let len_usize = usize::try_from(len).map_err(|_| bad("section too large"))?;
        match tag {
            TAG_HDR => {
                if len != 24 {
                    return Err(bad(format!("HDR1 section is {len} bytes, expected 24")));
                }
                snap.dropped_overwritten = read_u64(r)?;
                snap.dropped_unslotted = read_u64(r)?;
                snap.threads = read_u32(r)?;
                let _reserved = read_u32(r)?;
            }
            TAG_STR => {
                let body = read_body(r, len_usize)?;
                snap.strings = parse_strings(&body)?;
            }
            TAG_EVT => {
                let body = read_body(r, len_usize)?;
                snap.events = parse_events(&body)?;
                saw_evt = true;
            }
            _ => {
                // Unknown section from a newer writer: skip its body.
                skip(r, len)?;
            }
        }
    }
    if !saw_evt {
        return Err(bad("capture has no EVT1 section"));
    }
    Ok(snap)
}

/// Reads exactly `len` bytes, growing from a capped initial
/// allocation so a lying length field cannot reserve gigabytes.
fn read_body<R: Read>(r: &mut R, len: usize) -> io::Result<Vec<u8>> {
    let mut body = Vec::with_capacity(len.min(PREALLOC_CAP));
    let got = r.take(len as u64).read_to_end(&mut body)?;
    if got != len {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            format!("section truncated: {got} of {len} bytes"),
        ));
    }
    Ok(body)
}

fn skip<R: Read>(r: &mut R, len: u64) -> io::Result<()> {
    let skipped = io::copy(&mut r.take(len), &mut io::sink())?;
    if skipped != len {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            format!("unknown section truncated: {skipped} of {len} bytes"),
        ));
    }
    Ok(())
}

fn parse_strings(body: &[u8]) -> io::Result<Vec<String>> {
    let mut r = body;
    let count = read_u32(&mut r)? as usize;
    let mut strings = Vec::with_capacity(count.min(PREALLOC_CAP));
    for i in 0..count {
        let len = read_u32(&mut r)? as usize;
        if r.len() < len {
            return Err(bad(format!("string {i} claims {len} bytes, {} remain", r.len())));
        }
        let (bytes, rest) = r.split_at(len);
        let s =
            std::str::from_utf8(bytes).map_err(|e| bad(format!("string {i} is not UTF-8: {e}")))?;
        strings.push(s.to_string());
        r = rest;
    }
    if !r.is_empty() {
        return Err(bad(format!("{} trailing bytes after string table", r.len())));
    }
    Ok(strings)
}

fn parse_events(body: &[u8]) -> io::Result<Vec<Event>> {
    let mut r = body;
    let count = read_u64(&mut r)?;
    let need = count.checked_mul(24).ok_or_else(|| bad("event count overflows"))?;
    if r.len() as u64 != need {
        return Err(bad(format!(
            "EVT1 claims {count} events ({need} bytes) but holds {}",
            r.len()
        )));
    }
    let count = count as usize;
    let mut events = Vec::with_capacity(count.min(PREALLOC_CAP));
    for _ in 0..count {
        let w0 = read_u64(&mut r)?;
        let w1 = read_u64(&mut r)?;
        let w2 = read_u64(&mut r)?;
        events.push(Event::from_disk_words(w0, w1, w2));
    }
    Ok(events)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::ring::{Tracer, TracerConfig};

    fn sample() -> Snapshot {
        let t =
            Tracer::new(TracerConfig { slots: 2, events_per_slot: 32, clock: ClockMode::Logical });
        t.record(EventKind::KernelLaunch, u32::MAX, 0, 16);
        t.phase_start("init");
        t.record(EventKind::AtomicUpdated, 5, 3, 0);
        t.phase_end("init");
        t.round(1);
        t.snapshot()
    }

    fn to_bytes(s: &Snapshot) -> Vec<u8> {
        let mut buf = Vec::new();
        write_snapshot(&mut buf, s).unwrap();
        buf
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let s = sample();
        let back = read_snapshot(&mut to_bytes(&s).as_slice()).unwrap();
        assert_eq!(back.events, s.events);
        assert_eq!(back.strings, s.strings);
        assert_eq!(back.dropped_overwritten, s.dropped_overwritten);
        assert_eq!(back.dropped_unslotted, s.dropped_unslotted);
        assert_eq!(back.threads, s.threads);
        assert_eq!(back.clock, s.clock);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = to_bytes(&sample());
        bytes[0] ^= 0xFF;
        let err = read_snapshot(&mut bytes.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn future_version_rejected() {
        let mut bytes = to_bytes(&sample());
        bytes[8] = 99;
        let err = read_snapshot(&mut bytes.as_slice()).unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn every_truncation_errors() {
        let bytes = to_bytes(&sample());
        for cut in 0..bytes.len() {
            let res = read_snapshot(&mut bytes[..cut].as_ref());
            assert!(res.is_err(), "no error at cut {cut}/{}", bytes.len());
        }
        assert!(read_snapshot(&mut bytes.as_slice()).is_ok());
    }

    #[test]
    fn unknown_sections_are_skipped() {
        let s = sample();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&s.clock.raw().to_le_bytes());
        bytes.extend_from_slice(&2u32.to_le_bytes());
        // An unknown section a future writer might emit.
        bytes.extend_from_slice(&u32::from_le_bytes(*b"ZZZ9").to_le_bytes());
        bytes.extend_from_slice(&4u64.to_le_bytes());
        bytes.extend_from_slice(b"beef");
        // Followed by a valid EVT1.
        let mut evt = Vec::new();
        evt.extend_from_slice(&1u64.to_le_bytes());
        let (w0, w1, w2) = s.events[0].to_disk_words();
        evt.extend_from_slice(&w0.to_le_bytes());
        evt.extend_from_slice(&w1.to_le_bytes());
        evt.extend_from_slice(&w2.to_le_bytes());
        bytes.extend_from_slice(&TAG_EVT.to_le_bytes());
        bytes.extend_from_slice(&(evt.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&evt);

        let back = read_snapshot(&mut bytes.as_slice()).unwrap();
        assert_eq!(back.events, vec![s.events[0]]);
    }

    #[test]
    fn lying_lengths_do_not_overallocate() {
        // EVT1 claiming u64::MAX/24 events with an empty body must
        // error, not reserve memory.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&0u16.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&TAG_EVT.to_le_bytes());
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(read_snapshot(&mut bytes.as_slice()).is_err());
    }

    #[test]
    fn missing_event_section_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&0u16.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        let err = read_snapshot(&mut bytes.as_slice()).unwrap_err();
        assert!(err.to_string().contains("EVT1"));
    }
}
