//! Packed trace events.
//!
//! An event is three little-endian `u64` words — 24 bytes — so a
//! ring-buffer write is three relaxed atomic stores and no
//! allocation:
//!
//! ```text
//! word 0: timestamp (ns since capture start, or logical sequence)
//! word 1: kind(16) | lane(16) | block(32)
//! word 2: thread(32) | payload(32)
//! ```
//!
//! `payload` is kind-specific: the grid size for kernel launches, an
//! interned string id for phase events, the round number for round
//! markers, and free-form for the rest. `thread` is the ring slot the
//! event was recorded from; it is attached when a snapshot drains the
//! rings, so the hot path never writes it.

/// What happened. The discriminants are the on-disk wire values of
/// the `.etr` format — append new kinds, never renumber.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum EventKind {
    /// A kernel was launched; payload = number of blocks.
    KernelLaunch = 1,
    /// A simulated block began executing; payload = block size.
    BlockStart = 2,
    /// A simulated block finished executing; payload = block size.
    BlockEnd = 3,
    /// An atomic operation changed its target.
    AtomicUpdated = 4,
    /// A specialized atomic (min/max) left its target unchanged.
    AtomicNoEffect = 5,
    /// An `atomicCAS` failed (target did not hold the expected value).
    AtomicCasFailed = 6,
    /// A named host-side phase began; payload = interned string id.
    PhaseStart = 7,
    /// A named host-side phase ended; payload = interned string id.
    PhaseEnd = 8,
    /// An algorithm round boundary; payload = round number.
    Round = 9,
    /// Free-form marker; payload is caller-defined.
    Marker = 10,
    /// `ecl-check` reported a finding; payload = rule id
    /// (`ecl-check`'s `Rule::raw`), block = offending block or
    /// `u32::MAX` when not block-specific.
    CheckFinding = 11,
    /// The recording thread switched request context (`ecl-obs`
    /// correlation): block = high 32 bits of the request id, payload =
    /// low 32 bits. Events after this marker on the same thread belong
    /// to that request until the next `ReqCtx` (id 0 = none).
    ReqCtx = 12,
    /// The recording thread switched shard context (`ecl-shard`
    /// multi-pool attribution): payload = shard id + 1, 0 = none.
    /// Events after this marker on the same thread belong to that
    /// shard's simulated device until the next `ShardCtx`.
    ShardCtx = 13,
}

impl EventKind {
    /// All kinds, wire-value ordered.
    pub const ALL: [EventKind; 13] = [
        EventKind::KernelLaunch,
        EventKind::BlockStart,
        EventKind::BlockEnd,
        EventKind::AtomicUpdated,
        EventKind::AtomicNoEffect,
        EventKind::AtomicCasFailed,
        EventKind::PhaseStart,
        EventKind::PhaseEnd,
        EventKind::Round,
        EventKind::Marker,
        EventKind::CheckFinding,
        EventKind::ReqCtx,
        EventKind::ShardCtx,
    ];

    /// Wire value of this kind.
    pub fn raw(self) -> u16 {
        self as u16
    }

    /// Decodes a wire value (`None` for kinds this build predates).
    pub fn from_raw(v: u16) -> Option<EventKind> {
        EventKind::ALL.iter().copied().find(|k| k.raw() == v)
    }

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::KernelLaunch => "kernel-launch",
            EventKind::BlockStart => "block-start",
            EventKind::BlockEnd => "block-end",
            EventKind::AtomicUpdated => "atomic-updated",
            EventKind::AtomicNoEffect => "atomic-no-effect",
            EventKind::AtomicCasFailed => "atomic-cas-failed",
            EventKind::PhaseStart => "phase-start",
            EventKind::PhaseEnd => "phase-end",
            EventKind::Round => "round",
            EventKind::Marker => "marker",
            EventKind::CheckFinding => "check-finding",
            EventKind::ReqCtx => "req-ctx",
            EventKind::ShardCtx => "shard-ctx",
        }
    }
}

/// One decoded trace event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Nanoseconds since capture start (wall clock) or logical
    /// sequence number, per the capture's clock mode.
    pub ts: u64,
    /// Raw event kind (kept raw so captures from newer builds survive
    /// round-trips through older readers).
    pub kind: u16,
    /// Simulated block id (`u32::MAX` when not block-scoped).
    pub block: u32,
    /// Lane within the block (0 when not thread-scoped).
    pub lane: u16,
    /// Kind-specific payload.
    pub payload: u32,
    /// Ring slot (≈ OS worker thread) the event was recorded from.
    pub thread: u32,
}

impl Event {
    /// Decoded kind, if this build knows it.
    pub fn kind(&self) -> Option<EventKind> {
        EventKind::from_raw(self.kind)
    }

    /// Packs into the three wire words (without the thread, which the
    /// ring's slot index supplies).
    pub(crate) fn pack_words(kind: u16, block: u32, lane: u16, payload: u32) -> (u64, u64) {
        let w1 = ((kind as u64) << 48) | ((lane as u64) << 32) | block as u64;
        let w2 = payload as u64;
        (w1, w2)
    }

    /// Unpacks from wire words, attaching `thread`.
    pub(crate) fn unpack_words(ts: u64, w1: u64, w2: u64, thread: u32) -> Event {
        Event {
            ts,
            kind: (w1 >> 48) as u16,
            lane: (w1 >> 32) as u16,
            block: w1 as u32,
            payload: w2 as u32,
            thread,
        }
    }

    /// Packs for on-disk storage, thread included.
    pub(crate) fn to_disk_words(self) -> (u64, u64, u64) {
        let (w1, w2) = Event::pack_words(self.kind, self.block, self.lane, self.payload);
        (self.ts, w1, w2 | ((self.thread as u64) << 32))
    }

    /// Unpacks from on-disk words.
    pub(crate) fn from_disk_words(w0: u64, w1: u64, w2: u64) -> Event {
        Event::unpack_words(w0, w1, w2 & 0xFFFF_FFFF, (w2 >> 32) as u32)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn kind_wire_values_are_stable() {
        assert_eq!(EventKind::KernelLaunch.raw(), 1);
        assert_eq!(EventKind::Marker.raw(), 10);
        for k in EventKind::ALL {
            assert_eq!(EventKind::from_raw(k.raw()), Some(k));
        }
        assert_eq!(EventKind::from_raw(0), None);
        assert_eq!(EventKind::from_raw(999), None);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let e = Event {
            ts: 123_456_789,
            kind: EventKind::AtomicCasFailed.raw(),
            block: 0xDEAD_BEEF,
            lane: 511,
            payload: 0xCAFE_F00D,
            thread: 7,
        };
        let (w1, w2) = Event::pack_words(e.kind, e.block, e.lane, e.payload);
        assert_eq!(Event::unpack_words(e.ts, w1, w2, e.thread), e);
        let (d0, d1, d2) = e.to_disk_words();
        assert_eq!(Event::from_disk_words(d0, d1, d2), e);
    }

    #[test]
    fn extremes_survive_packing() {
        let e = Event {
            ts: u64::MAX,
            kind: u16::MAX,
            block: u32::MAX,
            lane: u16::MAX,
            payload: u32::MAX,
            thread: u32::MAX,
        };
        let (d0, d1, d2) = e.to_disk_words();
        assert_eq!(Event::from_disk_words(d0, d1, d2), e);
    }
}
