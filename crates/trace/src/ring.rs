//! The recording core: fixed-capacity per-thread ring buffers written
//! lock-free through thread-local slot handles.
//!
//! Every OS thread that records claims one ring slot per tracer (a
//! single `fetch_add`, cached in a thread-local afterwards) and is
//! then the ring's *only* writer: a record is a timestamp read, three
//! relaxed stores, and one release store of the head — no locks, no
//! allocation, no waiting. When a ring is full the oldest events are
//! overwritten and counted as dropped, so a hot kernel can never be
//! stalled by its own instrumentation (the §3 perturbation caveat the
//! paper makes about manual instrumentation).

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::event::{Event, EventKind};
use crate::snapshot::Snapshot;

/// Timestamp source of a capture.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClockMode {
    /// Monotonic wall clock, nanoseconds since the tracer was built.
    Wall,
    /// A global atomic sequence number: deterministic total order,
    /// immune to timer resolution — the mode tests use.
    Logical,
}

impl ClockMode {
    /// Wire value in the `.etr` header.
    pub fn raw(self) -> u16 {
        match self {
            ClockMode::Wall => 0,
            ClockMode::Logical => 1,
        }
    }

    /// Decodes a wire value.
    pub fn from_raw(v: u16) -> Option<ClockMode> {
        match v {
            0 => Some(ClockMode::Wall),
            1 => Some(ClockMode::Logical),
            _ => None,
        }
    }
}

/// Sizing and clocking of a [`Tracer`].
#[derive(Clone, Copy, Debug)]
pub struct TracerConfig {
    /// Ring slots (max distinct recording OS threads).
    pub slots: usize,
    /// Events retained per slot; older events are overwritten.
    pub events_per_slot: usize,
    /// Timestamp source.
    pub clock: ClockMode,
}

impl Default for TracerConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        // 2x cores covers the main thread plus pool churn; 16Ki events
        // x 24 B x slots keeps default captures in the tens of MB.
        Self { slots: (2 * cores).clamp(8, 64), events_per_slot: 1 << 14, clock: ClockMode::Wall }
    }
}

/// One thread's ring. `head` counts events ever written; the
/// retained window is the last `capacity` of them. Only the owning
/// thread stores into `words`, so relaxed stores plus a release head
/// update give snapshots a consistent view.
struct ThreadRing {
    words: Box<[AtomicU64]>,
    head: AtomicU64,
}

impl ThreadRing {
    fn new(capacity: usize) -> Self {
        let words = (0..capacity * 3).map(|_| AtomicU64::new(0)).collect();
        Self { words, head: AtomicU64::new(0) }
    }

    fn capacity(&self) -> u64 {
        (self.words.len() / 3) as u64
    }

    #[inline]
    fn push(&self, ts: u64, w1: u64, w2: u64) {
        let head = self.head.load(Ordering::Relaxed);
        let base = ((head % self.capacity()) as usize) * 3;
        self.words[base].store(ts, Ordering::Relaxed);
        self.words[base + 1].store(w1, Ordering::Relaxed);
        self.words[base + 2].store(w2, Ordering::Relaxed);
        self.head.store(head + 1, Ordering::Release);
    }

    /// Drains the retained window, oldest first, attaching `slot` as
    /// the thread id. Returns `(events, overwritten)`.
    fn drain(&self, slot: u32) -> (Vec<Event>, u64) {
        let head = self.head.load(Ordering::Acquire);
        let kept = head.min(self.capacity());
        let overwritten = head - kept;
        let mut events = Vec::with_capacity(kept as usize);
        for i in (head - kept)..head {
            let base = ((i % self.capacity()) as usize) * 3;
            events.push(Event::unpack_words(
                self.words[base].load(Ordering::Relaxed),
                self.words[base + 1].load(Ordering::Relaxed),
                self.words[base + 2].load(Ordering::Relaxed),
                slot,
            ));
        }
        (events, overwritten)
    }
}

static NEXT_TRACER_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// (tracer id, claimed slot) — `usize::MAX` slot means "this
    /// tracer has no room for this thread" and is also cached, so a
    /// slotless thread pays one load per event, not one claim.
    static SLOT: Cell<(u64, usize)> = const { Cell::new((0, usize::MAX)) };
}

/// An event recorder: a set of per-thread rings plus a string table
/// for phase names.
pub struct Tracer {
    id: u64,
    clock: ClockMode,
    start: Instant,
    logical: AtomicU64,
    rings: Box<[ThreadRing]>,
    next_slot: AtomicUsize,
    /// Events dropped because every ring slot was claimed.
    unslotted: AtomicU64,
    /// Interned phase names (payloads of Phase* events index this).
    strings: Mutex<Vec<String>>,
}

impl Tracer {
    /// A tracer with the given configuration.
    pub fn new(cfg: TracerConfig) -> Self {
        assert!(cfg.slots > 0 && cfg.events_per_slot > 0, "tracer must have capacity");
        Self {
            id: NEXT_TRACER_ID.fetch_add(1, Ordering::Relaxed),
            clock: cfg.clock,
            start: Instant::now(),
            logical: AtomicU64::new(0),
            rings: (0..cfg.slots).map(|_| ThreadRing::new(cfg.events_per_slot)).collect(),
            next_slot: AtomicUsize::new(0),
            unslotted: AtomicU64::new(0),
            strings: Mutex::new(Vec::new()),
        }
    }

    /// A tracer with default sizing and the given clock.
    pub fn with_clock(clock: ClockMode) -> Self {
        Self::new(TracerConfig { clock, ..TracerConfig::default() })
    }

    /// The capture's clock mode.
    pub fn clock(&self) -> ClockMode {
        self.clock
    }

    #[inline]
    fn now(&self) -> u64 {
        match self.clock {
            ClockMode::Wall => self.start.elapsed().as_nanos() as u64,
            ClockMode::Logical => self.logical.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Claims (or retrieves) this thread's ring slot. Returns
    /// `usize::MAX` when all slots are taken.
    #[inline]
    fn slot(&self) -> usize {
        let (tid, idx) = SLOT.get();
        if tid == self.id {
            return idx;
        }
        let idx = self.next_slot.fetch_add(1, Ordering::Relaxed);
        let idx = if idx < self.rings.len() { idx } else { usize::MAX };
        SLOT.set((self.id, idx));
        idx
    }

    /// Records one event. Lock-free and allocation-free: a timestamp
    /// read, a thread-local hit, three relaxed stores.
    #[inline]
    pub fn record(&self, kind: EventKind, block: u32, lane: u16, payload: u32) {
        let slot = self.slot();
        if slot == usize::MAX {
            self.unslotted.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let (w1, w2) = Event::pack_words(kind.raw(), block, lane, payload);
        self.rings[slot].push(self.now(), w1, w2);
    }

    /// Interns `name`, returning the string id Phase* payloads carry.
    /// Takes a lock — call from host-side phase boundaries, not from
    /// per-element kernel code.
    pub fn intern(&self, name: &str) -> u32 {
        let mut strings = self.strings.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(i) = strings.iter().position(|s| s == name) {
            return i as u32;
        }
        strings.push(name.to_string());
        (strings.len() - 1) as u32
    }

    /// Records a named phase start.
    pub fn phase_start(&self, name: &str) {
        let id = self.intern(name);
        self.record(EventKind::PhaseStart, u32::MAX, 0, id);
    }

    /// Records a named phase end.
    pub fn phase_end(&self, name: &str) {
        let id = self.intern(name);
        self.record(EventKind::PhaseEnd, u32::MAX, 0, id);
    }

    /// Records a round boundary.
    pub fn round(&self, n: u32) {
        self.record(EventKind::Round, u32::MAX, 0, n);
    }

    /// Events dropped because no ring slot was free.
    pub fn dropped_unslotted(&self) -> u64 {
        self.unslotted.load(Ordering::Relaxed)
    }

    /// Drains every ring into a time-ordered capture. Recording may
    /// continue concurrently; the snapshot sees each ring's state at
    /// its own drain point (an *epoch*, not a global barrier — call
    /// between launches for an exact capture).
    pub fn snapshot(&self) -> Snapshot {
        let claimed = self.next_slot.load(Ordering::Relaxed).min(self.rings.len());
        let mut events = Vec::new();
        let mut overwritten = 0;
        for (slot, ring) in self.rings.iter().enumerate().take(claimed) {
            let (mut ring_events, ring_overwritten) = ring.drain(slot as u32);
            events.append(&mut ring_events);
            overwritten += ring_overwritten;
        }
        // Stable by timestamp: per-ring order (already time-ordered
        // within a thread) breaks ties.
        events.sort_by_key(|e| e.ts);
        Snapshot {
            events,
            dropped_overwritten: overwritten,
            dropped_unslotted: self.dropped_unslotted(),
            threads: claimed as u32,
            strings: self.strings.lock().unwrap_or_else(|e| e.into_inner()).clone(),
            clock: self.clock,
        }
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("id", &self.id)
            .field("clock", &self.clock)
            .field("slots", &self.rings.len())
            .field("events_per_slot", &(self.rings.first().map_or(0, |r| r.capacity())))
            .finish()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn logical(slots: usize, per_slot: usize) -> Tracer {
        Tracer::new(TracerConfig { slots, events_per_slot: per_slot, clock: ClockMode::Logical })
    }

    #[test]
    fn records_and_snapshots_in_order() {
        let t = logical(4, 64);
        t.record(EventKind::KernelLaunch, 0, 0, 3);
        t.record(EventKind::BlockStart, 1, 0, 32);
        t.record(EventKind::BlockEnd, 1, 0, 32);
        let s = t.snapshot();
        assert_eq!(s.events.len(), 3);
        assert_eq!(s.events[0].kind(), Some(EventKind::KernelLaunch));
        assert_eq!(s.events[0].payload, 3);
        assert!(s.events.windows(2).all(|w| w[0].ts <= w[1].ts));
        assert_eq!(s.dropped_overwritten, 0);
        assert_eq!(s.dropped_unslotted, 0);
    }

    #[test]
    fn overwrite_oldest_counts_drops() {
        let t = logical(1, 8);
        for i in 0..20u32 {
            t.record(EventKind::Marker, 0, 0, i);
        }
        let s = t.snapshot();
        assert_eq!(s.events.len(), 8);
        assert_eq!(s.dropped_overwritten, 12);
        // The retained window is the *newest* 8 events.
        let payloads: Vec<u32> = s.events.iter().map(|e| e.payload).collect();
        assert_eq!(payloads, (12..20).collect::<Vec<u32>>());
    }

    #[test]
    fn slotless_threads_count_drops_without_blocking() {
        let t = logical(1, 8);
        t.record(EventKind::Marker, 0, 0, 0); // claims the only slot
        std::thread::scope(|s| {
            s.spawn(|| {
                for i in 0..5 {
                    t.record(EventKind::Marker, 0, 0, i);
                }
            });
        });
        let s = t.snapshot();
        assert_eq!(s.events.len(), 1);
        assert_eq!(s.dropped_unslotted, 5);
    }

    #[test]
    fn concurrent_recording_loses_nothing_with_room() {
        let t = logical(8, 4096);
        std::thread::scope(|s| {
            for w in 0..4u32 {
                let t = &t;
                s.spawn(move || {
                    for i in 0..1000 {
                        t.record(EventKind::Marker, w, 0, i);
                    }
                });
            }
        });
        let s = t.snapshot();
        assert_eq!(s.events.len(), 4000);
        assert_eq!(s.dropped_overwritten + s.dropped_unslotted, 0);
        // Logical clock: all timestamps distinct, totally ordered.
        for w in s.events.windows(2) {
            assert!(w[0].ts < w[1].ts);
        }
    }

    #[test]
    fn per_thread_order_is_preserved() {
        let t = logical(8, 4096);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let t = &t;
                s.spawn(move || {
                    for i in 0..500 {
                        t.record(EventKind::Marker, 0, 0, i);
                    }
                });
            }
        });
        let s = t.snapshot();
        // Within each thread the payload sequence must be 0..500.
        for thread in 0..4 {
            let seq: Vec<u32> =
                s.events.iter().filter(|e| e.thread == thread).map(|e| e.payload).collect();
            if !seq.is_empty() {
                assert_eq!(seq, (0..500).collect::<Vec<u32>>());
            }
        }
    }

    #[test]
    fn interning_dedupes() {
        let t = logical(2, 16);
        let a = t.intern("hook");
        let b = t.intern("jump");
        let c = t.intern("hook");
        assert_eq!(a, c);
        assert_ne!(a, b);
        t.phase_start("hook");
        t.phase_end("hook");
        let s = t.snapshot();
        assert_eq!(s.strings, vec!["hook".to_string(), "jump".to_string()]);
        assert_eq!(s.events[0].payload, a);
    }

    #[test]
    fn wall_clock_is_monotonic_per_thread() {
        let t = Tracer::new(TracerConfig { slots: 2, events_per_slot: 64, clock: ClockMode::Wall });
        for i in 0..10 {
            t.record(EventKind::Marker, 0, 0, i);
        }
        let s = t.snapshot();
        assert!(s.events.windows(2).all(|w| w[0].ts <= w[1].ts));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        Tracer::new(TracerConfig { slots: 0, events_per_slot: 8, clock: ClockMode::Logical });
    }
}
