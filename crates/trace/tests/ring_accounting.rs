//! Ring drop-accounting properties under concurrent writers.
//!
//! The tracer's contract is that instrumentation never blocks and
//! never lies about what it kept: whatever the interleaving, slot
//! pressure, and overwrite pressure,
//!
//! - **conservation** — every attempted `record` is accounted for
//!   exactly once: `events + dropped_overwritten + dropped_unslotted
//!   == attempts`;
//! - **monotone sequences** — each writer's retained payloads are a
//!   strictly increasing, *contiguous suffix* of what it wrote (rings
//!   overwrite oldest-first and never reorder a single writer).
//!
//! Shapes are property-driven (slot counts above and below the writer
//! count, rings big enough to keep everything and small enough to
//! wrap many times); the schedule-exhaustive side of the same
//! protocol lives in `ecl-mc`'s `trace-ring` harness.

#![allow(clippy::unwrap_used)]

use proptest::prelude::*;

use ecl_trace::{ClockMode, EventKind, Tracer, TracerConfig};

/// Runs `writers` OS threads writing `per_writer` events each into a
/// fresh tracer and returns (tracer, attempts). Writer `w` records
/// payloads `0..per_writer` tagged with `block == w`.
fn hammer(slots: usize, events_per_slot: usize, writers: usize, per_writer: u32) -> (Tracer, u64) {
    let t = Tracer::new(TracerConfig { slots, events_per_slot, clock: ClockMode::Logical });
    std::thread::scope(|s| {
        for w in 0..writers {
            let t = &t;
            s.spawn(move || {
                for i in 0..per_writer {
                    t.record(EventKind::Marker, w as u32, 0, i);
                }
            });
        }
    });
    (t, writers as u64 * u64::from(per_writer))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_attempt_is_accounted_for(
        slots in 1usize..6,
        events_per_slot in 1usize..48,
        writers in 1usize..6,
        per_writer in 0u32..160,
    ) {
        let (t, attempts) = hammer(slots, events_per_slot, writers, per_writer);
        let s = t.snapshot();
        prop_assert_eq!(
            s.events.len() as u64 + s.dropped_overwritten + s.dropped_unslotted,
            attempts,
            "events {} + overwritten {} + unslotted {} != attempts {}",
            s.events.len(),
            s.dropped_overwritten,
            s.dropped_unslotted,
            attempts
        );
        // A second snapshot of a quiescent tracer agrees: draining is
        // read-only.
        let s2 = t.snapshot();
        prop_assert_eq!(s2.events.len(), s.events.len());
        prop_assert_eq!(s2.dropped_overwritten, s.dropped_overwritten);
        prop_assert_eq!(s2.dropped_unslotted, s.dropped_unslotted);
    }

    #[test]
    fn retained_payloads_are_a_contiguous_increasing_suffix(
        slots in 1usize..6,
        events_per_slot in 1usize..48,
        writers in 1usize..6,
        per_writer in 1u32..160,
    ) {
        let (t, _) = hammer(slots, events_per_slot, writers, per_writer);
        let s = t.snapshot();
        for w in 0..writers as u32 {
            // One writer == one ring slot, so filter by the block tag
            // it stamped (thread/slot ids depend on claim order).
            let seq: Vec<u32> =
                s.events.iter().filter(|e| e.block == w).map(|e| e.payload).collect();
            if seq.is_empty() {
                continue; // writer lost the slot race entirely
            }
            prop_assert!(
                seq.windows(2).all(|p| p[1] == p[0] + 1),
                "writer {} retained a non-contiguous sequence: {:?}",
                w,
                seq
            );
            prop_assert_eq!(
                *seq.last().unwrap(),
                per_writer - 1,
                "overwrite must evict oldest-first, keeping the newest event"
            );
        }
    }

    #[test]
    fn unslotted_drops_exactly_cover_the_excess_writers(
        writers in 2usize..6,
        per_writer in 1u32..60,
    ) {
        // One slot: exactly one writer records, the rest drop
        // everything to the unslotted counter.
        let (t, attempts) = hammer(1, 1 << 9, writers, per_writer);
        let s = t.snapshot();
        prop_assert_eq!(s.events.len() as u64, u64::from(per_writer));
        prop_assert_eq!(s.dropped_overwritten, 0);
        prop_assert_eq!(s.dropped_unslotted, attempts - u64::from(per_writer));
    }
}
