//! `.etr` format robustness: property-based round-trips, a full
//! truncation sweep, and header-corruption fuzzing. The contract —
//! identical to `ecl-graph::io`'s — is that hostile bytes produce
//! `io::Error`s, never panics and never unbounded allocations.

#![allow(clippy::unwrap_used)]

use proptest::prelude::*;

use ecl_trace::{read_snapshot, write_snapshot, ClockMode, EventKind, Tracer, TracerConfig, MAGIC};

/// Builds a capture with `spec`-driven contents on a logical clock.
fn capture(kinds: &[u16], phases: &[String]) -> ecl_trace::Snapshot {
    let t =
        Tracer::new(TracerConfig { slots: 4, events_per_slot: 1 << 12, clock: ClockMode::Logical });
    for name in phases {
        t.phase_start(name);
    }
    for (i, &k) in kinds.iter().enumerate() {
        let kind = EventKind::from_raw(k % 10 + 1).unwrap();
        t.record(kind, i as u32, (i % 7) as u16, i as u32 ^ 0xA5A5);
    }
    for name in phases {
        t.phase_end(name);
    }
    t.snapshot()
}

fn to_bytes(snap: &ecl_trace::Snapshot) -> Vec<u8> {
    let mut buf = Vec::new();
    write_snapshot(&mut buf, snap).expect("serialize to Vec cannot fail");
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn roundtrip_is_lossless(
        kinds in proptest::collection::vec(0u16..20, 0..300),
        nphases in 0usize..6,
    ) {
        let phases: Vec<String> = (0..nphases).map(|i| format!("phase-{i}")).collect();
        let snap = capture(&kinds, &phases);
        let back = read_snapshot(&mut to_bytes(&snap).as_slice())
            .expect("own output must read back");
        prop_assert_eq!(&back.events, &snap.events);
        prop_assert_eq!(&back.strings, &snap.strings);
        prop_assert_eq!(back.dropped_overwritten, snap.dropped_overwritten);
        prop_assert_eq!(back.dropped_unslotted, snap.dropped_unslotted);
        prop_assert_eq!(back.threads, snap.threads);
        prop_assert_eq!(back.clock, snap.clock);
    }

    #[test]
    fn truncation_always_errors_never_panics(
        kinds in proptest::collection::vec(0u16..20, 1..100),
    ) {
        let snap = capture(&kinds, &["p".to_string()]);
        let bytes = to_bytes(&snap);
        // Every proper prefix must fail cleanly.
        for cut in 0..bytes.len() {
            let res = std::panic::catch_unwind(|| read_snapshot(&mut bytes[..cut].as_ref()));
            match res {
                Ok(inner) => prop_assert!(inner.is_err(), "cut {cut} of {} parsed", bytes.len()),
                Err(_) => prop_assert!(false, "cut {cut} of {} panicked", bytes.len()),
            }
        }
        prop_assert!(read_snapshot(&mut bytes.as_slice()).is_ok());
    }

    #[test]
    fn header_corruption_never_panics(
        kinds in proptest::collection::vec(0u16..20, 1..50),
        pos in 0usize..64,
        xor in 1u8..255,
    ) {
        let snap = capture(&kinds, &[]);
        let mut bytes = to_bytes(&snap);
        let pos = pos % bytes.len().clamp(1, 64);
        bytes[pos] ^= xor;
        // A flipped byte in the magic/header/section framing either
        // fails cleanly or — if it only touched event payload bits —
        // parses to some snapshot. It must never panic.
        let res = std::panic::catch_unwind(|| read_snapshot(&mut bytes.as_slice()));
        prop_assert!(res.is_ok(), "corruption at {pos} (xor {xor:#x}) panicked");
    }

    #[test]
    fn arbitrary_garbage_never_panics(
        bytes in proptest::collection::vec(0u8..255, 0..200),
        with_magic in 0u8..2,
    ) {
        let mut bytes = bytes;
        if with_magic == 1 && bytes.len() >= 8 {
            bytes[..8].copy_from_slice(&MAGIC);
        }
        let res = std::panic::catch_unwind(|| read_snapshot(&mut bytes.as_slice()));
        prop_assert!(res.is_ok(), "garbage input panicked");
    }
}
