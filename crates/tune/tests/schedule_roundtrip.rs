//! Schedule wire-format round-trip property: serialize → parse →
//! apply must produce *bit-identical* modeled results to applying the
//! in-memory value, across all five algorithms. This is the contract
//! that makes a `ecl-tune/1` manifest trustworthy — a schedule that
//! won the search wins identically after a trip through JSON, a file,
//! and a different process.

#![allow(clippy::unwrap_used)]

use std::sync::OnceLock;

use ecl_gpusim::schedule::{knob_registry, ALGOS};
use ecl_gpusim::Schedule;
use ecl_tune::{evaluate, TuneInput};
use proptest::prelude::*;

const SCALE: f64 = 0.001;
const SEED: u64 = 11;

/// Inputs are generated once: the property varies the schedule, not
/// the graph, and regeneration per case would dominate the runtime.
fn input_for(algo: &str) -> &'static TuneInput {
    static UNDIRECTED: OnceLock<TuneInput> = OnceLock::new();
    static DIRECTED: OnceLock<TuneInput> = OnceLock::new();
    if algo == "scc" {
        DIRECTED.get_or_init(|| TuneInput::from_registry("toroid-wedge", SCALE, SEED).unwrap())
    } else {
        UNDIRECTED.get_or_init(|| TuneInput::from_registry("internet", SCALE, SEED).unwrap())
    }
}

/// Mixed-radix decode of `salt` into one admissible value per
/// registered knob: every point of the (small, discrete) knob
/// cross-product is reachable, including the dispatch knobs the
/// search itself never varies.
fn schedule_from_salt(algo: &str, mut salt: u64) -> Schedule {
    let mut s = Schedule::new();
    for spec in knob_registry(algo) {
        let n = spec.domain.len() as u64;
        s.set(spec.name, spec.domain.value((salt % n) as usize));
        salt /= n;
    }
    s
}

/// Pins the dispatch knobs to the sequential reference engine.
/// Dispatch knobs round-trip like any other knob (the canonical
/// fixed-point check covers them), but the *evaluation* comparison
/// must not force multi-worker engines: SCC's per-block iteration
/// counters — and hence its modeled time — legitimately depend on
/// thread interleaving (see `tests/scheduler_determinism.rs`), which
/// would fail the property for reasons unrelated to serialization.
fn pin_sequential(mut s: Schedule) -> Schedule {
    use ecl_gpusim::schedule::{KnobValue, INHERIT};
    s.set("dispatch", KnobValue::Str("seq"));
    s.set("workers", KnobValue::Int(1));
    s.set("grain", KnobValue::Int(INHERIT));
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn roundtrip_applies_bit_identically(
        algo_ix in 0usize..ALGOS.len(),
        salt in 0u64..u64::MAX,
    ) {
        let algo = ALGOS[algo_ix];
        let schedule = schedule_from_salt(algo, salt);
        prop_assert!(schedule.check_against_registry(algo).is_ok());

        let wire = schedule.to_json();
        let parsed = Schedule::from_json(&wire).unwrap();
        // The wire form is canonical: re-serializing the parse is a
        // fixed point (manifest diffs stay meaningful).
        prop_assert_eq!(parsed.to_json(), wire);

        let input = input_for(algo);
        let direct = evaluate(algo, input, &pin_sequential(schedule)).unwrap();
        let roundtripped = evaluate(algo, input, &pin_sequential(parsed)).unwrap();
        prop_assert!(
            direct.modeled_time.to_bits() == roundtripped.modeled_time.to_bits(),
            "{}: modeled time drifted across serialization: {} vs {} ({})",
            algo,
            direct.modeled_time,
            roundtripped.modeled_time,
            wire
        );
        prop_assert!(
            direct.result_sig == roundtripped.result_sig,
            "{}: result signature drifted across serialization ({})",
            algo,
            wire
        );
    }
}
