//! `ecl-tune`: a cost-model-driven schedule autotuner.
//!
//! The paper hand-derives three scheduling optimizations by profiling:
//! ECL-CC's first-neighbor-only initialization (§6.2.2), ECL-SCC's
//! per-input block-size choice (§6.2.1, Table 6), and ECL-MST's
//! recomputed launch configuration (§6.2.3, Table 8). Each is one
//! point in a small discrete schedule space. This crate searches those
//! spaces mechanically:
//!
//! - [`eval`] runs one (algorithm, input, schedule) candidate against
//!   the deterministic cost model — the same implementations
//!   `ecl-serve` executes, so modeled wins transfer directly;
//! - [`search`] drives a deterministic search (exhaustive when the
//!   space fits the budget, seeded coordinate descent with
//!   early-abandon pruning otherwise);
//! - [`sweep`] runs the search over an algorithms × inputs grid;
//! - [`manifest`] is the durable output: a versioned `ecl-tune/1`
//!   JSON manifest keyed by (algorithm, graph-family fingerprint),
//!   stamped with the git SHA and full search provenance.
//!
//! Consumers: `ecl-run --tuned <manifest>` applies the matching entry
//! to a single run; the `ecl-serve` catalog attaches best-known
//! schedules to each cached graph at registration, so service jobs run
//! tuned automatically (and are labeled `tuned=true` in /metrics and
//! trace spans).

pub mod eval;
pub mod manifest;
pub mod search;
pub mod sweep;

pub use eval::{evaluate, EvalOutcome, TuneInput};
pub use manifest::{TuneEntry, TuneManifest, SCHEMA};
pub use search::{search, SearchConfig, SearchResult};
pub use sweep::{gate_report, sweep, ReportSide, SweepConfig, SweepOutcome};
