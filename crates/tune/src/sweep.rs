//! The sweep: run the search over an (algorithms × inputs) grid and
//! assemble a manifest plus gateable before/after reports.

use ecl_gpusim::pool::effective_workers;
use ecl_prof::manifest::{Direction, DispatchInfo, Manifest, Metric};

use crate::eval::TuneInput;
use crate::manifest::{TuneEntry, TuneManifest};
use crate::search::{search, SearchConfig};

/// Sweep configuration: which grid to tune and how hard to search.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Registry input names.
    pub inputs: Vec<String>,
    /// Algorithm wire names.
    pub algos: Vec<String>,
    /// Generation scale.
    pub scale: f64,
    /// Generation seed.
    pub seed: u64,
    /// Per-pair search driver settings.
    pub search: SearchConfig,
}

/// The sweep's result: the manifest plus the pairs that were skipped
/// (with reasons), so callers can see coverage was not silently
/// truncated.
#[derive(Clone, Debug)]
pub struct SweepOutcome {
    /// One entry per tuned (algo, input) pair.
    pub manifest: TuneManifest,
    /// `(algo, input, reason)` for each skipped pair.
    pub skipped: Vec<(String, String, String)>,
}

/// Runs the sweep. Incompatible (algo, input) pairs (directedness,
/// missing weighted view) are skipped and reported, not errors: a
/// grid naturally mixes directed and undirected inputs.
pub fn sweep(cfg: &SweepConfig) -> Result<SweepOutcome, String> {
    let mut entries = Vec::new();
    let mut skipped = Vec::new();
    for input_name in &cfg.inputs {
        let input = TuneInput::from_registry(input_name, cfg.scale, cfg.seed)?;
        for algo in &cfg.algos {
            if !input.supports(algo) {
                let dir = if input.fingerprint.directed { "directed" } else { "undirected" };
                skipped.push((algo.clone(), input_name.clone(), format!("input is {dir}")));
                continue;
            }
            let r = search(algo, &input, &cfg.search)?;
            entries.push(TuneEntry {
                algo: algo.clone(),
                input: input_name.clone(),
                family: input.fingerprint.family_key(),
                fingerprint: input.fingerprint.clone(),
                scale: cfg.scale,
                seed: cfg.seed,
                method: r.method.to_string(),
                evaluations: r.evaluations as u64,
                space: r.space as u64,
                default_time: r.default_time,
                tuned_time: r.best_time,
                eval_sketch: r.eval_sketch,
                schedule: r.best,
            });
        }
    }
    Ok(SweepOutcome { manifest: TuneManifest::new(entries), skipped })
}

/// Which side of the before/after comparison to report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReportSide {
    /// Default-schedule modeled times.
    Default,
    /// Tuned-schedule modeled times.
    Tuned,
}

/// Renders one side of the sweep as a gateable `ecl-prof/1` manifest:
/// a `modeled/<algo>:<input>` metric per entry plus a `modeled_total`
/// sum, all lower-is-better. Feeding the Default report as baseline
/// and the Tuned report as candidate to `ecl-prof gate --metric
/// modeled` asserts tuned ≤ default pair by pair.
pub fn gate_report(manifest: &TuneManifest, side: ReportSide) -> Manifest {
    let pick = |e: &TuneEntry| match side {
        ReportSide::Default => e.default_time,
        ReportSide::Tuned => e.tuned_time,
    };
    let mut metrics: Vec<Metric> = manifest
        .entries
        .iter()
        .map(|e| Metric {
            name: format!("modeled/{}:{}", e.algo, e.input),
            unit: "cost_units".into(),
            direction: Direction::Lower,
            samples: vec![pick(e)],
        })
        .collect();
    metrics.push(Metric {
        name: "modeled_total".into(),
        unit: "cost_units".into(),
        direction: Direction::Lower,
        samples: vec![manifest.entries.iter().map(pick).sum()],
    });
    Manifest {
        schema: ecl_prof::manifest::SCHEMA.to_string(),
        git_sha: manifest.git_sha.clone(),
        dispatch: DispatchInfo {
            mode: "pool".into(),
            workers: effective_workers() as u64,
            grain: None,
        },
        context: vec![(
            "side".into(),
            match side {
                ReportSide::Default => "default".into(),
                ReportSide::Tuned => "tuned".into(),
            },
        )],
        metrics,
        kernels: Vec::new(),
        distributions: Vec::new(),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use ecl_prof::{gate_files, GateConfig};

    fn small_sweep() -> SweepOutcome {
        sweep(&SweepConfig {
            inputs: vec!["internet".into(), "toroid-wedge".into()],
            algos: vec!["cc".into(), "scc".into()],
            scale: 0.002,
            seed: 7,
            search: SearchConfig { budget: 64, ..SearchConfig::default() },
        })
        .unwrap()
    }

    #[test]
    fn sweep_covers_compatible_pairs_and_reports_skips() {
        let out = small_sweep();
        let pairs: Vec<(String, String)> =
            out.manifest.entries.iter().map(|e| (e.algo.clone(), e.input.clone())).collect();
        assert!(pairs.contains(&("cc".into(), "internet".into())));
        assert!(pairs.contains(&("scc".into(), "toroid-wedge".into())));
        assert_eq!(out.manifest.entries.len(), 2);
        assert_eq!(out.skipped.len(), 2, "cc×toroid-wedge and scc×internet skip");
        assert!(out.manifest.validate().is_ok());
    }

    #[test]
    fn gate_passes_tuned_vs_default() {
        let out = small_sweep();
        let base = gate_report(&out.manifest, ReportSide::Default).to_json();
        let cand = gate_report(&out.manifest, ReportSide::Tuned).to_json();
        let cfg = GateConfig { metric_filter: Some("modeled".into()), ..GateConfig::default() };
        let report = gate_files(&base, &cand, &cfg).unwrap();
        assert!(report.passed(), "{}", report.render());
    }

    #[test]
    fn unknown_input_is_an_error_not_a_skip() {
        let err = sweep(&SweepConfig {
            inputs: vec!["no-such-graph".into()],
            algos: vec!["cc".into()],
            scale: 0.002,
            seed: 7,
            search: SearchConfig::default(),
        })
        .unwrap_err();
        assert!(err.contains("no-such-graph"));
    }
}
