//! Deterministic schedule search.
//!
//! Two strategies, chosen by comparing the searchable-space size to
//! the evaluation budget:
//!
//! - **exhaustive**: when the product of the searchable knob domains
//!   fits the budget, enumerate every combination in odometer order.
//!   Ties go to the earliest candidate, so the winner is stable.
//! - **coordinate descent**: otherwise, start from the default
//!   schedule and repeatedly scan one knob's domain at a time (knob
//!   order is a seeded permutation), keeping strict improvements. An
//!   early-abandon rule prunes a domain scan after
//!   [`SearchConfig::abandon_after`] consecutive candidates worse than
//!   `best × abandon_ratio` — the classic autotuner trick for skipping
//!   hopeless regions without losing determinism.
//!
//! Knobs marked [`ecl_gpusim::schedule::KnobSpec::cost_neutral`]
//! (dispatch engine, worker count, claim grain) are *excluded* from
//! the search: scheduler determinism guarantees they cannot move the
//! modeled-cost objective, so sweeping them would only burn budget.
//! They stay in every emitted schedule at their defaults.
//!
//! Every distinct candidate is evaluated exactly once (memoized by
//! canonical JSON), and all evaluation times are recorded into an
//! `ecl-profiling` log sketch for manifest provenance.

use std::collections::BTreeMap;

use ecl_gpusim::schedule::{default_schedule, knob_registry, KnobSpec, Schedule};
use ecl_profiling::{LogSketch, SketchSnapshot};

use crate::eval::{evaluate, TuneInput};

/// Search driver configuration.
#[derive(Clone, Debug)]
pub struct SearchConfig {
    /// Maximum distinct candidate evaluations.
    pub budget: usize,
    /// Seed for the coordinate-descent knob permutation.
    pub seed: u64,
    /// Abandon a domain scan after this many consecutive candidates
    /// beyond the abandon ratio.
    pub abandon_after: usize,
    /// "Hopeless" multiple of the best-known time.
    pub abandon_ratio: f64,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig { budget: 128, seed: 42, abandon_after: 2, abandon_ratio: 1.25 }
    }
}

/// The outcome of one (algorithm, input) search.
#[derive(Clone, Debug)]
pub struct SearchResult {
    /// Best complete schedule found (searchable winners plus
    /// cost-neutral defaults).
    pub best: Schedule,
    /// Modeled time of `best`.
    pub best_time: f64,
    /// Modeled time of the default schedule.
    pub default_time: f64,
    /// Distinct candidates evaluated.
    pub evaluations: usize,
    /// Size of the searchable space (domain product).
    pub space: usize,
    /// `"exhaustive"` or `"coordinate_descent"`.
    pub method: &'static str,
    /// Sketch over all evaluation times (cost units), for manifest
    /// provenance.
    pub eval_sketch: SketchSnapshot,
}

/// Splitmix-style step for the knob permutation.
fn lcg_next(state: &mut u64) -> u64 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z ^ (z >> 27)
}

/// Memoizing evaluator: distinct candidates run once, repeats are
/// free.
struct Memo<'a> {
    algo: &'a str,
    input: &'a TuneInput,
    cache: BTreeMap<String, f64>,
    evaluations: usize,
    sketch: LogSketch,
}

impl Memo<'_> {
    fn time(&mut self, s: &Schedule, budget: usize) -> Result<Option<f64>, String> {
        let key = s.to_json();
        if let Some(&t) = self.cache.get(&key) {
            return Ok(Some(t));
        }
        if self.evaluations >= budget {
            return Ok(None);
        }
        let out = evaluate(self.algo, self.input, s)?;
        self.evaluations += 1;
        self.sketch.record(out.modeled_time.max(0.0).round() as u64);
        self.cache.insert(key, out.modeled_time);
        Ok(Some(out.modeled_time))
    }
}

/// Runs the search for `algo` on `input`.
pub fn search(algo: &str, input: &TuneInput, cfg: &SearchConfig) -> Result<SearchResult, String> {
    let registry = knob_registry(algo);
    let searchable: Vec<&KnobSpec> = registry.iter().filter(|k| !k.cost_neutral).collect();
    let space = searchable.iter().map(|k| k.domain.len()).fold(1usize, |a, b| a.saturating_mul(b));

    let mut memo =
        Memo { algo, input, cache: BTreeMap::new(), evaluations: 0, sketch: LogSketch::new() };

    let default = default_schedule(algo);
    let default_time = memo
        .time(&default, cfg.budget.max(1))?
        .ok_or("budget must admit at least the default evaluation")?;

    let mut best = default.clone();
    let mut best_time = default_time;

    let method = if space <= cfg.budget {
        // Exhaustive: odometer over searchable domains.
        let mut indices = vec![0usize; searchable.len()];
        loop {
            let mut candidate = default.clone();
            for (knob, &ix) in searchable.iter().zip(&indices) {
                candidate.set(knob.name, knob.domain.value(ix));
            }
            if let Some(t) = memo.time(&candidate, cfg.budget)? {
                if t < best_time {
                    best_time = t;
                    best = candidate;
                }
            }
            // Advance the odometer (most-significant knob last, so
            // enumeration order is registry order on the lowest knob).
            let mut pos = 0;
            loop {
                if pos == indices.len() {
                    return Ok(finish(memo, best, best_time, default_time, space, "exhaustive"));
                }
                indices[pos] += 1;
                if indices[pos] < searchable[pos].domain.len() {
                    break;
                }
                indices[pos] = 0;
                pos += 1;
            }
        }
    } else {
        // Coordinate descent over a seeded knob permutation.
        let mut order: Vec<usize> = (0..searchable.len()).collect();
        let mut rng = cfg.seed ^ 0x5EED_7A11;
        for i in (1..order.len()).rev() {
            let j = (lcg_next(&mut rng) % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        const MAX_ROUNDS: usize = 4;
        'rounds: for _ in 0..MAX_ROUNDS {
            let mut improved = false;
            for &ki in &order {
                let knob = searchable[ki];
                let mut hopeless = 0usize;
                for vi in 0..knob.domain.len() {
                    let candidate = best.clone().with(knob.name, knob.domain.value(vi));
                    let Some(t) = memo.time(&candidate, cfg.budget)? else {
                        break 'rounds;
                    };
                    if t < best_time {
                        best_time = t;
                        best = candidate;
                        improved = true;
                        hopeless = 0;
                    } else if t > best_time * cfg.abandon_ratio {
                        hopeless += 1;
                        if hopeless >= cfg.abandon_after {
                            break; // early-abandon this domain scan
                        }
                    } else {
                        hopeless = 0;
                    }
                }
            }
            if !improved {
                break;
            }
        }
        "coordinate_descent"
    };
    Ok(finish(memo, best, best_time, default_time, space, method))
}

fn finish(
    memo: Memo<'_>,
    best: Schedule,
    best_time: f64,
    default_time: f64,
    space: usize,
    method: &'static str,
) -> SearchResult {
    SearchResult {
        best,
        best_time,
        default_time,
        evaluations: memo.evaluations,
        space,
        method,
        eval_sketch: memo.sketch.snapshot(),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn internet() -> TuneInput {
        TuneInput::from_registry("internet", 0.002, 7).unwrap()
    }

    #[test]
    fn search_never_loses_to_default() {
        let input = internet();
        for algo in ["cc", "gc", "mis", "mst"] {
            let r = search(algo, &input, &SearchConfig::default()).unwrap();
            assert!(r.best_time <= r.default_time, "{algo}: tuned must not regress");
            assert!(r.evaluations >= 1 && r.evaluations <= 128);
        }
    }

    #[test]
    fn search_is_deterministic() {
        let input = internet();
        let a = search("cc", &input, &SearchConfig::default()).unwrap();
        let b = search("cc", &input, &SearchConfig::default()).unwrap();
        assert_eq!(a.best.to_json(), b.best.to_json());
        assert_eq!(a.best_time.to_bits(), b.best_time.to_bits());
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn cc_search_rediscovers_first_neighbor_init() {
        // The §6.2.2 finding: on a low-diameter power-law input the
        // first-neighbor-only init wins. The search must find it
        // without being told.
        let r = search("cc", &internet(), &SearchConfig::default()).unwrap();
        assert_eq!(r.best.bool_knob("optimized_init"), Some(true), "{}", r.best.to_json());
        assert!(r.best_time < r.default_time);
    }

    #[test]
    fn mst_search_rediscovers_fixed_launch() {
        // The §6.2.3 finding (Table 8): recomputing the launch
        // configuration wins on high-diameter meshes whose worklists
        // shrink over many iterations (delaunay, roadmaps) and loses
        // on low-diameter inputs like internet. The search must find
        // both sides without being told.
        let mesh = TuneInput::from_registry("delaunay_n24", 0.001, 7).unwrap();
        let r = search("mst", &mesh, &SearchConfig::default()).unwrap();
        assert_eq!(r.best.bool_knob("fixed_launch"), Some(true), "{}", r.best.to_json());
        assert!(r.best_time < r.default_time);

        let r = search("mst", &internet(), &SearchConfig::default()).unwrap();
        assert_eq!(r.best.bool_knob("fixed_launch"), Some(false), "{}", r.best.to_json());
    }

    #[test]
    fn scc_search_matches_brute_force_block_size() {
        // The §6.2.1 finding: the winning SCC block size is
        // input-dependent. Whatever the search picks must equal the
        // brute-force winner over the block-size domain.
        let input = TuneInput::from_registry("klein-bottle", 0.002, 7).unwrap();
        let r = search("scc", &input, &SearchConfig::default()).unwrap();
        let mut brute_best = (f64::INFINITY, 0i64);
        for &bs in &[64i64, 128, 256, 512, 1024] {
            for trim in [false, true] {
                let s = default_schedule("scc")
                    .with("block_size", ecl_gpusim::KnobValue::Int(bs))
                    .with("trim", ecl_gpusim::KnobValue::Bool(trim));
                let t = evaluate("scc", &input, &s).unwrap().modeled_time;
                if t < brute_best.0 {
                    brute_best = (t, bs);
                }
            }
        }
        assert_eq!(r.best_time.to_bits(), brute_best.0.to_bits());
        assert_eq!(r.best.int_knob("block_size"), Some(brute_best.1));
    }

    #[test]
    fn tiny_budget_falls_back_to_coordinate_descent() {
        let input = internet();
        let cfg = SearchConfig { budget: 12, ..SearchConfig::default() };
        let r = search("cc", &input, &cfg).unwrap();
        assert_eq!(r.method, "coordinate_descent");
        assert!(r.evaluations <= 12);
        assert!(r.best_time <= r.default_time);
    }

    #[test]
    fn best_schedule_passes_registry_validation() {
        let input = internet();
        let r = search("gc", &input, &SearchConfig::default()).unwrap();
        assert!(r.best.check_against_registry("gc").is_ok());
        // Cost-neutral knobs ride along at defaults.
        assert_eq!(r.best.str_knob("dispatch"), Some("pool"));
    }

    #[test]
    fn sketch_records_every_evaluation() {
        let input = internet();
        let r = search("gc", &input, &SearchConfig::default()).unwrap();
        assert_eq!(r.eval_sketch.count as usize, r.evaluations);
        assert!(r.eval_sketch.p50 > 0);
    }
}
