//! Candidate evaluation: one (algorithm, input, [`Schedule`]) triple →
//! deterministic modeled time plus a result signature.
//!
//! Every evaluation builds a fresh scaled device so cost tallies never
//! leak between candidates, applies the schedule's dispatch policy
//! with [`ecl_gpusim::pool::with_policy`], and runs the algorithm's
//! real implementation — the same code paths `ecl-serve` executes, so
//! a schedule that wins here wins in production. The objective is
//! [`ecl_gpusim::Device::modeled_time`], which the scheduler
//! determinism suite guarantees is a pure function of (algorithm,
//! input, schedule): no repeats, no noise envelope, bit-exact
//! reproducibility.

use std::sync::Arc;

use ecl_gpusim::pool::with_policy;
use ecl_gpusim::{Device, DeviceConfig, Schedule};
use ecl_graph::{Csr, Fingerprint, WeightedCsr};

/// SM floor for SCC runs (the forward/backward sweeps need a
/// multi-block grid even at tiny scales; kept in sync with the bench
/// harness and serve).
pub const SCC_MIN_SMS: usize = 8;

/// Weight cap for generated weighted views (matches the serve
/// catalog's default so tuned MST runs see identical inputs).
pub const DEFAULT_MAX_WEIGHT: u32 = 1 << 20;

/// An RTX 4090 scaled down by `scale`: same SM shape, proportionally
/// fewer SMs, floored at `min_sms`.
pub fn scaled_device(scale: f64, min_sms: usize) -> Device {
    let full = DeviceConfig::rtx4090();
    let num_sms = ((full.num_sms as f64 * scale).round() as usize).max(min_sms).max(1);
    Device::new(DeviceConfig { num_sms, ..full })
}

/// One concrete input under tuning: the graph views the algorithms
/// consume plus its family fingerprint (the manifest bucket key).
#[derive(Clone)]
pub struct TuneInput {
    /// Registry input name.
    pub name: String,
    /// Generation scale.
    pub scale: f64,
    /// Generation seed.
    pub seed: u64,
    /// Unweighted view (CC, GC, MIS, SCC).
    pub csr: Option<Arc<Csr>>,
    /// Weighted view (MST), generated for undirected inputs.
    pub weighted: Option<Arc<WeightedCsr>>,
    /// Structural fingerprint of the unweighted view.
    pub fingerprint: Fingerprint,
}

impl TuneInput {
    /// Generates the registry input `name` at `scale`/`seed` with both
    /// views and its fingerprint.
    pub fn from_registry(name: &str, scale: f64, seed: u64) -> Result<TuneInput, String> {
        let spec = ecl_graphgen::registry::find(name)
            .ok_or_else(|| format!("unknown registry input {name:?}"))?;
        let g = spec.generate(scale, seed);
        let weighted = if spec.directed {
            None
        } else {
            Some(Arc::new(spec.generate_weighted(scale, seed, DEFAULT_MAX_WEIGHT)))
        };
        let fingerprint = Fingerprint::of(&g);
        Ok(TuneInput {
            name: name.to_string(),
            scale,
            seed,
            csr: Some(Arc::new(g)),
            weighted,
            fingerprint,
        })
    }

    /// Whether `algo` can run on this input (the serve directedness
    /// contract: SCC is directed-only, everything else undirected).
    pub fn supports(&self, algo: &str) -> bool {
        match algo {
            "scc" => self.fingerprint.directed && self.csr.is_some(),
            "mst" => !self.fingerprint.directed && self.weighted.is_some(),
            "cc" | "gc" | "mis" => !self.fingerprint.directed && self.csr.is_some(),
            _ => false,
        }
    }
}

/// The outcome of one candidate evaluation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EvalOutcome {
    /// Deterministic modeled GPU time in cost units (the objective).
    pub modeled_time: f64,
    /// FNV signature over the algorithm's solution vector and
    /// aggregates — lets tests assert that two evaluation paths
    /// produced the *same result*, not merely the same cost.
    pub result_sig: u64,
}

/// FNV-1a over a `u32` slice.
fn fnv_u32(h: u64, values: &[u32]) -> u64 {
    let mut h = h;
    for &v in values {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_0000_01b3);
        }
    }
    h
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Evaluates `schedule` for `algo` on `input`. Builds a fresh device,
/// applies the schedule to the algorithm's default config, and runs
/// under the schedule's dispatch policy.
pub fn evaluate(algo: &str, input: &TuneInput, schedule: &Schedule) -> Result<EvalOutcome, String> {
    if !input.supports(algo) {
        return Err(format!(
            "{algo} cannot run on {:?} (directed={})",
            input.name, input.fingerprint.directed
        ));
    }
    let min_sms = if algo == "scc" { SCC_MIN_SMS } else { 1 };
    let device = scaled_device(input.scale, min_sms);
    let missing = || "internal: graph view missing".to_string();
    let result_sig = with_policy(schedule.dispatch_policy(), || -> Result<u64, String> {
        match algo {
            "cc" => {
                let g = input.csr.as_ref().ok_or_else(missing)?;
                let mut cfg = ecl_cc::CcConfig::default();
                cfg.apply_schedule(schedule);
                let r = ecl_cc::run(&device, g, &cfg);
                Ok(fnv_u32(FNV_OFFSET, &r.labels))
            }
            "gc" => {
                let g = input.csr.as_ref().ok_or_else(missing)?;
                let mut cfg = ecl_gc::GcConfig::default();
                cfg.apply_schedule(schedule);
                let r = ecl_gc::run(&device, g, &cfg);
                Ok(fnv_u32(FNV_OFFSET ^ r.rounds as u64, &r.colors))
            }
            "mis" => {
                let g = input.csr.as_ref().ok_or_else(missing)?;
                let mut cfg = ecl_mis::MisConfig::default();
                cfg.apply_schedule(schedule);
                let r = ecl_mis::run(&device, g, &cfg);
                let set: Vec<u32> = r.in_set.iter().map(|&b| b as u32).collect();
                Ok(fnv_u32(FNV_OFFSET ^ r.rounds as u64, &set))
            }
            "mst" => {
                let g = input.weighted.as_ref().ok_or_else(missing)?;
                let mut cfg = ecl_mst::MstConfig::default();
                cfg.apply_schedule(schedule);
                let r = ecl_mst::run(&device, g, &cfg);
                let mut edges: Vec<u32> = r.edges.iter().map(|&e| e as u32).collect();
                edges.sort_unstable();
                Ok(fnv_u32(FNV_OFFSET ^ r.total_weight, &edges))
            }
            "scc" => {
                let g = input.csr.as_ref().ok_or_else(missing)?;
                let mut cfg = ecl_scc::SccConfig::default();
                cfg.apply_schedule(schedule);
                let r = ecl_scc::run(&device, g, &cfg);
                Ok(fnv_u32(FNV_OFFSET ^ r.outer_iterations as u64, &r.labels))
            }
            other => Err(format!("unknown algorithm {other:?}")),
        }
    })?;
    Ok(EvalOutcome { modeled_time: device.modeled_time(), result_sig })
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use ecl_gpusim::schedule::{default_schedule, KnobValue};

    fn internet() -> TuneInput {
        TuneInput::from_registry("internet", 0.002, 7).unwrap()
    }

    #[test]
    fn evaluation_is_bit_deterministic() {
        let input = internet();
        let s = default_schedule("cc");
        let a = evaluate("cc", &input, &s).unwrap();
        let b = evaluate("cc", &input, &s).unwrap();
        assert_eq!(a, b, "same schedule must reproduce bit-identically");
        assert!(a.modeled_time > 0.0);
    }

    #[test]
    fn dispatch_knobs_are_cost_neutral() {
        // The invariant the search relies on: engine/worker/grain
        // choice changes neither cost nor result.
        let input = internet();
        let base = evaluate("cc", &input, &default_schedule("cc")).unwrap();
        let seq = default_schedule("cc")
            .with("dispatch", KnobValue::Str("seq"))
            .with("workers", KnobValue::Int(1));
        let spawn = default_schedule("cc")
            .with("dispatch", KnobValue::Str("spawn"))
            .with("workers", KnobValue::Int(2))
            .with("grain", KnobValue::Int(4));
        for alt in [seq, spawn] {
            let r = evaluate("cc", &input, &alt).unwrap();
            assert_eq!(r.modeled_time.to_bits(), base.modeled_time.to_bits());
            assert_eq!(r.result_sig, base.result_sig);
        }
    }

    #[test]
    fn block_size_changes_modeled_cost() {
        let input = TuneInput::from_registry("toroid-wedge", 0.002, 7).unwrap();
        let d = evaluate("scc", &input, &default_schedule("scc")).unwrap();
        let small = default_schedule("scc").with("block_size", KnobValue::Int(64));
        let s = evaluate("scc", &input, &small).unwrap();
        assert_ne!(d.modeled_time.to_bits(), s.modeled_time.to_bits());
    }

    #[test]
    fn directedness_contract_enforced() {
        let input = internet();
        assert!(evaluate("scc", &input, &default_schedule("scc")).is_err());
        let directed = TuneInput::from_registry("toroid-wedge", 0.002, 7).unwrap();
        assert!(evaluate("cc", &directed, &default_schedule("cc")).is_err());
        assert!(directed.supports("scc") && !directed.supports("mst"));
    }

    #[test]
    fn all_five_algorithms_evaluate() {
        let und = internet();
        for algo in ["cc", "gc", "mis", "mst"] {
            let r = evaluate(algo, &und, &default_schedule(algo)).unwrap();
            assert!(r.modeled_time > 0.0, "{algo}");
        }
        let dir = TuneInput::from_registry("star", 0.002, 7).unwrap();
        assert!(evaluate("scc", &dir, &default_schedule("scc")).unwrap().modeled_time > 0.0);
    }
}
