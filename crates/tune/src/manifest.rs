//! The versioned `ecl-tune/1` schedule manifest.
//!
//! A manifest is the autotuner's durable output: one entry per
//! (algorithm, tuned input), keyed by the input's *family fingerprint*
//! so consumers (`ecl-run --tuned`, the serve catalog) can match
//! graphs the sweep never saw. Each entry carries full search
//! provenance — method, evaluation count, space size, an evaluation
//! -time sketch — plus the default and tuned modeled times, so a
//! reader can audit exactly how much a schedule is worth and
//! regenerate the comparison.

use std::fmt::Write as _;

use ecl_gpusim::Schedule;
use ecl_graph::Fingerprint;
use ecl_prof::json::{self, Value};
use ecl_prof::manifest::git_sha;
use ecl_profiling::SketchSnapshot;

/// Manifest schema identifier. Bump on breaking layout changes;
/// consumers refuse mismatched schemas.
pub const SCHEMA: &str = "ecl-tune/1";

/// One tuned (algorithm, input) record.
#[derive(Clone, Debug)]
pub struct TuneEntry {
    /// Algorithm wire name (`cc`, `gc`, `mis`, `mst`, `scc`).
    pub algo: String,
    /// Registry input the schedule was tuned on.
    pub input: String,
    /// Family bucket key (`Fingerprint::family_key`).
    pub family: String,
    /// Full fingerprint of the tuning input.
    pub fingerprint: Fingerprint,
    /// Generation scale.
    pub scale: f64,
    /// Generation seed.
    pub seed: u64,
    /// Search method (`exhaustive` / `coordinate_descent`).
    pub method: String,
    /// Distinct candidates evaluated.
    pub evaluations: u64,
    /// Searchable-space size (domain product).
    pub space: u64,
    /// Modeled time of the default schedule.
    pub default_time: f64,
    /// Modeled time of the winning schedule.
    pub tuned_time: f64,
    /// Sketch over all candidate evaluation times (cost units).
    pub eval_sketch: SketchSnapshot,
    /// The winning schedule.
    pub schedule: Schedule,
}

impl TuneEntry {
    /// Tuned-over-default improvement ratio (1.0 = no gain).
    pub fn speedup(&self) -> f64 {
        if self.tuned_time > 0.0 {
            self.default_time / self.tuned_time
        } else {
            1.0
        }
    }
}

/// A complete schedule manifest.
#[derive(Clone, Debug)]
pub struct TuneManifest {
    /// Schema identifier ([`SCHEMA`]).
    pub schema: String,
    /// Git SHA of the producing tree.
    pub git_sha: String,
    /// Tuned entries, sweep order.
    pub entries: Vec<TuneEntry>,
}

fn sketch_json(s: &SketchSnapshot) -> String {
    format!(
        "{{\"count\": {}, \"min\": {}, \"max\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
        s.count, s.min, s.max, s.p50, s.p90, s.p99
    )
}

fn sketch_from_value(v: &Value) -> SketchSnapshot {
    let field = |k: &str| v.get(k).and_then(Value::as_f64).unwrap_or(0.0) as u64;
    SketchSnapshot {
        count: field("count"),
        sum: 0,
        min: field("min"),
        max: field("max"),
        p50: field("p50"),
        p90: field("p90"),
        p99: field("p99"),
        buckets: Vec::new(),
    }
}

impl TuneManifest {
    /// A fresh manifest stamped with the current git SHA.
    pub fn new(entries: Vec<TuneEntry>) -> TuneManifest {
        TuneManifest { schema: SCHEMA.to_string(), git_sha: git_sha(), entries }
    }

    /// The best entry for `(algo, family)`: exact family-key match,
    /// highest speedup wins among several tuning representatives.
    pub fn lookup(&self, algo: &str, family: &str) -> Option<&TuneEntry> {
        self.entries.iter().filter(|e| e.algo == algo && e.family == family).max_by(|a, b| {
            a.speedup().partial_cmp(&b.speedup()).unwrap_or(std::cmp::Ordering::Equal)
        })
    }

    /// Structural and semantic validation: schema string, schedules
    /// inside their registry domains, and tuned time never worse than
    /// default (the search always evaluates the default, so a
    /// violating entry is corrupt or hand-edited).
    pub fn validate(&self) -> Result<(), String> {
        if self.schema != SCHEMA {
            return Err(format!("schema {:?}, expected {SCHEMA:?}", self.schema));
        }
        for e in &self.entries {
            let tag = format!("{}/{}", e.algo, e.input);
            e.schedule.check_against_registry(&e.algo).map_err(|err| format!("{tag}: {err}"))?;
            // NaN on either side also fails: partial_cmp yields None.
            let ok = matches!(
                e.tuned_time.partial_cmp(&e.default_time),
                Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
            );
            if !ok {
                return Err(format!(
                    "{tag}: tuned_time {} worse than default_time {}",
                    e.tuned_time, e.default_time
                ));
            }
            if e.evaluations == 0 {
                return Err(format!("{tag}: zero evaluations recorded"));
            }
        }
        Ok(())
    }

    /// Serializes to pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": \"{}\",", json::escape(&self.schema));
        let _ = writeln!(s, "  \"git_sha\": \"{}\",", json::escape(&self.git_sha));
        s.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            let f = &e.fingerprint;
            let _ = writeln!(
                s,
                "    {{\n      \"algo\": \"{}\", \"input\": \"{}\",\n      \
                 \"family\": \"{}\",\n      \
                 \"fingerprint\": {{\"vertices\": {}, \"arcs\": {}, \"directed\": {}, \
                 \"d_avg\": {}, \"d_max\": {}, \"degree_cv\": {}, \"skew\": {}, \
                 \"pseudo_diameter\": {}}},\n      \
                 \"scale\": {}, \"seed\": {},\n      \
                 \"search\": {{\"method\": \"{}\", \"evaluations\": {}, \"space\": {}, \
                 \"eval_units\": {}}},\n      \
                 \"default_time\": {}, \"tuned_time\": {},\n      \
                 \"schedule\": {}\n    }}{}",
                json::escape(&e.algo),
                json::escape(&e.input),
                json::escape(&e.family),
                f.vertices,
                f.arcs,
                f.directed,
                json::num(f.d_avg),
                f.d_max,
                json::num(f.degree_cv),
                json::num(f.skew),
                f.pseudo_diameter,
                json::num(e.scale),
                e.seed,
                json::escape(&e.method),
                e.evaluations,
                e.space,
                sketch_json(&e.eval_sketch),
                json::num(e.default_time),
                json::num(e.tuned_time),
                e.schedule.to_json(),
                if i + 1 < self.entries.len() { "," } else { "" }
            );
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Parses a manifest from JSON text.
    pub fn from_json(text: &str) -> Result<TuneManifest, String> {
        Self::from_value(&json::parse(text)?)
    }

    /// [`TuneManifest::from_json`] over an already-parsed [`Value`].
    pub fn from_value(v: &Value) -> Result<TuneManifest, String> {
        let schema = v
            .get("schema")
            .and_then(Value::as_str)
            .ok_or("not an ecl-tune manifest: no \"schema\" field")?
            .to_string();
        if schema != SCHEMA {
            return Err(format!("schema {schema:?}, expected {SCHEMA:?}"));
        }
        let git_sha = v.get("git_sha").and_then(Value::as_str).unwrap_or("unknown").to_string();
        let mut entries = Vec::new();
        for e in v.get("entries").and_then(Value::as_arr).unwrap_or(&[]) {
            let text = |k: &str| e.get(k).and_then(Value::as_str).unwrap_or("").to_string();
            let num = |k: &str| e.get(k).and_then(Value::as_f64).unwrap_or(0.0);
            let fp = e.get("fingerprint").cloned().unwrap_or(Value::Null);
            let fnum = |k: &str| fp.get(k).and_then(Value::as_f64).unwrap_or(0.0);
            let search = e.get("search").cloned().unwrap_or(Value::Null);
            let schedule = e
                .get("schedule")
                .map(Schedule::from_value)
                .transpose()?
                .ok_or("entry missing \"schedule\"")?;
            entries.push(TuneEntry {
                algo: text("algo"),
                input: text("input"),
                family: text("family"),
                fingerprint: Fingerprint {
                    vertices: fnum("vertices") as usize,
                    arcs: fnum("arcs") as usize,
                    directed: matches!(fp.get("directed"), Some(Value::Bool(true))),
                    d_avg: fnum("d_avg"),
                    d_max: fnum("d_max") as usize,
                    degree_cv: fnum("degree_cv"),
                    skew: fnum("skew"),
                    pseudo_diameter: fnum("pseudo_diameter") as usize,
                },
                scale: num("scale"),
                seed: num("seed") as u64,
                method: search.get("method").and_then(Value::as_str).unwrap_or("").to_string(),
                evaluations: search.get("evaluations").and_then(Value::as_f64).unwrap_or(0.0)
                    as u64,
                space: search.get("space").and_then(Value::as_f64).unwrap_or(0.0) as u64,
                default_time: num("default_time"),
                tuned_time: num("tuned_time"),
                eval_sketch: search.get("eval_units").map(sketch_from_value).unwrap_or_else(|| {
                    SketchSnapshot {
                        count: 0,
                        sum: 0,
                        min: 0,
                        max: 0,
                        p50: 0,
                        p90: 0,
                        p99: 0,
                        buckets: Vec::new(),
                    }
                }),
                schedule,
            });
        }
        Ok(TuneManifest { schema, git_sha, entries })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use ecl_gpusim::schedule::{default_schedule, KnobValue};

    fn entry() -> TuneEntry {
        let sketch = ecl_profiling::LogSketch::new();
        sketch.record_values(&[100, 120, 90]);
        TuneEntry {
            algo: "scc".into(),
            input: "klein-bottle".into(),
            family: "skew=uniform;diam=mid;directed=true".into(),
            fingerprint: Fingerprint {
                vertices: 1000,
                arcs: 4000,
                directed: true,
                d_avg: 4.0,
                d_max: 4,
                degree_cv: 0.01,
                skew: 1.0,
                pseudo_diameter: 60,
            },
            scale: 0.002,
            seed: 7,
            method: "exhaustive".into(),
            evaluations: 10,
            space: 10,
            default_time: 250.0,
            tuned_time: 200.0,
            eval_sketch: sketch.snapshot(),
            schedule: default_schedule("scc").with("block_size", KnobValue::Int(128)),
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let m = TuneManifest::new(vec![entry()]);
        let back = TuneManifest::from_json(&m.to_json()).unwrap();
        assert_eq!(back.schema, SCHEMA);
        assert_eq!(back.entries.len(), 1);
        let (a, b) = (&m.entries[0], &back.entries[0]);
        assert_eq!(a.algo, b.algo);
        assert_eq!(a.family, b.family);
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.default_time.to_bits(), b.default_time.to_bits());
        assert_eq!(a.tuned_time.to_bits(), b.tuned_time.to_bits());
        assert_eq!(a.evaluations, b.evaluations);
        assert_eq!(a.eval_sketch.p50, b.eval_sketch.p50);
        assert_eq!(a.method, b.method);
    }

    #[test]
    fn validate_accepts_good_and_rejects_bad() {
        let good = TuneManifest::new(vec![entry()]);
        good.validate().unwrap();

        let mut worse = good.clone();
        worse.entries[0].tuned_time = 300.0;
        assert!(worse.validate().unwrap_err().contains("worse"));

        let mut out_of_domain = good.clone();
        out_of_domain.entries[0].schedule.set("block_size", KnobValue::Int(333));
        assert!(out_of_domain.validate().is_err());

        let mut bad_schema = good;
        bad_schema.schema = "ecl-tune/99".into();
        assert!(bad_schema.validate().is_err());
    }

    #[test]
    fn wrong_schema_refused_at_parse() {
        let text = TuneManifest::new(vec![]).to_json().replace(SCHEMA, "ecl-prof/1");
        assert!(TuneManifest::from_json(&text).is_err());
    }

    #[test]
    fn lookup_picks_best_speedup_in_family() {
        let mut a = entry();
        let mut b = entry();
        a.input = "slow-rep".into();
        a.tuned_time = 240.0;
        b.input = "fast-rep".into();
        b.tuned_time = 125.0;
        let m = TuneManifest::new(vec![a, b]);
        let hit = m.lookup("scc", "skew=uniform;diam=mid;directed=true").unwrap();
        assert_eq!(hit.input, "fast-rep");
        assert!(m.lookup("cc", "skew=uniform;diam=mid;directed=true").is_none());
        assert!(m.lookup("scc", "skew=powerlaw;diam=low;directed=false").is_none());
    }

    #[test]
    fn speedup_is_default_over_tuned() {
        assert!((entry().speedup() - 1.25).abs() < 1e-12);
    }
}
