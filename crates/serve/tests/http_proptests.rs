//! Property tests for the bounded HTTP/1.1 parser: no input — random
//! garbage, truncated prefixes of valid requests, oversized heads and
//! bodies — may panic the parser or make it exceed its configured
//! limits, and well-formed requests round-trip exactly.

#![allow(clippy::unwrap_used)]

use ecl_serve::http::{read_request, HttpError, Limits, Request, RequestParser};
use proptest::prelude::*;

fn parse_with(bytes: &[u8], limits: &Limits) -> Result<Request, HttpError> {
    read_request(&mut std::io::Cursor::new(bytes), limits)
}

/// Letters for generated tokens (method/path/header segments).
fn token(bytes: &[u8]) -> String {
    bytes.iter().map(|b| (b'a' + (b % 26)) as char).collect()
}

/// Builds a well-formed request from generated parts.
fn well_formed(method: &str, path: &str, headers: &[(String, String)], body: &[u8]) -> Vec<u8> {
    let mut s = format!("{method} /{path} HTTP/1.1\r\n");
    for (k, v) in headers {
        s.push_str(&format!("x-{k}: {v}\r\n"));
    }
    s.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
    let mut bytes = s.into_bytes();
    bytes.extend_from_slice(body);
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // Arbitrary bytes: the parser returns, never panics, and any
    // accepted request respects the configured limits.
    #[test]
    fn random_bytes_never_panic_and_respect_limits(
        bytes in proptest::collection::vec(0u8..255, 0..2048),
        max_head in 64usize..512,
        max_body in 0usize..256,
    ) {
        let limits = Limits { max_head_bytes: max_head, max_body_bytes: max_body, max_headers: 8 };
        if let Ok(req) = parse_with(&bytes, &limits) {
            prop_assert!(req.body.len() <= max_body);
            prop_assert!(req.headers.len() <= 8);
            prop_assert!(!req.method.is_empty());
            prop_assert!(req.path.starts_with('/'));
        }
    }

    // Any strict prefix of a valid request parses as Truncated or
    // Malformed — never Ok, never a panic.
    #[test]
    fn truncated_prefixes_never_succeed(
        path in proptest::collection::vec(0u8..255, 1..12),
        body in proptest::collection::vec(0u8..255, 1..64),
        cut_seed in 0u64..10_000,
    ) {
        let full = well_formed("POST", &token(&path), &[], &body);
        let cut = (cut_seed as usize) % (full.len() - 1); // strict prefix
        let result = parse_with(&full[..cut], &Limits::default());
        prop_assert!(result.is_err(), "prefix of length {cut} parsed: {result:?}");
    }

    // Well-formed requests round-trip: method, path, headers, body.
    #[test]
    fn well_formed_requests_round_trip(
        m in 0usize..4,
        path in proptest::collection::vec(0u8..255, 0..24),
        header_parts in proptest::collection::vec((0u8..255, 0u8..255), 0..6),
        body in proptest::collection::vec(0u8..255, 0..512),
    ) {
        let method = ["GET", "POST", "DELETE", "PUT"][m];
        let headers: Vec<(String, String)> = header_parts
            .iter()
            .enumerate()
            .map(|(i, &(k, v))| (format!("{}{i}", token(&[k])), token(&[v])))
            .collect();
        let bytes = well_formed(method, &token(&path), &headers, &body);
        let req = parse_with(&bytes, &Limits::default()).unwrap();
        prop_assert_eq!(req.method.as_str(), method);
        prop_assert_eq!(req.path.as_str(), &format!("/{}", token(&path)));
        prop_assert_eq!(&req.body, &body);
        for (k, v) in &headers {
            prop_assert_eq!(req.header(&format!("x-{k}")), Some(v.as_str()));
        }
    }

    // Declared Content-Length beyond the body limit is rejected
    // without the parser ever buffering the payload.
    #[test]
    fn oversized_declared_bodies_rejected(
        declared in 1_000_000u64..u64::MAX / 2,
    ) {
        let head = format!("POST /j HTTP/1.1\r\nContent-Length: {declared}\r\n\r\n");
        let limits = Limits { max_body_bytes: 65_536, ..Limits::default() };
        let result = parse_with(head.as_bytes(), &limits);
        prop_assert!(
            matches!(result, Err(HttpError::TooLarge(_))),
            "declared {declared}: {result:?}"
        );
    }

    // Heads that exceed the head budget are cut off at the budget.
    #[test]
    fn oversized_heads_rejected(
        pad in 512usize..4096,
    ) {
        let limits = Limits { max_head_bytes: 256, ..Limits::default() };
        let head = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(pad));
        let result = parse_with(head.as_bytes(), &limits);
        prop_assert!(matches!(result, Err(HttpError::TooLarge(_))), "{result:?}");
    }

    // Incremental parsing is split-invariant: feeding the same byte
    // stream in arbitrary chunkings — byte-by-byte included — yields
    // exactly the same requests as a single feed, across a pipelined
    // sequence of them on one connection.
    #[test]
    fn incremental_parse_is_chunking_invariant(
        specs in proptest::collection::vec(
            (0usize..4,
             proptest::collection::vec(0u8..255, 0..16),
             proptest::collection::vec(0u8..255, 0..128)),
            1..4,
        ),
        cuts in proptest::collection::vec(1usize..64, 0..48),
    ) {
        let mut stream = Vec::new();
        for (m, path, body) in &specs {
            stream.extend_from_slice(&well_formed(
                ["GET", "POST", "DELETE", "PUT"][*m],
                &token(path),
                &[],
                body,
            ));
        }

        // Reference: the whole stream in one feed.
        let mut oneshot = RequestParser::new(Limits::default());
        oneshot.feed(&stream);
        let mut expected = Vec::new();
        while let Some(req) = oneshot.try_next().unwrap() {
            expected.push(req);
        }
        prop_assert_eq!(expected.len(), specs.len());

        // Same stream, chopped at the generated cut widths (tail as
        // one final chunk), draining after every feed.
        let mut chunked = RequestParser::new(Limits::default());
        let mut parsed = Vec::new();
        let mut at = 0;
        for w in &cuts {
            if at >= stream.len() {
                break;
            }
            let end = (at + w).min(stream.len());
            chunked.feed(&stream[at..end]);
            at = end;
            while let Some(req) = chunked.try_next().unwrap() {
                parsed.push(req);
            }
        }
        chunked.feed(&stream[at..]);
        while let Some(req) = chunked.try_next().unwrap() {
            parsed.push(req);
        }

        prop_assert_eq!(parsed.len(), expected.len());
        for (got, want) in parsed.iter().zip(&expected) {
            prop_assert_eq!(&got.method, &want.method);
            prop_assert_eq!(&got.path, &want.path);
            prop_assert_eq!(&got.headers, &want.headers);
            prop_assert_eq!(&got.body, &want.body);
        }
    }

    // Degenerate chunking: one byte at a time, always equivalent.
    #[test]
    fn byte_by_byte_parse_matches_one_shot(
        m in 0usize..4,
        path in proptest::collection::vec(0u8..255, 0..16),
        body in proptest::collection::vec(0u8..255, 0..96),
    ) {
        let bytes = well_formed(["GET", "POST", "DELETE", "PUT"][m], &token(&path), &[], &body);
        let want = parse_with(&bytes, &Limits::default()).unwrap();

        let mut parser = RequestParser::new(Limits::default());
        let mut got = None;
        for b in &bytes {
            parser.feed(std::slice::from_ref(b));
            if let Some(req) = parser.try_next().unwrap() {
                prop_assert!(got.is_none(), "request produced twice");
                got = Some(req);
            }
        }
        let got = got.expect("request never completed byte-by-byte");
        prop_assert_eq!(got.method, want.method);
        prop_assert_eq!(got.path, want.path);
        prop_assert_eq!(got.body, want.body);
    }
}
