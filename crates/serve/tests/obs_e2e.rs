//! End-to-end request correlation: every kernel span in a request's
//! trace carries the originating `ReqId`, concurrent requests do not
//! cross-contaminate, and the SLO engine's series appear in `/metrics`
//! with finite burn rates and exemplars.
//!
//! One `#[test]` on purpose — the obs/prof/trace sinks are
//! process-global, so a second concurrently running server in the same
//! process would race the install/uninstall pairs.

use ecl_prof::json::{parse, Value};
use ecl_serve::catalog::CatalogConfig;
use ecl_serve::http::Limits;
use ecl_serve::loadgen::{http_call, HttpClient};
use ecl_serve::metrics::lint_exposition;
use ecl_serve::scheduler::SchedulerConfig;
use ecl_serve::server::{ServeConfig, Server};

fn field_f64(v: &Value, key: &str) -> f64 {
    v.get(key).and_then(Value::as_f64).unwrap_or(-1.0)
}

fn field_str<'v>(v: &'v Value, key: &str) -> &'v str {
    v.get(key).and_then(Value::as_str).unwrap_or("")
}

/// Submits one job over a persistent connection and returns
/// `(job_id, req_id_from_header, response)`.
fn submit_wait(target: &str, body: &str) -> (u64, u64, Value) {
    let mut client = HttpClient::new(target, true);
    let (status, text) = client.call("POST", "/v1/jobs", Some(body)).expect("submit");
    assert_eq!(status, 200, "wait_ms submission should answer terminal: {text}");
    let v = parse(&text).unwrap_or(Value::Null);
    let job_id = field_f64(&v, "id") as u64;
    (job_id, client.last_req_id(), v)
}

/// Fetches and parses a request trace by job id.
fn fetch_trace(target: &str, job_id: u64) -> Value {
    let (status, text) =
        http_call(target, "GET", &format!("/v1/jobs/{job_id}/trace"), None).expect("trace");
    assert_eq!(status, 200, "trace endpoint: {text}");
    parse(&text).expect("trace JSON parses")
}

/// Asserts the invariants the trace endpoint promises: the summary
/// carries the header's req id, all kernel spans belong to `algo`
/// (names are `<algo>.`-prefixed), and kernel wall time is positive
/// and bounded by the reported run time plus accounting slack.
fn check_trace(trace: &Value, req_id: u64, algo: &str) {
    let summary = trace.get("summary").expect("summary present");
    assert_eq!(field_f64(summary, "req") as u64, req_id, "x-ecl-req matches the trace identity");
    assert_eq!(field_str(summary, "algo"), algo);
    assert_eq!(field_str(summary, "outcome"), "done");

    let spans = trace.get("spans").and_then(Value::as_arr).expect("spans array");
    let prefix = format!("{algo}.");
    let mut kernel_sum_ns = 0.0;
    let mut kernels = 0u64;
    for span in spans {
        match field_str(span, "kind") {
            "kernel" => {
                kernels += 1;
                kernel_sum_ns += field_f64(span, "wall_ns");
                let name = field_str(span, "name");
                assert!(
                    name.starts_with(&prefix),
                    "kernel {name:?} leaked into the {algo} request's trace"
                );
            }
            "phase" => {
                assert!(!field_str(span, "name").is_empty());
            }
            other => panic!("unknown span kind {other:?}"),
        }
    }
    assert!(kernels > 0, "request ran kernels; the trace must carry them");
    assert_eq!(field_f64(summary, "kernels") as u64, kernels, "summary agrees with span count");

    // Accounting: kernel wall time sums to (at most) the run time.
    // Slack covers launch gaps inside rounds and timer rounding; the
    // sum must never *exceed* run time by more than measurement noise.
    let run_ns = field_f64(summary, "run_ns");
    assert!(run_ns > 0.0, "run_ns recorded");
    assert!(kernel_sum_ns > 0.0, "kernel spans carry wall time");
    let bound = run_ns * 1.25 + 5_000_000.0;
    assert!(
        kernel_sum_ns <= bound,
        "kernel wall sum {kernel_sum_ns}ns exceeds run {run_ns}ns (+slack)"
    );
}

#[test]
fn request_correlation_flows_from_http_to_kernels() {
    let server = Server::start(ServeConfig {
        listen: "127.0.0.1:0".to_string(),
        catalog: CatalogConfig::default(),
        scheduler: SchedulerConfig { max_queue: 32, max_concurrency: 2, max_history: 256 },
        result_entries: 64,
        limits: Limits::default(),
        slo: Some("cc:p99=5ms,err=1%".to_string()),
        // Pin every trace: nothing this test submits may age out.
        slow_request_ms: 0,
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let target = server.addr().to_string();

    // Warm the graph so the measured requests are not dominated by a
    // cold generate+materialize (distinct seeds below avoid the result
    // cache — a cached request runs no kernels).
    let warm =
        r#"{"algo": "cc", "graph": "internet", "scale": 0.002, "seed": 0, "wait_ms": 60000}"#;
    let (_, warm_req, v) = submit_wait(&target, warm);
    assert_eq!(field_str(&v, "state"), "done");
    assert!(warm_req != 0, "every HTTP response carries x-ecl-req");

    // Two concurrent requests running *different* algorithms: kernel
    // names are algo-prefixed, so any cross-request sample leakage
    // shows up as a foreign prefix in the other request's trace.
    let cc_body =
        r#"{"algo": "cc", "graph": "internet", "scale": 0.002, "seed": 1, "wait_ms": 60000}"#;
    let gc_body =
        r#"{"algo": "gc", "graph": "internet", "scale": 0.002, "seed": 2, "wait_ms": 60000}"#;
    let cc_thread = {
        let target = target.clone();
        std::thread::spawn(move || submit_wait(&target, cc_body))
    };
    let gc_thread = {
        let target = target.clone();
        std::thread::spawn(move || submit_wait(&target, gc_body))
    };
    let (cc_job, cc_req, cc_v) = cc_thread.join().expect("cc thread");
    let (gc_job, gc_req, gc_v) = gc_thread.join().expect("gc thread");
    assert_eq!(field_str(&cc_v, "state"), "done", "{cc_v:?}");
    assert_eq!(field_str(&gc_v, "state"), "done", "{gc_v:?}");
    assert!(cc_req != 0 && gc_req != 0 && cc_req != gc_req, "distinct per-request ids");

    check_trace(&fetch_trace(&target, cc_job), cc_req, "cc");
    check_trace(&fetch_trace(&target, gc_job), gc_req, "gc");

    // Flight recorder: both requests are in the ring, and ?slowest=N
    // returns a bounded, ordered view.
    let (status, text) = http_call(&target, "GET", "/v1/debug/requests", None).expect("debug");
    assert_eq!(status, 200);
    let v = parse(&text).expect("debug JSON");
    assert!(field_f64(&v, "retained") >= 3.0, "warm + cc + gc retained: {text}");
    let listed: Vec<u64> = v
        .get("requests")
        .and_then(Value::as_arr)
        .expect("requests array")
        .iter()
        .map(|r| field_f64(r, "req") as u64)
        .collect();
    assert!(listed.contains(&cc_req) && listed.contains(&gc_req), "{listed:?}");

    let (status, text) =
        http_call(&target, "GET", "/v1/debug/requests?slowest=2", None).expect("debug slowest");
    assert_eq!(status, 200);
    let v = parse(&text).expect("slowest JSON");
    let slowest = v.get("requests").and_then(Value::as_arr).expect("requests array");
    assert_eq!(slowest.len(), 2, "slowest=N bounds the answer");
    let t0 = field_f64(&slowest[0], "total_ns");
    let t1 = field_f64(&slowest[1], "total_ns");
    assert!(t0 >= t1, "slowest-first ordering: {t0} < {t1}");

    // SLO series: finite burn rates, exemplars linking buckets to req
    // ids, and the whole exposition stays lint-clean.
    let (status, prom) = http_call(&target, "GET", "/metrics", None).expect("metrics");
    assert_eq!(status, 200);
    for needle in [
        "ecl_slo_requests_total{algo=\"cc\"",
        "ecl_slo_burn_rate{algo=\"cc\"",
        "ecl_slo_error_budget{algo=\"cc\"",
        "ecl_slo_latency_seconds_bucket",
        "ecl_obs_requests_retained",
    ] {
        assert!(prom.contains(needle), "missing {needle:?} in /metrics");
    }
    for line in prom.lines().filter(|l| l.starts_with("ecl_slo_burn_rate")) {
        let value = line.rsplit(' ').next().unwrap_or("");
        let parsed: f64 = value.parse().unwrap_or(f64::NAN);
        assert!(parsed.is_finite(), "burn rate must be finite: {line}");
    }
    assert!(prom.contains("# {req_id=\""), "latency histogram carries exemplars");
    let problems = lint_exposition(&prom);
    assert!(problems.is_empty(), "live /metrics hygiene:\n{}", problems.join("\n"));

    server.shutdown();
}
