//! Result-cache equivalence: for each of the five algorithms, a job
//! served from the result cache returns **bit-identical** aggregates
//! to a cold direct run — same counts, same solution-vector
//! checksums, same modeled-time bit pattern.
//!
//! The chain being validated: deterministic generation (seeded),
//! deterministic weight synthesis, deterministic MIS tie-break salt,
//! content-hash cache keying, and the scheduler's hit path cloning the
//! stored output unchanged.

#![allow(clippy::unwrap_used)]

use std::sync::Arc;
use std::time::Duration;

use ecl_serve::cache::ResultCache;
use ecl_serve::catalog::{CatalogConfig, GraphCatalog};
use ecl_serve::exec::execute;
use ecl_serve::jobs::{Algo, JobSpec, JobState};
use ecl_serve::metrics::ServeMetrics;
use ecl_serve::scheduler::{Scheduler, SchedulerConfig};

/// A representative (undirected or directed, as required) input per
/// algorithm, at a scale small enough for the full five-way sweep.
fn spec_for(algo: Algo) -> JobSpec {
    let graph = match algo {
        Algo::Scc => "star",          // directed mesh
        Algo::Mst => "USA-road-d.NY", // weighted view
        _ => "internet",
    };
    let mut spec = JobSpec::new(algo, graph);
    spec.scale = 0.002;
    spec.seed = 1234;
    spec
}

#[test]
fn cache_hits_are_bit_identical_for_all_five_algorithms() {
    let catalog = Arc::new(GraphCatalog::new(CatalogConfig::default()));
    let scheduler = Scheduler::start(
        SchedulerConfig { max_queue: 16, max_concurrency: 2, max_history: 64 },
        Arc::clone(&catalog),
        Arc::new(ResultCache::new(32)),
        ServeMetrics::new(),
    );

    for algo in Algo::ALL {
        let spec = spec_for(algo);

        // Cold run through the scheduler (fills the cache).
        let cold = scheduler.submit(spec.clone()).unwrap();
        assert_eq!(
            cold.wait_terminal(Duration::from_secs(120)),
            JobState::Done,
            "{} cold run failed: {:?}",
            algo.name(),
            cold.end_message()
        );
        assert!(!cold.status().cached, "{}: first run must be a miss", algo.name());
        let cold_out = cold.with_output(|o| o.clone()).unwrap();

        // Same spec again: must be served from the cache...
        let warm = scheduler.submit(spec.clone()).unwrap();
        assert_eq!(warm.wait_terminal(Duration::from_secs(120)), JobState::Done);
        assert!(warm.status().cached, "{}: identical resubmission must hit", algo.name());
        let warm_out = warm.with_output(|o| o.clone()).unwrap();

        // ...and bit-identical to an independent direct execution.
        let direct = execute(&spec, &catalog).unwrap();
        assert_eq!(warm_out, cold_out, "{}: hit differs from cold run", algo.name());
        assert_eq!(direct, cold_out, "{}: direct run differs from scheduler run", algo.name());
        assert_eq!(
            warm_out.modeled_time.to_bits(),
            direct.modeled_time.to_bits(),
            "{}: modeled time must match to the bit",
            algo.name()
        );
        assert!(!warm_out.aggregates.is_empty());

        // A different seed is a different key: no false sharing.
        let mut other = spec.clone();
        other.seed = 4321;
        let fresh = scheduler.submit(other).unwrap();
        assert_eq!(fresh.wait_terminal(Duration::from_secs(120)), JobState::Done);
        assert!(!fresh.status().cached, "{}: new seed must miss", algo.name());
        if algo != Algo::Gc {
            // GC's color count can coincide across inputs; every other
            // algorithm's checksummed output must differ across seeds.
            let fresh_out = fresh.with_output(|o| o.clone()).unwrap();
            assert_ne!(fresh_out, cold_out, "{}: seeds must not collide", algo.name());
        }
    }
    scheduler.shutdown();
}
