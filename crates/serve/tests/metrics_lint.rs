//! Prometheus exposition hygiene for `/metrics`.
//!
//! The rendering is assembled from three sources (the manifest
//! exposition in `ecl-prof`, the serve counters, and the `ecl_slo_*`
//! family from `ecl-obs`), each hand-formatted — an easy place for a
//! series to lose its `# HELP`/`# TYPE` metadata or for a counter to
//! drop its `_total` suffix, which strict scrapers reject. The lint in
//! `ecl_serve::metrics::lint_exposition` is `std`-only and runs over a
//! real rendering with every source populated.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use ecl_serve::cache::ResultCache;
use ecl_serve::catalog::{CatalogConfig, GraphCatalog};
use ecl_serve::jobs::Algo;
use ecl_serve::metrics::{lint_exposition, ServeMetrics};

/// Renders `/metrics` with every section live: latency sketches,
/// kernel series from a profiling collector, serve counters, the SLO
/// engine (burn rates + exemplar histogram), and the recorder gauge.
fn full_rendering() -> String {
    let m = ServeMetrics::new();
    m.jobs_admitted.store(5, Ordering::Relaxed);
    m.jobs_done.store(4, Ordering::Relaxed);
    m.jobs_failed.store(1, Ordering::Relaxed);
    m.record_latency(Algo::Cc, 120, 4500);
    m.record_latency(Algo::Gc, 90, 5100);
    let catalog = GraphCatalog::new(CatalogConfig::default());
    let results = ResultCache::new(4);

    let collector = ecl_prof::Collector::new();
    collector.record(&ecl_prof::LaunchSample {
        kernel: "cc.init".to_string(),
        shape: "flat",
        blocks: 64,
        block_size: 256,
        wall_ns: 10_000,
        workers: vec![ecl_prof::WorkerStat { blocks: 64, claims: 64, busy_ns: 9_000 }],
        req: 7,
        shard: 0,
    });

    let slo = ecl_obs::SloEngine::from_spec("cc:p99=5ms,err=1%").expect("valid spec");
    slo.observe("cc", 7, 4_500_000, true);
    slo.observe("cc", 8, 9_000_000, false);
    let obs = Arc::new(ecl_obs::Obs::new(ecl_obs::RecorderConfig::default(), Some(slo)));
    obs.recorder.begin(7, 1, "cc", "internet");
    obs.recorder.finish(7, 1, "cc", "internet", ecl_obs::FinishInfo::default());

    m.render_prometheus(&catalog, &results, 2, 1, 3, Some(&collector), Some(&obs))
}

#[test]
fn full_metrics_rendering_passes_the_lint() {
    let text = full_rendering();
    // The sections this test exists to cover are actually present.
    for needle in
        ["ecl_serve_jobs_finished_total", "ecl_slo_burn_rate", "ecl_slo_latency_seconds_bucket"]
    {
        assert!(text.contains(needle), "rendering lost section {needle:?}:\n{text}");
    }
    let problems = lint_exposition(&text);
    assert!(problems.is_empty(), "exposition hygiene violations:\n{}", problems.join("\n"));
}

#[test]
fn lint_flags_missing_metadata_and_bad_counters() {
    // A sample with neither HELP nor TYPE.
    let problems = lint_exposition("orphan_series 1\n");
    assert!(problems.iter().any(|p| p.contains("no preceding HELP")), "{problems:?}");
    assert!(problems.iter().any(|p| p.contains("no preceding TYPE")), "{problems:?}");

    // A counter without the _total suffix.
    let text = "# HELP bad_counter x\n# TYPE bad_counter counter\nbad_counter 3\n";
    let problems = lint_exposition(text);
    assert!(problems.iter().any(|p| p.contains("does not end in _total")), "{problems:?}");

    // Metadata after the first sample of the family.
    let text = "# HELP late_total x\n# TYPE late_total counter\nlate_total 1\n\
                # HELP late_total again\n";
    let problems = lint_exposition(text);
    assert!(problems.iter().any(|p| p.contains("after its first sample")), "{problems:?}");

    // An unparseable sample value.
    let text = "# HELP g x\n# TYPE g gauge\ng not-a-number\n";
    let problems = lint_exposition(text);
    assert!(problems.iter().any(|p| p.contains("does not parse")), "{problems:?}");
}

#[test]
fn lint_accepts_exemplars_and_machine_suffixes() {
    // OpenMetrics exemplar on a histogram bucket plus the _sum/_count
    // machine-suffixed series — all fold into the declared family.
    let text = "# HELP h request latency\n# TYPE h histogram\n\
                h_bucket{le=\"0.1\"} 3 # {req_id=\"42\"} 0.042\n\
                h_bucket{le=\"+Inf\"} 4\n\
                h_sum 0.5\n\
                h_count 4\n";
    let problems = lint_exposition(text);
    assert!(problems.is_empty(), "{problems:?}");
}
