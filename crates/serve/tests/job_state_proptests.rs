//! Property test of the job lifecycle state machine: no sequence of
//! scheduler-shaped events can drive a [`JobRecord`] through an
//! illegal transition, and the record always agrees with a reference
//! model evolved by the declared transition relation.

#![allow(clippy::unwrap_used)]

use ecl_serve::jobs::{Algo, JobRecord, JobSpec, JobState};
use proptest::prelude::*;

const STATES: [JobState; 6] = [
    JobState::Queued,
    JobState::Running,
    JobState::Done,
    JobState::Failed,
    JobState::Cancelled,
    JobState::DeadlineExceeded,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    // Drive a record with an arbitrary event sequence; the record
    // must accept exactly the transitions `can_become` allows, and
    // the resulting path must always be `queued [→ running] [→
    // terminal]` with terminal states absorbing.
    #[test]
    fn arbitrary_event_sequences_respect_the_relation(
        events in proptest::collection::vec(0usize..6, 0..24),
    ) {
        let job = JobRecord::new(1, JobSpec::new(Algo::Cc, "internet"));
        let mut model = JobState::Queued;
        let mut seen_terminal = false;
        for &e in &events {
            let target = STATES[e];
            let expect = model.can_become(target);
            let applied = job.transition(target, None);
            prop_assert!(
                applied == expect,
                "from {:?} to {:?}: record {} but relation says {}",
                model, target, applied, expect
            );
            if applied {
                prop_assert!(!seen_terminal, "terminal state was not absorbing");
                model = target;
            }
            seen_terminal = model.is_terminal();
            prop_assert_eq!(job.state(), model);
        }
        // Whatever happened, the final state is reachable from Queued
        // by the declared relation (or is Queued itself).
        let legal_finals = [
            JobState::Queued,
            JobState::Running,
            JobState::Done,
            JobState::Failed,
            JobState::Cancelled,
            JobState::DeadlineExceeded,
        ];
        prop_assert!(legal_finals.contains(&job.state()));
    }

    // The relation itself: exactly the six documented edges, nothing
    // else — checked exhaustively per random pair to keep the edge
    // list and `can_become` from drifting apart.
    #[test]
    fn relation_matches_documented_edges(a in 0usize..6, b in 0usize..6) {
        use JobState::*;
        let (from, to) = (STATES[a], STATES[b]);
        let documented = matches!(
            (from, to),
            (Queued, Running)
                | (Queued, Cancelled)
                | (Queued, DeadlineExceeded)
                | (Running, Done)
                | (Running, Failed)
                | (Running, DeadlineExceeded)
        );
        prop_assert_eq!(from.can_become(to), documented);
        // Structural corollaries.
        if from.is_terminal() {
            prop_assert!(!from.can_become(to), "terminal {from:?} must be a sink");
        }
        if from.can_become(to) {
            prop_assert!(from != to, "no self-loops");
        }
    }

    // Cancellation requests only succeed from `queued`, and a
    // cancelled job can never have run.
    #[test]
    fn cancel_only_from_queued(run_first in 0usize..2) {
        let job = JobRecord::new(9, JobSpec::new(Algo::Mis, "internet"));
        if run_first == 1 {
            job.transition(JobState::Running, None);
            prop_assert!(!job.request_cancel());
            prop_assert!(!job.transition(JobState::Cancelled, None));
        } else {
            prop_assert!(job.request_cancel());
            prop_assert!(job.transition(JobState::Cancelled, None));
            prop_assert_eq!(job.status().run_ms, 0.0);
        }
    }
}
