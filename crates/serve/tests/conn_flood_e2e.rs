//! Connection-level end-to-end tests: the failure mode this server
//! was rebuilt to survive. A flood of idle and slow-loris connections
//! beyond `max_connections` must be rejected with an immediate 503 —
//! not a thread each — while healthy requests keep succeeding, and the
//! read deadline must reclaim the stuck slots without operator help.

#![allow(clippy::unwrap_used)]

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use ecl_serve::catalog::CatalogConfig;
use ecl_serve::http::Limits;
use ecl_serve::loadgen::http_call;
use ecl_serve::scheduler::SchedulerConfig;
use ecl_serve::server::{ServeConfig, Server};

/// Serializes these tests: thread-count and connection-count
/// assertions must not see another test's server churning.
static FLOOD_LOCK: Mutex<()> = Mutex::new(());

fn flood_server(max_connections: usize, read_timeout_ms: u64) -> Server {
    Server::start(ServeConfig {
        listen: "127.0.0.1:0".to_string(),
        catalog: CatalogConfig::default(),
        scheduler: SchedulerConfig { max_queue: 16, max_concurrency: 2, max_history: 64 },
        result_entries: 16,
        limits: Limits::default(),
        max_connections,
        read_timeout_ms,
        write_timeout_ms: 5_000,
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port")
}

#[cfg(target_os = "linux")]
fn thread_count() -> usize {
    std::fs::read_dir("/proc/self/task").map(|d| d.count()).unwrap_or(0)
}

fn wait_until(deadline: Duration, mut ok: impl FnMut() -> bool) -> bool {
    let t0 = Instant::now();
    while t0.elapsed() < deadline {
        if ok() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    ok()
}

/// Scrapes `/metrics` and returns the value of a counter line.
fn counter(target: &str, name: &str) -> u64 {
    let (status, text) = http_call(target, "GET", "/metrics", None).unwrap();
    assert_eq!(status, 200);
    text.lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .and_then(|l| l[name.len()..].trim().parse().ok())
        .unwrap_or_else(|| panic!("no counter {name} in:\n{text}"))
}

// The headline acceptance check: two orders of magnitude more open
// connections than the old model could hold without two orders of
// magnitude more threads. 120 idle keep-alive connections stay open
// (read timeout is long) while the process thread count stays flat —
// accept + reactor + workers, nothing per-connection.
#[test]
fn hundreds_of_idle_connections_with_flat_thread_count() {
    let _guard = FLOOD_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let server = flood_server(160, 30_000);
    let target = server.addr().to_string();

    // Warm: one request so lazily spawned threads exist before the
    // baseline measurement.
    assert_eq!(http_call(&target, "GET", "/healthz", None).unwrap().0, 200);
    #[cfg(target_os = "linux")]
    let baseline = thread_count();

    let held: Vec<TcpStream> =
        (0..120).map(|_| TcpStream::connect(&target).expect("connect idle")).collect();
    assert!(
        wait_until(Duration::from_secs(5), || server.open_connections() >= 120),
        "server never registered the idle flood (open = {})",
        server.open_connections()
    );

    // Healthy traffic still flows past the idle herd.
    let (status, body) = http_call(&target, "GET", "/healthz", None).unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("\"ok\": true"));

    #[cfg(target_os = "linux")]
    {
        let during = thread_count();
        assert!(
            during <= baseline + 3,
            "thread count grew with connections: {baseline} -> {during} for 120 idle conns"
        );
    }

    let (_, metrics) = http_call(&target, "GET", "/metrics", None).unwrap();
    assert!(metrics.contains("ecl_serve_connections_open 12"), "{metrics}");

    drop(held);
    assert!(
        wait_until(Duration::from_secs(5), || server.open_connections() <= 1),
        "dropped connections were not reaped (open = {})",
        server.open_connections()
    );
    server.shutdown();
}

// Beyond `max_connections` the accept thread answers 503 and closes on
// the spot; once the read deadline reclaims the idle and slow-loris
// slots, new clients are served again. No restart, no thread leak.
#[test]
fn flood_beyond_cap_gets_503_and_deadline_recovers_the_slots() {
    let _guard = FLOOD_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let server = flood_server(12, 1_200);
    let target = server.addr().to_string();

    // Fill the cap: 8 fully idle + 4 slow-loris connections that
    // trickle a partial request head and stall.
    let mut held: Vec<TcpStream> = Vec::new();
    for _ in 0..8 {
        held.push(TcpStream::connect(&target).expect("connect idle"));
    }
    for _ in 0..4 {
        let mut s = TcpStream::connect(&target).expect("connect loris");
        s.write_all(b"POST /v1/jobs HTTP/1.1\r\nContent-Le").expect("loris bytes");
        held.push(s);
    }
    assert!(
        wait_until(Duration::from_secs(5), || server.open_connections() >= 12),
        "flood never filled the cap (open = {})",
        server.open_connections()
    );

    // The 13th connection is told to go away immediately: a complete
    // 503 response, then EOF. It must not hang waiting for a slot.
    let mut turned_away = 0;
    for _ in 0..3 {
        let mut s = TcpStream::connect(&target).expect("connect over cap");
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut raw = Vec::new();
        s.read_to_end(&mut raw).expect("read 503");
        let text = String::from_utf8_lossy(&raw);
        assert!(text.starts_with("HTTP/1.1 503"), "over-cap response: {text:?}");
        assert!(text.contains("connection limit reached"), "{text:?}");
        turned_away += 1;
    }
    assert_eq!(turned_away, 3);

    // The read deadline reclaims every stuck slot — the slow-loris
    // trickle must not have extended it.
    assert!(
        wait_until(Duration::from_secs(6), || server.open_connections() == 0),
        "deadline never reclaimed the flood (open = {})",
        server.open_connections()
    );
    let (status, body) = http_call(&target, "GET", "/healthz", None).unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("\"ok\": true"));

    assert!(counter(&target, "ecl_serve_connections_rejected_total") >= 3);
    assert!(counter(&target, "ecl_serve_conn_read_timeouts_total") >= 12);
    assert!(counter(&target, "ecl_serve_connections_accepted_total") >= 15);
    drop(held);
    server.shutdown();
}

// Keep-alive on the wire: one raw socket, three requests, three
// responses, connection stays open until the client says close.
#[test]
fn keep_alive_serves_sequential_requests_on_one_socket() {
    let _guard = FLOOD_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let server = flood_server(16, 10_000);
    let target = server.addr().to_string();

    let mut s = TcpStream::connect(&target).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let read_one = |s: &mut TcpStream| -> String {
        let mut buf = Vec::new();
        let mut chunk = [0u8; 1024];
        loop {
            // Head complete?
            if let Some(i) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                let head = String::from_utf8_lossy(&buf[..i]).to_string();
                let len: usize = head
                    .lines()
                    .find_map(|l| l.strip_prefix("Content-Length: "))
                    .and_then(|v| v.trim().parse().ok())
                    .expect("response carries Content-Length");
                while buf.len() < i + 4 + len {
                    let n = s.read(&mut chunk).expect("read body");
                    assert!(n > 0, "server hung up mid-body");
                    buf.extend_from_slice(&chunk[..n]);
                }
                return String::from_utf8_lossy(&buf[..i + 4 + len]).to_string();
            }
            let n = s.read(&mut chunk).expect("read head");
            assert!(n > 0, "server hung up before response");
            buf.extend_from_slice(&chunk[..n]);
        }
    };

    for _ in 0..2 {
        s.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let response = read_one(&mut s);
        assert!(response.starts_with("HTTP/1.1 200"), "{response}");
        assert!(response.contains("Connection: keep-alive"), "{response}");
        assert!(response.contains("\"ok\": true"), "{response}");
    }

    // Third request asks to close: the server honors it with EOF.
    s.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").unwrap();
    let response = read_one(&mut s);
    assert!(response.starts_with("HTTP/1.1 200"), "{response}");
    assert!(response.contains("Connection: close"), "{response}");
    let mut rest = Vec::new();
    s.read_to_end(&mut rest).expect("clean EOF after close");
    assert!(rest.is_empty(), "bytes after close: {rest:?}");

    // Exactly one connection served all three requests.
    assert_eq!(counter(&target, "ecl_serve_keepalive_reuses_total"), 2);
    server.shutdown();
}
