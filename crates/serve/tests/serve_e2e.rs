//! End-to-end tests over a real listening server: submission,
//! backpressure (429), malformed-input handling, panic survival,
//! cancellation, `/metrics` content, and graceful-shutdown drain with
//! zero dropped in-flight jobs.

#![allow(clippy::unwrap_used)]

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use ecl_prof::json::{parse, Value};
use ecl_serve::catalog::CatalogConfig;
use ecl_serve::http::Limits;
use ecl_serve::loadgen::http_call;
use ecl_serve::scheduler::SchedulerConfig;
use ecl_serve::server::{ServeConfig, Server};

fn small_server(max_queue: usize, max_concurrency: usize) -> Server {
    Server::start(ServeConfig {
        listen: "127.0.0.1:0".to_string(),
        catalog: CatalogConfig::default(),
        scheduler: SchedulerConfig { max_queue, max_concurrency, max_history: 256 },
        result_entries: 64,
        limits: Limits::default(),
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port")
}

fn submit(target: &str, body: &str) -> (u16, Value) {
    let (status, text) = http_call(target, "POST", "/v1/jobs", Some(body)).unwrap();
    (status, parse(&text).unwrap_or(Value::Null))
}

fn field_str<'v>(v: &'v Value, key: &str) -> &'v str {
    v.get(key).and_then(Value::as_str).unwrap_or("")
}

#[test]
fn submit_poll_and_result() {
    let server = small_server(16, 2);
    let target = server.addr().to_string();

    let (status, body) = http_call(&target, "GET", "/healthz", None).unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("\"ok\": true"));

    // Async submission: 202 + queued/running state, then poll to done.
    let (status, v) =
        submit(&target, r#"{"algo": "cc", "graph": "internet", "scale": 0.002, "seed": 5}"#);
    assert_eq!(status, 202, "{v:?}");
    let id = v.get("id").and_then(Value::as_f64).unwrap() as u64;
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    let final_v = loop {
        let (s, text) = http_call(&target, "GET", &format!("/v1/jobs/{id}"), None).unwrap();
        assert_eq!(s, 200);
        let v = parse(&text).unwrap();
        match field_str(&v, "state") {
            "done" => break v,
            "failed" | "cancelled" | "deadline-exceeded" => panic!("job ended badly: {text}"),
            _ => {
                assert!(std::time::Instant::now() < deadline, "job never finished");
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    };
    let result = final_v.get("result").expect("done job carries a result");
    assert!(result.get("aggregates").and_then(|a| a.get("num_components")).is_some());
    assert!(result.get("modeled_time").and_then(Value::as_f64).unwrap() > 0.0);

    // Synchronous submission of the same spec: immediate done + cached.
    let (status, v) = submit(
        &target,
        r#"{"algo": "cc", "graph": "internet", "scale": 0.002, "seed": 5, "wait_ms": 60000}"#,
    );
    assert_eq!(status, 200);
    assert_eq!(field_str(&v, "state"), "done");
    assert_eq!(v.get("cached").map(|c| matches!(c, Value::Bool(true))), Some(true));

    // Unknown job and bad id.
    assert_eq!(http_call(&target, "GET", "/v1/jobs/999999", None).unwrap().0, 404);
    assert_eq!(http_call(&target, "GET", "/v1/jobs/xyz", None).unwrap().0, 400);
    server.shutdown();
}

#[test]
fn graphs_catalog_lists_registry() {
    let server = small_server(4, 1);
    let target = server.addr().to_string();
    let (status, text) = http_call(&target, "GET", "/v1/graphs", None).unwrap();
    assert_eq!(status, 200);
    let v = parse(&text).unwrap();
    let rows = v.get("graphs").and_then(Value::as_arr).unwrap();
    assert!(rows.len() >= 22, "expected the full registry, got {}", rows.len());
    assert!(rows.iter().any(|r| field_str(r, "name") == "internet"));
    assert!(rows
        .iter()
        .any(|r| field_str(r, "name") == "star"
            && matches!(r.get("directed"), Some(Value::Bool(true)))));
    server.shutdown();
}

#[test]
fn backpressure_rejects_with_429_not_queueing() {
    let server = small_server(2, 1);
    let target = server.addr().to_string();
    // Stall the single worker, fill the queue of 2, then overflow.
    let slow = r#"{"algo": "cc", "graph": "internet", "delay_ms": 700}"#;
    assert_eq!(submit(&target, slow).0, 202);
    // Wait for the worker to pick the stalled job up so the queue is empty.
    let t0 = std::time::Instant::now();
    loop {
        let (_, text) = http_call(&target, "GET", "/metrics", None).unwrap();
        if text.contains("ecl_serve_jobs_running 1") || t0.elapsed() > Duration::from_secs(5) {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let quick = r#"{"algo": "cc", "graph": "internet", "delay_ms": 100}"#;
    assert_eq!(submit(&target, quick).0, 202);
    assert_eq!(submit(&target, quick).0, 202);
    let (status, v) = submit(&target, quick);
    assert_eq!(status, 429, "third queued job must be rejected: {v:?}");

    let (_, metrics) = http_call(&target, "GET", "/metrics", None).unwrap();
    assert!(metrics.contains("ecl_serve_admission_rejections_total 1"), "{metrics}");
    server.shutdown();
}

#[test]
fn malformed_requests_do_not_kill_the_server() {
    let server = small_server(8, 1);
    let target = server.addr().to_string();

    // Raw garbage straight onto the socket.
    for garbage in [
        b"\x00\xffnot http at all\r\n\r\n".to_vec(),
        b"GET  HTTP/1.1\r\n\r\n".to_vec(),
        vec![0xde; 2048],
        b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n".to_vec(),
    ] {
        let mut s = TcpStream::connect(&target).unwrap();
        let _ = s.write_all(&garbage);
        let mut out = Vec::new();
        let _ = s.set_read_timeout(Some(Duration::from_secs(5)));
        let _ = s.read_to_end(&mut out);
    }
    // Bad JSON / bad fields through the parser.
    assert_eq!(submit(&target, "{not json").0, 400);
    assert_eq!(submit(&target, r#"{"algo": "bfs", "graph": "internet"}"#).0, 400);
    assert_eq!(submit(&target, r#"{"algo": "cc"}"#).0, 400);
    assert_eq!(submit(&target, r#"{"algo": "cc", "graph": "internet", "scale": 7}"#).0, 400);
    // Unknown graph is admitted, then fails cleanly.
    let (status, v) = submit(&target, r#"{"algo": "cc", "graph": "nope", "wait_ms": 30000}"#);
    assert_eq!(status, 200);
    assert_eq!(field_str(&v, "state"), "failed");
    // SCC on an undirected graph fails with a clear message.
    let (_, v) = submit(&target, r#"{"algo": "scc", "graph": "internet", "wait_ms": 30000}"#);
    assert_eq!(field_str(&v, "state"), "failed");
    assert!(field_str(&v, "error").contains("directed"));

    // The server still works.
    let (status, v) = submit(&target, r#"{"algo": "mis", "graph": "internet", "wait_ms": 60000}"#);
    assert_eq!(status, 200);
    assert_eq!(field_str(&v, "state"), "done");
    let (_, metrics) = http_call(&target, "GET", "/metrics", None).unwrap();
    assert!(metrics.contains("ecl_serve_http_malformed_total"), "{metrics}");
    server.shutdown();
}

#[test]
fn panicking_job_is_contained() {
    let server = small_server(8, 1);
    let target = server.addr().to_string();
    let (status, v) = submit(
        &target,
        r#"{"algo": "cc", "graph": "internet", "fault": "panic", "wait_ms": 30000}"#,
    );
    assert_eq!(status, 200);
    assert_eq!(field_str(&v, "state"), "failed");
    assert!(field_str(&v, "error").contains("panicked"), "{v:?}");
    // The worker thread survived and serves the next job.
    let (_, v) = submit(&target, r#"{"algo": "gc", "graph": "internet", "wait_ms": 60000}"#);
    assert_eq!(field_str(&v, "state"), "done");
    let (_, metrics) = http_call(&target, "GET", "/metrics", None).unwrap();
    assert!(metrics.contains("ecl_serve_jobs_panicked_total 1"), "{metrics}");
    server.shutdown();
}

#[test]
fn cancellation_of_queued_job() {
    let server = small_server(8, 1);
    let target = server.addr().to_string();
    // Stall the worker, then cancel a job stuck behind it.
    submit(&target, r#"{"algo": "cc", "graph": "internet", "delay_ms": 500}"#);
    let (_, v) = submit(&target, r#"{"algo": "cc", "graph": "internet"}"#);
    let id = v.get("id").and_then(Value::as_f64).unwrap() as u64;
    let (status, text) = http_call(&target, "DELETE", &format!("/v1/jobs/{id}"), None).unwrap();
    assert_eq!(status, 200, "{text}");
    let v = parse(&text).unwrap();
    assert_eq!(field_str(&v, "state"), "cancelled");
    // Cancelling again conflicts.
    let (status, _) = http_call(&target, "DELETE", &format!("/v1/jobs/{id}"), None).unwrap();
    assert_eq!(status, 409);
    server.shutdown();
}

#[test]
fn metrics_expose_required_series() {
    let server = small_server(8, 2);
    let target = server.addr().to_string();
    submit(&target, r#"{"algo": "cc", "graph": "internet", "wait_ms": 60000}"#);
    submit(&target, r#"{"algo": "cc", "graph": "internet", "wait_ms": 60000}"#);
    let (status, text) = http_call(&target, "GET", "/metrics", None).unwrap();
    assert_eq!(status, 200);
    for needle in [
        "ecl_serve_queue_depth",
        "ecl_serve_jobs_running",
        "ecl_serve_admission_rejections_total",
        "ecl_serve_result_cache_hit_ratio",
        "ecl_distribution{name=\"job_run_us/cc\",quantile=\"0.99\"}",
        "ecl_serve_graph_cache_hits_total",
        // Kernel series from the installed profiling collector.
        "ecl_kernel_wall_ns",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_in_flight_jobs() {
    let server = small_server(32, 2);
    let target = server.addr().to_string();

    // Queue a burst of delayed jobs, then shut down mid-flight.
    let ids: Vec<u64> = (0..6)
        .map(|i| {
            let body = format!(
                "{{\"algo\": \"cc\", \"graph\": \"internet\", \"seed\": {i}, \"delay_ms\": 60}}"
            );
            let (status, v) = submit(&target, &body);
            assert_eq!(status, 202);
            v.get("id").and_then(Value::as_f64).unwrap() as u64
        })
        .collect();

    // Begin the drain over HTTP, as an operator would.
    let (status, _) = http_call(&target, "POST", "/v1/admin/shutdown", None).unwrap();
    assert_eq!(status, 202);
    let (_, health) = http_call(&target, "GET", "/healthz", None).unwrap();
    assert!(health.contains("\"draining\": true"), "{health}");
    // New submissions are refused while draining.
    let (status, _) = submit(&target, r#"{"algo": "cc", "graph": "internet"}"#);
    assert_eq!(status, 503);

    // Complete the drain; every admitted job must have finished —
    // zero dropped in-flight jobs.
    server.shutdown();
    let jobs = server.jobs_snapshot();
    for id in ids {
        let job = jobs
            .iter()
            .find(|j| j.id == id)
            .unwrap_or_else(|| panic!("job {id} vanished during drain"));
        assert_eq!(
            job.state(),
            ecl_serve::jobs::JobState::Done,
            "job {id} was dropped by shutdown: {:?}",
            job.end_message()
        );
    }
}
