//! Result cache: `(graph content hash, algorithm, params, seed)` →
//! completed [`RunOutput`].
//!
//! Keying on the graph's *content hash* rather than its name makes the
//! cache immune to catalog aliasing: a disk file shadowing a registry
//! input, a regenerated graph at a different seed, or an operator
//! swapping a file in place all change the hash and therefore miss.
//! Because every run is deterministic (the job seed pins generation,
//! weight synthesis, and MIS tie-breaking), a hit is guaranteed
//! bit-identical to re-running — `tests/result_cache_equivalence.rs`
//! checks that for all five algorithms.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::exec::RunOutput;
use crate::jobs::JobSpec;

/// Builds the cache key for `spec` run against the graph with
/// `graph_hash`. The param key already encodes algorithm, scale bits,
/// seed, and block size; deadline and fault are excluded (they do not
/// affect what is computed).
pub fn result_key(graph_hash: u64, spec: &JobSpec) -> String {
    format!("{graph_hash:016x};{}", spec.param_key())
}

struct Slot {
    output: Arc<RunOutput>,
    last_used: u64,
}

/// Bounded LRU of completed results. Cheap to share.
pub struct ResultCache {
    slots: Mutex<HashMap<String, Slot>>,
    max_entries: usize,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ResultCache {
    /// A cache retaining at most `max_entries` results.
    pub fn new(max_entries: usize) -> ResultCache {
        ResultCache {
            slots: Mutex::new(HashMap::new()),
            max_entries: max_entries.max(1),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<String, Slot>> {
        self.slots.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Looks up a result, counting a hit or miss.
    pub fn get(&self, key: &str) -> Option<Arc<RunOutput>> {
        let stamp = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut slots = self.lock();
        match slots.get_mut(key) {
            Some(slot) => {
                slot.last_used = stamp;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&slot.output))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a completed result, evicting the least-recently-used
    /// entry if the cache is full.
    pub fn put(&self, key: String, output: Arc<RunOutput>) {
        let stamp = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut slots = self.lock();
        slots.insert(key, Slot { output, last_used: stamp });
        while slots.len() > self.max_entries {
            let Some(victim) =
                slots.iter().min_by_key(|(_, s)| s.last_used).map(|(k, _)| k.clone())
            else {
                break;
            };
            slots.remove(&victim);
        }
    }

    /// `(hits, misses, resident_entries)`.
    pub fn stats(&self) -> (u64, u64, usize) {
        let len = self.lock().len();
        (self.hits.load(Ordering::Relaxed), self.misses.load(Ordering::Relaxed), len)
    }

    /// Hit ratio in `[0, 1]`; 0 when the cache has never been queried.
    pub fn hit_ratio(&self) -> f64 {
        let (h, m, _) = self.stats();
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::jobs::Algo;

    fn output(tag: u64) -> Arc<RunOutput> {
        Arc::new(RunOutput {
            algo: Algo::Cc,
            graph: "g".into(),
            graph_hash: tag,
            vertices: 1,
            arcs: 0,
            aggregates: vec![("num_components", tag)],
            modeled_time: 1.0,
            tuned: false,
        })
    }

    #[test]
    fn key_includes_graph_hash_and_params() {
        let spec = JobSpec::new(Algo::Cc, "internet");
        let a = result_key(1, &spec);
        let b = result_key(2, &spec);
        assert_ne!(a, b);
        let mut spec2 = spec.clone();
        spec2.seed = 9;
        assert_ne!(result_key(1, &spec), result_key(1, &spec2));
    }

    #[test]
    fn hit_miss_and_lru_eviction() {
        let cache = ResultCache::new(2);
        assert!(cache.get("a").is_none());
        cache.put("a".into(), output(1));
        cache.put("b".into(), output(2));
        assert_eq!(cache.get("a").unwrap().graph_hash, 1);
        // Inserting "c" evicts "b" (least recently used).
        cache.put("c".into(), output(3));
        assert!(cache.get("b").is_none());
        assert!(cache.get("a").is_some());
        assert!(cache.get("c").is_some());
        let (hits, misses, len) = cache.stats();
        assert_eq!((hits, misses, len), (3, 2, 2));
        assert!((cache.hit_ratio() - 3.0 / 5.0).abs() < 1e-12);
    }
}
