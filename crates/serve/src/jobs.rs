//! Job model: what a client submits, the lifecycle state machine, and
//! the completed-run record.
//!
//! The state machine is deliberately explicit — [`JobState::can_become`]
//! is the single source of truth for legal transitions, the scheduler
//! goes through [`JobRecord::transition`] for every change, and a
//! proptest (`tests/job_state_proptests.rs`) checks that no sequence
//! of scheduler-shaped events can produce an illegal transition:
//!
//! ```text
//! queued ──▶ running ──▶ done | failed | deadline-exceeded
//!    │                                 ▲
//!    └─────▶ cancelled | deadline-exceeded (before ever running)
//! ```
//!
//! Terminal states are sinks; `cancelled` is reachable only from
//! `queued` (a running job cannot be preempted mid-kernel — the
//! simulator's launches are not interruptible, matching a real GPU).

use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::exec::RunOutput;

/// The five servable algorithms.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algo {
    /// ECL-CC connected components.
    Cc,
    /// ECL-GC graph coloring.
    Gc,
    /// ECL-MIS maximal independent set.
    Mis,
    /// ECL-MST minimum spanning tree.
    Mst,
    /// ECL-SCC strongly connected components.
    Scc,
}

impl Algo {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            Algo::Cc => "cc",
            Algo::Gc => "gc",
            Algo::Mis => "mis",
            Algo::Mst => "mst",
            Algo::Scc => "scc",
        }
    }

    /// Parses a wire name.
    pub fn from_name(s: &str) -> Option<Algo> {
        Some(match s {
            "cc" => Algo::Cc,
            "gc" => Algo::Gc,
            "mis" => Algo::Mis,
            "mst" => Algo::Mst,
            "scc" => Algo::Scc,
            _ => return None,
        })
    }

    /// All five, for iteration in tests and docs.
    pub const ALL: [Algo; 5] = [Algo::Cc, Algo::Gc, Algo::Mis, Algo::Mst, Algo::Scc];
}

/// Fault injected into a job for testing the server's isolation
/// (never set by well-behaved clients; documented in the README).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Fault {
    /// No fault.
    #[default]
    None,
    /// Panic inside the job body — the scheduler must contain it.
    Panic,
    /// Sleep this many milliseconds before running (makes queueing,
    /// deadline, and drain tests deterministic).
    DelayMs(u32),
}

/// Everything a `POST /v1/jobs` body can specify.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// Algorithm to run.
    pub algo: Algo,
    /// Catalog graph name (registry input or `--graphs-dir` file stem).
    pub graph: String,
    /// Input scale for generated graphs (1.0 = paper size).
    pub scale: f64,
    /// Deterministic job seed: feeds the generator registry, the MST
    /// weight hashing, and the MIS tie-break permutation, so identical
    /// `(algo, graph, scale, seed, params)` requests are byte-identical.
    pub seed: u64,
    /// SCC/GC block size override.
    pub block_size: Option<usize>,
    /// Number of dispatch-pool shards (modeled GPUs). 1 = single-pool
    /// execution through the ordinary kernels; >1 routes CC/MIS/SCC
    /// through `ecl-shard` with one device per shard.
    pub shards: u32,
    /// Relative deadline; a job that has not *started* by then is
    /// failed with `deadline-exceeded` instead of running.
    pub deadline_ms: Option<u64>,
    /// Test-only fault injection.
    pub fault: Fault,
}

impl JobSpec {
    /// A well-formed default spec for `algo` on `graph` (tests).
    pub fn new(algo: Algo, graph: &str) -> JobSpec {
        JobSpec {
            algo,
            graph: graph.to_string(),
            scale: 0.001,
            seed: 0,
            block_size: None,
            shards: 1,
            deadline_ms: None,
            fault: Fault::None,
        }
    }

    /// The canonical parameter string used in result-cache keys and
    /// status bodies: every field that affects the output, in a fixed
    /// order. (Deadline and fault do not change *what* is computed.)
    pub fn param_key(&self) -> String {
        format!(
            "algo={};scale={};seed={};block_size={};shards={}",
            self.algo.name(),
            // Exact bit pattern: 0.1 and 0.1000001 must not collide.
            self.scale.to_bits(),
            self.seed,
            self.block_size.map_or(-1i64, |b| b as i64),
            // Sharded and single-pool runs share a cache entry only if
            // bit-identical — which they are for results, but not for
            // modeled time, so the shard count is always part of the
            // key.
            self.shards,
        )
    }
}

/// Lifecycle states. Wire names are the kebab-case of the variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum JobState {
    /// Admitted, waiting for a scheduler slot.
    Queued,
    /// Executing.
    Running,
    /// Completed successfully; a result is attached.
    Done,
    /// The job body failed (panic, unknown graph, bad configuration).
    Failed,
    /// Cancelled while still queued.
    Cancelled,
    /// Missed its deadline before starting.
    DeadlineExceeded,
}

impl JobState {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
            JobState::DeadlineExceeded => "deadline-exceeded",
        }
    }

    /// Whether the job has reached a sink state.
    pub fn is_terminal(self) -> bool {
        !matches!(self, JobState::Queued | JobState::Running)
    }

    /// The transition relation — the *only* definition of legality.
    pub fn can_become(self, next: JobState) -> bool {
        use JobState::*;
        matches!(
            (self, next),
            (Queued, Running)
                | (Queued, Cancelled)
                | (Queued, DeadlineExceeded)
                | (Running, Done)
                | (Running, Failed)
                | (Running, DeadlineExceeded)
        )
    }
}

/// What terminated a job, attached at the terminal transition.
#[derive(Debug)]
pub enum JobEnd {
    /// Success, with the run's output.
    Output(Box<RunOutput>),
    /// Failure or cancellation message.
    Message(String),
}

/// Shared mutable state of one admitted job.
#[derive(Debug)]
struct JobInner {
    state: JobState,
    end: Option<JobEnd>,
    /// Whether the result came from the result cache.
    cached: bool,
    /// Set → a cancel request arrived while queued.
    cancel_requested: bool,
    queued_at: Instant,
    started_at: Option<Instant>,
    finished_at: Option<Instant>,
}

/// One admitted job: spec + monitored lifecycle state.
#[derive(Debug)]
pub struct JobRecord {
    /// Server-assigned id.
    pub id: u64,
    /// Originating HTTP request id (`ecl-obs` correlation; 0 for jobs
    /// submitted outside the HTTP surface, e.g. direct scheduler use).
    pub req: u64,
    /// The submitted spec.
    pub spec: JobSpec,
    inner: Mutex<JobInner>,
    changed: Condvar,
}

/// Snapshot of a job's observable state for status bodies.
#[derive(Debug)]
pub struct JobStatus {
    /// Current state.
    pub state: JobState,
    /// Whether the result was a cache hit.
    pub cached: bool,
    /// Milliseconds spent queued (so far, or total once started).
    pub queue_ms: f64,
    /// Milliseconds spent running (0 until started).
    pub run_ms: f64,
}

impl JobRecord {
    /// A freshly admitted job in `Queued` with no request context.
    pub fn new(id: u64, spec: JobSpec) -> JobRecord {
        JobRecord::with_req(id, spec, 0)
    }

    /// A freshly admitted job in `Queued`, correlated to the HTTP
    /// request that submitted it.
    pub fn with_req(id: u64, spec: JobSpec, req: u64) -> JobRecord {
        JobRecord {
            id,
            req,
            spec,
            inner: Mutex::new(JobInner {
                state: JobState::Queued,
                end: None,
                cached: false,
                cancel_requested: false,
                queued_at: Instant::now(),
                started_at: None,
                finished_at: None,
            }),
            changed: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, JobInner> {
        // A panicking job never holds this lock (the scheduler
        // transitions outside catch_unwind), so poisoning here means a
        // bug in the server itself, not in a job body.
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Current state.
    pub fn state(&self) -> JobState {
        self.lock().state
    }

    /// Attempts `next`; returns whether the transition was applied.
    /// Illegal transitions are rejected (not panics): the scheduler
    /// races cancellation against startup, and the loser must be a
    /// clean no-op.
    pub fn transition(&self, next: JobState, end: Option<JobEnd>) -> bool {
        let mut g = self.lock();
        if !g.state.can_become(next) {
            return false;
        }
        g.state = next;
        match next {
            JobState::Running => g.started_at = Some(Instant::now()),
            _ if next.is_terminal() => {
                g.finished_at = Some(Instant::now());
                g.end = end;
            }
            _ => {}
        }
        drop(g);
        self.changed.notify_all();
        true
    }

    /// Marks the result as served from the result cache.
    pub fn mark_cached(&self) {
        self.lock().cached = true;
    }

    /// Requests cancellation. Returns true if the job was still queued
    /// (it will be cancelled before it can start).
    pub fn request_cancel(&self) -> bool {
        let mut g = self.lock();
        if g.state == JobState::Queued {
            g.cancel_requested = true;
            true
        } else {
            false
        }
    }

    /// Whether a cancel request is pending (checked by the scheduler
    /// before starting the job).
    pub fn cancel_requested(&self) -> bool {
        self.lock().cancel_requested
    }

    /// The absolute start deadline, if the spec set one.
    pub fn deadline(&self) -> Option<Instant> {
        let g = self.lock();
        self.spec.deadline_ms.map(|ms| g.queued_at + Duration::from_millis(ms))
    }

    /// Observable status snapshot.
    pub fn status(&self) -> JobStatus {
        let g = self.lock();
        let queue_end = g.started_at.or(g.finished_at).unwrap_or_else(Instant::now);
        let run_ms = match (g.started_at, g.finished_at) {
            (Some(s), Some(f)) => f.duration_since(s).as_secs_f64() * 1e3,
            (Some(s), None) => s.elapsed().as_secs_f64() * 1e3,
            _ => 0.0,
        };
        JobStatus {
            state: g.state,
            cached: g.cached,
            queue_ms: queue_end.duration_since(g.queued_at).as_secs_f64() * 1e3,
            run_ms,
        }
    }

    /// Runs `f` on the terminal output, if the job ended with one.
    pub fn with_output<R>(&self, f: impl FnOnce(&RunOutput) -> R) -> Option<R> {
        let g = self.lock();
        match &g.end {
            Some(JobEnd::Output(out)) => Some(f(out)),
            _ => None,
        }
    }

    /// The failure/cancellation message, if the job ended with one.
    pub fn end_message(&self) -> Option<String> {
        let g = self.lock();
        match &g.end {
            Some(JobEnd::Message(m)) => Some(m.clone()),
            _ => None,
        }
    }

    /// Blocks until the job reaches a terminal state or `timeout`
    /// elapses; returns the final observed state.
    pub fn wait_terminal(&self, timeout: Duration) -> JobState {
        let deadline = Instant::now() + timeout;
        let mut g = self.lock();
        while !g.state.is_terminal() {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, _) = self
                .changed
                .wait_timeout(g, deadline - now)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            g = guard;
        }
        g.state
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn algo_names_roundtrip() {
        for a in Algo::ALL {
            assert_eq!(Algo::from_name(a.name()), Some(a));
        }
        assert_eq!(Algo::from_name("bfs"), None);
    }

    #[test]
    fn transition_relation_shape() {
        use JobState::*;
        let all = [Queued, Running, Done, Failed, Cancelled, DeadlineExceeded];
        for s in all {
            // Terminal states are sinks.
            if s.is_terminal() {
                assert!(all.iter().all(|&t| !s.can_become(t)), "{s:?} must be a sink");
            }
            // No self-loops anywhere.
            assert!(!s.can_become(s));
        }
        assert!(Queued.can_become(Running));
        assert!(Queued.can_become(Cancelled));
        assert!(!Running.can_become(Cancelled));
        assert!(!Queued.can_become(Done), "a job cannot finish without running");
    }

    #[test]
    fn record_lifecycle_and_timing() {
        let job = JobRecord::new(7, JobSpec::new(Algo::Cc, "internet"));
        assert_eq!(job.state(), JobState::Queued);
        assert!(job.transition(JobState::Running, None));
        assert!(!job.transition(JobState::Cancelled, None), "running can't cancel");
        assert!(job.transition(JobState::Done, Some(JobEnd::Message("x".into()))));
        assert!(!job.transition(JobState::Failed, None), "done is a sink");
        let st = job.status();
        assert_eq!(st.state, JobState::Done);
        assert!(st.queue_ms >= 0.0 && st.run_ms >= 0.0);
        assert_eq!(job.wait_terminal(Duration::from_millis(1)), JobState::Done);
    }

    #[test]
    fn cancel_only_while_queued() {
        let job = JobRecord::new(1, JobSpec::new(Algo::Mis, "internet"));
        assert!(job.request_cancel());
        assert!(job.cancel_requested());
        assert!(job.transition(JobState::Cancelled, Some(JobEnd::Message("cancelled".into()))));
        let job2 = JobRecord::new(2, JobSpec::new(Algo::Mis, "internet"));
        job2.transition(JobState::Running, None);
        assert!(!job2.request_cancel());
    }

    #[test]
    fn param_key_separates_everything_relevant() {
        let a = JobSpec::new(Algo::Cc, "internet");
        let mut b = a.clone();
        b.seed = 1;
        let mut c = a.clone();
        c.scale = 0.0011;
        let mut d = a.clone();
        d.block_size = Some(64);
        let mut f = a.clone();
        f.shards = 4;
        let mut keys: Vec<String> = [&a, &b, &c, &d, &f].iter().map(|s| s.param_key()).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 5);
        // Deadline and fault do NOT affect the key.
        let mut e = a.clone();
        e.deadline_ms = Some(5);
        e.fault = Fault::DelayMs(1);
        assert_eq!(a.param_key(), e.param_key());
    }
}
