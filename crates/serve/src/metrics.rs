//! Service metrics: lifecycle counters, per-algorithm latency
//! sketches, and the `GET /metrics` Prometheus rendering.
//!
//! The rendering reuses [`ecl_prof::to_prometheus`] for everything a
//! run manifest can express — per-algorithm queue/run latency
//! distributions (as summary-quantile series) and per-kernel launch
//! stats from the installed profiling collector — and appends the
//! service-specific gauges (queue depth, admission rejections, cache
//! hit ratios) in plain exposition format.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ecl_prof::{git_sha, to_prometheus, Collector, DispatchInfo, Manifest};
use ecl_profiling::LogSketch;

use crate::cache::ResultCache;
use crate::catalog::GraphCatalog;
use crate::jobs::Algo;

/// Monotonic counters and latency sketches for the service. Shared as
/// `Arc<ServeMetrics>` between the scheduler and the HTTP surface.
#[derive(Default)]
pub struct ServeMetrics {
    /// Jobs admitted to the queue.
    pub jobs_admitted: AtomicU64,
    /// Jobs rejected at admission (queue full → HTTP 429).
    pub admission_rejections: AtomicU64,
    /// Jobs that finished in `done`.
    pub jobs_done: AtomicU64,
    /// Jobs that finished in `failed` (including contained panics).
    pub jobs_failed: AtomicU64,
    /// Contained job panics (subset of `jobs_failed`).
    pub jobs_panicked: AtomicU64,
    /// Jobs cancelled while queued.
    pub jobs_cancelled: AtomicU64,
    /// Jobs that missed their start deadline.
    pub jobs_deadline_exceeded: AtomicU64,
    /// Results served from the result cache.
    pub result_cache_serves: AtomicU64,
    /// Completed jobs whose result ran with a manifest schedule
    /// (subset of `jobs_done`; includes cache hits of tuned results).
    pub jobs_tuned: AtomicU64,
    /// Completed jobs whose result ran with default configs.
    pub jobs_untuned: AtomicU64,
    /// HTTP requests accepted (parsed successfully).
    pub http_requests: AtomicU64,
    /// HTTP requests answered with a 4xx/5xx status.
    pub http_errors: AtomicU64,
    /// Malformed/oversized requests rejected by the parser *with* a
    /// response (400/413/431 — includes best-effort 400s for requests
    /// cut off by EOF).
    pub http_malformed: AtomicU64,
    /// Connections dropped mid-request with no response possible
    /// (transport error before a status could be written).
    pub http_unanswerable: AtomicU64,
    /// Requests served beyond the first on a keep-alive connection.
    pub keepalive_reuses: AtomicU64,
    /// Connections accepted by the listener.
    pub connections_accepted: AtomicU64,
    /// Connections refused with an immediate 503 because
    /// `--max-connections` was reached.
    pub connections_rejected: AtomicU64,
    /// Transient `accept(2)` failures (EMFILE and friends); each one
    /// also backs the accept loop off briefly.
    pub accept_errors: AtomicU64,
    /// Connections closed because no complete request arrived within
    /// the read deadline (idle keep-alive or slow-loris).
    pub conn_read_timeouts: AtomicU64,
    /// Connections closed because the peer stopped draining a response
    /// past the write deadline (stalled reader).
    pub conn_write_timeouts: AtomicU64,
    queue_us: [LogSketch; Algo::ALL.len()],
    run_us: [LogSketch; Algo::ALL.len()],
}

fn algo_index(algo: Algo) -> usize {
    match algo {
        Algo::Cc => 0,
        Algo::Gc => 1,
        Algo::Mis => 2,
        Algo::Mst => 3,
        Algo::Scc => 4,
    }
}

impl ServeMetrics {
    /// A zeroed metrics block.
    pub fn new() -> Arc<ServeMetrics> {
        Arc::new(ServeMetrics::default())
    }

    /// Records a finished job's queue wait and run time (µs).
    pub fn record_latency(&self, algo: Algo, queue_us: u64, run_us: u64) {
        let i = algo_index(algo);
        self.queue_us[i].record(queue_us);
        self.run_us[i].record(run_us);
    }

    /// Total terminal jobs.
    pub fn jobs_finished(&self) -> u64 {
        self.jobs_done.load(Ordering::Relaxed)
            + self.jobs_failed.load(Ordering::Relaxed)
            + self.jobs_cancelled.load(Ordering::Relaxed)
            + self.jobs_deadline_exceeded.load(Ordering::Relaxed)
    }

    /// Renders the full `/metrics` payload. `queue_depth`/`running`/
    /// `open_connections` are instantaneous gauges; `collector`
    /// contributes per-kernel series when profiling is installed;
    /// `obs` contributes the `ecl_slo_*` family and the flight-recorder
    /// retention gauge.
    #[allow(clippy::too_many_arguments)]
    pub fn render_prometheus(
        &self,
        catalog: &GraphCatalog,
        results: &ResultCache,
        queue_depth: usize,
        running: usize,
        open_connections: usize,
        collector: Option<&Collector>,
        obs: Option<&ecl_obs::Obs>,
    ) -> String {
        // Per-algorithm latency distributions + kernel stats ride the
        // manifest exposition.
        let mut manifest = Manifest {
            schema: "ecl-serve/1".to_string(),
            git_sha: git_sha(),
            dispatch: DispatchInfo {
                mode: "pool".to_string(),
                workers: ecl_gpusim::pool::effective_workers() as u64,
                grain: None,
            },
            context: vec![("service".to_string(), "ecl-serve".to_string())],
            metrics: Vec::new(),
            kernels: collector.map(|c| c.snapshot()).unwrap_or_default(),
            distributions: Vec::new(),
        };
        for algo in Algo::ALL {
            let i = algo_index(algo);
            if self.run_us[i].count() > 0 {
                manifest
                    .distributions
                    .push((format!("job_run_us/{}", algo.name()), self.run_us[i].snapshot()));
                manifest
                    .distributions
                    .push((format!("job_queue_us/{}", algo.name()), self.queue_us[i].snapshot()));
            }
        }
        let mut out = to_prometheus(&manifest);

        let counter = |out: &mut String, name: &str, help: &str, v: u64| {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n{name} {v}\n"));
        };
        let gauge = |out: &mut String, name: &str, help: &str, v: f64| {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} gauge\n{name} {v}\n"));
        };

        gauge(&mut out, "ecl_serve_queue_depth", "Jobs waiting for a slot.", queue_depth as f64);
        gauge(&mut out, "ecl_serve_jobs_running", "Jobs currently executing.", running as f64);
        gauge(
            &mut out,
            "ecl_serve_connections_open",
            "Connections currently held by the reactor.",
            open_connections as f64,
        );
        let r = Ordering::Relaxed;
        counter(
            &mut out,
            "ecl_serve_connections_accepted_total",
            "Connections accepted by the listener.",
            self.connections_accepted.load(r),
        );
        counter(
            &mut out,
            "ecl_serve_connections_rejected_total",
            "Connections answered 503-and-close at the --max-connections bound.",
            self.connections_rejected.load(r),
        );
        counter(
            &mut out,
            "ecl_serve_accept_errors_total",
            "Transient accept(2) failures (each backs the accept loop off).",
            self.accept_errors.load(r),
        );
        counter(
            &mut out,
            "ecl_serve_conn_read_timeouts_total",
            "Connections closed with no complete request within the read deadline.",
            self.conn_read_timeouts.load(r),
        );
        counter(
            &mut out,
            "ecl_serve_conn_write_timeouts_total",
            "Connections closed because the peer stopped reading past the write deadline.",
            self.conn_write_timeouts.load(r),
        );
        counter(
            &mut out,
            "ecl_serve_keepalive_reuses_total",
            "Requests served beyond the first on a keep-alive connection.",
            self.keepalive_reuses.load(r),
        );
        counter(
            &mut out,
            "ecl_serve_jobs_admitted_total",
            "Jobs admitted to the queue.",
            self.jobs_admitted.load(r),
        );
        counter(
            &mut out,
            "ecl_serve_admission_rejections_total",
            "Jobs rejected with 429 because the queue was full.",
            self.admission_rejections.load(r),
        );
        out.push_str(
            "# HELP ecl_serve_jobs_finished_total Terminal jobs by final state.\n\
             # TYPE ecl_serve_jobs_finished_total counter\n",
        );
        for (name, v) in [
            ("done", self.jobs_done.load(r)),
            ("failed", self.jobs_failed.load(r)),
            ("cancelled", self.jobs_cancelled.load(r)),
            ("deadline_exceeded", self.jobs_deadline_exceeded.load(r)),
        ] {
            out.push_str(&format!("ecl_serve_jobs_finished_total{{state=\"{name}\"}} {v}\n"));
        }
        out.push_str(
            "# HELP ecl_serve_jobs_done_by_schedule_total Completed jobs by schedule source \
             (tuned = manifest schedule attached at graph registration).\n\
             # TYPE ecl_serve_jobs_done_by_schedule_total counter\n",
        );
        for (label, v) in [("true", self.jobs_tuned.load(r)), ("false", self.jobs_untuned.load(r))]
        {
            out.push_str(&format!(
                "ecl_serve_jobs_done_by_schedule_total{{tuned=\"{label}\"}} {v}\n"
            ));
        }
        counter(
            &mut out,
            "ecl_serve_jobs_panicked_total",
            "Job bodies that panicked and were contained.",
            self.jobs_panicked.load(r),
        );
        counter(
            &mut out,
            "ecl_serve_http_requests_total",
            "HTTP requests parsed.",
            self.http_requests.load(r),
        );
        counter(
            &mut out,
            "ecl_serve_http_errors_total",
            "HTTP responses with a 4xx/5xx status.",
            self.http_errors.load(r),
        );
        counter(
            &mut out,
            "ecl_serve_http_malformed_total",
            "Requests rejected by the parser and answered 400/413/431.",
            self.http_malformed.load(r),
        );
        counter(
            &mut out,
            "ecl_serve_http_unanswerable_total",
            "Connections dropped mid-request before any response could be written.",
            self.http_unanswerable.load(r),
        );

        let (gh, gm, gev, gbytes) = catalog.stats();
        counter(&mut out, "ecl_serve_graph_cache_hits_total", "Graph catalog cache hits.", gh);
        counter(&mut out, "ecl_serve_graph_cache_misses_total", "Graph catalog cache misses.", gm);
        counter(&mut out, "ecl_serve_graph_cache_evictions_total", "Graph LRU evictions.", gev);
        gauge(
            &mut out,
            "ecl_serve_graph_cache_resident_bytes",
            "Bytes held by cached graphs.",
            gbytes as f64,
        );

        let (rh, rm, rlen) = results.stats();
        counter(&mut out, "ecl_serve_result_cache_hits_total", "Result cache hits.", rh);
        counter(&mut out, "ecl_serve_result_cache_misses_total", "Result cache misses.", rm);
        gauge(&mut out, "ecl_serve_result_cache_entries", "Resident cached results.", rlen as f64);
        gauge(
            &mut out,
            "ecl_serve_result_cache_hit_ratio",
            "Result cache hit ratio in [0,1].",
            results.hit_ratio(),
        );

        if let Some(obs) = obs {
            gauge(
                &mut out,
                "ecl_obs_requests_retained",
                "Request summaries currently held by the flight recorder.",
                obs.recorder.retained() as f64,
            );
            if let Some(slo) = &obs.slo {
                slo.render(&mut out);
            }
        }
        out
    }
}

/// A `std`-only Prometheus exposition-format hygiene lint, used by the
/// `metrics_lint` integration test to keep `/metrics` scrapeable by
/// strict parsers. Returns one message per violation (empty = clean).
///
/// Checks, per metric *family* (the base name with `_bucket`/`_sum`/
/// `_count` suffixes folded in for histograms and summaries):
///
/// * `# HELP` and `# TYPE` are both present and appear before the
///   first sample of the family, each exactly once;
/// * the `TYPE` is one of `counter`/`gauge`/`summary`/`histogram`;
/// * metric names match `[a-zA-Z_:][a-zA-Z0-9_:]*`;
/// * `counter` family names end in `_total`;
/// * sample values parse as floats (OpenMetrics `# {…}` exemplars are
///   stripped first).
pub fn lint_exposition(text: &str) -> Vec<String> {
    use std::collections::{HashMap, HashSet};

    fn valid_name(name: &str) -> bool {
        let mut chars = name.chars();
        let Some(first) = chars.next() else { return false };
        (first.is_ascii_alphabetic() || first == '_' || first == ':')
            && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }

    /// Folds summary/histogram machine-suffixed series into their
    /// family name so `x_bucket` samples match `# TYPE x histogram`.
    fn family_of<'a>(name: &'a str, types: &HashMap<String, String>) -> &'a str {
        for suffix in ["_bucket", "_sum", "_count"] {
            if let Some(base) = name.strip_suffix(suffix) {
                if matches!(types.get(base).map(String::as_str), Some("summary" | "histogram")) {
                    return base;
                }
            }
        }
        name
    }

    let mut problems = Vec::new();
    let mut help: HashSet<String> = HashSet::new();
    let mut types: HashMap<String, String> = HashMap::new();
    let mut sampled: HashSet<String> = HashSet::new();

    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let Some((name, _)) = rest.split_once(' ') else {
                problems.push(format!("line {n}: HELP without help text"));
                continue;
            };
            if !help.insert(name.to_string()) {
                problems.push(format!("line {n}: duplicate HELP for {name}"));
            }
            if sampled.contains(name) {
                problems.push(format!("line {n}: HELP for {name} after its first sample"));
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let Some((name, kind)) = rest.split_once(' ') else {
                problems.push(format!("line {n}: TYPE without a kind"));
                continue;
            };
            if !matches!(kind, "counter" | "gauge" | "summary" | "histogram" | "untyped") {
                problems.push(format!("line {n}: unknown TYPE {kind:?} for {name}"));
            }
            if kind == "counter" && !name.ends_with("_total") {
                problems.push(format!("line {n}: counter {name} does not end in _total"));
            }
            if types.insert(name.to_string(), kind.to_string()).is_some() {
                problems.push(format!("line {n}: duplicate TYPE for {name}"));
            }
            if sampled.contains(name) {
                problems.push(format!("line {n}: TYPE for {name} after its first sample"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // free-form comment
        }
        // A sample: `name{labels} value [# {exemplar} value]`.
        let sample = line.split(" # ").next().unwrap_or(line);
        let name_end = sample.find(['{', ' ']).unwrap_or(sample.len());
        let name = &sample[..name_end];
        if !valid_name(name) {
            problems.push(format!("line {n}: invalid metric name {name:?}"));
            continue;
        }
        let value = sample.rsplit(' ').next().unwrap_or("");
        if value.parse::<f64>().is_err() && !matches!(value, "+Inf" | "-Inf" | "NaN") {
            problems.push(format!("line {n}: sample value {value:?} does not parse"));
        }
        let family = family_of(name, &types).to_string();
        if !help.contains(&family) {
            problems.push(format!("line {n}: sample {name} has no preceding HELP for {family}"));
        }
        if !types.contains_key(&family) {
            problems.push(format!("line {n}: sample {name} has no preceding TYPE for {family}"));
        }
        sampled.insert(family);
    }
    problems.sort();
    problems.dedup();
    problems
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::catalog::CatalogConfig;

    #[test]
    fn prometheus_rendering_contains_required_series() {
        let m = ServeMetrics::new();
        m.jobs_admitted.store(5, Ordering::Relaxed);
        m.admission_rejections.store(2, Ordering::Relaxed);
        m.jobs_done.store(4, Ordering::Relaxed);
        m.jobs_tuned.store(3, Ordering::Relaxed);
        m.jobs_untuned.store(1, Ordering::Relaxed);
        m.record_latency(Algo::Cc, 120, 4500);
        m.record_latency(Algo::Cc, 90, 5100);
        let catalog = GraphCatalog::new(CatalogConfig::default());
        let results = ResultCache::new(4);
        assert!(results.get("k").is_none()); // one miss, for a 0.5 ratio
        results.put(
            "k".into(),
            Arc::new(crate::exec::RunOutput {
                algo: Algo::Cc,
                graph: "g".into(),
                graph_hash: 1,
                vertices: 1,
                arcs: 0,
                aggregates: vec![],
                modeled_time: 0.0,
                tuned: false,
            }),
        );
        results.get("k").unwrap();

        m.connections_accepted.store(7, Ordering::Relaxed);
        m.connections_rejected.store(1, Ordering::Relaxed);
        m.accept_errors.store(2, Ordering::Relaxed);
        m.conn_write_timeouts.store(1, Ordering::Relaxed);
        m.http_unanswerable.store(1, Ordering::Relaxed);
        let text = m.render_prometheus(&catalog, &results, 3, 2, 6, None, None);
        for needle in [
            "ecl_serve_queue_depth 3",
            "ecl_serve_jobs_running 2",
            "ecl_serve_connections_open 6",
            "ecl_serve_connections_accepted_total 7",
            "ecl_serve_connections_rejected_total 1",
            "ecl_serve_accept_errors_total 2",
            "ecl_serve_conn_read_timeouts_total 0",
            "ecl_serve_conn_write_timeouts_total 1",
            "ecl_serve_keepalive_reuses_total 0",
            "ecl_serve_http_unanswerable_total 1",
            "ecl_serve_jobs_admitted_total 5",
            "ecl_serve_admission_rejections_total 2",
            "ecl_serve_jobs_finished_total{state=\"done\"} 4",
            "ecl_serve_jobs_done_by_schedule_total{tuned=\"true\"} 3",
            "ecl_serve_jobs_done_by_schedule_total{tuned=\"false\"} 1",
            "ecl_serve_result_cache_hit_ratio 0.5",
            "ecl_distribution{name=\"job_run_us/cc\"",
            "quantile=\"0.99\"",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn latency_sketches_are_per_algorithm() {
        let m = ServeMetrics::new();
        m.record_latency(Algo::Mis, 1, 1000);
        let catalog = GraphCatalog::new(CatalogConfig::default());
        let results = ResultCache::new(1);
        let text = m.render_prometheus(&catalog, &results, 0, 0, 0, None, None);
        assert!(text.contains("job_run_us/mis"));
        assert!(!text.contains("job_run_us/cc"), "cc has no samples");
    }

    #[test]
    fn jobs_finished_family_has_help_and_type() {
        let m = ServeMetrics::new();
        let catalog = GraphCatalog::new(CatalogConfig::default());
        let results = ResultCache::new(1);
        let text = m.render_prometheus(&catalog, &results, 0, 0, 0, None, None);
        assert!(text.contains("# HELP ecl_serve_jobs_finished_total"));
        assert!(text.contains("# TYPE ecl_serve_jobs_finished_total counter"));
        let help_pos = text.find("# HELP ecl_serve_jobs_finished_total").unwrap();
        let sample_pos = text.find("ecl_serve_jobs_finished_total{state=").unwrap();
        assert!(help_pos < sample_pos, "metadata precedes the samples");
    }
}
