//! The HTTP surface: an event-driven `std::net` server wiring the
//! catalog, scheduler, result cache, and metrics together.
//!
//! Routes:
//!
//! | Route                  | Meaning                                   |
//! |------------------------|-------------------------------------------|
//! | `GET  /healthz`        | liveness (also reports draining)          |
//! | `GET  /v1/graphs`      | catalog listing                           |
//! | `POST /v1/jobs`        | submit (202, or 429/503 on backpressure)  |
//! | `GET  /v1/jobs/:id`    | status + result                           |
//! | `GET  /v1/jobs/:id/trace` | merged per-request span tree (ecl-obs) |
//! | `DELETE /v1/jobs/:id`  | cancel a queued job                       |
//! | `GET  /v1/debug/requests` | flight-recorder ring (`?slowest=N`)    |
//! | `GET  /metrics`        | Prometheus exposition (incl. `ecl_slo_*`) |
//! | `POST /v1/admin/shutdown` | begin graceful drain                   |
//!
//! Threading model (fixed, independent of connection count):
//!
//! * **accept thread** — blocking `accept`, immediate 503-and-close
//!   beyond [`ServeConfig::max_connections`], short backoff (plus the
//!   `accept_errors` counter) on transient accept failures. Accepted
//!   sockets go nonblocking into a lock-free ring toward the reactor.
//! * **reactor thread** ([`crate::reactor`]) — owns every connection
//!   and its state machine; HTTP/1.1 keep-alive, read/write deadlines,
//!   and `wait_ms` submissions parked until the scheduler's completion
//!   hook wakes it.
//! * **scheduler workers** — unchanged job execution.
//!
//! There is no per-connection thread and no per-request thread;
//! `handle_connection` is gone. Graceful shutdown is: stop accepting,
//! let the reactor flush/park-out its connections, then drain the
//! scheduler so every admitted job reaches a terminal state.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use ecl_prof::json::{self, escape, num, Value};
use ecl_prof::Collector;

use crate::cache::ResultCache;
use crate::catalog::{CatalogConfig, GraphCatalog};
use crate::http::{self, Limits, Request};
use crate::jobs::{Algo, Fault, JobRecord, JobSpec};
use crate::metrics::ServeMetrics;
use crate::reactor::{Reactor, Waker};
use crate::ring::EventRing;
use crate::scheduler::{Scheduler, SchedulerConfig, SubmitError};

/// Longest `wait_ms` a submission may be parked for (closed-loop
/// clients).
const MAX_WAIT_MS: u64 = 120_000;

/// Sleep after a transient `accept` error — EMFILE and friends recover
/// on the order of milliseconds; busy-looping would pin a core.
const ACCEPT_ERROR_BACKOFF: Duration = Duration::from_millis(20);

/// Accepted-socket handoff ring (accept thread → reactor).
const ACCEPT_RING: usize = 1024;

/// Full server configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub listen: String,
    /// Graph catalog settings.
    pub catalog: CatalogConfig,
    /// Scheduler sizing.
    pub scheduler: SchedulerConfig,
    /// Result-cache entry cap.
    pub result_entries: usize,
    /// HTTP parser limits.
    pub limits: Limits,
    /// Hard bound on concurrently open connections; beyond it the
    /// accept thread answers 503 and closes immediately.
    pub max_connections: usize,
    /// A connection with no complete request within this window is
    /// closed (idle keep-alive *and* slow-loris trickles — the clock
    /// runs from the request boundary, not the last byte).
    pub read_timeout_ms: u64,
    /// A response not fully flushed within this window closes the
    /// connection (stalled reader).
    pub write_timeout_ms: u64,
    /// SLO spec (`"cc:p99=5ms,err=0.1%;gc:p95=2ms"`); `None` disables
    /// the SLO engine (the flight recorder stays on regardless).
    pub slo: Option<String>,
    /// Requests slower than this pin their full trace in the flight
    /// recorder instead of aging out with the recent ring.
    pub slow_request_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            listen: "127.0.0.1:0".to_string(),
            catalog: CatalogConfig::default(),
            scheduler: SchedulerConfig::default(),
            result_entries: 256,
            limits: Limits::default(),
            max_connections: 1024,
            read_timeout_ms: 10_000,
            write_timeout_ms: 10_000,
            slo: None,
            slow_request_ms: 250,
        }
    }
}

pub(crate) struct ServerShared {
    pub(crate) catalog: Arc<GraphCatalog>,
    pub(crate) results: Arc<ResultCache>,
    pub(crate) metrics: Arc<ServeMetrics>,
    pub(crate) scheduler: Scheduler,
    pub(crate) collector: Arc<Collector>,
    /// Request-scoped observability: the flight recorder plus the
    /// optional SLO engine. Also installed as the process-global
    /// `ecl-obs` sink for the lifetime of the server.
    pub(crate) obs: Arc<ecl_obs::Obs>,
    pub(crate) limits: Limits,
    pub(crate) max_connections: usize,
    pub(crate) stopping: AtomicBool,
    /// Connections counted from accept to reactor reap — the value the
    /// accept thread bounds against and `/metrics` exposes.
    pub(crate) live_connections: AtomicUsize,
}

/// A running server. Dropping it (or calling [`Server::shutdown`])
/// drains gracefully.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<ServerShared>,
    waker: Arc<Waker>,
    accept_thread: Mutex<Option<JoinHandle<()>>>,
    reactor_thread: Mutex<Option<JoinHandle<()>>>,
}

impl Server {
    /// Binds and starts serving. Installs a profiling collector so
    /// `/metrics` carries per-kernel series.
    pub fn start(config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.listen)?;
        let addr = listener.local_addr()?;
        let catalog = Arc::new(GraphCatalog::new(config.catalog.clone()));
        let results = Arc::new(ResultCache::new(config.result_entries));
        let metrics = ServeMetrics::new();
        let scheduler = Scheduler::start(
            config.scheduler.clone(),
            Arc::clone(&catalog),
            Arc::clone(&results),
            Arc::clone(&metrics),
        );
        let collector = Arc::new(Collector::new());
        ecl_prof::sink::install(Arc::clone(&collector));
        // Wall-clock tracer for per-request spans (`serve.job/<algo>`
        // phases emitted by the scheduler, kernel events from the
        // simulator nesting inside them). Flushed on shutdown.
        ecl_trace::sink::install(Arc::new(ecl_trace::Tracer::with_clock(
            ecl_trace::ClockMode::Wall,
        )));
        // Request-scoped observability: flight recorder (always on) and
        // the SLO engine when objectives were configured. Installed as
        // the global sink so scheduler/pool/kernel hooks can reach it.
        let slo = match &config.slo {
            Some(spec) => Some(ecl_obs::SloEngine::from_spec(spec).map_err(|e| {
                std::io::Error::new(std::io::ErrorKind::InvalidInput, format!("bad --slo: {e}"))
            })?),
            None => None,
        };
        let recorder_config = ecl_obs::RecorderConfig {
            slow_threshold_ns: config.slow_request_ms.saturating_mul(1_000_000),
            ..ecl_obs::RecorderConfig::default()
        };
        let obs = Arc::new(ecl_obs::Obs::new(recorder_config, slo));
        ecl_obs::sink::install(Arc::clone(&obs));

        let shared = Arc::new(ServerShared {
            catalog,
            results,
            metrics,
            scheduler,
            collector,
            obs,
            limits: config.limits,
            max_connections: config.max_connections.max(1),
            stopping: AtomicBool::new(false),
            live_connections: AtomicUsize::new(0),
        });

        let waker = Waker::new();
        let accepts = Arc::new(EventRing::new(ACCEPT_RING));
        // Every terminal job pushes exactly one completion; size for
        // the whole admitted population completing inside one reactor
        // park window, with an overflow flag as the safety net.
        let completions = Arc::new(EventRing::new(
            config.scheduler.max_queue + config.scheduler.max_concurrency + 16,
        ));
        let completions_overflow = Arc::new(AtomicBool::new(false));
        {
            let ring = Arc::clone(&completions);
            let overflow = Arc::clone(&completions_overflow);
            let waker = Arc::clone(&waker);
            shared.scheduler.set_completion_hook(Arc::new(move |job_id| {
                if ring.try_push(job_id).is_err() {
                    overflow.store(true, Ordering::Release);
                }
                waker.wake();
            }));
        }

        let reactor = Reactor::new(
            Arc::clone(&shared),
            Arc::clone(&accepts),
            Arc::clone(&completions),
            Arc::clone(&completions_overflow),
            Arc::clone(&waker),
            Duration::from_millis(config.read_timeout_ms.max(1)),
            Duration::from_millis(config.write_timeout_ms.max(1)),
        );
        let reactor_thread = std::thread::Builder::new()
            .name("ecl-serve-reactor".to_string())
            .spawn(move || reactor.run())?;

        let accept_shared = Arc::clone(&shared);
        let accept_waker = Arc::clone(&waker);
        let accept_thread = std::thread::Builder::new()
            .name("ecl-serve-accept".to_string())
            .spawn(move || accept_loop(&listener, &accept_shared, &accepts, &accept_waker))?;

        Ok(Server {
            addr,
            shared,
            waker,
            accept_thread: Mutex::new(Some(accept_thread)),
            reactor_thread: Mutex::new(Some(reactor_thread)),
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// All retained jobs (admitted + terminal). Valid before and after
    /// shutdown — the drain tests use it to assert that no admitted
    /// job was dropped.
    pub fn jobs_snapshot(&self) -> Vec<Arc<JobRecord>> {
        self.shared.scheduler.jobs_snapshot()
    }

    /// True once a drain has begun (`POST /v1/admin/shutdown` or
    /// [`Server::shutdown`]). The `ecl-serve` binary polls this to
    /// know when an operator asked the process to exit.
    pub fn is_draining(&self) -> bool {
        self.shared.scheduler.is_shutting_down()
    }

    /// Connections currently held by the reactor.
    pub fn open_connections(&self) -> usize {
        self.shared.live_connections.load(Ordering::Acquire)
    }

    /// Graceful drain: stop accepting, let the reactor finish or
    /// reclaim its connections, let every admitted job reach a
    /// terminal state, flush the profiling sink. Idempotent.
    pub fn shutdown(&self) {
        if self.shared.stopping.swap(true, Ordering::AcqRel) {
            return;
        }
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let handle =
            self.accept_thread.lock().unwrap_or_else(std::sync::PoisonError::into_inner).take();
        if let Some(h) = handle {
            let _ = h.join();
        }
        // The reactor notices `stopping`, closes idle connections,
        // answers in-flight waits, and exits once its map is empty.
        self.waker.wake();
        let handle =
            self.reactor_thread.lock().unwrap_or_else(std::sync::PoisonError::into_inner).take();
        if let Some(h) = handle {
            let _ = h.join();
        }
        self.shared.scheduler.shutdown();
        ecl_prof::sink::uninstall();
        // Flush the trace sink after the last job has finished so no
        // span is cut mid-record; the snapshot is discarded here —
        // callers who want the capture install their own tracer first.
        ecl_trace::sink::uninstall();
        // The recorder/SLO state itself stays alive through
        // `self.shared.obs`; only the global sink registration ends.
        ecl_obs::sink::uninstall();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<ServerShared>,
    accepts: &Arc<EventRing<TcpStream>>,
    waker: &Arc<Waker>,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.stopping.load(Ordering::Acquire) {
                    return;
                }
                shared.metrics.connections_accepted.fetch_add(1, Ordering::Relaxed);
                if shared.live_connections.load(Ordering::Acquire) >= shared.max_connections {
                    reject_over_capacity(stream, shared);
                    continue;
                }
                shared.live_connections.fetch_add(1, Ordering::AcqRel);
                let _ = stream.set_nonblocking(true);
                match accepts.try_push(stream) {
                    Ok(()) => waker.wake(),
                    Err(stream) => {
                        // Handoff ring full — the reactor is that far
                        // behind; treat it as over capacity.
                        shared.live_connections.fetch_sub(1, Ordering::AcqRel);
                        reject_over_capacity(stream, shared);
                    }
                }
            }
            Err(_) => {
                if shared.stopping.load(Ordering::Acquire) {
                    return;
                }
                // Transient resource exhaustion (EMFILE, ENFILE,
                // ECONNABORTED): count it and back off instead of
                // spinning the accept thread at 100% CPU.
                shared.metrics.accept_errors.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(ACCEPT_ERROR_BACKOFF);
            }
        }
    }
}

/// Best-effort 503 + close for a connection beyond the bound. The
/// write is blocking-with-timeout on purpose: the response is a few
/// hundred bytes (fits any socket buffer), and the stream drops —
/// closing the connection — the moment this returns.
fn reject_over_capacity(mut stream: TcpStream, shared: &Arc<ServerShared>) {
    shared.metrics.connections_rejected.fetch_add(1, Ordering::Relaxed);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let _ = http::write_json(
        &mut stream,
        503,
        "{\"error\": \"connection limit reached\", \"retry\": true}",
    );
}

pub(crate) type Response = (u16, &'static str, String);

/// How a routed request is answered.
pub(crate) enum Routed {
    /// Response is ready; stage it now.
    Now(Response),
    /// A `wait_ms` submission: park the connection; the completion
    /// hook (or the wait deadline) produces the response.
    Wait {
        /// The admitted job.
        job: Arc<JobRecord>,
        /// How long the client is willing to wait.
        wait: Duration,
    },
}

pub(crate) const JSON: &str = "application/json";
const PROM: &str = "text/plain; version=0.0.4";

pub(crate) fn route(req: &Request, shared: &Arc<ServerShared>, req_id: u64) -> Routed {
    let path = req.path.split('?').next().unwrap_or("");
    let response = match (req.method.as_str(), path) {
        ("GET", "/healthz") => {
            let draining = shared.scheduler.is_shutting_down();
            (200, JSON, format!("{{\"ok\": true, \"draining\": {draining}}}"))
        }
        ("GET", "/v1/graphs") => graphs_body(shared),
        ("POST", "/v1/jobs") => return submit_job(req, shared, req_id),
        // Must precede the generic `/v1/jobs/:id` arm: ":id/trace"
        // does not parse as a bare id.
        ("GET", p) if p.starts_with("/v1/jobs/") && p.ends_with("/trace") => {
            match p.strip_prefix("/v1/jobs/").and_then(|r| r.strip_suffix("/trace")) {
                Some(raw) => match raw.parse::<u64>().ok() {
                    Some(id) => trace_body(shared, id),
                    None => (400, JSON, "{\"error\": \"bad job id\"}".to_string()),
                },
                None => (400, JSON, "{\"error\": \"bad job id\"}".to_string()),
            }
        }
        ("GET", "/v1/debug/requests") => debug_requests_body(shared, &req.path),
        ("GET", p) if p.starts_with("/v1/jobs/") => match parse_id(p) {
            Some(id) => match shared.scheduler.job(id) {
                Some(job) => (200, JSON, job_body(&job)),
                None => (404, JSON, "{\"error\": \"no such job\"}".to_string()),
            },
            None => (400, JSON, "{\"error\": \"bad job id\"}".to_string()),
        },
        ("DELETE", p) if p.starts_with("/v1/jobs/") => match parse_id(p) {
            Some(id) => match shared.scheduler.job(id) {
                Some(job) => {
                    if shared.scheduler.cancel(&job) {
                        (200, JSON, job_body(&job))
                    } else {
                        (
                            409,
                            JSON,
                            format!(
                                "{{\"error\": \"job is {} and cannot be cancelled\"}}",
                                job.state().name()
                            ),
                        )
                    }
                }
                None => (404, JSON, "{\"error\": \"no such job\"}".to_string()),
            },
            None => (400, JSON, "{\"error\": \"bad job id\"}".to_string()),
        },
        ("GET", "/metrics") => {
            let body = shared.metrics.render_prometheus(
                &shared.catalog,
                &shared.results,
                shared.scheduler.queue_depth(),
                shared.scheduler.running(),
                shared.live_connections.load(Ordering::Acquire),
                Some(&shared.collector),
                Some(&shared.obs),
            );
            (200, PROM, body)
        }
        ("POST", "/v1/admin/shutdown") => {
            // Flip the scheduler to draining; the process owner (the
            // binary's main) notices via healthz/is_shutting_down and
            // completes the full server shutdown.
            shared.scheduler.begin_drain();
            (202, JSON, "{\"draining\": true}".to_string())
        }
        _ => (404, JSON, "{\"error\": \"no such route\"}".to_string()),
    };
    Routed::Now(response)
}

fn parse_id(path: &str) -> Option<u64> {
    path.strip_prefix("/v1/jobs/")?.parse().ok()
}

fn graphs_body(shared: &Arc<ServerShared>) -> Response {
    let rows: Vec<String> = shared
        .catalog
        .list()
        .into_iter()
        .map(|r| {
            let mut row = format!(
                "{{\"name\": \"{}\", \"source\": \"{}\", \"kind\": \"{}\", \
                 \"directed\": {}, \"paper_vertices\": {}",
                escape(&r.name),
                r.source,
                escape(&r.kind),
                r.directed,
                r.paper_vertices
            );
            // Family fingerprint of the resident materialization, so
            // operators can see which manifest bucket the graph
            // resolves to. Absent until the graph is first resolved.
            if let Some(fp) = &r.fingerprint {
                row.push_str(&format!(
                    ", \"fingerprint\": {{\"vertices\": {}, \"arcs\": {}, \
                     \"directed\": {}, \"degree_cv\": {}, \"family\": \"{}\"}}",
                    fp.vertices,
                    fp.arcs,
                    fp.directed,
                    num(fp.degree_cv),
                    escape(&fp.family_key())
                ));
            }
            row.push('}');
            row
        })
        .collect();
    (200, JSON, format!("{{\"graphs\": [{}]}}", rows.join(", ")))
}

/// Parses a submission body into a spec, or an error message.
fn parse_job_spec(body: &[u8]) -> Result<(JobSpec, Option<u64>), String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let v = json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let algo_name = v
        .get("algo")
        .and_then(Value::as_str)
        .ok_or_else(|| "missing required field \"algo\"".to_string())?;
    let algo = Algo::from_name(algo_name)
        .ok_or_else(|| format!("unknown algo {algo_name:?} (cc|gc|mis|mst|scc)"))?;
    let graph = v
        .get("graph")
        .and_then(Value::as_str)
        .ok_or_else(|| "missing required field \"graph\"".to_string())?
        .to_string();
    let scale = v.get("scale").and_then(Value::as_f64).unwrap_or(0.001);
    if scale <= 0.0 || !scale.is_finite() || scale > 1.0 {
        return Err(format!("scale must be in (0, 1], got {scale}"));
    }
    let seed = v.get("seed").and_then(Value::as_f64).unwrap_or(0.0) as u64;
    let block_size = v.get("block_size").and_then(Value::as_f64).map(|b| b as usize);
    if let Some(bs) = block_size {
        if bs == 0 || bs > 1024 {
            return Err(format!("block_size must be in [1, 1024], got {bs}"));
        }
    }
    let shards = match v.get("shards").and_then(Value::as_f64) {
        Some(s) if (1.0..=64.0).contains(&s) && s.fract() == 0.0 => s as u32,
        Some(s) => return Err(format!("shards must be an integer in [1, 64], got {s}")),
        None => 1,
    };
    let deadline_ms = v.get("deadline_ms").and_then(Value::as_f64).map(|d| d as u64);
    let wait_ms = v.get("wait_ms").and_then(Value::as_f64).map(|w| (w as u64).min(MAX_WAIT_MS));
    let fault = match v.get("fault").and_then(Value::as_str) {
        Some("panic") => Fault::Panic,
        Some(other) => return Err(format!("unknown fault {other:?}")),
        None => match v.get("delay_ms").and_then(Value::as_f64) {
            Some(ms) if (0.0..=60_000.0).contains(&ms) => Fault::DelayMs(ms as u32),
            Some(ms) => return Err(format!("delay_ms out of range: {ms}")),
            None => Fault::None,
        },
    };
    Ok((JobSpec { algo, graph, scale, seed, block_size, shards, deadline_ms, fault }, wait_ms))
}

fn submit_job(req: &Request, shared: &Arc<ServerShared>, req_id: u64) -> Routed {
    let (spec, wait_ms) = match parse_job_spec(&req.body) {
        Ok(parsed) => parsed,
        Err(msg) => {
            return Routed::Now((400, JSON, format!("{{\"error\": \"{}\"}}", escape(&msg))));
        }
    };
    match shared.scheduler.submit_with_req(spec, req_id) {
        Ok(job) => match wait_ms {
            Some(ms) => Routed::Wait { job, wait: Duration::from_millis(ms) },
            None => Routed::Now((202, JSON, job_body(&job))),
        },
        Err(SubmitError::QueueFull) => {
            Routed::Now((429, JSON, "{\"error\": \"queue full\", \"retry\": true}".to_string()))
        }
        Err(SubmitError::ShuttingDown) => Routed::Now((
            503,
            JSON,
            "{\"error\": \"server is draining\", \"retry\": false}".to_string(),
        )),
    }
}

/// Renders one flight-recorder summary as a JSON object.
fn summary_json(s: &ecl_obs::RequestSummary) -> String {
    format!(
        "{{\"req\": {}, \"job\": {}, \"algo\": \"{}\", \"graph\": \"{}\", \
         \"graph_hash\": \"{:016x}\", \"outcome\": \"{}\", \"tuned\": {}, \"cached\": {}, \
         \"queue_ns\": {}, \"run_ns\": {}, \"total_ns\": {}, \"rounds\": {}, \
         \"kernels\": {}, \"kernel_wall_ns\": {}}}",
        s.req,
        s.job,
        escape(&s.algo),
        escape(&s.graph),
        s.graph_hash,
        escape(&s.outcome),
        s.tuned,
        s.cached,
        s.queue_ns,
        s.run_ns,
        s.total_ns,
        s.rounds,
        s.kernels,
        s.kernel_wall_ns,
    )
}

/// `GET /v1/jobs/:id/trace` — the merged, time-ordered span tree for
/// the request that submitted job `id`: queue/cache/resolve phases and
/// every per-round kernel launch, each tagged with its kind.
fn trace_body(shared: &Arc<ServerShared>, id: u64) -> Response {
    let Some(job) = shared.scheduler.job(id) else {
        return (404, JSON, "{\"error\": \"no such job\"}".to_string());
    };
    if job.req == 0 {
        return (
            404,
            JSON,
            "{\"error\": \"job was not submitted over HTTP; no request context\"}".to_string(),
        );
    }
    let Some(trace) = shared.obs.recorder.trace(job.req) else {
        return (
            404,
            JSON,
            "{\"error\": \"no trace retained for this request (aged out of the ring)\"}"
                .to_string(),
        );
    };
    // Merge phases and kernels into one start-ordered timeline; ties
    // put the (enclosing) phase first.
    enum Span<'a> {
        Phase(&'a ecl_obs::PhaseSpan),
        Kernel(&'a ecl_obs::KernelSpan),
    }
    let mut spans: Vec<Span> = trace.phases.iter().map(Span::Phase).collect();
    spans.extend(trace.kernels.iter().map(Span::Kernel));
    spans.sort_by_key(|s| match s {
        Span::Phase(p) => (p.start_ns, 0u8),
        Span::Kernel(k) => (k.start_ns, 1u8),
    });
    let rows: Vec<String> = spans
        .iter()
        .map(|s| match s {
            Span::Phase(p) => format!(
                "{{\"kind\": \"phase\", \"name\": \"{}\", \"start_ns\": {}, \"wall_ns\": {}}}",
                escape(&p.name),
                p.start_ns,
                p.wall_ns
            ),
            Span::Kernel(k) => format!(
                "{{\"kind\": \"kernel\", \"name\": \"{}\", \"shape\": \"{}\", \"seq\": {}, \
                 \"start_ns\": {}, \"wall_ns\": {}, \"blocks\": {}, \"block_size\": {}, \
                 \"imbalance_milli\": {}}}",
                escape(&k.kernel),
                k.shape,
                k.seq,
                k.start_ns,
                k.wall_ns,
                k.blocks,
                k.block_size,
                k.imbalance_milli
            ),
        })
        .collect();
    let body = format!(
        "{{\"summary\": {}, \"spans\": [{}], \"dropped_kernels\": {}}}",
        summary_json(&trace.summary),
        rows.join(", "),
        trace.dropped_kernels
    );
    (200, JSON, body)
}

/// `GET /v1/debug/requests[?slowest=N]` — the flight-recorder ring,
/// newest-first by default or the N slowest completed requests.
fn debug_requests_body(shared: &Arc<ServerShared>, raw_path: &str) -> Response {
    let query = raw_path.split_once('?').map(|(_, q)| q).unwrap_or("");
    let mut slowest: Option<usize> = None;
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
        if key == "slowest" {
            match value.parse::<usize>() {
                Ok(n) => slowest = Some(n),
                Err(_) => {
                    return (
                        400,
                        JSON,
                        "{\"error\": \"slowest must be a non-negative integer\"}".to_string(),
                    );
                }
            }
        }
    }
    let recorder = &shared.obs.recorder;
    let (order, summaries) = match slowest {
        Some(n) => ("slowest", recorder.slowest(n)),
        None => ("newest", recorder.snapshot()),
    };
    let rows: Vec<String> = summaries.iter().map(summary_json).collect();
    let body = format!(
        "{{\"order\": \"{order}\", \"retained\": {}, \"requests\": [{}]}}",
        recorder.retained(),
        rows.join(", ")
    );
    (200, JSON, body)
}

/// Renders a job's full status document.
pub(crate) fn job_body(job: &Arc<JobRecord>) -> String {
    let st = job.status();
    let mut out = format!(
        "{{\"id\": {}, \"state\": \"{}\", \"algo\": \"{}\", \"graph\": \"{}\", \
         \"seed\": {}, \"cached\": {}, \"queue_ms\": {}, \"run_ms\": {}",
        job.id,
        st.state.name(),
        job.spec.algo.name(),
        escape(&job.spec.graph),
        job.spec.seed,
        st.cached,
        num(st.queue_ms),
        num(st.run_ms),
    );
    if let Some(result) = job.with_output(|o| {
        let aggs: Vec<String> = o.aggregates.iter().map(|(k, v)| format!("\"{k}\": {v}")).collect();
        format!(
            "{{\"graph_hash\": \"{:016x}\", \"vertices\": {}, \"arcs\": {}, \
             \"modeled_time\": {}, \"tuned\": {}, \"aggregates\": {{{}}}}}",
            o.graph_hash,
            o.vertices,
            o.arcs,
            num(o.modeled_time),
            o.tuned,
            aggs.join(", ")
        )
    }) {
        out.push_str(&format!(", \"result\": {result}"));
    }
    if let Some(msg) = job.end_message() {
        out.push_str(&format!(", \"error\": \"{}\"", escape(&msg)));
    }
    out.push('}');
    out
}
