//! The HTTP surface: a thread-per-connection `std::net` server wiring
//! the catalog, scheduler, result cache, and metrics together.
//!
//! Routes:
//!
//! | Route                  | Meaning                                   |
//! |------------------------|-------------------------------------------|
//! | `GET  /healthz`        | liveness (also reports draining)          |
//! | `GET  /v1/graphs`      | catalog listing                           |
//! | `POST /v1/jobs`        | submit (202, or 429/503 on backpressure)  |
//! | `GET  /v1/jobs/:id`    | status + result                           |
//! | `DELETE /v1/jobs/:id`  | cancel a queued job                       |
//! | `GET  /metrics`        | Prometheus exposition                     |
//! | `POST /v1/admin/shutdown` | begin graceful drain                   |
//!
//! Connections are `Connection: close` — one request each. That keeps
//! the parser state machine trivial and makes graceful shutdown exact:
//! drain = join the scheduler, then join the finite set of live
//! connection threads.

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use ecl_prof::json::{self, escape, num, Value};
use ecl_prof::Collector;

use crate::cache::ResultCache;
use crate::catalog::{CatalogConfig, GraphCatalog};
use crate::http::{self, Limits, Request};
use crate::jobs::{Algo, Fault, JobRecord, JobSpec};
use crate::metrics::ServeMetrics;
use crate::scheduler::{Scheduler, SchedulerConfig, SubmitError};

/// Longest `wait_ms` a submission may block for (closed-loop clients).
const MAX_WAIT_MS: u64 = 120_000;

/// Full server configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub listen: String,
    /// Graph catalog settings.
    pub catalog: CatalogConfig,
    /// Scheduler sizing.
    pub scheduler: SchedulerConfig,
    /// Result-cache entry cap.
    pub result_entries: usize,
    /// HTTP parser limits.
    pub limits: Limits,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            listen: "127.0.0.1:0".to_string(),
            catalog: CatalogConfig::default(),
            scheduler: SchedulerConfig::default(),
            result_entries: 256,
            limits: Limits::default(),
        }
    }
}

struct ServerShared {
    catalog: Arc<GraphCatalog>,
    results: Arc<ResultCache>,
    metrics: Arc<ServeMetrics>,
    scheduler: Scheduler,
    collector: Arc<Collector>,
    limits: Limits,
    stopping: AtomicBool,
    live_connections: AtomicUsize,
}

/// A running server. Dropping it (or calling [`Server::shutdown`])
/// drains gracefully.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<ServerShared>,
    accept_thread: Mutex<Option<JoinHandle<()>>>,
}

impl Server {
    /// Binds and starts serving. Installs a profiling collector so
    /// `/metrics` carries per-kernel series.
    pub fn start(config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.listen)?;
        let addr = listener.local_addr()?;
        let catalog = Arc::new(GraphCatalog::new(config.catalog.clone()));
        let results = Arc::new(ResultCache::new(config.result_entries));
        let metrics = ServeMetrics::new();
        let scheduler = Scheduler::start(
            config.scheduler.clone(),
            Arc::clone(&catalog),
            Arc::clone(&results),
            Arc::clone(&metrics),
        );
        let collector = Arc::new(Collector::new());
        ecl_prof::sink::install(Arc::clone(&collector));
        // Wall-clock tracer for per-request spans (`serve.job/<algo>`
        // phases emitted by the scheduler, kernel events from the
        // simulator nesting inside them). Flushed on shutdown.
        ecl_trace::sink::install(Arc::new(ecl_trace::Tracer::with_clock(
            ecl_trace::ClockMode::Wall,
        )));

        let shared = Arc::new(ServerShared {
            catalog,
            results,
            metrics,
            scheduler,
            collector,
            limits: config.limits,
            stopping: AtomicBool::new(false),
            live_connections: AtomicUsize::new(0),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("ecl-serve-accept".to_string())
            .spawn(move || accept_loop(&listener, &accept_shared))?;
        Ok(Server { addr, shared, accept_thread: Mutex::new(Some(accept_thread)) })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// All retained jobs (admitted + terminal). Valid before and after
    /// shutdown — the drain tests use it to assert that no admitted
    /// job was dropped.
    pub fn jobs_snapshot(&self) -> Vec<Arc<JobRecord>> {
        self.shared.scheduler.jobs_snapshot()
    }

    /// True once a drain has begun (`POST /v1/admin/shutdown` or
    /// [`Server::shutdown`]). The `ecl-serve` binary polls this to
    /// know when an operator asked the process to exit.
    pub fn is_draining(&self) -> bool {
        self.shared.scheduler.is_shutting_down()
    }

    /// Graceful drain: stop accepting, finish live connections, let
    /// every admitted job reach a terminal state, flush the profiling
    /// sink. Idempotent.
    pub fn shutdown(&self) {
        if self.shared.stopping.swap(true, Ordering::AcqRel) {
            return;
        }
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let handle =
            self.accept_thread.lock().unwrap_or_else(std::sync::PoisonError::into_inner).take();
        if let Some(h) = handle {
            let _ = h.join();
        }
        // Connections decrement on exit; spin briefly until quiet.
        // (Each serves exactly one request, so this terminates.)
        while self.shared.live_connections.load(Ordering::Acquire) > 0 {
            std::thread::sleep(Duration::from_millis(2));
        }
        self.shared.scheduler.shutdown();
        ecl_prof::sink::uninstall();
        // Flush the trace sink after the last job has finished so no
        // span is cut mid-record; the snapshot is discarded here —
        // callers who want the capture install their own tracer first.
        ecl_trace::sink::uninstall();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ServerShared>) {
    for stream in listener.incoming() {
        if shared.stopping.load(Ordering::Acquire) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let conn_shared = Arc::clone(shared);
        conn_shared.live_connections.fetch_add(1, Ordering::AcqRel);
        let spawned =
            std::thread::Builder::new().name("ecl-serve-conn".to_string()).spawn(move || {
                handle_connection(stream, &conn_shared);
                conn_shared.live_connections.fetch_sub(1, Ordering::AcqRel);
            });
        if spawned.is_err() {
            shared.live_connections.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

fn handle_connection(mut stream: TcpStream, shared: &Arc<ServerShared>) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let request = match http::read_request(&mut stream, &shared.limits) {
        Ok(req) => req,
        Err(e) => {
            shared.metrics.http_malformed.fetch_add(1, Ordering::Relaxed);
            if let Some(status) = http::error_status(&e) {
                shared.metrics.http_errors.fetch_add(1, Ordering::Relaxed);
                let body = format!("{{\"error\": \"{}\"}}", escape(&format!("{e:?}")));
                let _ = http::write_json(&mut stream, status, &body);
            }
            return;
        }
    };
    shared.metrics.http_requests.fetch_add(1, Ordering::Relaxed);
    let (status, content_type, body) = route(&request, shared);
    if status >= 400 {
        shared.metrics.http_errors.fetch_add(1, Ordering::Relaxed);
    }
    let _ = http::write_response(&mut stream, status, content_type, body.as_bytes());
    let _ = stream.flush();
}

type Response = (u16, &'static str, String);

const JSON: &str = "application/json";
const PROM: &str = "text/plain; version=0.0.4";

fn route(req: &Request, shared: &Arc<ServerShared>) -> Response {
    let path = req.path.split('?').next().unwrap_or("");
    match (req.method.as_str(), path) {
        ("GET", "/healthz") => {
            let draining = shared.scheduler.is_shutting_down();
            (200, JSON, format!("{{\"ok\": true, \"draining\": {draining}}}"))
        }
        ("GET", "/v1/graphs") => graphs_body(shared),
        ("POST", "/v1/jobs") => submit_job(req, shared),
        ("GET", p) if p.starts_with("/v1/jobs/") => match parse_id(p) {
            Some(id) => match shared.scheduler.job(id) {
                Some(job) => (200, JSON, job_body(&job)),
                None => (404, JSON, "{\"error\": \"no such job\"}".to_string()),
            },
            None => (400, JSON, "{\"error\": \"bad job id\"}".to_string()),
        },
        ("DELETE", p) if p.starts_with("/v1/jobs/") => match parse_id(p) {
            Some(id) => match shared.scheduler.job(id) {
                Some(job) => {
                    if shared.scheduler.cancel(&job) {
                        (200, JSON, job_body(&job))
                    } else {
                        (
                            409,
                            JSON,
                            format!(
                                "{{\"error\": \"job is {} and cannot be cancelled\"}}",
                                job.state().name()
                            ),
                        )
                    }
                }
                None => (404, JSON, "{\"error\": \"no such job\"}".to_string()),
            },
            None => (400, JSON, "{\"error\": \"bad job id\"}".to_string()),
        },
        ("GET", "/metrics") => {
            let body = shared.metrics.render_prometheus(
                &shared.catalog,
                &shared.results,
                shared.scheduler.queue_depth(),
                shared.scheduler.running(),
                Some(&shared.collector),
            );
            (200, PROM, body)
        }
        ("POST", "/v1/admin/shutdown") => {
            // Flip the scheduler to draining; the process owner (the
            // binary's main) notices via healthz/is_shutting_down and
            // completes the full server shutdown.
            shared.scheduler.begin_drain();
            (202, JSON, "{\"draining\": true}".to_string())
        }
        _ => (404, JSON, "{\"error\": \"no such route\"}".to_string()),
    }
}

fn parse_id(path: &str) -> Option<u64> {
    path.strip_prefix("/v1/jobs/")?.parse().ok()
}

fn graphs_body(shared: &Arc<ServerShared>) -> Response {
    let rows: Vec<String> = shared
        .catalog
        .list()
        .into_iter()
        .map(|r| {
            let mut row = format!(
                "{{\"name\": \"{}\", \"source\": \"{}\", \"kind\": \"{}\", \
                 \"directed\": {}, \"paper_vertices\": {}",
                escape(&r.name),
                r.source,
                escape(&r.kind),
                r.directed,
                r.paper_vertices
            );
            // Family fingerprint of the resident materialization, so
            // operators can see which manifest bucket the graph
            // resolves to. Absent until the graph is first resolved.
            if let Some(fp) = &r.fingerprint {
                row.push_str(&format!(
                    ", \"fingerprint\": {{\"vertices\": {}, \"arcs\": {}, \
                     \"directed\": {}, \"degree_cv\": {}, \"family\": \"{}\"}}",
                    fp.vertices,
                    fp.arcs,
                    fp.directed,
                    num(fp.degree_cv),
                    escape(&fp.family_key())
                ));
            }
            row.push('}');
            row
        })
        .collect();
    (200, JSON, format!("{{\"graphs\": [{}]}}", rows.join(", ")))
}

/// Parses a submission body into a spec, or an error message.
fn parse_job_spec(body: &[u8]) -> Result<(JobSpec, Option<u64>), String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let v = json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let algo_name = v
        .get("algo")
        .and_then(Value::as_str)
        .ok_or_else(|| "missing required field \"algo\"".to_string())?;
    let algo = Algo::from_name(algo_name)
        .ok_or_else(|| format!("unknown algo {algo_name:?} (cc|gc|mis|mst|scc)"))?;
    let graph = v
        .get("graph")
        .and_then(Value::as_str)
        .ok_or_else(|| "missing required field \"graph\"".to_string())?
        .to_string();
    let scale = v.get("scale").and_then(Value::as_f64).unwrap_or(0.001);
    if scale <= 0.0 || !scale.is_finite() || scale > 1.0 {
        return Err(format!("scale must be in (0, 1], got {scale}"));
    }
    let seed = v.get("seed").and_then(Value::as_f64).unwrap_or(0.0) as u64;
    let block_size = v.get("block_size").and_then(Value::as_f64).map(|b| b as usize);
    if let Some(bs) = block_size {
        if bs == 0 || bs > 1024 {
            return Err(format!("block_size must be in [1, 1024], got {bs}"));
        }
    }
    let deadline_ms = v.get("deadline_ms").and_then(Value::as_f64).map(|d| d as u64);
    let wait_ms = v.get("wait_ms").and_then(Value::as_f64).map(|w| (w as u64).min(MAX_WAIT_MS));
    let fault = match v.get("fault").and_then(Value::as_str) {
        Some("panic") => Fault::Panic,
        Some(other) => return Err(format!("unknown fault {other:?}")),
        None => match v.get("delay_ms").and_then(Value::as_f64) {
            Some(ms) if (0.0..=60_000.0).contains(&ms) => Fault::DelayMs(ms as u32),
            Some(ms) => return Err(format!("delay_ms out of range: {ms}")),
            None => Fault::None,
        },
    };
    Ok((JobSpec { algo, graph, scale, seed, block_size, deadline_ms, fault }, wait_ms))
}

fn submit_job(req: &Request, shared: &Arc<ServerShared>) -> Response {
    let (spec, wait_ms) = match parse_job_spec(&req.body) {
        Ok(parsed) => parsed,
        Err(msg) => return (400, JSON, format!("{{\"error\": \"{}\"}}", escape(&msg))),
    };
    match shared.scheduler.submit(spec) {
        Ok(job) => {
            if let Some(ms) = wait_ms {
                job.wait_terminal(Duration::from_millis(ms));
                (200, JSON, job_body(&job))
            } else {
                (202, JSON, job_body(&job))
            }
        }
        Err(SubmitError::QueueFull) => {
            (429, JSON, "{\"error\": \"queue full\", \"retry\": true}".to_string())
        }
        Err(SubmitError::ShuttingDown) => {
            (503, JSON, "{\"error\": \"server is draining\", \"retry\": false}".to_string())
        }
    }
}

/// Renders a job's full status document.
fn job_body(job: &Arc<JobRecord>) -> String {
    let st = job.status();
    let mut out = format!(
        "{{\"id\": {}, \"state\": \"{}\", \"algo\": \"{}\", \"graph\": \"{}\", \
         \"seed\": {}, \"cached\": {}, \"queue_ms\": {}, \"run_ms\": {}",
        job.id,
        st.state.name(),
        job.spec.algo.name(),
        escape(&job.spec.graph),
        job.spec.seed,
        st.cached,
        num(st.queue_ms),
        num(st.run_ms),
    );
    if let Some(result) = job.with_output(|o| {
        let aggs: Vec<String> = o.aggregates.iter().map(|(k, v)| format!("\"{k}\": {v}")).collect();
        format!(
            "{{\"graph_hash\": \"{:016x}\", \"vertices\": {}, \"arcs\": {}, \
             \"modeled_time\": {}, \"tuned\": {}, \"aggregates\": {{{}}}}}",
            o.graph_hash,
            o.vertices,
            o.arcs,
            num(o.modeled_time),
            o.tuned,
            aggs.join(", ")
        )
    }) {
        out.push_str(&format!(", \"result\": {result}"));
    }
    if let Some(msg) = job.end_message() {
        out.push_str(&format!(", \"error\": \"{}\"", escape(&msg)));
    }
    out.push('}');
    out
}
