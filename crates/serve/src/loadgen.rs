//! Load generator for `ecl-serve`: closed- and open-loop drivers, a
//! tiny blocking HTTP client (persistent keep-alive connections via
//! [`HttpClient`], or one-shot via [`http_call`]), and an
//! `ecl-bench/2` JSON report that `ecl-prof gate` can regression-gate.
//!
//! **Closed loop** (`concurrency = N`): N workers each keep exactly
//! one request in flight (submit with `wait_ms`, measure, repeat) —
//! the latency you get when clients back off under load. Each worker
//! holds one keep-alive connection unless `keep_alive` is off.
//!
//! **Open loop** (`rate_per_sec = R`): arrivals are paced on a fixed
//! schedule regardless of completions — the latency you get when
//! demand does not care how the server is doing, including 429s once
//! the admission queue fills.
//!
//! The report separates *wall* latency (scheduling noise, gate it
//! locally if you like) from *modeled* GPU time (deterministic given
//! the job mix, so CI gates it across machines — see the `serve-smoke`
//! workflow job).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ecl_prof::json::{self, Value};
use ecl_profiling::{LogSketch, SketchSnapshot};

use crate::jobs::Algo;

/// Arrival discipline.
#[derive(Clone, Copy, Debug)]
pub enum LoadMode {
    /// `N` workers, one request in flight each.
    Closed {
        /// Concurrent in-flight requests.
        concurrency: usize,
    },
    /// Fixed arrival schedule of `rate` requests/second.
    Open {
        /// Arrivals per second.
        rate: f64,
    },
}

/// Load-generator configuration.
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// `host:port` of the server.
    pub target: String,
    /// Arrival discipline.
    pub mode: LoadMode,
    /// How long to generate load for.
    pub duration: Duration,
    /// Algorithms, round-robined per request.
    pub algos: Vec<Algo>,
    /// Catalog graph each job runs on.
    pub graph: String,
    /// Job scale.
    pub scale: f64,
    /// Jobs rotate through seeds `0..distinct_seeds` — 1 makes every
    /// request after the first a result-cache hit; larger values mix
    /// misses in.
    pub distinct_seeds: u64,
    /// Per-request `wait_ms` (closed-loop completion bound).
    pub wait_ms: u64,
    /// Reuse one connection per closed-loop worker (HTTP/1.1
    /// keep-alive) instead of a fresh connect per request. On is the
    /// realistic client; off measures connection-setup overhead.
    pub keep_alive: bool,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            target: "127.0.0.1:0".to_string(),
            mode: LoadMode::Closed { concurrency: 2 },
            duration: Duration::from_secs(2),
            algos: vec![Algo::Cc, Algo::Mis, Algo::Gc],
            graph: "internet".to_string(),
            scale: 0.001,
            distinct_seeds: 4,
            wait_ms: 30_000,
            keep_alive: true,
        }
    }
}

/// Outcome of a run.
#[derive(Debug)]
pub struct LoadReport {
    /// Requests issued.
    pub requests: u64,
    /// Jobs that reached `done` within the wait.
    pub ok: u64,
    /// Subset of `ok` whose result ran under a manifest schedule
    /// (`result.tuned` in the job body) — distinguishes a run against
    /// a `--tuned` server from a default-config run.
    pub tuned_ok: u64,
    /// 429 admission rejections.
    pub rejected: u64,
    /// Transport failures, 5xx, failed/timed-out jobs.
    pub errors: u64,
    /// End-to-end request latency (µs), successful requests only.
    pub latency_us: SketchSnapshot,
    /// The slowest successful requests as `(latency_us, req_id)` pairs,
    /// worst first — the server-assigned `x-ecl-req` ids feed straight
    /// into `GET /v1/debug/requests` / the job trace endpoint, so a bad
    /// tail in a load run is debuggable after the fact.
    pub worst_requests: Vec<(u64, u64)>,
    /// Server-assigned request ids of failed/timed-out requests
    /// (bounded sample; 0 = the failure happened before a response
    /// head carried an id, e.g. connect refused).
    pub error_req_ids: Vec<u64>,
    /// Deterministic modeled GPU time per completed job (cost units).
    pub modeled_times: Vec<f64>,
    /// Wall-clock span of the run.
    pub wall_seconds: f64,
    /// Echo of the generating config (for the report header).
    pub config: LoadgenConfig,
}

/// Minimal blocking HTTP/1.1 exchange: one request, `Connection:
/// close`, whole response read to EOF. Returns `(status, body)`.
pub fn http_call(
    target: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(u16, String), String> {
    let mut stream = TcpStream::connect(target).map_err(|e| format!("connect {target}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(150)))
        .map_err(|e| format!("set timeout: {e}"))?;
    let body = body.unwrap_or("");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: {target}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).map_err(|e| format!("write: {e}"))?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).map_err(|e| format!("read: {e}"))?;
    let text = String::from_utf8_lossy(&raw);
    let status: u16 =
        text.split_whitespace().nth(1).and_then(|s| s.parse().ok()).ok_or_else(|| {
            format!("unparseable response: {:?}", text.get(..64).unwrap_or(&text))
        })?;
    let body_start = text.find("\r\n\r\n").map(|i| i + 4).unwrap_or(text.len());
    Ok((status, text[body_start..].to_string()))
}

/// Persistent HTTP/1.1 client: one connection reused across calls
/// (keep-alive), responses delimited by `Content-Length` rather than
/// EOF. A call on a connection the server has since closed reconnects
/// and retries once, so keep-alive stays transparent to callers.
pub struct HttpClient {
    target: String,
    keep_alive: bool,
    stream: Option<TcpStream>,
    /// Bytes read past the previous response (pipelining slack).
    buf: Vec<u8>,
    /// `x-ecl-req` header of the last response (0 = none seen).
    last_req: u64,
}

impl HttpClient {
    /// A client for `host:port`. With `keep_alive` false every call
    /// sends `Connection: close` and reconnects, matching [`http_call`].
    pub fn new(target: &str, keep_alive: bool) -> HttpClient {
        HttpClient {
            target: target.to_string(),
            keep_alive,
            stream: None,
            buf: Vec::new(),
            last_req: 0,
        }
    }

    /// The server-assigned correlation id (`x-ecl-req` header) of the
    /// most recent response, or 0 if the last exchange carried none.
    pub fn last_req_id(&self) -> u64 {
        self.last_req
    }

    /// One request/response exchange. Returns `(status, body)`.
    pub fn call(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<(u16, String), String> {
        let reused = self.stream.is_some();
        match self.call_once(method, path, body) {
            // A reused connection may have been closed server-side
            // (read timeout, drain) between calls; retry exactly once
            // on a fresh connection.
            Err(_) if reused => {
                self.reset();
                self.call_once(method, path, body)
            }
            other => other,
        }
    }

    fn reset(&mut self) {
        self.stream = None;
        self.buf.clear();
    }

    fn call_once(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<(u16, String), String> {
        // Cleared up front so a transport failure never leaves a stale
        // id from the previous exchange.
        self.last_req = 0;
        if self.stream.is_none() {
            let stream = TcpStream::connect(&self.target)
                .map_err(|e| format!("connect {}: {e}", self.target))?;
            stream
                .set_read_timeout(Some(Duration::from_secs(150)))
                .map_err(|e| format!("set timeout: {e}"))?;
            self.stream = Some(stream);
            self.buf.clear();
        }
        let Some(stream) = self.stream.as_mut() else {
            return Err("no connection".to_string());
        };
        let connection = if self.keep_alive { "keep-alive" } else { "close" };
        let body = body.unwrap_or("");
        let request = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\nConnection: {connection}\r\n\r\n{body}",
            self.target,
            body.len()
        );
        stream.write_all(request.as_bytes()).map_err(|e| format!("write: {e}"))?;

        // Head: read until the blank line.
        let head_end = loop {
            if let Some(i) = find_terminator(&self.buf) {
                break i;
            }
            let mut chunk = [0u8; 4096];
            match stream.read(&mut chunk) {
                Ok(0) => return Err("connection closed before response head".to_string()),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(format!("read: {e}")),
            }
        };
        let head = String::from_utf8_lossy(&self.buf[..head_end]).to_string();
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("unparseable status line: {:?}", head.lines().next()))?;
        let mut content_length: Option<usize> = None;
        let mut server_closes = !self.keep_alive;
        for line in head.lines().skip(1) {
            let Some((name, value)) = line.split_once(':') else { continue };
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.parse().ok();
            } else if name.eq_ignore_ascii_case("connection") && value.eq_ignore_ascii_case("close")
            {
                server_closes = true;
            } else if name.eq_ignore_ascii_case("x-ecl-req") {
                self.last_req = value.parse().unwrap_or(0);
            }
        }
        let body_start = head_end + 4;

        let text = match content_length {
            Some(len) => {
                while self.buf.len() < body_start + len {
                    let mut chunk = [0u8; 4096];
                    match stream.read(&mut chunk) {
                        Ok(0) => return Err("connection closed mid-body".to_string()),
                        Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                        Err(e) => return Err(format!("read body: {e}")),
                    }
                }
                let text =
                    String::from_utf8_lossy(&self.buf[body_start..body_start + len]).to_string();
                // Keep anything past this response for the next call.
                self.buf.drain(..body_start + len);
                text
            }
            None => {
                // No length: body runs to EOF (forces a reconnect).
                let mut rest = Vec::new();
                stream.read_to_end(&mut rest).map_err(|e| format!("read to eof: {e}"))?;
                self.buf.extend_from_slice(&rest);
                let text = String::from_utf8_lossy(&self.buf[body_start..]).to_string();
                self.buf.clear();
                server_closes = true;
                text
            }
        };
        if server_closes {
            self.reset();
        }
        Ok((status, text))
    }
}

fn find_terminator(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Slowest successful requests kept in the report (`x-ecl-req` ids).
const WORST_REQUESTS: usize = 10;
/// Bounded sample of failed-request ids — enough to start debugging,
/// small enough that an error storm cannot bloat the report.
const ERROR_REQ_SAMPLE: usize = 32;

struct Tally {
    requests: AtomicU64,
    ok: AtomicU64,
    tuned_ok: AtomicU64,
    rejected: AtomicU64,
    errors: AtomicU64,
    latency_us: LogSketch,
    modeled: Mutex<Vec<f64>>,
    /// `(latency_us, req_id)` of the slowest successes, worst first.
    worst: Mutex<Vec<(u64, u64)>>,
    /// Request ids of failed exchanges (first [`ERROR_REQ_SAMPLE`]).
    error_reqs: Mutex<Vec<u64>>,
}

impl Tally {
    fn new() -> Tally {
        Tally {
            requests: AtomicU64::new(0),
            ok: AtomicU64::new(0),
            tuned_ok: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            latency_us: LogSketch::new(),
            modeled: Mutex::new(Vec::new()),
            worst: Mutex::new(Vec::new()),
            error_reqs: Mutex::new(Vec::new()),
        }
    }

    fn note_success(&self, latency_us: u64, req_id: u64) {
        let mut worst = self.worst.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        worst.push((latency_us, req_id));
        worst.sort_by_key(|w| std::cmp::Reverse(w.0));
        worst.truncate(WORST_REQUESTS);
    }

    fn note_error(&self, req_id: u64) {
        let mut reqs = self.error_reqs.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if reqs.len() < ERROR_REQ_SAMPLE {
            reqs.push(req_id);
        }
    }
}

fn job_request_body(config: &LoadgenConfig, request_index: u64) -> String {
    let algo = config.algos[(request_index as usize) % config.algos.len()];
    let seed = request_index % config.distinct_seeds.max(1);
    format!(
        "{{\"algo\": \"{}\", \"graph\": \"{}\", \"scale\": {}, \"seed\": {}, \"wait_ms\": {}}}",
        algo.name(),
        config.graph,
        config.scale,
        seed,
        config.wait_ms
    )
}

/// Issues one job request and folds the outcome into `tally`.
fn fire(config: &LoadgenConfig, request_index: u64, tally: &Tally, client: &mut HttpClient) {
    let body = job_request_body(config, request_index);
    tally.requests.fetch_add(1, Ordering::Relaxed);
    let t0 = Instant::now();
    let outcome = client.call("POST", "/v1/jobs", Some(&body));
    // Server-assigned correlation id from the response's `x-ecl-req`
    // header (0 when the exchange died before a head arrived).
    let req_id = client.last_req_id();
    match outcome {
        Ok((200, response)) => {
            let v = json::parse(&response).unwrap_or(Value::Null);
            let state = v.get("state").and_then(Value::as_str).unwrap_or("");
            if state == "done" {
                tally.ok.fetch_add(1, Ordering::Relaxed);
                let latency_us = t0.elapsed().as_micros() as u64;
                tally.latency_us.record(latency_us);
                tally.note_success(latency_us, req_id);
                let result = v.get("result");
                if matches!(result.and_then(|r| r.get("tuned")), Some(Value::Bool(true))) {
                    tally.tuned_ok.fetch_add(1, Ordering::Relaxed);
                }
                if let Some(m) = result.and_then(|r| r.get("modeled_time")).and_then(Value::as_f64)
                {
                    tally.modeled.lock().unwrap_or_else(std::sync::PoisonError::into_inner).push(m);
                }
            } else {
                // Failed or timed-out job — the id points at the
                // server-side trace for it.
                tally.errors.fetch_add(1, Ordering::Relaxed);
                tally.note_error(req_id);
            }
        }
        Ok((429, _)) => {
            tally.rejected.fetch_add(1, Ordering::Relaxed);
        }
        Ok((_, _)) | Err(_) => {
            tally.errors.fetch_add(1, Ordering::Relaxed);
            tally.note_error(req_id);
        }
    }
}

/// Runs the configured load and collects a report.
pub fn run(config: &LoadgenConfig) -> LoadReport {
    assert!(!config.algos.is_empty(), "loadgen needs at least one algorithm");
    let tally = Arc::new(Tally::new());
    let stop = Arc::new(AtomicBool::new(false));
    let next_index = Arc::new(AtomicU64::new(0));
    let t0 = Instant::now();

    let handles: Vec<std::thread::JoinHandle<()>> = match config.mode {
        LoadMode::Closed { concurrency } => (0..concurrency.max(1))
            .map(|_| {
                let (config, tally, stop, next) = (
                    config.clone(),
                    Arc::clone(&tally),
                    Arc::clone(&stop),
                    Arc::clone(&next_index),
                );
                std::thread::spawn(move || {
                    // One persistent connection per closed-loop worker.
                    let mut client = HttpClient::new(&config.target, config.keep_alive);
                    while !stop.load(Ordering::Acquire) {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        fire(&config, i, &tally, &mut client);
                    }
                })
            })
            .collect(),
        LoadMode::Open { rate } => {
            assert!(rate > 0.0, "open-loop rate must be positive");
            let interval = Duration::from_secs_f64(1.0 / rate);
            let mut shooters = Vec::new();
            let mut next_arrival = t0;
            while t0.elapsed() < config.duration {
                let now = Instant::now();
                if now < next_arrival {
                    std::thread::sleep(next_arrival - now);
                }
                next_arrival += interval;
                let i = next_index.fetch_add(1, Ordering::Relaxed);
                let (config, tally) = (config.clone(), Arc::clone(&tally));
                shooters.push(std::thread::spawn(move || {
                    // One-shot arrivals gain nothing from keep-alive;
                    // `Connection: close` frees the server slot at once.
                    let mut client = HttpClient::new(&config.target, false);
                    fire(&config, i, &tally, &mut client);
                }));
            }
            shooters
        }
    };
    if matches!(config.mode, LoadMode::Closed { .. }) {
        std::thread::sleep(config.duration);
        stop.store(true, Ordering::Release);
    }
    for h in handles {
        let _ = h.join();
    }

    let r = Ordering::Relaxed;
    let mut modeled =
        tally.modeled.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone();
    modeled.sort_by(f64::total_cmp);
    let worst_requests =
        tally.worst.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone();
    let error_req_ids =
        tally.error_reqs.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone();
    LoadReport {
        requests: tally.requests.load(r),
        ok: tally.ok.load(r),
        tuned_ok: tally.tuned_ok.load(r),
        rejected: tally.rejected.load(r),
        errors: tally.errors.load(r),
        latency_us: tally.latency_us.snapshot(),
        worst_requests,
        error_req_ids,
        modeled_times: modeled,
        wall_seconds: t0.elapsed().as_secs_f64(),
        config: config.clone(),
    }
}

impl LoadReport {
    /// Serializes in the `ecl-bench/2` shape `ecl-prof gate` consumes:
    /// a manifest-style `metrics` array. Wall-latency metrics are
    /// machine-dependent; `modeled_time_units` is deterministic for a
    /// fixed job mix and is what CI gates (`--metric modeled`).
    pub fn to_json(&self) -> String {
        let mode = match self.config.mode {
            LoadMode::Closed { concurrency } => format!("closed/{concurrency}"),
            LoadMode::Open { rate } => format!("open/{rate}"),
        };
        let algos: Vec<&str> = self.config.algos.iter().map(|a| a.name()).collect();
        let mut metrics: Vec<String> = Vec::new();
        let metric = |name: &str, unit: &str, direction: &str, samples: &[f64]| {
            let vals: Vec<String> = samples.iter().map(|v| json::num(*v)).collect();
            format!(
                "    {{\"name\": \"{name}\", \"unit\": \"{unit}\", \
                 \"direction\": \"{direction}\", \"samples\": [{}]}}",
                vals.join(", ")
            )
        };
        let l = &self.latency_us;
        if l.count > 0 {
            metrics.push(metric("request_latency_p50_us", "us", "lower", &[l.p50 as f64]));
            metrics.push(metric("request_latency_p99_us", "us", "lower", &[l.p99 as f64]));
        }
        if !self.modeled_times.is_empty() {
            // One sample per distinct job, not per completion: cache
            // hits repeat the same modeled time, and how often each
            // job completes varies run to run, which would skew the
            // gate's median. The deduplicated set is a pure function
            // of the job mix.
            let mut distinct: Vec<f64> = self.modeled_times.clone();
            distinct.dedup_by(|a, b| a.to_bits() == b.to_bits());
            metrics.push(metric("modeled_time_units", "units", "lower", &distinct));
        }
        metrics.push(metric(
            "throughput_ok_per_sec",
            "1/s",
            "higher",
            &[self.ok as f64 / self.wall_seconds.max(1e-9)],
        ));
        // Correlation ids for the tail and the failures: each id keys
        // into the server's flight recorder (`/v1/debug/requests`,
        // `/v1/jobs/:id/trace`) so a bad run is debuggable after the
        // fact.
        let worst: Vec<String> = self
            .worst_requests
            .iter()
            .map(|(latency_us, req_id)| {
                format!("{{\"req_id\": {req_id}, \"latency_us\": {latency_us}}}")
            })
            .collect();
        let error_ids: Vec<String> = self.error_req_ids.iter().map(u64::to_string).collect();
        format!(
            "{{\n  \"schema\": \"ecl-bench/2\",\n  \"benchmark\": \"ecl-loadgen\",\n  \
             \"git_sha\": \"{}\",\n  \"mode\": \"{mode}\",\n  \"keep_alive\": {},\n  \
             \"graph\": \"{}\",\n  \
             \"scale\": {},\n  \"distinct_seeds\": {},\n  \"algos\": [{}],\n  \
             \"requests\": {},\n  \"ok\": {},\n  \"tuned_ok\": {},\n  \"rejected\": {},\n  \
             \"errors\": {},\n  \
             \"wall_seconds\": {},\n  \"latency_us\": {{\"count\": {}, \"p50\": {}, \
             \"p90\": {}, \"p99\": {}, \"max\": {}}},\n  \
             \"worst_requests\": [{}],\n  \"error_req_ids\": [{}],\n  \
             \"metrics\": [\n{}\n  ]\n}}\n",
            ecl_prof::git_sha(),
            self.config.keep_alive,
            json::escape(&self.config.graph),
            self.config.scale,
            self.config.distinct_seeds,
            algos.iter().map(|a| format!("\"{a}\"")).collect::<Vec<_>>().join(", "),
            self.requests,
            self.ok,
            self.tuned_ok,
            self.rejected,
            self.errors,
            json::num(self.wall_seconds),
            l.count,
            l.p50,
            l.p90,
            l.p99,
            l.max,
            worst.join(", "),
            error_ids.join(", "),
            metrics.join(",\n")
        )
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn report_json_is_gateable() {
        let report = LoadReport {
            requests: 10,
            ok: 8,
            tuned_ok: 3,
            rejected: 1,
            errors: 1,
            latency_us: {
                let s = LogSketch::new();
                s.record(1000);
                s.record(2000);
                s.snapshot()
            },
            worst_requests: vec![(2000, 42), (1000, 7)],
            error_req_ids: vec![13, 0],
            modeled_times: vec![5.0, 5.0, 7.0],
            wall_seconds: 2.0,
            config: LoadgenConfig::default(),
        };
        let text = report.to_json();
        // Parses as JSON and looks like a gateable manifest: string
        // schema + a metrics array with direction-tagged samples.
        let v = json::parse(&text).unwrap();
        assert_eq!(v.get("schema").and_then(Value::as_str), Some("ecl-bench/2"));
        // Tuned-vs-default runs are distinguishable from the report.
        assert_eq!(v.get("tuned_ok").and_then(Value::as_f64), Some(3.0));
        // The slow tail and the failures carry server correlation ids.
        let worst = v.get("worst_requests").and_then(Value::as_arr).unwrap();
        assert_eq!(worst.len(), 2);
        assert_eq!(worst[0].get("req_id").and_then(Value::as_f64), Some(42.0));
        assert_eq!(worst[0].get("latency_us").and_then(Value::as_f64), Some(2000.0));
        let errs = v.get("error_req_ids").and_then(Value::as_arr).unwrap();
        assert_eq!(errs.len(), 2);
        let metrics = v.get("metrics").and_then(Value::as_arr).unwrap();
        assert!(metrics.iter().any(|m| {
            // The duplicated 5.0 (a cache-hit completion) collapses.
            m.get("name").and_then(Value::as_str) == Some("modeled_time_units")
                && m.get("samples").and_then(Value::as_arr).is_some_and(|s| s.len() == 2)
        }));
        let manifest = ecl_prof::Manifest::from_value(&v).unwrap();
        assert!(manifest
            .metrics
            .iter()
            .any(|m| m.name == "modeled_time_units" && m.direction == ecl_prof::Direction::Lower));
    }

    #[test]
    fn keep_alive_client_reuses_one_connection() {
        use std::net::TcpListener;

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let target = listener.local_addr().unwrap().to_string();
        let served = std::thread::spawn(move || {
            // Accept exactly once; serve two responses on it. A client
            // that reconnects per call would hang on the second call.
            let (mut s, _) = listener.accept().unwrap();
            for body in ["{\"n\": 1}", "{\"n\": 2}"] {
                let mut seen = Vec::new();
                let mut chunk = [0u8; 1024];
                while find_terminator(&seen).is_none() {
                    let n = s.read(&mut chunk).unwrap();
                    assert!(n > 0, "client hung up early");
                    seen.extend_from_slice(&chunk[..n]);
                }
                let reply = format!(
                    "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n\
                     Content-Length: {}\r\nConnection: keep-alive\r\n\r\n{body}",
                    body.len()
                );
                s.write_all(reply.as_bytes()).unwrap();
            }
        });
        let mut client = HttpClient::new(&target, true);
        let (status, body) = client.call("GET", "/one", None).unwrap();
        assert_eq!((status, body.as_str()), (200, "{\"n\": 1}"));
        let (status, body) = client.call("GET", "/two", None).unwrap();
        assert_eq!((status, body.as_str()), (200, "{\"n\": 2}"));
        served.join().unwrap();
    }

    #[test]
    fn client_retries_once_when_a_reused_connection_died() {
        use std::net::TcpListener;

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let target = listener.local_addr().unwrap().to_string();
        let served = std::thread::spawn(move || {
            // First connection: one response, then hang up (as the
            // server's idle read-timeout reaper would).
            for body in ["{\"first\": true}", "{\"second\": true}"] {
                let (mut s, _) = listener.accept().unwrap();
                let mut seen = Vec::new();
                let mut chunk = [0u8; 1024];
                while find_terminator(&seen).is_none() {
                    let n = s.read(&mut chunk).unwrap();
                    if n == 0 {
                        break;
                    }
                    seen.extend_from_slice(&chunk[..n]);
                }
                let reply = format!(
                    "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n\
                     Content-Length: {}\r\nConnection: keep-alive\r\n\r\n{body}",
                    body.len()
                );
                s.write_all(reply.as_bytes()).unwrap();
                drop(s);
            }
        });
        let mut client = HttpClient::new(&target, true);
        let (_, body) = client.call("GET", "/a", None).unwrap();
        assert!(body.contains("first"));
        // The server closed the connection; the retry path must make
        // this call succeed on a fresh one.
        let (_, body) = client.call("GET", "/b", None).unwrap();
        assert!(body.contains("second"), "{body}");
        served.join().unwrap();
    }

    #[test]
    fn request_bodies_round_robin_algos_and_seeds() {
        let config = LoadgenConfig {
            algos: vec![Algo::Cc, Algo::Scc],
            distinct_seeds: 2,
            ..LoadgenConfig::default()
        };
        let b0 = job_request_body(&config, 0);
        let b1 = job_request_body(&config, 1);
        let b2 = job_request_body(&config, 2);
        assert!(b0.contains("\"cc\"") && b0.contains("\"seed\": 0"));
        assert!(b1.contains("\"scc\"") && b1.contains("\"seed\": 1"));
        assert!(b2.contains("\"cc\"") && b2.contains("\"seed\": 0"));
    }
}
