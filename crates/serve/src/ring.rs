//! A bounded lock-free MPMC ring — the queueing fabric of the
//! event-driven front end.
//!
//! Three rings of this type connect the serve threads: accepted
//! sockets flow accept-thread → reactor, admitted jobs flow
//! reactor → scheduler workers, and completion notices flow
//! workers → reactor. The design is the classic sequence-per-slot
//! bounded queue (the same publication idiom as `ecl-trace`'s ring:
//! claim a position with a CAS, write the payload, then publish with a
//! `Release` store of the slot sequence that a consumer's `Acquire`
//! load synchronizes with).
//!
//! Two departures from the textbook version, both driven by serve
//! semantics:
//!
//! 1. **Exact admission bound.** The slot array is rounded up to a
//!    power of two, but [`EventRing::try_push`] rejects at exactly the
//!    configured `bound` via a separate depth counter — `--max-queue 3`
//!    means 3, not 4. The depth reservation also guarantees a claimed
//!    position always has a free slot, so the inner publish loop never
//!    has to report "full" after winning a claim.
//! 2. **Owned payloads.** Slots hold `T` (sockets, `Arc`s), not plain
//!    words; `Drop` drains whatever is still queued so shutdown never
//!    leaks a connection.
//!
//! The protocol (exactly-once pop, publication ordering, exact bound)
//! is explored schedule-exhaustively by the `serve-conn-ring` harness
//! in `ecl-mc`, which mirrors this algorithm on the model-checked
//! shims and shares [`ring_slot`].

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Maps a monotonically increasing position onto a slot index.
/// `mask` is `capacity - 1` with capacity a power of two. Shared with
/// the `ecl-mc` ring harness so the model checks the same index math.
#[inline]
pub fn ring_slot(mask: usize, pos: usize) -> usize {
    pos & mask
}

struct Slot<T> {
    /// Publication sequence: `pos` when free for the producer claiming
    /// `pos`, `pos + 1` once the payload is readable, `pos + capacity`
    /// after the consumer frees it for the next lap.
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// Bounded lock-free multi-producer multi-consumer ring.
pub struct EventRing<T> {
    mask: usize,
    bound: usize,
    /// Exact occupancy (reserved before the slot claim, released after
    /// the slot read). May transiently exceed observable items while a
    /// push is mid-publication.
    depth: AtomicUsize,
    head: AtomicUsize,
    tail: AtomicUsize,
    slots: Box<[Slot<T>]>,
}

// SAFETY: slots are handed off between threads with Release/Acquire on
// `seq` (publish after write, free after read), so a `T` is only ever
// accessed by the single thread that won the position CAS for it.
unsafe impl<T: Send> Send for EventRing<T> {}
// SAFETY: as above — all shared mutable access to slot payloads is
// mediated by the seq handshake; `T: Send` is all that crossing
// threads requires.
unsafe impl<T: Send> Sync for EventRing<T> {}

impl<T> EventRing<T> {
    /// A ring admitting at most `bound` items (exactly — the internal
    /// capacity rounds up to a power of two but admission does not).
    pub fn new(bound: usize) -> Self {
        let bound = bound.max(1);
        let cap = bound.next_power_of_two();
        let slots: Vec<Slot<T>> = (0..cap)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        EventRing {
            mask: cap - 1,
            bound,
            depth: AtomicUsize::new(0),
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            slots: slots.into_boxed_slice(),
        }
    }

    /// Current occupancy (admission-exact, including in-flight pushes).
    pub fn len(&self) -> usize {
        self.depth.load(Ordering::Acquire)
    }

    /// Whether the ring is (observably) empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The admission bound.
    pub fn capacity(&self) -> usize {
        self.bound
    }

    /// Pushes, or hands the value back when the ring is at its bound.
    /// Lock-free; never blocks on consumers except for the bounded
    /// window where a consumer has claimed-but-not-yet-freed the slot
    /// one full lap behind a reserved position.
    pub fn try_push(&self, value: T) -> Result<(), T> {
        if self.depth.fetch_add(1, Ordering::AcqRel) >= self.bound {
            self.depth.fetch_sub(1, Ordering::AcqRel);
            return Err(value);
        }
        let mut pos = self.tail.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[ring_slot(self.mask, pos)];
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq as isize - pos as isize;
            if dif == 0 {
                match self.tail.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: winning the tail CAS for `pos` grants
                        // exclusive access to this slot until the seq
                        // store below publishes it.
                        unsafe { (*slot.value.get()).write(value) };
                        slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                        return Ok(());
                    }
                    Err(current) => pos = current,
                }
            } else if dif < 0 {
                // A consumer one lap behind has claimed this slot but
                // not yet freed it. Our depth reservation guarantees it
                // is mid-pop, so the wait is bounded.
                std::hint::spin_loop();
                pos = self.tail.load(Ordering::Relaxed);
            } else {
                pos = self.tail.load(Ordering::Relaxed);
            }
        }
    }

    /// Pops the oldest item, or `None` when no *published* item is
    /// visible (a push that has reserved depth but not yet stored its
    /// payload reads as empty — wakeups fire after publication, so
    /// parked consumers never miss it).
    pub fn pop(&self) -> Option<T> {
        let mut pos = self.head.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[ring_slot(self.mask, pos)];
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq as isize - pos.wrapping_add(1) as isize;
            if dif == 0 {
                match self.head.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: winning the head CAS for `pos` grants
                        // exclusive access to the published payload; the
                        // seq store below frees the slot for the
                        // producer a lap ahead.
                        let value = unsafe { (*slot.value.get()).assume_init_read() };
                        slot.seq
                            .store(pos.wrapping_add(self.mask).wrapping_add(1), Ordering::Release);
                        self.depth.fetch_sub(1, Ordering::AcqRel);
                        return Some(value);
                    }
                    Err(current) => pos = current,
                }
            } else if dif < 0 {
                return None;
            } else {
                pos = self.head.load(Ordering::Relaxed);
            }
        }
    }
}

impl<T> Drop for EventRing<T> {
    fn drop(&mut self) {
        // Drain owned payloads (sockets, Arcs) still queued.
        while self.pop().is_some() {}
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_within_a_single_thread() {
        let ring = EventRing::new(4);
        for i in 0..4 {
            ring.try_push(i).unwrap();
        }
        assert_eq!(ring.len(), 4);
        assert!(ring.try_push(99).is_err(), "full ring rejects");
        for i in 0..4 {
            assert_eq!(ring.pop(), Some(i));
        }
        assert_eq!(ring.pop(), None);
        assert!(ring.is_empty());
    }

    #[test]
    fn bound_is_exact_not_power_of_two() {
        let ring = EventRing::new(3);
        assert_eq!(ring.capacity(), 3);
        for i in 0..3 {
            ring.try_push(i).unwrap();
        }
        assert_eq!(ring.try_push(3), Err(3), "rejects at exactly the bound");
        assert_eq!(ring.pop(), Some(0));
        ring.try_push(3).unwrap();
    }

    #[test]
    fn wraps_across_many_laps() {
        let ring = EventRing::new(2);
        for i in 0..100 {
            ring.try_push(i).unwrap();
            assert_eq!(ring.pop(), Some(i));
        }
    }

    #[test]
    fn concurrent_producers_and_consumers_deliver_exactly_once() {
        const PRODUCERS: usize = 4;
        const PER: usize = 500;
        let ring = Arc::new(EventRing::new(8));
        let mut handles = Vec::new();
        for p in 0..PRODUCERS {
            let ring = Arc::clone(&ring);
            handles.push(std::thread::spawn(move || {
                for i in 0..PER {
                    let mut v = p * PER + i;
                    loop {
                        match ring.try_push(v) {
                            Ok(()) => break,
                            Err(back) => {
                                v = back;
                                std::thread::yield_now();
                            }
                        }
                    }
                }
            }));
        }
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    let mut idle = 0;
                    while idle < 10_000 {
                        match ring.pop() {
                            Some(v) => {
                                got.push(v);
                                idle = 0;
                            }
                            None => {
                                idle += 1;
                                std::thread::yield_now();
                            }
                        }
                    }
                    got
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut all: Vec<usize> = consumers.into_iter().flat_map(|c| c.join().unwrap()).collect();
        all.sort_unstable();
        let expect: Vec<usize> = (0..PRODUCERS * PER).collect();
        assert_eq!(all, expect, "every value delivered exactly once");
    }

    #[test]
    fn drop_drains_owned_payloads() {
        let tracked = Arc::new(());
        {
            let ring = EventRing::new(4);
            ring.try_push(Arc::clone(&tracked)).unwrap();
            ring.try_push(Arc::clone(&tracked)).unwrap();
            assert_eq!(Arc::strong_count(&tracked), 3);
        }
        assert_eq!(Arc::strong_count(&tracked), 1, "dropping the ring drops queued items");
    }
}
