//! A deliberately small, bounded HTTP/1.1 request parser and response
//! writer over `std::io` streams — no external dependencies.
//!
//! The parser enforces hard size limits *while reading* (request line,
//! header block, body), so a hostile or broken client can neither run
//! the server out of memory nor wedge a connection thread on an
//! unbounded read. Every malformed input maps to a typed
//! [`HttpError`]; nothing in this module panics on untrusted bytes
//! (proptested in `tests/http_proptests.rs`).
//!
//! Scope: exactly what `ecl-serve` needs. One request per connection
//! (responses always carry `Connection: close`), `Content-Length`
//! bodies only (no chunked encoding), no continuation lines.

use std::collections::BTreeMap;
use std::io::{self, Read, Write};

/// Size limits enforced during parsing.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Maximum bytes of the request head (request line + headers +
    /// terminating blank line).
    pub max_head_bytes: usize,
    /// Maximum bytes of the body (`Content-Length` beyond this is
    /// rejected before any body byte is read).
    pub max_body_bytes: usize,
    /// Maximum number of header lines.
    pub max_headers: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits { max_head_bytes: 8 * 1024, max_body_bytes: 64 * 1024, max_headers: 64 }
    }
}

/// Why a request could not be parsed.
#[derive(Debug, PartialEq, Eq)]
pub enum HttpError {
    /// Head or body exceeded a [`Limits`] bound → 431/413.
    TooLarge(&'static str),
    /// Structurally invalid request → 400.
    Malformed(&'static str),
    /// The stream ended before a full request arrived (client went
    /// away mid-request) → drop the connection silently.
    Truncated,
    /// Underlying transport error (timeouts land here) → drop.
    Io(io::ErrorKind),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::TooLarge(what) => write!(f, "request too large: {what}"),
            HttpError::Malformed(what) => write!(f, "malformed request: {what}"),
            HttpError::Truncated => write!(f, "connection closed mid-request"),
            HttpError::Io(kind) => write!(f, "io error: {kind:?}"),
        }
    }
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        match e.kind() {
            io::ErrorKind::UnexpectedEof => HttpError::Truncated,
            kind => HttpError::Io(kind),
        }
    }
}

/// A parsed request. Header names are lower-cased; the body is raw
/// bytes (JSON decoding happens at the route layer).
#[derive(Debug)]
pub struct Request {
    /// Upper-case method token as sent (`GET`, `POST`, `DELETE`, …).
    pub method: String,
    /// Request target, percent-decoding *not* applied (the service's
    /// names are ASCII identifiers; anything else 404s naturally).
    pub path: String,
    /// Lower-cased header name → value (last occurrence wins).
    pub headers: BTreeMap<String, String>,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// The value of `name` (ASCII case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.get(&name.to_ascii_lowercase()).map(String::as_str)
    }
}

/// Reads one byte, mapping EOF to [`HttpError::Truncated`].
fn read_byte<R: Read>(r: &mut R) -> Result<u8, HttpError> {
    let mut b = [0u8; 1];
    match r.read(&mut b) {
        Ok(0) => Err(HttpError::Truncated),
        Ok(_) => Ok(b[0]),
        Err(e) if e.kind() == io::ErrorKind::Interrupted => read_byte(r),
        Err(e) => Err(e.into()),
    }
}

/// Reads the head (everything through `\r\n\r\n`), enforcing
/// `max_head_bytes` as it goes. Accepts bare-`\n` line endings too —
/// robustness against sloppy clients; the paired tests exercise both.
fn read_head<R: Read>(r: &mut R, limits: &Limits) -> Result<Vec<u8>, HttpError> {
    let mut head = Vec::with_capacity(512);
    loop {
        if head.len() >= limits.max_head_bytes {
            return Err(HttpError::TooLarge("head"));
        }
        let b = read_byte(r)?;
        head.push(b);
        if head.ends_with(b"\r\n\r\n") || head.ends_with(b"\n\n") {
            return Ok(head);
        }
        // An empty first line would mean `\r\n` at the very start.
        if head == b"\r\n" || head == b"\n" {
            return Err(HttpError::Malformed("empty request line"));
        }
    }
}

fn is_token_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b"!#$%&'*+-.^_`|~".contains(&b)
}

/// Parses one request from `r` under `limits`.
pub fn read_request<R: Read>(r: &mut R, limits: &Limits) -> Result<Request, HttpError> {
    let head = read_head(r, limits)?;
    let text = std::str::from_utf8(&head).map_err(|_| HttpError::Malformed("non-UTF-8 head"))?;
    let mut lines = text.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));

    let request_line = lines.next().ok_or(HttpError::Malformed("missing request line"))?;
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or("");
    let path = parts.next().ok_or(HttpError::Malformed("missing request target"))?;
    let version = parts.next().ok_or(HttpError::Malformed("missing HTTP version"))?;
    if parts.next().is_some() {
        return Err(HttpError::Malformed("extra tokens in request line"));
    }
    if method.is_empty() || !method.bytes().all(is_token_char) {
        return Err(HttpError::Malformed("bad method token"));
    }
    if !path.starts_with('/') {
        return Err(HttpError::Malformed("request target must be absolute path"));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::Malformed("unsupported HTTP version"));
    }

    let mut headers = BTreeMap::new();
    for line in lines {
        if line.is_empty() {
            continue; // the blank terminator (and the tail after it)
        }
        if headers.len() >= limits.max_headers {
            return Err(HttpError::TooLarge("header count"));
        }
        let (name, value) =
            line.split_once(':').ok_or(HttpError::Malformed("header without colon"))?;
        if name.is_empty() || !name.bytes().all(is_token_char) {
            return Err(HttpError::Malformed("bad header name"));
        }
        headers.insert(name.to_ascii_lowercase(), value.trim().to_string());
    }

    let body = match headers.get("content-length") {
        None => Vec::new(),
        Some(v) => {
            let len: usize =
                v.parse().map_err(|_| HttpError::Malformed("unparseable Content-Length"))?;
            if len > limits.max_body_bytes {
                return Err(HttpError::TooLarge("body"));
            }
            let mut body = vec![0u8; len];
            r.read_exact(&mut body)?;
            body
        }
    };

    Ok(Request { method: method.to_string(), path: path.to_string(), headers, body })
}

/// Reason phrases for the status codes the service emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a complete response (status + headers + body) and flushes.
/// Always `Connection: close` — this server is one-request-per-
/// connection by design.
pub fn write_response<W: Write>(
    w: &mut W,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        reason(status),
        body.len()
    )?;
    w.write_all(body)?;
    w.flush()
}

/// [`write_response`] for a JSON body.
pub fn write_json<W: Write>(w: &mut W, status: u16, body: &str) -> io::Result<()> {
    write_response(w, status, "application/json", body.as_bytes())
}

/// The status code an [`HttpError`] maps to, when a response can still
/// be written (`None`: drop the connection without responding).
pub fn error_status(e: &HttpError) -> Option<u16> {
    match e {
        HttpError::TooLarge("body") => Some(413),
        HttpError::TooLarge(_) => Some(431),
        HttpError::Malformed(_) => Some(400),
        HttpError::Truncated | HttpError::Io(_) => None,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn parse(bytes: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut io::Cursor::new(bytes), &Limits::default())
    }

    #[test]
    fn parses_get_without_body() {
        let r = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/healthz");
        assert_eq!(r.header("host"), Some("x"));
        assert_eq!(r.header("HOST"), Some("x"));
        assert!(r.body.is_empty());
    }

    #[test]
    fn parses_post_with_body() {
        let r = parse(b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 4\r\n\r\n{\"a\"").unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.body, b"{\"a\"");
    }

    #[test]
    fn accepts_bare_lf_lines() {
        let r = parse(b"GET / HTTP/1.1\nHost: y\n\n").unwrap();
        assert_eq!(r.header("host"), Some("y"));
    }

    #[test]
    fn rejects_bad_request_lines() {
        for bad in [
            &b"GET /\r\n\r\n"[..],
            b"GET  / HTTP/1.1\r\n\r\n",
            b"GET / HTTP/1.1 extra\r\n\r\n",
            b"G\x01T / HTTP/1.1\r\n\r\n",
            b"GET relative HTTP/1.1\r\n\r\n",
            b"GET / HTTP/2.0\r\n\r\n",
            b"\r\n\r\n",
        ] {
            assert!(
                matches!(parse(bad), Err(HttpError::Malformed(_))),
                "{:?}",
                String::from_utf8_lossy(bad)
            );
        }
    }

    #[test]
    fn rejects_header_without_colon() {
        assert!(matches!(
            parse(b"GET / HTTP/1.1\r\nnocolonhere\r\n\r\n"),
            Err(HttpError::Malformed("header without colon"))
        ));
    }

    #[test]
    fn truncated_stream_is_truncated_not_malformed() {
        assert!(matches!(parse(b"GET / HTTP/1.1\r\nHost:"), Err(HttpError::Truncated)));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"),
            Err(HttpError::Truncated)
        ));
    }

    #[test]
    fn oversized_head_and_body_are_rejected() {
        let limits = Limits { max_head_bytes: 64, max_body_bytes: 8, max_headers: 4 };
        let mut big = b"GET / HTTP/1.1\r\n".to_vec();
        big.extend_from_slice(&[b'a'; 100]);
        assert_eq!(
            read_request(&mut io::Cursor::new(&big), &limits).err(),
            Some(HttpError::TooLarge("head"))
        );
        let r = read_request(
            &mut io::Cursor::new(b"POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n123456789"),
            &limits,
        );
        assert_eq!(r.err(), Some(HttpError::TooLarge("body")));
        let r = read_request(
            &mut io::Cursor::new(b"GET / HTTP/1.1\r\na: 1\r\nb: 2\r\nc: 3\r\nd: 4\r\ne: 5\r\n\r\n"),
            &limits,
        );
        assert_eq!(r.err(), Some(HttpError::TooLarge("header count")));
    }

    #[test]
    fn huge_content_length_rejected_before_allocation() {
        // Claims 100 TB: must fail on the limit check, not allocate.
        let r = parse(b"POST / HTTP/1.1\r\nContent-Length: 109951162777600\r\n\r\n");
        assert_eq!(r.err(), Some(HttpError::TooLarge("body")));
    }

    #[test]
    fn error_statuses() {
        assert_eq!(error_status(&HttpError::TooLarge("body")), Some(413));
        assert_eq!(error_status(&HttpError::TooLarge("head")), Some(431));
        assert_eq!(error_status(&HttpError::Malformed("x")), Some(400));
        assert_eq!(error_status(&HttpError::Truncated), None);
    }

    #[test]
    fn response_is_well_formed() {
        let mut out = Vec::new();
        write_json(&mut out, 202, "{\"id\":1}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 202 Accepted\r\n"));
        assert!(text.contains("Content-Length: 8\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"id\":1}"));
    }
}
