//! A deliberately small, bounded HTTP/1.1 parser and response writer —
//! no external dependencies.
//!
//! The core is [`RequestParser`], an *incremental* push parser: the
//! reactor feeds it whatever bytes a nonblocking read produced (possibly
//! one at a time, possibly several pipelined requests at once) and asks
//! for the next complete request. All parser state — partial head,
//! partial body, leftover pipelined bytes — is carried across readiness
//! events inside the parser, which is what lets a single thread own
//! thousands of connections.
//!
//! Hard size limits (request line + headers, body, header count) are
//! enforced *as bytes arrive*, so a hostile or broken client can
//! neither run the server out of memory nor wedge a connection on an
//! unbounded read. Every malformed input maps to a typed [`HttpError`];
//! nothing in this module panics on untrusted bytes (proptested in
//! `tests/http_proptests.rs`, including byte-by-byte delivery).
//!
//! Scope: exactly what `ecl-serve` needs. HTTP/1.1 keep-alive with
//! `Connection`/`Content-Length` handling, `Content-Length` bodies only
//! (no chunked encoding), no continuation lines. The blocking
//! [`read_request`] used by one-shot clients is a thin loop over the
//! incremental parser.

use std::collections::BTreeMap;
use std::io::{self, Read, Write};

/// Size limits enforced during parsing.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Maximum bytes of the request head (request line + headers +
    /// terminating blank line).
    pub max_head_bytes: usize,
    /// Maximum bytes of the body (`Content-Length` beyond this is
    /// rejected before any body byte is buffered).
    pub max_body_bytes: usize,
    /// Maximum number of header lines.
    pub max_headers: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits { max_head_bytes: 8 * 1024, max_body_bytes: 64 * 1024, max_headers: 64 }
    }
}

/// Why a request could not be parsed.
#[derive(Debug, PartialEq, Eq)]
pub enum HttpError {
    /// Head or body exceeded a [`Limits`] bound → 431/413.
    TooLarge(&'static str),
    /// Structurally invalid request → 400.
    Malformed(&'static str),
    /// The stream ended before a full request arrived (client went
    /// away mid-request) → best-effort 400, then close.
    Truncated,
    /// Underlying transport error (timeouts land here) → the
    /// connection is unanswerable; drop it.
    Io(io::ErrorKind),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::TooLarge(what) => write!(f, "request too large: {what}"),
            HttpError::Malformed(what) => write!(f, "malformed request: {what}"),
            HttpError::Truncated => write!(f, "connection closed mid-request"),
            HttpError::Io(kind) => write!(f, "io error: {kind:?}"),
        }
    }
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        match e.kind() {
            io::ErrorKind::UnexpectedEof => HttpError::Truncated,
            kind => HttpError::Io(kind),
        }
    }
}

/// A parsed request. Header names are lower-cased; the body is raw
/// bytes (JSON decoding happens at the route layer).
#[derive(Debug)]
pub struct Request {
    /// Upper-case method token as sent (`GET`, `POST`, `DELETE`, …).
    pub method: String,
    /// Request target, percent-decoding *not* applied (the service's
    /// names are ASCII identifiers; anything else 404s naturally).
    pub path: String,
    /// Lower-cased header name → value (last occurrence wins).
    pub headers: BTreeMap<String, String>,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the request line said `HTTP/1.1` (drives the keep-alive
    /// default: 1.1 persists, 1.0 closes).
    pub version_11: bool,
}

impl Request {
    /// The value of `name` (ASCII case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.get(&name.to_ascii_lowercase()).map(String::as_str)
    }

    /// HTTP/1.1 keep-alive semantics: an explicit `Connection` header
    /// wins; otherwise 1.1 defaults to persistent and 1.0 to close.
    pub fn wants_keep_alive(&self) -> bool {
        match self.header("connection").map(str::to_ascii_lowercase) {
            Some(v) if v.split(',').any(|t| t.trim() == "close") => false,
            Some(v) if v.split(',').any(|t| t.trim() == "keep-alive") => true,
            _ => self.version_11,
        }
    }
}

fn is_token_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b"!#$%&'*+-.^_`|~".contains(&b)
}

/// What the parser is in the middle of.
enum Phase {
    /// Accumulating the head (request line + headers) in `buf`.
    Head,
    /// Head parsed; `req.body` is filling toward `need` bytes.
    Body { req: Box<Request>, need: usize },
}

/// Incremental push parser. Feed it bytes as they arrive; ask for
/// complete requests. Retains leftover bytes across requests, so
/// pipelined input parses correctly. After [`RequestParser::try_next`]
/// returns an error the parser is poisoned garbage — close the
/// connection and discard it.
pub struct RequestParser {
    limits: Limits,
    /// Unconsumed input: partial head bytes, or pipelined bytes of the
    /// next request while the current one is still being answered.
    buf: Vec<u8>,
    /// Resume point for the head-terminator scan (avoids rescanning the
    /// whole buffer on every one-byte feed).
    scan: usize,
    phase: Phase,
}

impl RequestParser {
    /// A fresh parser at a request boundary.
    pub fn new(limits: Limits) -> Self {
        RequestParser { limits, buf: Vec::new(), scan: 0, phase: Phase::Head }
    }

    /// Appends newly arrived bytes. Cheap; parsing happens in
    /// [`RequestParser::try_next`].
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// True when the parser holds bytes of an incomplete request — an
    /// EOF now would cut a request mid-flight rather than land on a
    /// clean boundary.
    pub fn mid_request(&self) -> bool {
        !self.buf.is_empty() || matches!(self.phase, Phase::Body { .. })
    }

    /// Extracts the next complete request, `Ok(None)` when more bytes
    /// are needed, or the error that should end this connection.
    pub fn try_next(&mut self) -> Result<Option<Request>, HttpError> {
        loop {
            match std::mem::replace(&mut self.phase, Phase::Head) {
                Phase::Head => {
                    let Some(head_end) = self.find_head_end() else {
                        if self.buf.len() >= self.limits.max_head_bytes {
                            return Err(HttpError::TooLarge("head"));
                        }
                        return Ok(None);
                    };
                    let (req, need) = parse_head(&self.buf[..head_end], &self.limits)?;
                    self.buf.drain(..head_end);
                    self.scan = 0;
                    if need == 0 {
                        return Ok(Some(*req));
                    }
                    self.phase = Phase::Body { req, need };
                }
                Phase::Body { mut req, need } => {
                    let want = need - req.body.len();
                    let take = want.min(self.buf.len());
                    req.body.extend_from_slice(&self.buf[..take]);
                    self.buf.drain(..take);
                    if req.body.len() == need {
                        return Ok(Some(*req));
                    }
                    self.phase = Phase::Body { req, need };
                    return Ok(None);
                }
            }
        }
    }

    /// Index one past the head terminator (`\r\n\r\n` or the sloppy
    /// bare `\n\n`), searched only within the head size limit.
    fn find_head_end(&mut self) -> Option<usize> {
        let limit = self.buf.len().min(self.limits.max_head_bytes);
        for i in self.scan..limit {
            if i >= 3 && &self.buf[i - 3..=i] == b"\r\n\r\n" {
                return Some(i + 1);
            }
            if i >= 1 && &self.buf[i - 1..=i] == b"\n\n" {
                return Some(i + 1);
            }
        }
        // Next feed only needs to rescan the terminator-straddling tail.
        self.scan = limit.saturating_sub(3);
        None
    }
}

/// Parses a complete head block (terminator included) into a request
/// with an empty body, plus the declared `Content-Length`.
fn parse_head(head: &[u8], limits: &Limits) -> Result<(Box<Request>, usize), HttpError> {
    let text = std::str::from_utf8(head).map_err(|_| HttpError::Malformed("non-UTF-8 head"))?;
    let mut lines = text.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));

    let request_line = lines.next().ok_or(HttpError::Malformed("missing request line"))?;
    if request_line.is_empty() {
        return Err(HttpError::Malformed("empty request line"));
    }
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or("");
    let path = parts.next().ok_or(HttpError::Malformed("missing request target"))?;
    let version = parts.next().ok_or(HttpError::Malformed("missing HTTP version"))?;
    if parts.next().is_some() {
        return Err(HttpError::Malformed("extra tokens in request line"));
    }
    if method.is_empty() || !method.bytes().all(is_token_char) {
        return Err(HttpError::Malformed("bad method token"));
    }
    if !path.starts_with('/') {
        return Err(HttpError::Malformed("request target must be absolute path"));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::Malformed("unsupported HTTP version"));
    }

    let mut headers = BTreeMap::new();
    for line in lines {
        if line.is_empty() {
            continue; // the blank terminator (and the tail after it)
        }
        if headers.len() >= limits.max_headers {
            return Err(HttpError::TooLarge("header count"));
        }
        let (name, value) =
            line.split_once(':').ok_or(HttpError::Malformed("header without colon"))?;
        if name.is_empty() || !name.bytes().all(is_token_char) {
            return Err(HttpError::Malformed("bad header name"));
        }
        headers.insert(name.to_ascii_lowercase(), value.trim().to_string());
    }

    let need = match headers.get("content-length") {
        None => 0,
        Some(v) => {
            let len: usize =
                v.parse().map_err(|_| HttpError::Malformed("unparseable Content-Length"))?;
            if len > limits.max_body_bytes {
                return Err(HttpError::TooLarge("body"));
            }
            len
        }
    };

    let req = Box::new(Request {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body: Vec::with_capacity(need.min(4096)),
        version_11: version == "HTTP/1.1",
    });
    Ok((req, need))
}

/// Blocking convenience: parses one request from `r` under `limits`.
/// A thin read loop over [`RequestParser`]; one-shot clients and tests
/// use it, the reactor does not.
pub fn read_request<R: Read>(r: &mut R, limits: &Limits) -> Result<Request, HttpError> {
    let mut parser = RequestParser::new(*limits);
    let mut chunk = [0u8; 1024];
    loop {
        if let Some(req) = parser.try_next()? {
            return Ok(req);
        }
        match r.read(&mut chunk) {
            Ok(0) => return Err(HttpError::Truncated),
            Ok(n) => parser.feed(&chunk[..n]),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
}

/// Reason phrases for the status codes the service emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Renders a complete response (status line + headers + body) into a
/// byte buffer — what the reactor stages into a connection's write
/// buffer. `keep_alive` controls the `Connection` header; the response
/// always carries an exact `Content-Length` so persistent clients know
/// where it ends.
pub fn response_bytes(status: u16, content_type: &str, body: &[u8], keep_alive: bool) -> Vec<u8> {
    response_bytes_with_req(status, content_type, body, keep_alive, 0)
}

/// [`response_bytes`] with the server-assigned request id echoed in an
/// `x-ecl-req` header (0 = no correlation context, header omitted).
/// Clients record the id so a slow or failed request can be looked up
/// in the server's flight recorder (`GET /v1/jobs/:id/trace`).
pub fn response_bytes_with_req(
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
    req: u64,
) -> Vec<u8> {
    let req_header = if req == 0 { String::new() } else { format!("x-ecl-req: {req}\r\n") };
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n{req_header}Connection: {}\r\n\r\n",
        reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    let mut out = Vec::with_capacity(head.len() + body.len());
    out.extend_from_slice(head.as_bytes());
    out.extend_from_slice(body);
    out
}

/// Writes a complete response and flushes.
pub fn write_response<W: Write>(
    w: &mut W,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    w.write_all(&response_bytes(status, content_type, body, keep_alive))?;
    w.flush()
}

/// [`write_response`] for a one-shot JSON body (`Connection: close`).
pub fn write_json<W: Write>(w: &mut W, status: u16, body: &str) -> io::Result<()> {
    write_response(w, status, "application/json", body.as_bytes(), false)
}

/// The status code an [`HttpError`] maps to, when a response can still
/// be written (`None`: the transport itself failed, so the connection
/// is unanswerable and is dropped without a response). `Truncated`
/// maps to 400: the peer half-closed mid-request, so a best-effort
/// response may still reach it.
pub fn error_status(e: &HttpError) -> Option<u16> {
    match e {
        HttpError::TooLarge("body") => Some(413),
        HttpError::TooLarge(_) => Some(431),
        HttpError::Malformed(_) => Some(400),
        HttpError::Truncated => Some(400),
        HttpError::Io(_) => None,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn parse(bytes: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut io::Cursor::new(bytes), &Limits::default())
    }

    #[test]
    fn parses_get_without_body() {
        let r = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/healthz");
        assert_eq!(r.header("host"), Some("x"));
        assert_eq!(r.header("HOST"), Some("x"));
        assert!(r.body.is_empty());
        assert!(r.version_11);
    }

    #[test]
    fn parses_post_with_body() {
        let r = parse(b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 4\r\n\r\n{\"a\"").unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.body, b"{\"a\"");
    }

    #[test]
    fn accepts_bare_lf_lines() {
        let r = parse(b"GET / HTTP/1.1\nHost: y\n\n").unwrap();
        assert_eq!(r.header("host"), Some("y"));
    }

    #[test]
    fn keep_alive_defaults_follow_the_version() {
        let r = parse(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        assert!(r.wants_keep_alive(), "1.1 defaults to persistent");
        let r = parse(b"GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!r.wants_keep_alive(), "1.0 defaults to close");
        let r = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!r.wants_keep_alive());
        let r = parse(b"GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n").unwrap();
        assert!(r.wants_keep_alive());
    }

    #[test]
    fn rejects_bad_request_lines() {
        for bad in [
            &b"GET /\r\n\r\n"[..],
            b"GET  / HTTP/1.1\r\n\r\n",
            b"GET / HTTP/1.1 extra\r\n\r\n",
            b"G\x01T / HTTP/1.1\r\n\r\n",
            b"GET relative HTTP/1.1\r\n\r\n",
            b"GET / HTTP/2.0\r\n\r\n",
            b"\r\n\r\n",
        ] {
            assert!(
                matches!(parse(bad), Err(HttpError::Malformed(_))),
                "{:?}",
                String::from_utf8_lossy(bad)
            );
        }
    }

    #[test]
    fn rejects_header_without_colon() {
        assert!(matches!(
            parse(b"GET / HTTP/1.1\r\nnocolonhere\r\n\r\n"),
            Err(HttpError::Malformed("header without colon"))
        ));
    }

    #[test]
    fn truncated_stream_is_truncated_not_malformed() {
        assert!(matches!(parse(b"GET / HTTP/1.1\r\nHost:"), Err(HttpError::Truncated)));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"),
            Err(HttpError::Truncated)
        ));
    }

    #[test]
    fn incremental_byte_by_byte_matches_one_shot() {
        let wire = b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 5\r\nHost: z\r\n\r\nhello";
        let mut p = RequestParser::new(Limits::default());
        for (i, b) in wire.iter().enumerate() {
            p.feed(std::slice::from_ref(b));
            let got = p.try_next().unwrap();
            if i + 1 < wire.len() {
                assert!(got.is_none(), "no request before byte {}", i + 1);
                assert!(p.mid_request());
            } else {
                let r = got.unwrap();
                assert_eq!(r.path, "/v1/jobs");
                assert_eq!(r.body, b"hello");
                assert!(!p.mid_request(), "parser back at a clean boundary");
            }
        }
    }

    #[test]
    fn pipelined_requests_parse_in_order() {
        let wire =
            b"GET /healthz HTTP/1.1\r\n\r\nPOST /v1/jobs HTTP/1.1\r\nContent-Length: 2\r\n\r\nok";
        let mut p = RequestParser::new(Limits::default());
        p.feed(wire);
        let first = p.try_next().unwrap().unwrap();
        assert_eq!(first.path, "/healthz");
        assert!(p.mid_request(), "second request's bytes are retained");
        let second = p.try_next().unwrap().unwrap();
        assert_eq!(second.method, "POST");
        assert_eq!(second.body, b"ok");
        assert!(p.try_next().unwrap().is_none());
    }

    #[test]
    fn oversized_head_and_body_are_rejected() {
        let limits = Limits { max_head_bytes: 64, max_body_bytes: 8, max_headers: 4 };
        let mut big = b"GET / HTTP/1.1\r\n".to_vec();
        big.extend_from_slice(&[b'a'; 100]);
        assert_eq!(
            read_request(&mut io::Cursor::new(&big), &limits).err(),
            Some(HttpError::TooLarge("head"))
        );
        let r = read_request(
            &mut io::Cursor::new(b"POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n123456789"),
            &limits,
        );
        assert_eq!(r.err(), Some(HttpError::TooLarge("body")));
        let r = read_request(
            &mut io::Cursor::new(b"GET / HTTP/1.1\r\na: 1\r\nb: 2\r\nc: 3\r\nd: 4\r\ne: 5\r\n\r\n"),
            &limits,
        );
        assert_eq!(r.err(), Some(HttpError::TooLarge("header count")));
    }

    #[test]
    fn terminator_exactly_at_the_head_limit_is_accepted() {
        // Head of exactly max_head_bytes including the terminator: legal.
        let head = b"GET / HTTP/1.1\r\n\r\n";
        let limits = Limits { max_head_bytes: head.len(), max_body_bytes: 8, max_headers: 4 };
        assert!(read_request(&mut io::Cursor::new(&head[..]), &limits).is_ok());
        // One byte past the limit: rejected even though a terminator
        // exists later in the stream.
        let mut long = b"GET /xx HTTP/1.1\r\n\r\n".to_vec();
        let tight = Limits { max_head_bytes: long.len() - 1, max_body_bytes: 8, max_headers: 4 };
        long.extend_from_slice(b"GET / HTTP/1.1\r\n\r\n");
        assert_eq!(
            read_request(&mut io::Cursor::new(&long), &tight).err(),
            Some(HttpError::TooLarge("head"))
        );
    }

    #[test]
    fn huge_content_length_rejected_before_allocation() {
        // Claims 100 TB: must fail on the limit check, not allocate.
        let r = parse(b"POST / HTTP/1.1\r\nContent-Length: 109951162777600\r\n\r\n");
        assert_eq!(r.err(), Some(HttpError::TooLarge("body")));
    }

    #[test]
    fn error_statuses() {
        assert_eq!(error_status(&HttpError::TooLarge("body")), Some(413));
        assert_eq!(error_status(&HttpError::TooLarge("head")), Some(431));
        assert_eq!(error_status(&HttpError::Malformed("x")), Some(400));
        assert_eq!(error_status(&HttpError::Truncated), Some(400), "best-effort 400");
        assert_eq!(error_status(&HttpError::Io(io::ErrorKind::ConnectionReset)), None);
    }

    #[test]
    fn response_is_well_formed() {
        let mut out = Vec::new();
        write_json(&mut out, 202, "{\"id\":1}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 202 Accepted\r\n"));
        assert!(text.contains("Content-Length: 8\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"id\":1}"));
        let keep = response_bytes(200, "application/json", b"{}", true);
        assert!(String::from_utf8(keep).unwrap().contains("Connection: keep-alive\r\n"));
    }
}
