//! Per-connection state machine for the event-driven front end.
//!
//! A [`Connection`] owns one nonblocking stream and carries everything
//! the reactor needs across readiness events: the incremental parser
//! (partial reads), the staged response and write cursor (partial
//! writes), the keep-alive decision, and the read/write deadlines.
//! The phases are exactly the ISSUE's reading → routing → writing
//! loop:
//!
//! ```text
//!            ┌────────────────────────────────────────┐
//!            v                                        │ keep-alive
//!   Reading ──parsed──> (routed by the reactor) ──> Writing ──> Closed
//!            │                  │                     ^
//!            │                  └──> Waiting ─────────┘
//!            └── timeout/EOF/transport error ───────> Closed
//! ```
//!
//! `Waiting` is a submission with `wait_ms`: the request is answered
//! when the scheduler's completion hook wakes the reactor (or the wait
//! deadline passes) — no thread blocks.
//!
//! The struct is generic over the stream so the deadline logic is
//! testable with scripted mock IO: the write-deadline regression test
//! below drives a "client" that stops reading mid-response and asserts
//! the connection slot is reclaimed instead of pinned forever. All
//! time is injected (`now: Instant` parameters); nothing here calls
//! the clock.

use std::io::{self, Read, Write};
use std::time::{Duration, Instant};

use crate::http::{response_bytes_with_req, HttpError, Limits, Request, RequestParser};

/// Bytes per `read` call.
const READ_CHUNK: usize = 4096;
/// Read calls per [`Connection::poll_read`] — bounds how long one
/// connection can hog the reactor before the sweep moves on.
const MAX_READS_PER_POLL: usize = 8;

/// Where a connection is in its request/response loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConnPhase {
    /// Accumulating request bytes (also the idle keep-alive state).
    Reading,
    /// A `wait_ms` submission is in flight; the reactor holds the job.
    Waiting,
    /// Flushing a staged response.
    Writing,
    /// Terminal; the reactor reaps the slot.
    Closed,
}

/// Why a connection ended (drives per-reason metrics).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CloseReason {
    /// Peer closed at a request boundary, or `Connection: close` ran
    /// its course.
    Done,
    /// No complete request within the read deadline (idle keep-alive
    /// or a slow-loris trickle).
    ReadTimeout,
    /// Peer stopped reading mid-response past the write deadline.
    WriteTimeout,
    /// Transport error.
    Broken,
}

/// Outcome of a read poll.
#[derive(Debug)]
pub enum ReadEvent {
    /// No complete request yet; nothing readable.
    Pending,
    /// A full request — the reactor routes it and must stage a
    /// response ([`Connection::start_response`]) or park the
    /// connection ([`Connection::set_waiting`]).
    Request(Box<Request>),
    /// Parse error: answer it where possible, then close.
    Bad(HttpError),
    /// Peer closed its half. `mid_request` distinguishes a cut-off
    /// request (answerable with a best-effort 400) from a clean
    /// boundary close.
    Eof {
        /// Bytes of an unfinished request had been consumed.
        mid_request: bool,
    },
    /// Transport error; the connection is unanswerable.
    Broken(io::ErrorKind),
}

/// Outcome of a write poll.
#[derive(Debug, PartialEq, Eq)]
pub enum WriteEvent {
    /// Socket buffer full; bytes remain staged.
    Pending,
    /// Response fully flushed. `close` mirrors the staged
    /// `Connection: close`; otherwise the connection has already reset
    /// to `Reading` for the next keep-alive request.
    Flushed {
        /// The connection was moved to [`ConnPhase::Closed`].
        close: bool,
    },
    /// Transport error mid-write.
    Broken,
}

/// One client connection and all state carried across readiness events.
pub struct Connection<S> {
    stream: S,
    parser: RequestParser,
    phase: ConnPhase,
    out: Vec<u8>,
    out_pos: usize,
    close_after_write: bool,
    read_timeout: Duration,
    write_timeout: Duration,
    /// Armed while `Reading`: set at registration and at each
    /// request boundary — deliberately *not* refreshed by partial
    /// bytes, so a slow-loris trickle cannot hold a slot open.
    read_deadline: Instant,
    /// Armed while `Writing`.
    write_deadline: Instant,
    served: u64,
    /// Correlation id of the request currently being answered (ecl-obs;
    /// 0 = none). Set by the reactor when a request is routed; echoed
    /// back to the client as an `x-ecl-req` response header.
    req_id: u64,
}

impl<S: Read + Write> Connection<S> {
    /// Wraps a freshly accepted (nonblocking) stream.
    pub fn new(
        stream: S,
        limits: Limits,
        now: Instant,
        read_timeout: Duration,
        write_timeout: Duration,
    ) -> Self {
        Connection {
            stream,
            parser: RequestParser::new(limits),
            phase: ConnPhase::Reading,
            out: Vec::new(),
            out_pos: 0,
            close_after_write: false,
            read_timeout,
            write_timeout,
            read_deadline: now + read_timeout,
            write_deadline: now + write_timeout,
            served: 0,
            req_id: 0,
        }
    }

    /// Current phase.
    pub fn phase(&self) -> ConnPhase {
        self.phase
    }

    /// Requests fully answered on this connection.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Force-closes (drain, deadline, unanswerable error).
    pub fn close(&mut self) {
        self.phase = ConnPhase::Closed;
    }

    /// The deadline that has passed, if any: `Reading` past the read
    /// deadline or `Writing` past the write deadline. The write arm is
    /// the "stalled reader" guard — a peer that stops draining its
    /// socket cannot pin this slot forever.
    pub fn expired(&self, now: Instant) -> Option<CloseReason> {
        match self.phase {
            ConnPhase::Reading if now >= self.read_deadline => Some(CloseReason::ReadTimeout),
            ConnPhase::Writing if now >= self.write_deadline => Some(CloseReason::WriteTimeout),
            _ => None,
        }
    }

    /// The next instant [`Connection::expired`] could fire (for the
    /// reactor's park-time calculation).
    pub fn next_deadline(&self) -> Option<Instant> {
        match self.phase {
            ConnPhase::Reading => Some(self.read_deadline),
            ConnPhase::Writing => Some(self.write_deadline),
            _ => None,
        }
    }

    /// Drains readable bytes into the parser and extracts at most one
    /// request. Only meaningful in [`ConnPhase::Reading`].
    pub fn poll_read(&mut self, _now: Instant) -> ReadEvent {
        let mut chunk = [0u8; READ_CHUNK];
        for _ in 0..=MAX_READS_PER_POLL {
            match self.parser.try_next() {
                Ok(Some(req)) => return ReadEvent::Request(Box::new(req)),
                Ok(None) => {}
                Err(e) => return ReadEvent::Bad(e),
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return ReadEvent::Eof { mid_request: self.parser.mid_request() },
                Ok(n) => self.parser.feed(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return ReadEvent::Pending,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return ReadEvent::Broken(e.kind()),
            }
        }
        // Read budget exhausted; the rest parses on the next sweep.
        ReadEvent::Pending
    }

    /// Bytes of an unfinished request are buffered (EOF now would cut
    /// a request short).
    pub fn mid_request(&self) -> bool {
        self.parser.mid_request()
    }

    /// Tags the connection with the correlation id of the request it is
    /// about to answer; the next [`Connection::start_response`] echoes
    /// it as an `x-ecl-req` header.
    pub fn set_req_id(&mut self, req: u64) {
        self.req_id = req;
    }

    /// Stages a response and arms the write deadline. The reactor
    /// should poll the write immediately — most responses flush in one
    /// call.
    pub fn start_response(
        &mut self,
        now: Instant,
        status: u16,
        content_type: &str,
        body: &[u8],
        keep_alive: bool,
    ) {
        self.out = response_bytes_with_req(status, content_type, body, keep_alive, self.req_id);
        self.out_pos = 0;
        self.close_after_write = !keep_alive;
        self.write_deadline = now + self.write_timeout;
        self.phase = ConnPhase::Writing;
    }

    /// Parks the connection on an in-flight `wait_ms` job; the reactor
    /// owns the job handle and the wait deadline.
    pub fn set_waiting(&mut self) {
        self.phase = ConnPhase::Waiting;
    }

    /// Pushes staged bytes. On completion the connection either closes
    /// (`Connection: close`) or resets to `Reading` with a fresh read
    /// deadline, keeping any pipelined leftover bytes.
    pub fn poll_write(&mut self, now: Instant) -> WriteEvent {
        while self.out_pos < self.out.len() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => return WriteEvent::Broken,
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return WriteEvent::Pending,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return WriteEvent::Broken,
            }
        }
        let _ = self.stream.flush();
        self.out = Vec::new();
        self.out_pos = 0;
        self.served += 1;
        if self.close_after_write {
            self.phase = ConnPhase::Closed;
            WriteEvent::Flushed { close: true }
        } else {
            self.phase = ConnPhase::Reading;
            self.read_deadline = now + self.read_timeout;
            WriteEvent::Flushed { close: false }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    /// Scripted mock stream: reads pop from a queue (`None` behavior ==
    /// WouldBlock once exhausted), writes follow scripted behaviors and
    /// then accept everything.
    struct Script {
        reads: VecDeque<Vec<u8>>,
        write_steps: VecDeque<io::Result<usize>>,
        stall_writes: bool,
        written: Vec<u8>,
    }

    impl Script {
        fn with_reads(reads: &[&[u8]]) -> Self {
            Script {
                reads: reads.iter().map(|r| r.to_vec()).collect(),
                write_steps: VecDeque::new(),
                stall_writes: false,
                written: Vec::new(),
            }
        }
    }

    impl Read for Script {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            match self.reads.pop_front() {
                Some(bytes) => {
                    if bytes.is_empty() {
                        return Ok(0); // scripted EOF
                    }
                    let n = bytes.len().min(buf.len());
                    buf[..n].copy_from_slice(&bytes[..n]);
                    if n < bytes.len() {
                        self.reads.push_front(bytes[n..].to_vec());
                    }
                    Ok(n)
                }
                None => Err(io::Error::from(io::ErrorKind::WouldBlock)),
            }
        }
    }

    impl Write for Script {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.stall_writes {
                return Err(io::Error::from(io::ErrorKind::WouldBlock));
            }
            match self.write_steps.pop_front() {
                Some(Ok(n)) => {
                    let n = n.min(buf.len());
                    self.written.extend_from_slice(&buf[..n]);
                    Ok(n)
                }
                Some(Err(e)) => Err(e),
                None => {
                    self.written.extend_from_slice(buf);
                    Ok(buf.len())
                }
            }
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn conn(script: Script) -> Connection<Script> {
        Connection::new(
            script,
            Limits::default(),
            Instant::now(),
            Duration::from_secs(5),
            Duration::from_secs(2),
        )
    }

    #[test]
    fn request_assembled_across_readiness_events() {
        let script = Script::with_reads(&[b"GET /health", b"z HTTP/1.1\r\nHo", b"st: a\r\n\r\n"]);
        let mut c = conn(script);
        let now = Instant::now();
        match c.poll_read(now) {
            ReadEvent::Request(req) => assert_eq!(req.path, "/healthz"),
            other => panic!("expected request, got {other:?}"),
        }
    }

    #[test]
    fn keep_alive_resets_to_reading_and_serves_pipelined_bytes() {
        let script = Script::with_reads(&[
            b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n", // two pipelined requests
        ]);
        let mut c = conn(script);
        let now = Instant::now();
        let ReadEvent::Request(first) = c.poll_read(now) else { panic!("first request") };
        assert_eq!(first.path, "/a");
        c.start_response(now, 200, "application/json", b"{}", true);
        assert_eq!(c.poll_write(now), WriteEvent::Flushed { close: false });
        assert_eq!(c.phase(), ConnPhase::Reading);
        assert_eq!(c.served(), 1);
        // The second request parses from retained bytes without a read.
        let ReadEvent::Request(second) = c.poll_read(now) else { panic!("second request") };
        assert_eq!(second.path, "/b");
    }

    #[test]
    fn connection_close_response_closes_after_flush() {
        let mut c = conn(Script::with_reads(&[]));
        let now = Instant::now();
        c.start_response(now, 200, "application/json", b"{}", false);
        assert_eq!(c.poll_write(now), WriteEvent::Flushed { close: true });
        assert_eq!(c.phase(), ConnPhase::Closed);
    }

    #[test]
    fn stalled_reader_trips_the_write_deadline() {
        // Regression test for the missing write deadline: the client
        // stops reading mid-response (every write would block), so the
        // response can never flush. The slot must be reclaimable at
        // the write deadline instead of pinned forever.
        let mut script = Script::with_reads(&[]);
        script.stall_writes = true;
        let mut c = conn(script);
        let t0 = Instant::now();
        c.start_response(t0, 200, "application/json", b"{\"big\": true}", true);
        assert_eq!(c.poll_write(t0), WriteEvent::Pending);
        assert_eq!(c.phase(), ConnPhase::Writing);
        assert_eq!(c.expired(t0), None, "deadline not yet reached");
        // Still stalled at the deadline two seconds later.
        assert_eq!(c.poll_write(t0 + Duration::from_secs(1)), WriteEvent::Pending);
        assert_eq!(
            c.expired(t0 + Duration::from_secs(2)),
            Some(CloseReason::WriteTimeout),
            "stalled reader frees the connection slot"
        );
    }

    #[test]
    fn partial_writes_carry_across_events() {
        let mut script = Script::with_reads(&[]);
        script.write_steps =
            VecDeque::from([Ok(3), Err(io::Error::from(io::ErrorKind::WouldBlock))]);
        let mut c = conn(script);
        let now = Instant::now();
        c.start_response(now, 200, "text/plain", b"hello", false);
        assert_eq!(c.poll_write(now), WriteEvent::Pending, "blocked mid-response");
        assert_eq!(c.poll_write(now), WriteEvent::Flushed { close: true });
        let written = String::from_utf8(c.stream.written.clone()).unwrap();
        assert!(written.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(written.ends_with("\r\n\r\nhello"), "payload intact across partial writes");
    }

    #[test]
    fn slow_loris_trickle_does_not_extend_the_read_deadline() {
        let script = Script::with_reads(&[b"GET /slow"]);
        let mut c = conn(script);
        let t0 = Instant::now();
        assert!(matches!(c.poll_read(t0), ReadEvent::Pending));
        assert!(c.mid_request());
        // Partial bytes arrived, but the deadline still counts from
        // the request boundary.
        assert_eq!(c.expired(t0 + Duration::from_secs(5)), Some(CloseReason::ReadTimeout));
    }

    #[test]
    fn eof_reports_whether_a_request_was_cut_short() {
        let mut c = conn(Script::with_reads(&[b""]));
        let now = Instant::now();
        assert!(matches!(c.poll_read(now), ReadEvent::Eof { mid_request: false }));
        let mut c = conn(Script::with_reads(&[b"POST /v1/jobs HT", b""]));
        assert!(matches!(c.poll_read(now), ReadEvent::Eof { mid_request: true }));
    }
}
