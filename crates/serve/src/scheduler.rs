//! Job scheduler: bounded admission, a fixed worker pool, deadlines,
//! cancellation, panic containment, and drain-on-shutdown.
//!
//! Admission is **reject, not queue**: once the queue holds
//! `max_queue` jobs, `submit` fails immediately (the HTTP layer maps
//! that to 429) instead of building unbounded backlog. Concurrency is
//! sized against the simulator's own parallelism — each job run
//! saturates [`ecl_gpusim::pool::effective_workers`] OS threads, so
//! running more than `available_parallelism / effective_workers` jobs
//! at once just thrashes.
//!
//! Shutdown is a drain: no new admissions (503), but every job already
//! admitted runs to a terminal state before `shutdown()` returns. The
//! e2e tests assert the "zero dropped in-flight jobs" half of that
//! contract.
//!
//! The queue itself is the lock-free [`EventRing`] (reactor pushes,
//! workers pop); idle workers park on a condvar with the re-check-
//! under-lock protocol the `ecl-mc` drain harness verifies, so a push
//! can never be lost between a worker's emptiness check and its wait.
//! Terminal transitions fire an optional *completion hook* — the
//! event-driven front end installs one that wakes its reactor so a
//! `wait_ms` submission is answered the moment its job finishes,
//! without any thread blocking in `wait_terminal`.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

use crate::cache::{result_key, ResultCache};
use crate::catalog::GraphCatalog;
use crate::exec::execute;
use crate::jobs::{Algo, Fault, JobEnd, JobRecord, JobSpec, JobState};
use crate::metrics::ServeMetrics;
use crate::ring::EventRing;

/// Observer invoked with a job's id right after it reaches a terminal
/// state (worker finish, start-deadline expiry, or cancellation).
/// Runs on whichever thread drove the transition — keep it cheap and
/// non-blocking (the reactor's hook pushes onto a ring and wakes).
pub type CompletionHook = Arc<dyn Fn(u64) + Send + Sync>;

/// Scheduler sizing.
#[derive(Clone, Debug)]
pub struct SchedulerConfig {
    /// Queue capacity; submissions beyond it are rejected.
    pub max_queue: usize,
    /// Concurrent job executions (worker threads).
    pub max_concurrency: usize,
    /// Terminal jobs retained for status queries.
    pub max_history: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig { max_queue: 64, max_concurrency: default_concurrency(), max_history: 4096 }
    }
}

/// Concurrency that avoids oversubscription: host parallelism divided
/// by the threads one simulated-device run already uses.
pub fn default_concurrency() -> usize {
    let host = std::thread::available_parallelism().map_or(4, |n| n.get());
    (host / ecl_gpusim::pool::effective_workers().max(1)).max(1)
}

/// Why a submission was not admitted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The admission queue is at capacity (HTTP 429).
    QueueFull,
    /// The scheduler is draining for shutdown (HTTP 503).
    ShuttingDown,
}

struct Shared {
    queue: EventRing<Arc<JobRecord>>,
    /// Parking lot for idle workers. A worker only waits after
    /// re-checking the ring *while holding this lock*; wakers acquire
    /// it (empty) before notifying. That handshake is what makes the
    /// lock-free push + condvar park combination lost-wakeup-free.
    idle: Mutex<()>,
    work_ready: Condvar,
    hook: OnceLock<CompletionHook>,
    shutdown: AtomicBool,
    running: AtomicUsize,
    jobs: Mutex<HashMap<u64, Arc<JobRecord>>>,
    next_id: AtomicU64,
    config: SchedulerConfig,
    catalog: Arc<GraphCatalog>,
    results: Arc<ResultCache>,
    metrics: Arc<ServeMetrics>,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The scheduler. Construct with [`Scheduler::start`]; call
/// [`Scheduler::shutdown`] to drain (also runs on drop).
pub struct Scheduler {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Scheduler {
    /// Starts `config.max_concurrency` workers.
    pub fn start(
        config: SchedulerConfig,
        catalog: Arc<GraphCatalog>,
        results: Arc<ResultCache>,
        metrics: Arc<ServeMetrics>,
    ) -> Scheduler {
        let shared = Arc::new(Shared {
            queue: EventRing::new(config.max_queue.max(1)),
            idle: Mutex::new(()),
            work_ready: Condvar::new(),
            hook: OnceLock::new(),
            shutdown: AtomicBool::new(false),
            running: AtomicUsize::new(0),
            jobs: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            config: config.clone(),
            catalog,
            results,
            metrics,
        });
        let workers = (0..config.max_concurrency.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ecl-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn scheduler worker")
            })
            .collect();
        Scheduler { shared, workers: Mutex::new(workers) }
    }

    /// Admits a job or rejects it. Never blocks (the ring push is
    /// lock-free; the rejection bound is exactly `max_queue`).
    pub fn submit(&self, spec: JobSpec) -> Result<Arc<JobRecord>, SubmitError> {
        self.submit_with_req(spec, 0)
    }

    /// [`Scheduler::submit`] with the originating HTTP request id
    /// attached, so every trace span and kernel sample the job produces
    /// carries the request that caused it (0 = no request context).
    pub fn submit_with_req(&self, spec: JobSpec, req: u64) -> Result<Arc<JobRecord>, SubmitError> {
        if self.shared.shutdown.load(Ordering::Acquire) {
            return Err(SubmitError::ShuttingDown);
        }
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        let job = Arc::new(JobRecord::with_req(id, spec, req));
        if self.shared.queue.try_push(Arc::clone(&job)).is_err() {
            self.shared.metrics.admission_rejections.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::QueueFull);
        }
        self.shared.metrics.jobs_admitted.fetch_add(1, Ordering::Relaxed);
        self.retain_history();
        lock(&self.shared.jobs).insert(id, Arc::clone(&job));
        // Acquire-then-drop the idle lock before notifying: a worker
        // between its ring re-check and its wait still holds the lock,
        // so this cannot slip into that window (`scheduler-drain`
        // harness protocol).
        drop(lock(&self.shared.idle));
        self.shared.work_ready.notify_one();
        Ok(job)
    }

    /// Installs the terminal-transition observer (first install wins;
    /// the server wires this to its reactor before serving traffic).
    pub fn set_completion_hook(&self, hook: CompletionHook) {
        let _ = self.shared.hook.set(hook);
    }

    /// Looks up a job by id.
    pub fn job(&self, id: u64) -> Option<Arc<JobRecord>> {
        lock(&self.shared.jobs).get(&id).cloned()
    }

    /// All known jobs (admitted and retained terminal).
    pub fn jobs_snapshot(&self) -> Vec<Arc<JobRecord>> {
        lock(&self.shared.jobs).values().cloned().collect()
    }

    /// Cancels a queued job. Returns `false` if the job already
    /// started (running jobs are not preemptible).
    pub fn cancel(&self, job: &JobRecord) -> bool {
        job.request_cancel();
        let cancelled = job
            .transition(JobState::Cancelled, Some(JobEnd::Message("cancelled by client".into())));
        if cancelled {
            self.shared.metrics.jobs_cancelled.fetch_add(1, Ordering::Relaxed);
            observe_terminal(job);
            notify_completion(&self.shared, job.id);
        }
        cancelled
    }

    /// Jobs waiting for a worker.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.len()
    }

    /// Jobs currently executing.
    pub fn running(&self) -> usize {
        self.shared.running.load(Ordering::Relaxed)
    }

    /// Whether shutdown has begun.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::Acquire)
    }

    /// Begins draining without blocking: stops admissions and wakes
    /// idle workers (they exit once the queue empties). Used by the
    /// HTTP shutdown route, which must answer before the drain ends;
    /// [`Scheduler::shutdown`] still performs the join.
    pub fn begin_drain(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // Same acquire-then-notify handshake as `submit`: a worker
        // that read the flag as false under the idle lock is still
        // holding it, so the notify below cannot be lost.
        drop(lock(&self.shared.idle));
        self.shared.work_ready.notify_all();
    }

    /// Drains: stops admissions, lets every admitted job reach a
    /// terminal state, joins the workers. Idempotent.
    pub fn shutdown(&self) {
        self.begin_drain();
        let handles: Vec<JoinHandle<()>> = lock(&self.workers).drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
        // A submit can race the drain flag: it passed the shutdown
        // check, then pushed after the last worker exited. Run any
        // such leftovers inline so "zero dropped admitted jobs" holds
        // unconditionally.
        while let Some(job) = self.shared.queue.pop() {
            self.shared.running.fetch_add(1, Ordering::Relaxed);
            run_one(&self.shared, &job);
            self.shared.running.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Evicts oldest terminal jobs beyond the history cap.
    fn retain_history(&self) {
        let mut jobs = lock(&self.shared.jobs);
        if jobs.len() < self.shared.config.max_history {
            return;
        }
        let mut terminal: Vec<u64> =
            jobs.iter().filter(|(_, j)| j.state().is_terminal()).map(|(&id, _)| id).collect();
        terminal.sort_unstable();
        let excess = jobs.len().saturating_sub(self.shared.config.max_history / 2);
        for id in terminal.into_iter().take(excess) {
            jobs.remove(&id);
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        if let Some(job) = shared.queue.pop() {
            shared.running.fetch_add(1, Ordering::Relaxed);
            run_one(shared, &job);
            shared.running.fetch_sub(1, Ordering::Relaxed);
            continue;
        }
        // Park protocol: re-check the ring *under the idle lock*.
        // Pushers acquire the same lock before notifying, so a push
        // between the re-check and the wait is impossible to miss.
        let guard = lock(&shared.idle);
        if !shared.queue.is_empty() {
            continue;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        drop(shared.work_ready.wait(guard).unwrap_or_else(std::sync::PoisonError::into_inner));
    }
}

/// Fires the completion hook, if one is installed.
fn notify_completion(shared: &Shared, id: u64) {
    if let Some(hook) = shared.hook.get() {
        hook(id);
    }
}

/// Takes one admitted job to a terminal state.
fn run_one(shared: &Shared, job: &Arc<JobRecord>) {
    // Client cancellation won the race: the record is already terminal.
    if job.state().is_terminal() {
        return;
    }
    // Start-deadline check: a job that waited too long never runs.
    if let Some(deadline) = job.deadline() {
        if Instant::now() >= deadline {
            // Counted before the transition so a waiter woken by the
            // terminal state always observes the metric; undone on the
            // rare lost race with a concurrent cancellation.
            shared.metrics.jobs_deadline_exceeded.fetch_add(1, Ordering::Relaxed);
            if job.transition(
                JobState::DeadlineExceeded,
                Some(JobEnd::Message("start deadline exceeded while queued".into())),
            ) {
                observe_terminal(job);
                notify_completion(shared, job.id);
            } else {
                shared.metrics.jobs_deadline_exceeded.fetch_sub(1, Ordering::Relaxed);
            }
            return;
        }
    }
    if !job.transition(JobState::Running, None) {
        return; // Lost a race with cancellation.
    }

    // Request-context scope: every trace span and kernel sample emitted
    // below this point (including from the simulator's worker threads,
    // which inherit the context through the pool's job records) carries
    // the originating request id. Jobs without one skip all of it.
    let _ctx = (job.req != 0).then(|| ecl_obs::ctx::CtxGuard::enter(job.req));
    if job.req != 0 {
        ecl_obs::sink::with(|obs| {
            obs.recorder.begin(job.req, job.id, job.spec.algo.name(), &job.spec.graph);
        });
    }

    let spec = job.spec.clone();
    // Result-cache probe. Resolving the graph here is not wasted work:
    // the catalog memoizes it, so a subsequent miss-path execute() gets
    // a cache hit. Faulted jobs bypass the cache — they exist to
    // exercise the execution path.
    let probe_start = Instant::now();
    let resolved = if spec.fault == Fault::None {
        shared.catalog.resolve(&spec.graph, spec.scale, spec.seed, spec.algo == Algo::Mst).ok()
    } else {
        None
    };
    let key = resolved.as_ref().map(|g| result_key(g.content_hash, &spec));
    let hit = key.as_ref().and_then(|k| shared.results.get(k));
    if job.req != 0 {
        let probe_ns = probe_start.elapsed().as_nanos() as u64;
        ecl_obs::sink::with(|obs| obs.recorder.on_phase(job.req, "cache.probe", probe_ns));
    }
    if let Some(hit) = hit {
        job.mark_cached();
        shared.metrics.result_cache_serves.fetch_add(1, Ordering::Relaxed);
        finish(shared, job, JobState::Done, JobEnd::Output(Box::new((*hit).clone())));
        return;
    }

    // Per-request trace span: the algorithm's own kernel/phase events
    // (recorded through the same installed tracer) nest inside it, so
    // an exported timeline shows which request drove which launches.
    // Tuned jobs (manifest schedule attached to the resolved graph)
    // get a `/tuned` suffix so timelines separate the two populations.
    let tuned = resolved.as_ref().is_some_and(|g| g.schedule_for(spec.algo.name()).is_some());
    let span = if tuned {
        format!("serve.job/{}/tuned", spec.algo.name())
    } else {
        format!("serve.job/{}", spec.algo.name())
    };
    ecl_trace::sink::phase_start(&span);
    let outcome = catch_unwind(AssertUnwindSafe(|| execute(&spec, &shared.catalog)));
    ecl_trace::sink::phase_end(&span);
    match outcome {
        Ok(Ok(output)) => {
            if let Some(k) = key {
                shared.results.put(k, Arc::new(output.clone()));
            }
            finish(shared, job, JobState::Done, JobEnd::Output(Box::new(output)));
        }
        Ok(Err(message)) => {
            finish(shared, job, JobState::Failed, JobEnd::Message(message));
        }
        Err(panic) => {
            shared.metrics.jobs_panicked.fetch_add(1, Ordering::Relaxed);
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            finish(shared, job, JobState::Failed, JobEnd::Message(format!("job panicked: {msg}")));
        }
    }
}

fn finish(shared: &Shared, job: &Arc<JobRecord>, state: JobState, end: JobEnd) {
    // Counted before the transition so a waiter woken by the terminal
    // state always observes the metrics; undone on the rare lost race
    // with a concurrent cancellation. The tuned=true/false split
    // includes cache-served results — the cached output remembers how
    // it was computed.
    let state_ctr = match state {
        JobState::Done => Some(&shared.metrics.jobs_done),
        JobState::Failed => Some(&shared.metrics.jobs_failed),
        _ => None,
    };
    let tuned_ctr = match &end {
        JobEnd::Output(o) if o.tuned => Some(&shared.metrics.jobs_tuned),
        JobEnd::Output(_) => Some(&shared.metrics.jobs_untuned),
        JobEnd::Message(_) => None,
    };
    for ctr in [state_ctr, tuned_ctr].into_iter().flatten() {
        ctr.fetch_add(1, Ordering::Relaxed);
    }
    if !job.transition(state, Some(end)) {
        for ctr in [state_ctr, tuned_ctr].into_iter().flatten() {
            ctr.fetch_sub(1, Ordering::Relaxed);
        }
        return;
    }
    // Flight-recorder/SLO record lands *before* the completion hook: a
    // client answered through the hook can immediately fetch the trace.
    observe_terminal(job);
    notify_completion(shared, job.id);
    let st = job.status();
    shared.metrics.record_latency(
        job.spec.algo,
        (st.queue_ms * 1e3) as u64,
        (st.run_ms * 1e3) as u64,
    );
}

/// Folds a just-terminal job into the observability sink (flight
/// recorder + SLO engine), if one is installed and the job carries a
/// request id. Called exactly once per terminal transition, from
/// whichever path won the transition race.
fn observe_terminal(job: &JobRecord) {
    if job.req == 0 || !ecl_obs::sink::is_enabled() {
        return;
    }
    let state = job.state();
    let st = job.status();
    let queue_ns = (st.queue_ms * 1e6) as u64;
    let run_ns = (st.run_ms * 1e6) as u64;
    let (graph_hash, tuned, rounds) = job
        .with_output(|o| {
            let rounds = o
                .aggregates
                .iter()
                .find(|(n, _)| *n == "rounds" || *n == "outer_iterations")
                .map_or(0, |&(_, v)| v);
            (o.graph_hash, o.tuned, rounds)
        })
        .unwrap_or((0, false, 0));
    let info = ecl_obs::FinishInfo {
        outcome: state.name().to_string(),
        graph_hash,
        tuned,
        cached: st.cached,
        queue_ns,
        run_ns,
        rounds,
    };
    ecl_obs::sink::with(|obs| {
        obs.recorder.finish(job.req, job.id, job.spec.algo.name(), &job.spec.graph, info);
        if let Some(slo) = &obs.slo {
            slo.observe(job.spec.algo.name(), job.req, queue_ns + run_ns, state == JobState::Done);
        }
    });
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::catalog::CatalogConfig;
    use std::time::Duration;

    fn harness(config: SchedulerConfig) -> (Scheduler, Arc<ServeMetrics>) {
        let metrics = ServeMetrics::new();
        let sched = Scheduler::start(
            config,
            Arc::new(GraphCatalog::new(CatalogConfig::default())),
            Arc::new(ResultCache::new(64)),
            Arc::clone(&metrics),
        );
        (sched, metrics)
    }

    fn quick_spec() -> JobSpec {
        JobSpec::new(Algo::Cc, "internet")
    }

    #[test]
    fn submit_run_and_cache_hit() {
        let (sched, metrics) = harness(SchedulerConfig::default());
        let a = sched.submit(quick_spec()).unwrap();
        assert_eq!(a.wait_terminal(Duration::from_secs(60)), JobState::Done);
        let b = sched.submit(quick_spec()).unwrap();
        assert_eq!(b.wait_terminal(Duration::from_secs(60)), JobState::Done);
        assert!(b.status().cached, "identical resubmission must hit the result cache");
        let (na, nb) =
            (a.with_output(|o| o.clone()).unwrap(), b.with_output(|o| o.clone()).unwrap());
        assert_eq!(na, nb, "cache hit must be bit-identical");
        assert_eq!(metrics.result_cache_serves.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn queue_overflow_rejects() {
        let (sched, metrics) =
            harness(SchedulerConfig { max_queue: 2, max_concurrency: 1, max_history: 64 });
        // Stall the single worker with a long delay job.
        let mut slow = quick_spec();
        slow.fault = Fault::DelayMs(300);
        let stalled = sched.submit(slow).unwrap();
        // Wait until the worker picked it up (queue empty again).
        let t0 = Instant::now();
        while sched.running() == 0 && t0.elapsed() < Duration::from_secs(5) {
            std::thread::yield_now();
        }
        // Fill the queue, then overflow.
        sched.submit(quick_spec()).unwrap();
        sched.submit(quick_spec()).unwrap();
        assert!(matches!(sched.submit(quick_spec()), Err(SubmitError::QueueFull)));
        assert_eq!(metrics.admission_rejections.load(Ordering::Relaxed), 1);
        assert_eq!(stalled.wait_terminal(Duration::from_secs(60)), JobState::Done);
    }

    #[test]
    fn panic_is_contained_and_worker_survives() {
        let (sched, metrics) =
            harness(SchedulerConfig { max_queue: 8, max_concurrency: 1, max_history: 64 });
        let mut bad = quick_spec();
        bad.fault = Fault::Panic;
        let b = sched.submit(bad).unwrap();
        assert_eq!(b.wait_terminal(Duration::from_secs(30)), JobState::Failed);
        assert!(b.end_message().unwrap().contains("panicked"));
        assert_eq!(metrics.jobs_panicked.load(Ordering::Relaxed), 1);
        // The same (single) worker must still process new jobs.
        let ok = sched.submit(quick_spec()).unwrap();
        assert_eq!(ok.wait_terminal(Duration::from_secs(60)), JobState::Done);
    }

    #[test]
    fn cancellation_and_deadline_while_queued() {
        let (sched, metrics) =
            harness(SchedulerConfig { max_queue: 8, max_concurrency: 1, max_history: 64 });
        let mut slow = quick_spec();
        slow.fault = Fault::DelayMs(400);
        sched.submit(slow).unwrap();
        // Cancel a queued job before the worker reaches it.
        let c = sched.submit(quick_spec()).unwrap();
        assert!(sched.cancel(&c));
        assert_eq!(c.state(), JobState::Cancelled);
        // A 1ms start deadline behind a 400ms job always expires.
        let mut dead = quick_spec();
        dead.deadline_ms = Some(1);
        let d = sched.submit(dead).unwrap();
        assert_eq!(d.wait_terminal(Duration::from_secs(30)), JobState::DeadlineExceeded);
        assert_eq!(metrics.jobs_cancelled.load(Ordering::Relaxed), 1);
        assert_eq!(metrics.jobs_deadline_exceeded.load(Ordering::Relaxed), 1);
        // Cancelling a terminal job reports false.
        assert!(!sched.cancel(&d));
    }

    #[test]
    fn completion_hook_fires_exactly_once_per_terminal_job() {
        let (sched, _) =
            harness(SchedulerConfig { max_queue: 8, max_concurrency: 1, max_history: 64 });
        let fired = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&fired);
        sched.set_completion_hook(Arc::new(move |id| lock(&sink).push(id)));
        // Worker finish path.
        let done = sched.submit(quick_spec()).unwrap();
        assert_eq!(done.wait_terminal(Duration::from_secs(60)), JobState::Done);
        // Cancellation path: park the worker first so the job stays
        // queued long enough to cancel.
        let mut slow = quick_spec();
        slow.fault = Fault::DelayMs(300);
        sched.submit(slow).unwrap();
        let queued = sched.submit(quick_spec()).unwrap();
        assert!(sched.cancel(&queued));
        sched.shutdown();
        let ids = lock(&fired).clone();
        assert!(ids.contains(&done.id), "finish fires the hook: {ids:?}");
        assert!(ids.contains(&queued.id), "cancel fires the hook: {ids:?}");
        let hits = ids.iter().filter(|&&i| i == done.id).count();
        assert_eq!(hits, 1, "exactly one notification per job: {ids:?}");
    }

    #[test]
    fn shutdown_drains_every_admitted_job() {
        let (sched, _) =
            harness(SchedulerConfig { max_queue: 32, max_concurrency: 2, max_history: 64 });
        let jobs: Vec<_> = (0..6)
            .map(|i| {
                let mut s = quick_spec();
                s.fault = Fault::DelayMs(30 + i);
                sched.submit(s).unwrap()
            })
            .collect();
        sched.shutdown();
        for j in &jobs {
            assert_eq!(j.state(), JobState::Done, "job {} dropped by shutdown", j.id);
        }
        assert!(matches!(sched.submit(quick_spec()), Err(SubmitError::ShuttingDown)));
    }

    /// A catalog whose manifest pins an optimized-init CC schedule to
    /// the family of `quick_spec()`'s graph at its (scale, seed).
    fn tuned_catalog() -> Arc<GraphCatalog> {
        let plain = GraphCatalog::new(CatalogConfig::default());
        let g = plain.resolve("internet", 0.001, 0, false).unwrap();
        let sketch = ecl_profiling::LogSketch::new();
        sketch.record(1);
        let manifest = ecl_tune::TuneManifest::new(vec![ecl_tune::TuneEntry {
            algo: "cc".into(),
            input: "internet".into(),
            family: g.fingerprint.family_key(),
            fingerprint: g.fingerprint.clone(),
            scale: 0.001,
            seed: 0,
            method: "exhaustive".into(),
            evaluations: 1,
            space: 1,
            default_time: 2.0,
            tuned_time: 1.0,
            eval_sketch: sketch.snapshot(),
            schedule: ecl_gpusim::schedule::default_schedule("cc")
                .with("optimized_init", ecl_gpusim::KnobValue::Bool(true)),
        }]);
        Arc::new(GraphCatalog::new(CatalogConfig {
            tune: Some(Arc::new(manifest)),
            ..CatalogConfig::default()
        }))
    }

    #[test]
    fn jobs_record_per_request_trace_spans() {
        let tracer = Arc::new(ecl_trace::Tracer::with_clock(ecl_trace::ClockMode::Wall));
        ecl_trace::sink::install(Arc::clone(&tracer));
        let (sched, _) =
            harness(SchedulerConfig { max_queue: 8, max_concurrency: 1, max_history: 64 });
        let job = sched.submit(quick_spec()).unwrap();
        assert_eq!(job.wait_terminal(Duration::from_secs(60)), JobState::Done);
        sched.shutdown();
        // Same tracer, second scheduler with a manifest-bearing
        // catalog: the span gains the /tuned suffix.
        let metrics = ServeMetrics::new();
        let tuned_sched = Scheduler::start(
            SchedulerConfig { max_queue: 8, max_concurrency: 1, max_history: 64 },
            tuned_catalog(),
            Arc::new(ResultCache::new(64)),
            Arc::clone(&metrics),
        );
        let job = tuned_sched.submit(quick_spec()).unwrap();
        assert_eq!(job.wait_terminal(Duration::from_secs(60)), JobState::Done);
        tuned_sched.shutdown();
        ecl_trace::sink::uninstall();
        let snap = tracer.snapshot();
        assert!(
            snap.strings.iter().any(|s| s == "serve.job/cc"),
            "no serve.job span interned: {:?}",
            snap.strings
        );
        assert!(
            snap.strings.iter().any(|s| s == "serve.job/cc/tuned"),
            "no tuned serve.job span interned: {:?}",
            snap.strings
        );
    }

    #[test]
    fn tuned_jobs_split_the_done_counters() {
        let metrics = ServeMetrics::new();
        let sched = Scheduler::start(
            SchedulerConfig { max_queue: 8, max_concurrency: 1, max_history: 64 },
            tuned_catalog(),
            Arc::new(ResultCache::new(64)),
            Arc::clone(&metrics),
        );
        // CC hits the manifest; MIS has no entry and runs defaults.
        let a = sched.submit(quick_spec()).unwrap();
        let b = sched.submit(JobSpec::new(Algo::Mis, "internet")).unwrap();
        assert_eq!(a.wait_terminal(Duration::from_secs(60)), JobState::Done);
        assert_eq!(b.wait_terminal(Duration::from_secs(60)), JobState::Done);
        assert!(a.with_output(|o| o.tuned).unwrap());
        assert!(!b.with_output(|o| o.tuned).unwrap());
        assert_eq!(metrics.jobs_tuned.load(Ordering::Relaxed), 1);
        assert_eq!(metrics.jobs_untuned.load(Ordering::Relaxed), 1);
        // A cache hit of the tuned result still counts as tuned.
        let c = sched.submit(quick_spec()).unwrap();
        assert_eq!(c.wait_terminal(Duration::from_secs(60)), JobState::Done);
        assert!(c.status().cached);
        assert_eq!(metrics.jobs_tuned.load(Ordering::Relaxed), 2);
    }
}
