//! `ecl-serve` — a multi-tenant graph-analytics service over the
//! simulated-GPU algorithm suite.
//!
//! The paper profiles five irregular graph algorithms one
//! batch-invocation at a time. This crate wraps the same runs in a
//! long-lived service so their *operational* properties — queueing
//! under bursty demand, admission control, result reuse, latency
//! distributions per algorithm — can be measured with the profiling
//! machinery the suite already has (`ecl-prof` sketches and gates).
//!
//! Layers, bottom up:
//!
//! * [`http`] — a bounded `std`-only incremental HTTP/1.1 parser
//!   (bytes are fed as they arrive; requests pop out as they
//!   complete) and response writer (the workspace is offline; no
//!   server frameworks).
//! * [`ring`] — a bounded lock-free MPMC event ring, the handoff
//!   between the accept thread, the scheduler's completion hook, and
//!   the reactor.
//! * [`catalog`] — name → materialized graph, unifying the Table-1
//!   generator registry with on-disk graph files, behind a
//!   content-hashed, byte-budgeted LRU.
//! * [`jobs`] — the job spec and the explicit lifecycle state machine
//!   (`queued → running → done | failed | cancelled |
//!   deadline-exceeded`).
//! * [`exec`] — spec → scaled device → algorithm run → bit-comparable
//!   aggregates (checksummed solution vectors, modeled GPU time).
//! * [`cache`] — completed results keyed by `(graph content hash,
//!   algorithm, params, seed)`; hits are bit-identical to re-running
//!   because every run is seed-deterministic.
//! * [`scheduler`] — bounded admission (reject beyond `max_queue`),
//!   worker pool sized against the simulator's own thread usage,
//!   start deadlines, cancellation, `catch_unwind` panic containment,
//!   drain-on-shutdown.
//! * [`metrics`] — service counters + per-algorithm latency sketches,
//!   rendered for Prometheus via `ecl-prof`.
//! * [`conn`] — the per-connection state machine (reading → routing →
//!   waiting → writing) with partial-read/partial-write buffers and
//!   read/write deadlines.
//! * [`reactor`] — the single event-loop thread that owns every
//!   connection: nonblocking sockets, HTTP keep-alive, parked
//!   `wait_ms` submissions answered by scheduler completion wakeups.
//! * [`server`] — the HTTP surface tying it all together: a bounded
//!   accept thread (immediate 503 beyond `max_connections`) feeding
//!   the reactor, plus the route table. Thread count is fixed —
//!   accept + reactor + scheduler workers — independent of how many
//!   connections are open.
//! * [`loadgen`] — closed- and open-loop load generation emitting
//!   gateable `ecl-bench/2` reports.
//!
//! ```
//! use ecl_serve::jobs::{Algo, JobSpec};
//! use ecl_serve::server::{ServeConfig, Server};
//! use ecl_serve::loadgen::http_call;
//!
//! let server = Server::start(ServeConfig::default()).expect("bind");
//! let target = server.addr().to_string();
//! let (status, body) = http_call(
//!     &target,
//!     "POST",
//!     "/v1/jobs",
//!     Some(r#"{"algo": "cc", "graph": "internet", "wait_ms": 60000}"#),
//! )
//! .expect("request");
//! assert_eq!(status, 200);
//! assert!(body.contains("\"state\": \"done\""), "{body}");
//! # drop(JobSpec::new(Algo::Cc, "internet"));
//! server.shutdown();
//! ```

pub mod cache;
pub mod catalog;
pub mod conn;
pub mod exec;
pub mod http;
pub mod jobs;
pub mod loadgen;
pub mod metrics;
pub mod reactor;
pub mod ring;
pub mod scheduler;
pub mod server;

pub use cache::ResultCache;
pub use catalog::{CatalogConfig, GraphCatalog};
pub use exec::RunOutput;
pub use jobs::{Algo, JobSpec, JobState};
pub use scheduler::{Scheduler, SchedulerConfig, SubmitError};
pub use server::{ServeConfig, Server};
