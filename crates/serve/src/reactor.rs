//! The event loop: one thread owning every open connection.
//!
//! The reactor is a readiness-polling loop over nonblocking sockets —
//! `std`-only, so there is no `epoll` registration; "readiness" is
//! discovered by attempting the read/write and treating `WouldBlock`
//! as not-ready. Three event sources feed each sweep:
//!
//! 1. **accepts** — sockets handed over by the accept thread through a
//!    lock-free [`EventRing`];
//! 2. **completions** — job ids pushed by the scheduler's completion
//!    hook (with an overflow flag falling back to a full waiter sweep);
//! 3. **the connections themselves** — each driven through its
//!    [`Connection`] state machine: reading (incremental parse),
//!    waiting (a parked `wait_ms` submission), writing (partial-write
//!    cursor), plus read/write deadlines.
//!
//! Between sweeps the reactor parks on a [`Waker`]. The wake protocol
//! is the lost-wakeup-free pattern the `ecl-mc` harnesses check: the
//! waker sets a pending flag *under the mutex* before notifying, and
//! the parker consumes the flag before sleeping, so a wake that races
//! the park decision is never dropped. Parking is adaptive: after
//! recent progress the loop spins with `yield_now` (sub-millisecond
//! latency while traffic is hot), then backs off exponentially to a
//! 10 ms cap, always clipped to the nearest connection deadline.

use std::collections::HashMap;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use ecl_prof::json::escape;

use crate::conn::{CloseReason, ConnPhase, Connection, ReadEvent, WriteEvent};
use crate::http::{self, HttpError};
use crate::jobs::JobRecord;
use crate::ring::EventRing;
use crate::server::{self, Routed, ServerShared, JSON};

/// Shortest park / initial backoff step.
const MIN_PARK: Duration = Duration::from_micros(200);
/// Backoff cap — also the worst-case latency for discovering socket
/// readiness without an explicit wake.
const MAX_PARK: Duration = Duration::from_millis(10);
/// How long after the last productive sweep the loop keeps spinning
/// with `yield_now` before it starts parking.
const SPIN_WINDOW: Duration = Duration::from_millis(1);
/// Max state-machine transitions driven per connection per sweep —
/// bounds time spent on one chatty pipelining client before the sweep
/// returns to the others.
const MAX_TRANSITIONS: u32 = 4;

/// Wakes the reactor out of a park. `wake` sets the pending flag under
/// the mutex *then* notifies; `park` consumes the flag before deciding
/// to sleep — together that makes a wake that races the park decision
/// impossible to lose (checked schedule-exhaustively by the
/// `serve-reactor-wakeup` harness in `ecl-mc`).
pub(crate) struct Waker {
    pending: Mutex<bool>,
    ready: Condvar,
}

impl Waker {
    pub(crate) fn new() -> Arc<Waker> {
        Arc::new(Waker { pending: Mutex::new(false), ready: Condvar::new() })
    }

    /// Signals the reactor; callable from any thread, never blocks
    /// beyond the flag mutex.
    pub(crate) fn wake(&self) {
        let mut pending = self.pending.lock().unwrap_or_else(PoisonError::into_inner);
        *pending = true;
        self.ready.notify_one();
    }

    /// Sleeps until woken or `timeout`, consuming a pending wake.
    fn park(&self, timeout: Duration) {
        let mut pending = self.pending.lock().unwrap_or_else(PoisonError::into_inner);
        if !*pending {
            let (guard, _) = match self.ready.wait_timeout(pending, timeout) {
                Ok(pair) => pair,
                Err(poisoned) => poisoned.into_inner(),
            };
            pending = guard;
        }
        *pending = false;
    }
}

/// A parked `wait_ms` submission.
struct Wait {
    job: Arc<JobRecord>,
    /// Client's wait budget; past it we answer with the current job
    /// state (matching the old blocking `wait_terminal` semantics).
    respond_by: Instant,
    keep_alive: bool,
}

struct Slot {
    conn: Connection<TcpStream>,
    wait: Option<Wait>,
}

pub(crate) struct Reactor {
    shared: Arc<ServerShared>,
    accepts: Arc<EventRing<TcpStream>>,
    completions: Arc<EventRing<u64>>,
    completions_overflow: Arc<AtomicBool>,
    waker: Arc<Waker>,
    read_timeout: Duration,
    write_timeout: Duration,
    conns: HashMap<u64, Slot>,
    /// job id → connection id, for exactly-once completion handoff.
    waiters: HashMap<u64, u64>,
    next_conn: u64,
}

impl Reactor {
    pub(crate) fn new(
        shared: Arc<ServerShared>,
        accepts: Arc<EventRing<TcpStream>>,
        completions: Arc<EventRing<u64>>,
        completions_overflow: Arc<AtomicBool>,
        waker: Arc<Waker>,
        read_timeout: Duration,
        write_timeout: Duration,
    ) -> Reactor {
        Reactor {
            shared,
            accepts,
            completions,
            completions_overflow,
            waker,
            read_timeout,
            write_timeout,
            conns: HashMap::new(),
            waiters: HashMap::new(),
            next_conn: 0,
        }
    }

    pub(crate) fn run(mut self) {
        let mut backoff = MIN_PARK;
        let mut last_progress = Instant::now();
        loop {
            let now = Instant::now();
            let mut progress = false;

            while let Some(stream) = self.accepts.pop() {
                progress = true;
                self.register(stream, now);
            }

            while let Some(job_id) = self.completions.pop() {
                progress = true;
                self.complete(job_id, now);
            }
            if self.completions_overflow.swap(false, Ordering::AcqRel) {
                progress = true;
                self.sweep_terminal_waiters(now);
            }

            let ids: Vec<u64> = self.conns.keys().copied().collect();
            for id in ids {
                progress |= self.drive(id, now);
            }

            if self.shared.stopping.load(Ordering::Acquire) {
                progress |= self.wind_down();
                if self.conns.is_empty() {
                    return;
                }
            }

            if progress {
                last_progress = Instant::now();
                backoff = MIN_PARK;
                continue;
            }
            if last_progress.elapsed() < SPIN_WINDOW {
                std::thread::yield_now();
                continue;
            }
            let mut park = backoff;
            if let Some(deadline) = self.next_deadline() {
                park = park.min(deadline.saturating_duration_since(Instant::now()));
            }
            self.waker.park(park.max(MIN_PARK));
            backoff = (backoff * 2).min(MAX_PARK);
        }
    }

    fn register(&mut self, stream: TcpStream, now: Instant) {
        let id = self.next_conn;
        self.next_conn += 1;
        let conn =
            Connection::new(stream, self.shared.limits, now, self.read_timeout, self.write_timeout);
        self.conns.insert(id, Slot { conn, wait: None });
        // Drive immediately: the request is often already buffered in
        // the kernel by the time the handoff lands here.
        let _ = self.drive(id, now);
    }

    /// Exactly-once completion handoff: the waiter entry is removed
    /// *before* the response is staged, so a duplicate signal (ring
    /// push racing the post-registration terminal re-check) finds no
    /// waiter and is a no-op. Schedule-checked by `serve-reactor-handoff`.
    fn complete(&mut self, job_id: u64, now: Instant) {
        let Some(conn_id) = self.waiters.remove(&job_id) else { return };
        let Some(slot) = self.conns.get_mut(&conn_id) else { return };
        let Some(wait) = slot.wait.take() else { return };
        let body = server::job_body(&wait.job);
        slot.conn.start_response(now, 200, JSON, body.as_bytes(), wait.keep_alive);
        let _ = self.drive(conn_id, now);
    }

    /// Overflow fallback: the completion ring dropped at least one id,
    /// so scan every registered waiter for terminal jobs.
    fn sweep_terminal_waiters(&mut self, now: Instant) {
        let due: Vec<u64> = self
            .waiters
            .keys()
            .copied()
            .filter(|job_id| {
                self.shared.scheduler.job(*job_id).is_none_or(|j| j.state().is_terminal())
            })
            .collect();
        for job_id in due {
            self.complete(job_id, now);
        }
    }

    /// Drives one connection through up to [`MAX_TRANSITIONS`] state
    /// transitions. Returns whether anything moved.
    fn drive(&mut self, id: u64, now: Instant) -> bool {
        let mut progress = false;
        for _ in 0..MAX_TRANSITIONS {
            let Some(slot) = self.conns.get_mut(&id) else { return progress };
            match slot.conn.phase() {
                ConnPhase::Closed => {
                    self.reap(id);
                    return true;
                }
                ConnPhase::Waiting => {
                    let due = slot.wait.as_ref().is_some_and(|w| now >= w.respond_by);
                    if !due {
                        return progress;
                    }
                    let Some(wait) = slot.wait.take() else { return progress };
                    self.waiters.remove(&wait.job.id);
                    let body = server::job_body(&wait.job);
                    slot.conn.start_response(now, 200, JSON, body.as_bytes(), wait.keep_alive);
                    progress = true;
                }
                ConnPhase::Reading => {
                    if let Some(reason) = slot.conn.expired(now) {
                        if matches!(reason, CloseReason::ReadTimeout) {
                            self.shared.metrics.conn_read_timeouts.fetch_add(1, Ordering::Relaxed);
                        }
                        slot.conn.close();
                        progress = true;
                        continue;
                    }
                    match slot.conn.poll_read(now) {
                        ReadEvent::Pending => return progress,
                        ReadEvent::Request(req) => {
                            progress = true;
                            self.shared.metrics.http_requests.fetch_add(1, Ordering::Relaxed);
                            if slot.conn.served() > 0 {
                                self.shared
                                    .metrics
                                    .keepalive_reuses
                                    .fetch_add(1, Ordering::Relaxed);
                            }
                            // Correlation id: allocated the moment a
                            // complete request exists, echoed back via
                            // `x-ecl-req`, and threaded through the
                            // scheduler so traces/samples carry it.
                            let req_id = ecl_obs::next_req_id();
                            slot.conn.set_req_id(req_id);
                            self.handle_request(id, &req, now, req_id);
                        }
                        ReadEvent::Bad(e) => {
                            progress = true;
                            self.fail_request(id, &e, now);
                        }
                        ReadEvent::Eof { mid_request } => {
                            progress = true;
                            if mid_request {
                                // The peer half-closed mid-request; a
                                // best-effort 400 may still reach it.
                                self.shared.metrics.http_malformed.fetch_add(1, Ordering::Relaxed);
                                self.shared.metrics.http_errors.fetch_add(1, Ordering::Relaxed);
                                slot.conn.start_response(
                                    now,
                                    400,
                                    JSON,
                                    b"{\"error\": \"truncated request\"}",
                                    false,
                                );
                            } else {
                                slot.conn.close();
                            }
                        }
                        ReadEvent::Broken(_) => {
                            progress = true;
                            if slot.conn.mid_request() {
                                self.shared
                                    .metrics
                                    .http_unanswerable
                                    .fetch_add(1, Ordering::Relaxed);
                            }
                            slot.conn.close();
                        }
                    }
                }
                ConnPhase::Writing => {
                    if let Some(reason) = slot.conn.expired(now) {
                        if matches!(reason, CloseReason::WriteTimeout) {
                            self.shared.metrics.conn_write_timeouts.fetch_add(1, Ordering::Relaxed);
                        }
                        slot.conn.close();
                        progress = true;
                        continue;
                    }
                    match slot.conn.poll_write(now) {
                        WriteEvent::Pending => return progress,
                        WriteEvent::Flushed { close: _ } => {
                            // close:true left the phase at Closed; the
                            // next transition reaps it.
                            progress = true;
                        }
                        WriteEvent::Broken => {
                            // Response was generated but undeliverable.
                            self.shared.metrics.http_unanswerable.fetch_add(1, Ordering::Relaxed);
                            slot.conn.close();
                            progress = true;
                        }
                    }
                }
            }
        }
        progress
    }

    fn handle_request(&mut self, id: u64, req: &http::Request, now: Instant, req_id: u64) {
        let keep_alive = req.wants_keep_alive() && !self.shared.stopping.load(Ordering::Acquire);
        match server::route(req, &self.shared, req_id) {
            Routed::Now((status, content_type, body)) => {
                if status >= 400 {
                    self.shared.metrics.http_errors.fetch_add(1, Ordering::Relaxed);
                }
                if let Some(slot) = self.conns.get_mut(&id) {
                    slot.conn.start_response(
                        now,
                        status,
                        content_type,
                        body.as_bytes(),
                        keep_alive,
                    );
                }
            }
            Routed::Wait { job, wait } => {
                let job_id = job.id;
                if let Some(slot) = self.conns.get_mut(&id) {
                    slot.conn.set_waiting();
                    slot.wait =
                        Some(Wait { job: Arc::clone(&job), respond_by: now + wait, keep_alive });
                    self.waiters.insert(job_id, id);
                }
                // Close the registration race: if the job went
                // terminal before the waiter was registered, the hook
                // has already fired into a ring we may have drained.
                if job.state().is_terminal() {
                    self.complete(job_id, now);
                }
            }
        }
    }

    /// A parse error: answer it when a status exists (always-answer
    /// policy — 400/413/431 with `Connection: close`), otherwise count
    /// it as unanswerable and hang up.
    fn fail_request(&mut self, id: u64, e: &HttpError, now: Instant) {
        let Some(slot) = self.conns.get_mut(&id) else { return };
        match http::error_status(e) {
            Some(status) => {
                self.shared.metrics.http_malformed.fetch_add(1, Ordering::Relaxed);
                self.shared.metrics.http_errors.fetch_add(1, Ordering::Relaxed);
                let body = format!("{{\"error\": \"{}\"}}", escape(&format!("{e:?}")));
                slot.conn.start_response(now, status, JSON, body.as_bytes(), false);
            }
            None => {
                self.shared.metrics.http_unanswerable.fetch_add(1, Ordering::Relaxed);
                slot.conn.close();
            }
        }
    }

    fn reap(&mut self, id: u64) {
        if let Some(slot) = self.conns.remove(&id) {
            if let Some(wait) = &slot.wait {
                self.waiters.remove(&wait.job.id);
            }
            drop(slot);
            self.shared.live_connections.fetch_sub(1, Ordering::AcqRel);
        }
    }

    /// Shutdown sweep: close idle/reading connections (their clients
    /// would otherwise pin the drain until the read deadline), drop
    /// stray handoffs, and let waiting/writing connections finish —
    /// their jobs complete because the workers outlive the reactor.
    fn wind_down(&mut self) -> bool {
        let mut progress = false;
        let idle: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, s)| matches!(s.conn.phase(), ConnPhase::Reading))
            .map(|(id, _)| *id)
            .collect();
        for id in idle {
            if let Some(slot) = self.conns.get_mut(&id) {
                slot.conn.close();
            }
            self.reap(id);
            progress = true;
        }
        while let Some(stream) = self.accepts.pop() {
            drop(stream);
            self.shared.live_connections.fetch_sub(1, Ordering::AcqRel);
            progress = true;
        }
        progress
    }

    fn next_deadline(&self) -> Option<Instant> {
        let mut min: Option<Instant> = None;
        for slot in self.conns.values() {
            let conn_deadline = slot.conn.next_deadline();
            let wait_deadline = slot.wait.as_ref().map(|w| w.respond_by);
            for cand in [conn_deadline, wait_deadline].into_iter().flatten() {
                min = Some(min.map_or(cand, |m| m.min(cand)));
            }
        }
        min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_wake_before_park_is_not_lost() {
        let waker = Waker::new();
        waker.wake();
        let start = Instant::now();
        waker.park(Duration::from_secs(5));
        assert!(
            start.elapsed() < Duration::from_secs(1),
            "pre-park wake should make park return immediately"
        );
    }

    #[test]
    fn park_consumes_the_pending_flag() {
        let waker = Waker::new();
        waker.wake();
        waker.park(Duration::from_secs(5));
        // Second park has no pending wake; it must wait for the
        // timeout rather than return instantly.
        let start = Instant::now();
        waker.park(Duration::from_millis(50));
        assert!(start.elapsed() >= Duration::from_millis(40));
    }

    #[test]
    fn wake_from_another_thread_interrupts_a_park() {
        let waker = Waker::new();
        let remote = Arc::clone(&waker);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            remote.wake();
        });
        let start = Instant::now();
        waker.park(Duration::from_secs(10));
        assert!(start.elapsed() < Duration::from_secs(5));
        handle.join().expect("waker thread");
    }
}
