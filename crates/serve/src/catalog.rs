//! Graph catalog: name → materialized CSR, with a byte-budgeted LRU.
//!
//! The catalog unifies two sources behind one namespace:
//!
//! * **Registry inputs** — the 22 synthetic Table-1 analogues from
//!   [`ecl_graphgen::registry`], generated on demand at the job's
//!   `(scale, seed)`.
//! * **Disk graphs** — files in `--graphs-dir`: `<name>.ecl` (the
//!   suite's binary format, directedness and weights from the header
//!   flags) and `<name>.el` (text edge list, undirected).
//!
//! Every materialized graph gets an FNV-1a content hash over its full
//! structure (offsets, neighbors, weights, directedness). That hash —
//! not the name — keys the result cache, so renaming a file or
//! regenerating at a different seed can never serve a stale result.
//!
//! Entries are cached under `(name, scale, seed, weighted)` and evicted
//! least-recently-used once the resident bytes exceed the configured
//! budget. A single oversized graph is still admitted (the budget
//! bounds *retention*, not request size) but evicts everything else.

use std::collections::HashMap;
use std::fs::File;
use std::io::BufReader;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use ecl_gpusim::schedule::ALGOS;
use ecl_gpusim::Schedule;
use ecl_graph::csr::Csr;
use ecl_graph::io as gio;
use ecl_graph::weighted::WeightedCsr;
use ecl_graph::Fingerprint;
use ecl_graphgen::registry;
use ecl_graphgen::with_hashed_weights;
use ecl_tune::TuneManifest;

/// Default max edge weight for weighted views of unweighted inputs
/// (matches the bench harness).
pub const DEFAULT_MAX_WEIGHT: u32 = 1 << 20;

/// Catalog configuration.
#[derive(Clone, Debug)]
pub struct CatalogConfig {
    /// Directory scanned for `.ecl` / `.el` files (optional).
    pub graphs_dir: Option<PathBuf>,
    /// Resident-bytes budget for cached graphs.
    pub cache_bytes: usize,
    /// Max weight used when synthesizing weights for MST.
    pub max_weight: u32,
    /// Tuned-schedule manifest (`ecl-tune/1`). When present, every
    /// graph materialized by the catalog gets the best-known schedule
    /// per algorithm attached at registration (matched by family
    /// fingerprint), and jobs on it run tuned automatically.
    pub tune: Option<Arc<TuneManifest>>,
}

impl Default for CatalogConfig {
    fn default() -> Self {
        CatalogConfig {
            graphs_dir: None,
            cache_bytes: 256 << 20,
            max_weight: DEFAULT_MAX_WEIGHT,
            tune: None,
        }
    }
}

/// Why a graph could not be resolved.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CatalogError {
    /// Name matches neither a registry input nor a disk file.
    NotFound(String),
    /// Disk file exists but failed to load/parse.
    Load(String),
}

impl std::fmt::Display for CatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogError::NotFound(n) => write!(f, "unknown graph {n:?}"),
            CatalogError::Load(m) => write!(f, "graph load failed: {m}"),
        }
    }
}

/// A materialized, content-hashed graph ready for an algorithm run.
#[derive(Debug)]
pub struct ResolvedGraph {
    /// Catalog name it resolved under.
    pub name: String,
    /// FNV-1a hash of the full structure (and weights, if present).
    pub content_hash: u64,
    /// Estimated resident bytes (used for the LRU budget).
    pub bytes: usize,
    /// The graph. Present for unweighted resolutions.
    pub csr: Option<Arc<Csr>>,
    /// The weighted graph. Present for weighted resolutions.
    pub weighted: Option<Arc<WeightedCsr>>,
    /// Structural family fingerprint, computed once at registration.
    pub fingerprint: Fingerprint,
    /// Best-known tuned schedule per algorithm wire name, attached
    /// from the configured manifest at registration. Empty without a
    /// manifest or a family match — jobs then run defaults.
    pub schedules: Vec<(&'static str, Schedule)>,
}

impl ResolvedGraph {
    /// The underlying CSR regardless of weighting.
    pub fn structure(&self) -> &Csr {
        if let Some(c) = &self.csr {
            c
        } else if let Some(w) = &self.weighted {
            w.csr()
        } else {
            unreachable!("resolved graph holds csr or weighted")
        }
    }

    /// The attached tuned schedule for `algo` (wire name), if the
    /// manifest had an entry for this graph's family.
    pub fn schedule_for(&self, algo: &str) -> Option<&Schedule> {
        self.schedules.iter().find(|(a, _)| *a == algo).map(|(_, s)| s)
    }
}

/// One row of `GET /v1/graphs`.
#[derive(Clone, Debug)]
pub struct CatalogRow {
    /// Catalog name.
    pub name: String,
    /// `"registry"` or `"disk"`.
    pub source: &'static str,
    /// Table-1 type string for registry inputs, file extension for disk.
    pub kind: String,
    /// Whether the graph is directed.
    pub directed: bool,
    /// Registry: paper vertex count. Disk: 0 (unknown until loaded).
    pub paper_vertices: usize,
    /// Fingerprint of the most recently used cached materialization,
    /// if any is resident. Tells operators which manifest family
    /// bucket the graph resolved to. `None` until first resolved.
    pub fingerprint: Option<Fingerprint>,
}

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct CacheKey {
    name: String,
    scale_bits: u64,
    seed: u64,
    weighted: bool,
}

struct CacheSlot {
    graph: Arc<ResolvedGraph>,
    last_used: u64,
}

#[derive(Default)]
struct CacheState {
    slots: HashMap<CacheKey, CacheSlot>,
    resident_bytes: usize,
}

/// The catalog. Cheap to share (`Arc<GraphCatalog>`).
pub struct GraphCatalog {
    config: CatalogConfig,
    cache: Mutex<CacheState>,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl GraphCatalog {
    /// Creates a catalog with the given configuration.
    pub fn new(config: CatalogConfig) -> GraphCatalog {
        GraphCatalog {
            config,
            cache: Mutex::new(CacheState::default()),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// (hits, misses, evictions, resident_bytes) counters.
    pub fn stats(&self) -> (u64, u64, u64, usize) {
        let resident = self.lock().resident_bytes;
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.evictions.load(Ordering::Relaxed),
            resident,
        )
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CacheState> {
        self.cache.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Lists everything resolvable by name: all registry inputs plus
    /// any `.ecl`/`.el` files in the graphs dir (sorted by name; disk
    /// shadows registry on collision, matching [`Self::resolve`]).
    pub fn list(&self) -> Vec<CatalogRow> {
        let mut rows: Vec<CatalogRow> = Vec::new();
        let disk = self.disk_names();
        for spec in registry::all_inputs() {
            if disk.iter().any(|(n, _)| n == spec.name) {
                continue;
            }
            rows.push(CatalogRow {
                name: spec.name.to_string(),
                source: "registry",
                kind: spec.graph_type.to_string(),
                directed: spec.directed,
                paper_vertices: spec.paper_vertices,
                fingerprint: None,
            });
        }
        for (name, ext) in disk {
            rows.push(CatalogRow {
                name,
                source: "disk",
                kind: ext,
                directed: false,
                paper_vertices: 0,
                fingerprint: None,
            });
        }
        // Attach the most recently used resident fingerprint per name
        // (a name may be cached at several (scale, seed) points; the
        // freshest one is what operators are currently running).
        {
            let state = self.lock();
            let mut freshest: HashMap<&str, (u64, &Fingerprint)> = HashMap::new();
            for (key, slot) in state.slots.iter() {
                let entry = freshest
                    .entry(key.name.as_str())
                    .or_insert((slot.last_used, &slot.graph.fingerprint));
                if slot.last_used >= entry.0 {
                    *entry = (slot.last_used, &slot.graph.fingerprint);
                }
            }
            for row in &mut rows {
                if let Some((_, fp)) = freshest.get(row.name.as_str()) {
                    row.fingerprint = Some((*fp).clone());
                    row.directed = fp.directed;
                }
            }
        }
        rows.sort_by(|a, b| a.name.cmp(&b.name));
        rows
    }

    fn disk_names(&self) -> Vec<(String, String)> {
        let Some(dir) = &self.config.graphs_dir else {
            return Vec::new();
        };
        let Ok(entries) = std::fs::read_dir(dir) else {
            return Vec::new();
        };
        let mut names = Vec::new();
        for entry in entries.flatten() {
            let path = entry.path();
            let (Some(stem), Some(ext)) = (
                path.file_stem().and_then(|s| s.to_str()),
                path.extension().and_then(|s| s.to_str()),
            ) else {
                continue;
            };
            if ext == "ecl" || ext == "el" {
                names.push((stem.to_string(), ext.to_string()));
            }
        }
        names
    }

    fn disk_path(&self, name: &str) -> Option<PathBuf> {
        // Reject path traversal in client-supplied names outright.
        if name.contains('/') || name.contains('\\') || name.contains("..") {
            return None;
        }
        let dir = self.config.graphs_dir.as_ref()?;
        for ext in ["ecl", "el"] {
            let p = dir.join(format!("{name}.{ext}"));
            if p.is_file() {
                return Some(p);
            }
        }
        None
    }

    /// Resolves `name` at `(scale, seed)`, materializing a weighted
    /// view when `weighted` (MST). Disk graphs ignore `scale`; `seed`
    /// still salts synthesized weights for unweighted disk graphs.
    pub fn resolve(
        &self,
        name: &str,
        scale: f64,
        seed: u64,
        weighted: bool,
    ) -> Result<Arc<ResolvedGraph>, CatalogError> {
        let key = CacheKey { name: name.to_string(), scale_bits: scale.to_bits(), seed, weighted };
        let stamp = self.tick.fetch_add(1, Ordering::Relaxed);
        if let Some(slot) = self.lock().slots.get_mut(&key) {
            slot.last_used = stamp;
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(&slot.graph));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);

        // Materialize outside the lock: generation can take a while
        // and must not serialize unrelated requests. Concurrent misses
        // on the same key may both build; last insert wins — wasteful
        // but correct (both builds are deterministic and identical).
        let graph = Arc::new(self.materialize(name, scale, seed, weighted)?);

        let mut state = self.lock();
        state.resident_bytes += graph.bytes;
        state.slots.insert(key, CacheSlot { graph: Arc::clone(&graph), last_used: stamp });
        // Evict LRU entries until under budget (never the one just
        // inserted — a single oversized graph is admitted once).
        while state.resident_bytes > self.config.cache_bytes && state.slots.len() > 1 {
            let Some(victim) = state
                .slots
                .iter()
                .filter(|(_, s)| !Arc::ptr_eq(&s.graph, &graph))
                .min_by_key(|(_, s)| s.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            if let Some(slot) = state.slots.remove(&victim) {
                state.resident_bytes = state.resident_bytes.saturating_sub(slot.graph.bytes);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(graph)
    }

    fn materialize(
        &self,
        name: &str,
        scale: f64,
        seed: u64,
        weighted: bool,
    ) -> Result<ResolvedGraph, CatalogError> {
        // Disk shadows registry: an operator dropping `internet.ecl`
        // into the graphs dir deliberately overrides the synthetic.
        if let Some(path) = self.disk_path(name) {
            return self.load_disk(name, &path, seed, weighted);
        }
        let spec = registry::find(name).ok_or_else(|| CatalogError::NotFound(name.to_string()))?;
        if scale <= 0.0 || !scale.is_finite() {
            return Err(CatalogError::Load(format!("invalid scale {scale}")));
        }
        let tune = self.config.tune.as_deref();
        if weighted {
            let g = spec.generate_weighted(scale, seed, self.config.max_weight);
            Ok(finish(name, None, Some(g), tune))
        } else {
            let g = spec.generate(scale, seed);
            Ok(finish(name, Some(g), None, tune))
        }
    }

    fn load_disk(
        &self,
        name: &str,
        path: &Path,
        seed: u64,
        weighted: bool,
    ) -> Result<ResolvedGraph, CatalogError> {
        let err = |e: std::io::Error| CatalogError::Load(format!("{}: {e}", path.display()));
        let is_el = path.extension().and_then(|s| s.to_str()) == Some("el");
        let tune = self.config.tune.as_deref();
        let mut r = BufReader::new(File::open(path).map_err(err)?);
        if weighted {
            // Prefer on-disk weights; fall back to seed-salted
            // synthesized weights for unweighted files.
            let wg = if is_el {
                gio::read_weighted_edge_list(&mut r, false).map_err(err)?
            } else {
                match gio::read_weighted(&mut r) {
                    Ok(wg) => wg,
                    Err(_) => {
                        let mut r2 = BufReader::new(File::open(path).map_err(err)?);
                        let g = gio::read_csr(&mut r2).map_err(err)?;
                        with_hashed_weights(&g, self.config.max_weight, seed)
                    }
                }
            };
            Ok(finish(name, None, Some(wg), tune))
        } else {
            let g = if is_el {
                gio::read_edge_list(&mut r, false).map_err(err)?
            } else {
                match gio::read_csr(&mut r) {
                    Ok(g) => g,
                    Err(_) => {
                        // Weighted file requested unweighted: drop weights.
                        let mut r2 = BufReader::new(File::open(path).map_err(err)?);
                        let wg = gio::read_weighted(&mut r2).map_err(err)?;
                        wg.csr().clone()
                    }
                }
            };
            Ok(finish(name, Some(g), None, tune))
        }
    }
}

fn finish(
    name: &str,
    csr: Option<Csr>,
    weighted: Option<WeightedCsr>,
    tune: Option<&TuneManifest>,
) -> ResolvedGraph {
    let (hash, bytes, fingerprint) = match (&csr, &weighted) {
        (Some(g), _) => (content_hash(g, None), graph_bytes(g, false), Fingerprint::of(g)),
        (_, Some(w)) => (
            content_hash(w.csr(), Some(w.weights())),
            graph_bytes(w.csr(), true),
            Fingerprint::of(w.csr()),
        ),
        _ => unreachable!("finish called with a graph"),
    };
    // Registration-time schedule attachment: one manifest lookup per
    // algorithm against the graph's family bucket. The manifest is
    // fixed for the catalog's lifetime, so the (graph, algo) →
    // schedule mapping is stable and result-cache-safe.
    let family = fingerprint.family_key();
    let schedules = tune
        .map(|m| {
            ALGOS
                .iter()
                .filter_map(|&algo| m.lookup(algo, &family).map(|e| (algo, e.schedule.clone())))
                .collect()
        })
        .unwrap_or_default();
    ResolvedGraph {
        name: name.to_string(),
        content_hash: hash,
        bytes,
        csr: csr.map(Arc::new),
        weighted: weighted.map(Arc::new),
        fingerprint,
        schedules,
    }
}

fn graph_bytes(g: &Csr, weighted: bool) -> usize {
    let arc_bytes = if weighted { 8 } else { 4 };
    g.offsets().len() * 8 + g.num_arcs() * arc_bytes
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1_0000_0000_01b3;

/// FNV-1a over the graph's logical content: directedness, vertex and
/// arc counts, offsets, neighbors, and weights if present. Stable
/// across platforms (explicit little-endian byte feed).
pub fn content_hash(g: &Csr, weights: Option<&[u32]>) -> u64 {
    let mut h = FNV_OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    eat(&[g.is_directed() as u8, weights.is_some() as u8]);
    eat(&(g.num_vertices() as u64).to_le_bytes());
    eat(&(g.num_arcs() as u64).to_le_bytes());
    for &o in g.offsets() {
        eat(&(o as u64).to_le_bytes());
    }
    for &v in g.neighbor_array() {
        eat(&v.to_le_bytes());
    }
    for w in weights.unwrap_or(&[]) {
        eat(&w.to_le_bytes());
    }
    h
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn catalog_with_budget(bytes: usize) -> GraphCatalog {
        GraphCatalog::new(CatalogConfig { cache_bytes: bytes, ..CatalogConfig::default() })
    }

    #[test]
    fn registry_resolution_hits_cache() {
        let cat = catalog_with_budget(64 << 20);
        let a = cat.resolve("internet", 0.001, 42, false).unwrap();
        let b = cat.resolve("internet", 0.001, 42, false).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second resolve must be the cached Arc");
        let (hits, misses, _, resident) = cat.stats();
        assert_eq!((hits, misses), (1, 1));
        assert_eq!(resident, a.bytes);
    }

    #[test]
    fn seed_and_scale_key_the_cache_and_the_hash() {
        let cat = catalog_with_budget(256 << 20);
        // Scales above the 256-vertex generation floor, so scale
        // actually changes the generated size.
        let a = cat.resolve("internet", 0.01, 1, false).unwrap();
        let b = cat.resolve("internet", 0.01, 2, false).unwrap();
        let c = cat.resolve("internet", 0.02, 1, false).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_ne!(a.content_hash, b.content_hash, "seed must change content");
        assert_ne!(a.content_hash, c.content_hash, "scale must change content");
        // Same inputs → identical content hash (deterministic generation).
        let a2 = GraphCatalog::new(CatalogConfig::default())
            .resolve("internet", 0.01, 1, false)
            .unwrap();
        assert_eq!(a.content_hash, a2.content_hash);
    }

    #[test]
    fn weighted_view_for_mst() {
        let cat = catalog_with_budget(256 << 20);
        let w = cat.resolve("USA-road-d.NY", 0.001, 7, true).unwrap();
        assert!(w.weighted.is_some());
        assert!(w.csr.is_none());
        assert!(w.structure().num_vertices() >= 256);
    }

    #[test]
    fn unknown_name_is_not_found() {
        let cat = catalog_with_budget(1 << 20);
        match cat.resolve("no-such-graph", 1.0, 0, false) {
            Err(CatalogError::NotFound(n)) => assert_eq!(n, "no-such-graph"),
            other => panic!("expected NotFound, got {other:?}"),
        }
    }

    #[test]
    fn byte_budget_evicts_lru() {
        // Budget of 1 byte: every insert evicts the previous entry.
        let cat = catalog_with_budget(1);
        let a = cat.resolve("internet", 0.001, 1, false).unwrap();
        assert!(a.bytes > 1);
        cat.resolve("internet", 0.001, 2, false).unwrap();
        let (_, misses, evictions, resident) = cat.stats();
        assert_eq!(misses, 2);
        assert_eq!(evictions, 1);
        // Only the newest stays resident (oversized-but-admitted).
        let b = cat.resolve("internet", 0.001, 2, false).unwrap();
        assert_eq!(resident, b.bytes);
        // First graph was evicted → resolving it again is a miss.
        cat.resolve("internet", 0.001, 1, false).unwrap();
        assert_eq!(cat.stats().1, 3);
    }

    fn one_entry_manifest(algo: &str, family: &str, fp: &Fingerprint) -> TuneManifest {
        let sketch = ecl_profiling::LogSketch::new();
        sketch.record(1);
        TuneManifest::new(vec![ecl_tune::TuneEntry {
            algo: algo.to_string(),
            input: "internet".into(),
            family: family.to_string(),
            fingerprint: fp.clone(),
            scale: 0.002,
            seed: 7,
            method: "exhaustive".into(),
            evaluations: 1,
            space: 1,
            default_time: 2.0,
            tuned_time: 1.0,
            eval_sketch: sketch.snapshot(),
            schedule: ecl_gpusim::schedule::default_schedule(algo)
                .with("optimized_init", ecl_gpusim::KnobValue::Bool(true)),
        }])
    }

    #[test]
    fn manifest_attaches_schedules_by_family() {
        // No manifest → fingerprint present, no schedules.
        let plain = catalog_with_budget(64 << 20);
        let g = plain.resolve("internet", 0.002, 7, false).unwrap();
        assert!(g.schedules.is_empty(), "no manifest, no schedules");
        assert_eq!(g.fingerprint.vertices, g.structure().num_vertices());
        let family = g.fingerprint.family_key();

        // Same graph through a manifest-bearing catalog → attached.
        let cat = GraphCatalog::new(CatalogConfig {
            tune: Some(Arc::new(one_entry_manifest("cc", &family, &g.fingerprint))),
            ..CatalogConfig::default()
        });
        let tuned = cat.resolve("internet", 0.002, 7, false).unwrap();
        let s = tuned.schedule_for("cc").expect("cc schedule attached at registration");
        assert_eq!(s.bool_knob("optimized_init"), Some(true));
        assert!(tuned.schedule_for("scc").is_none(), "no scc entry in the manifest");

        // A family mismatch falls back to defaults (no attachment).
        let other = GraphCatalog::new(CatalogConfig {
            tune: Some(Arc::new(one_entry_manifest(
                "cc",
                "skew=uniform;diam=high;directed=true",
                &g.fingerprint,
            ))),
            ..CatalogConfig::default()
        });
        let miss = other.resolve("internet", 0.002, 7, false).unwrap();
        assert!(miss.schedule_for("cc").is_none(), "family mismatch must fall back");
    }

    #[test]
    fn listing_surfaces_resident_fingerprints() {
        let cat = catalog_with_budget(64 << 20);
        let before = cat.list();
        let row = before.iter().find(|r| r.name == "internet").unwrap();
        assert!(row.fingerprint.is_none(), "nothing resident yet");

        let g = cat.resolve("internet", 0.002, 7, false).unwrap();
        let rows = cat.list();
        let row = rows.iter().find(|r| r.name == "internet").unwrap();
        let fp = row.fingerprint.as_ref().expect("resident graph must expose its fingerprint");
        assert_eq!(fp.family_key(), g.fingerprint.family_key());
        assert_eq!(fp.vertices, g.fingerprint.vertices);
        // Unresolved names stay bare.
        assert!(rows.iter().any(|r| r.fingerprint.is_none()));
    }

    #[test]
    fn disk_loading_and_shadowing() {
        let dir = std::env::temp_dir().join(format!("ecl-serve-cat-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // A small edge list...
        std::fs::write(dir.join("tiny.el"), "0 1\n1 2\n2 0\n").unwrap();
        // ...and a binary file shadowing the registry name "internet".
        let g = registry::find("internet").unwrap().generate(0.001, 99);
        let mut buf = Vec::new();
        gio::write_csr(&mut buf, &g).unwrap();
        std::fs::write(dir.join("internet.ecl"), &buf).unwrap();

        let cat = GraphCatalog::new(CatalogConfig {
            graphs_dir: Some(dir.clone()),
            ..CatalogConfig::default()
        });
        let tiny = cat.resolve("tiny", 1.0, 0, false).unwrap();
        assert_eq!(tiny.structure().num_vertices(), 3);
        assert_eq!(tiny.structure().num_edges(), 3);
        // Weighted view of an unweighted disk graph synthesizes weights.
        let wt = cat.resolve("tiny", 1.0, 5, true).unwrap();
        assert!(wt.weighted.is_some());

        // Shadowing: "internet" resolves to the seed-99 file content
        // regardless of the requested (scale, seed).
        let shadowed = cat.resolve("internet", 0.5, 1, false).unwrap();
        assert_eq!(shadowed.content_hash, content_hash(&g, None));
        // Path traversal is rejected, not resolved.
        assert!(matches!(cat.resolve("../tiny", 1.0, 0, false), Err(CatalogError::NotFound(_))));
        // Listing includes both sources, disk shadowing registry.
        let rows = cat.list();
        assert!(rows.iter().any(|r| r.name == "tiny" && r.source == "disk"));
        let internet: Vec<_> = rows.iter().filter(|r| r.name == "internet").collect();
        assert_eq!(internet.len(), 1);
        assert_eq!(internet[0].source, "disk");

        std::fs::remove_dir_all(&dir).ok();
    }
}
