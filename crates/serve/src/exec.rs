//! Job execution: [`JobSpec`] → simulated device → algorithm run →
//! bit-comparable [`RunOutput`].
//!
//! Outputs carry *aggregates*, not full label arrays: counts, rounds,
//! and an FNV checksum over each per-vertex solution vector. The
//! checksums make the result-cache equivalence guarantee testable —
//! a cache hit is byte-identical to a cold run iff every aggregate
//! (including the checksums and the modeled-time bit pattern) matches.

use std::sync::Arc;
use std::time::Duration;

use ecl_gpusim::pool::with_policy;
use ecl_gpusim::{Device, DeviceConfig};

use crate::catalog::{CatalogError, GraphCatalog};
use crate::jobs::{Algo, Fault, JobSpec};

/// SM floor for SCC runs (mirrors the bench harness: the forward/
/// backward sweeps need a multi-block grid even at tiny scales).
pub const SCC_MIN_SMS: usize = 8;

/// An RTX 4090 scaled down by `scale`: same SM shape, proportionally
/// fewer SMs, floored at `min_sms`. Kept in sync with the bench
/// harness's `scaled_device_min` (serve cannot depend on ecl-bench —
/// the bench crate hosts the serve binaries).
pub fn scaled_device(scale: f64, min_sms: usize) -> Device {
    Device::new(scaled_config(scale, min_sms))
}

/// The configuration behind [`scaled_device`]; the sharded path builds
/// one identical device per shard from it.
pub fn scaled_config(scale: f64, min_sms: usize) -> DeviceConfig {
    let full = DeviceConfig::rtx4090();
    let num_sms = ((full.num_sms as f64 * scale).round() as usize).max(min_sms).max(1);
    DeviceConfig { num_sms, ..full }
}

/// The deterministic, bit-comparable result of one job.
#[derive(Clone, Debug, PartialEq)]
pub struct RunOutput {
    /// Algorithm that ran.
    pub algo: Algo,
    /// Catalog graph name.
    pub graph: String,
    /// Content hash of the exact input graph.
    pub graph_hash: u64,
    /// Input vertex count.
    pub vertices: usize,
    /// Input arc count.
    pub arcs: usize,
    /// Named integer aggregates (counts, rounds, solution checksums).
    /// Bit-exact: two runs are "the same result" iff these match.
    pub aggregates: Vec<(&'static str, u64)>,
    /// Deterministic modeled GPU time in cost units.
    pub modeled_time: f64,
    /// Whether a manifest schedule (attached to the resolved graph at
    /// catalog registration) was applied to this run.
    pub tuned: bool,
}

impl RunOutput {
    /// Looks up an aggregate by name.
    pub fn aggregate(&self, name: &str) -> Option<u64> {
        self.aggregates.iter().find(|(n, _)| *n == name).map(|&(_, v)| v)
    }
}

/// FNV-1a over a `u32` slice — stable solution-vector checksum.
fn checksum_u32(values: &[u32]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &v in values {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_0000_01b3);
        }
    }
    h
}

/// Executes `spec` against `catalog`. Errors are strings (they become
/// the job's failure message). Panics propagate — the scheduler wraps
/// this call in `catch_unwind`.
pub fn execute(spec: &JobSpec, catalog: &Arc<GraphCatalog>) -> Result<RunOutput, String> {
    match spec.fault {
        Fault::Panic => panic!("injected fault: panic"),
        Fault::DelayMs(ms) => std::thread::sleep(Duration::from_millis(ms as u64)),
        Fault::None => {}
    }

    let weighted = spec.algo == Algo::Mst;
    let resolve_start = std::time::Instant::now();
    let resolved = catalog
        .resolve(&spec.graph, spec.scale, spec.seed, weighted)
        .map_err(|e: CatalogError| e.to_string())?;
    // Request-scoped phase: a cold resolve (generate + materialize) can
    // dominate a request's run time; the flight recorder shows it as a
    // distinct span instead of unexplained non-kernel time.
    let req = ecl_obs::ctx::current();
    if req != 0 {
        let resolve_ns = resolve_start.elapsed().as_nanos() as u64;
        ecl_obs::sink::with(|obs| obs.recorder.on_phase(req, "graph.resolve", resolve_ns));
    }
    let structure = resolved.structure();

    // Directedness contract: SCC is the only directed algorithm; the
    // others assume symmetric adjacency.
    if spec.algo == Algo::Scc && !structure.is_directed() {
        return Err(format!("scc requires a directed graph ({:?} is undirected)", spec.graph));
    }
    if spec.algo != Algo::Scc && structure.is_directed() {
        return Err(format!(
            "{} requires an undirected graph ({:?} is directed)",
            spec.algo.name(),
            spec.graph
        ));
    }

    let min_sms = if spec.algo == Algo::Scc { SCC_MIN_SMS } else { 1 };

    // Multi-pool path: shard the graph across `spec.shards` modeled
    // GPUs and run the algorithm through ecl-shard. Results are
    // bit-identical to single-pool (see crates/shard), but modeled
    // time and the shard aggregates are not — the cache key's shard
    // count keeps the entries separate.
    if spec.shards > 1 {
        return execute_sharded(spec, &resolved, structure, min_sms);
    }

    let device = scaled_device(spec.scale, min_sms);

    // Tuned-schedule attachment: the catalog pinned the best-known
    // manifest schedule to this graph at registration. Precedence is
    // schedule < explicit spec overrides — a client-supplied
    // block_size or seed always wins over the manifest.
    let schedule = resolved.schedule_for(spec.algo.name());
    let tuned = schedule.is_some();

    let run = || -> Result<Vec<(&'static str, u64)>, String> {
        Ok(match spec.algo {
            Algo::Cc => {
                let g = resolved.csr.as_ref().ok_or("internal: unweighted view missing")?;
                let mut cfg = ecl_cc::CcConfig::baseline();
                if let Some(s) = schedule {
                    cfg.apply_schedule(s);
                }
                let r = ecl_cc::run(&device, g, &cfg);
                vec![
                    ("num_components", r.num_components() as u64),
                    ("labels_checksum", checksum_u32(&r.labels)),
                ]
            }
            Algo::Gc => {
                let g = resolved.csr.as_ref().ok_or("internal: unweighted view missing")?;
                let mut cfg = ecl_gc::GcConfig::default();
                if let Some(s) = schedule {
                    cfg.apply_schedule(s);
                }
                if let Some(bs) = spec.block_size {
                    cfg.block_size = bs;
                }
                let r = ecl_gc::run(&device, g, &cfg);
                vec![
                    ("num_colors", r.num_colors() as u64),
                    ("rounds", r.rounds as u64),
                    ("colors_checksum", checksum_u32(&r.colors)),
                ]
            }
            Algo::Mis => {
                let g = resolved.csr.as_ref().ok_or("internal: unweighted view missing")?;
                // The job seed salts the tie-break permutation, so two
                // seeds explore genuinely different (still
                // deterministic) independent sets. The seed is applied
                // *after* the schedule: result-cache keys include the
                // seed, so it must keep full authority over the salt.
                let mut cfg = ecl_mis::MisConfig::default();
                if let Some(s) = schedule {
                    cfg.apply_schedule(s);
                }
                cfg.tie_salt = ecl_mis::MisConfig::seeded(spec.seed).tie_salt;
                let r = ecl_mis::run(&device, g, &cfg);
                let set: Vec<u32> = r.in_set.iter().map(|&b| b as u32).collect();
                vec![
                    ("set_size", r.set_size() as u64),
                    ("rounds", r.rounds as u64),
                    ("set_checksum", checksum_u32(&set)),
                ]
            }
            Algo::Mst => {
                let g = resolved.weighted.as_ref().ok_or("internal: weighted view missing")?;
                let mut cfg = ecl_mst::MstConfig::baseline();
                if let Some(s) = schedule {
                    cfg.apply_schedule(s);
                }
                let r = ecl_mst::run(&device, g, &cfg);
                let mut edges: Vec<u32> = r.edges.iter().map(|&e| e as u32).collect();
                edges.sort_unstable();
                vec![
                    ("total_weight", r.total_weight),
                    ("num_trees", r.num_trees as u64),
                    ("num_mst_edges", r.edges.len() as u64),
                    ("edges_checksum", checksum_u32(&edges)),
                ]
            }
            Algo::Scc => {
                let g = resolved.csr.as_ref().ok_or("internal: unweighted view missing")?;
                let mut cfg = ecl_scc::SccConfig::default();
                if let Some(s) = schedule {
                    cfg.apply_schedule(s);
                }
                if let Some(bs) = spec.block_size {
                    cfg.block_size = bs;
                }
                let r = ecl_scc::run(&device, g, &cfg);
                vec![
                    ("num_sccs", r.num_sccs() as u64),
                    ("outer_iterations", r.outer_iterations as u64),
                    ("labels_checksum", checksum_u32(&r.labels)),
                ]
            }
        })
    };
    // Tuned runs also honor the schedule's dispatch knobs (engine,
    // workers, claim grain). These are cost-neutral by scheduler
    // determinism, so they can never change aggregates or modeled time.
    let aggregates = match schedule {
        Some(s) => with_policy(s.dispatch_policy(), run)?,
        None => run()?,
    };

    Ok(RunOutput {
        algo: spec.algo,
        graph: resolved.name.clone(),
        graph_hash: resolved.content_hash,
        vertices: structure.num_vertices(),
        arcs: structure.num_arcs(),
        aggregates,
        modeled_time: device.modeled_time(),
        tuned,
    })
}

/// Runs `spec` across `spec.shards` modeled GPUs through ecl-shard.
///
/// CC/MIS/SCC produce the same solution checksums as the single-pool
/// kernels (ecl-shard's fixpoints are bit-identical at every shard
/// count); GC and MST have no sharded implementation and fail cleanly.
/// Manifest schedules tune single-pool dispatch knobs and are not
/// applied here, so sharded runs always report `tuned: false`.
fn execute_sharded(
    spec: &JobSpec,
    resolved: &crate::catalog::ResolvedGraph,
    structure: &ecl_graph::Csr,
    min_sms: usize,
) -> Result<RunOutput, String> {
    if matches!(spec.algo, Algo::Gc | Algo::Mst) {
        return Err(format!(
            "{} does not support sharded execution (cc|mis|scc only)",
            spec.algo.name()
        ));
    }
    let g = resolved.csr.as_ref().ok_or("internal: unweighted view missing")?;
    let part = ecl_shard::Partition::auto(g, spec.shards);
    let devices = ecl_shard::devices_for(scaled_config(spec.scale, min_sms), spec.shards);
    let (mut aggregates, stats) = match spec.algo {
        Algo::Cc => {
            let r = ecl_shard::run_cc(&devices, g, &part);
            (
                vec![
                    ("num_components", r.num_components() as u64),
                    ("labels_checksum", checksum_u32(&r.labels)),
                ],
                r.stats,
            )
        }
        Algo::Mis => {
            let salt = ecl_mis::MisConfig::seeded(spec.seed).tie_salt;
            let r = ecl_shard::run_mis(&devices, g, &part, salt);
            let set: Vec<u32> = r.in_set.iter().map(|&b| b as u32).collect();
            (vec![("set_size", r.set_size() as u64), ("set_checksum", checksum_u32(&set))], r.stats)
        }
        Algo::Scc => {
            let r = ecl_shard::run_scc(&devices, g, &part);
            (
                vec![
                    ("num_sccs", r.num_sccs() as u64),
                    ("outer_iterations", r.outer_iterations as u64),
                    ("labels_checksum", checksum_u32(&r.labels)),
                ],
                r.stats,
            )
        }
        Algo::Gc | Algo::Mst => unreachable!("rejected above"),
    };
    aggregates.extend([
        ("shards", stats.shards as u64),
        ("cut_arcs", stats.cut_arcs as u64),
        ("supersteps", stats.supersteps as u64),
        ("exchange_messages", stats.exchange_messages),
    ]);
    Ok(RunOutput {
        algo: spec.algo,
        graph: resolved.name.clone(),
        graph_hash: resolved.content_hash,
        vertices: structure.num_vertices(),
        arcs: structure.num_arcs(),
        aggregates,
        modeled_time: stats.modeled_time,
        tuned: false,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::catalog::CatalogConfig;

    fn catalog() -> Arc<GraphCatalog> {
        Arc::new(GraphCatalog::new(CatalogConfig::default()))
    }

    #[test]
    fn cc_runs_and_is_deterministic() {
        let cat = catalog();
        let spec = JobSpec::new(Algo::Cc, "internet");
        let a = execute(&spec, &cat).unwrap();
        let b = execute(&spec, &cat).unwrap();
        assert_eq!(a, b, "same spec must be bit-identical");
        assert!(a.aggregate("num_components").unwrap() >= 1);
        assert!(a.modeled_time > 0.0);
    }

    #[test]
    fn seed_changes_generated_input_and_result_hash() {
        let cat = catalog();
        let mut a = JobSpec::new(Algo::Cc, "internet");
        let mut b = a.clone();
        a.seed = 1;
        b.seed = 2;
        let ra = execute(&a, &cat).unwrap();
        let rb = execute(&b, &cat).unwrap();
        assert_ne!(ra.graph_hash, rb.graph_hash);
    }

    #[test]
    fn mis_seed_changes_tie_breaks_on_same_graph() {
        // Same graph content (seed only salts MIS tie-breaking when
        // the graph comes from disk) — emulate by generating one graph
        // and running MIS with two salted configs directly.
        let g = ecl_graphgen::registry::find("internet").unwrap().generate(0.002, 7);
        let device = scaled_device(0.002, 1);
        let r0 = ecl_mis::run(&device, &g, &ecl_mis::MisConfig::seeded(0));
        let r1 = ecl_mis::run(&device, &g, &ecl_mis::MisConfig::seeded(0xDEAD_BEEF_CAFE));
        // Both are valid MIS runs; the selected sets should differ for
        // a graph this size (astronomically unlikely to coincide).
        assert!(r0.set_size() > 0 && r1.set_size() > 0);
        assert_ne!(r0.in_set, r1.in_set, "salt must permute tie-breaking");
    }

    #[test]
    fn scc_on_undirected_graph_fails_cleanly() {
        let cat = catalog();
        let spec = JobSpec::new(Algo::Scc, "internet");
        let err = execute(&spec, &cat).unwrap_err();
        assert!(err.contains("directed"), "got: {err}");
    }

    #[test]
    fn scc_on_directed_mesh_succeeds() {
        let cat = catalog();
        let name = ecl_graphgen::registry::scc_inputs()[0].name;
        let spec = JobSpec::new(Algo::Scc, name);
        let out = execute(&spec, &cat).unwrap();
        assert!(out.aggregate("num_sccs").unwrap() >= 1);
    }

    #[test]
    fn mst_runs_on_weighted_view() {
        let cat = catalog();
        let spec = JobSpec::new(Algo::Mst, "USA-road-d.NY");
        let out = execute(&spec, &cat).unwrap();
        assert!(out.aggregate("total_weight").unwrap() > 0);
        assert_eq!(
            out.aggregate("num_mst_edges").unwrap() + out.aggregate("num_trees").unwrap(),
            out.vertices as u64,
            "spanning forest invariant: edges + trees == vertices"
        );
    }

    fn manifest_for(
        algo: &str,
        fp: &ecl_graph::Fingerprint,
        schedule: ecl_gpusim::Schedule,
    ) -> ecl_tune::TuneManifest {
        let sketch = ecl_profiling::LogSketch::new();
        sketch.record(1);
        ecl_tune::TuneManifest::new(vec![ecl_tune::TuneEntry {
            algo: algo.to_string(),
            input: "internet".into(),
            family: fp.family_key(),
            fingerprint: fp.clone(),
            scale: 0.001,
            seed: 0,
            method: "exhaustive".into(),
            evaluations: 1,
            space: 1,
            default_time: 2.0,
            tuned_time: 1.0,
            eval_sketch: sketch.snapshot(),
            schedule,
        }])
    }

    #[test]
    fn manifest_schedule_applies_and_labels_tuned() {
        let plain = catalog();
        let spec = JobSpec::new(Algo::Cc, "internet");
        let base = execute(&spec, &plain).unwrap();
        assert!(!base.tuned, "no manifest → defaults");

        let g = plain.resolve("internet", spec.scale, spec.seed, false).unwrap();
        let schedule = ecl_gpusim::schedule::default_schedule("cc")
            .with("optimized_init", ecl_gpusim::KnobValue::Bool(true));
        let cat = Arc::new(GraphCatalog::new(CatalogConfig {
            tune: Some(Arc::new(manifest_for("cc", &g.fingerprint, schedule))),
            ..CatalogConfig::default()
        }));
        let tuned = execute(&spec, &cat).unwrap();
        assert!(tuned.tuned, "manifest match → tuned run");
        assert_eq!(
            tuned.aggregate("num_components"),
            base.aggregate("num_components"),
            "schedule changes cost, never the answer"
        );
        assert_ne!(
            tuned.modeled_time.to_bits(),
            base.modeled_time.to_bits(),
            "optimized init must change the modeled cost"
        );
    }

    #[test]
    fn job_seed_overrides_manifest_tie_salt() {
        let plain = catalog();
        let mut spec = JobSpec::new(Algo::Mis, "internet");
        spec.seed = 5;
        let base = execute(&spec, &plain).unwrap();

        // Manifest pins a nonzero MIS tie salt; the job seed must
        // still control the salt (result-cache keys include the seed).
        let g = plain.resolve("internet", spec.scale, spec.seed, false).unwrap();
        let schedule = ecl_gpusim::schedule::default_schedule("mis")
            .with("tie_salt", ecl_gpusim::KnobValue::Int(0x9E37));
        let cat = Arc::new(GraphCatalog::new(CatalogConfig {
            tune: Some(Arc::new(manifest_for("mis", &g.fingerprint, schedule))),
            ..CatalogConfig::default()
        }));
        let tuned = execute(&spec, &cat).unwrap();
        assert!(tuned.tuned);
        assert_eq!(
            tuned.aggregate("set_checksum"),
            base.aggregate("set_checksum"),
            "seed-derived salt must win over the manifest salt"
        );
    }

    #[test]
    fn sharded_cc_matches_single_pool_checksums() {
        let cat = catalog();
        let mut spec = JobSpec::new(Algo::Cc, "internet");
        let single = execute(&spec, &cat).unwrap();
        spec.shards = 4;
        let sharded = execute(&spec, &cat).unwrap();
        assert_eq!(sharded.aggregate("labels_checksum"), single.aggregate("labels_checksum"));
        assert_eq!(sharded.aggregate("num_components"), single.aggregate("num_components"));
        assert_eq!(sharded.aggregate("shards"), Some(4));
        assert!(sharded.aggregate("supersteps").unwrap() > 0);
        assert!(!sharded.tuned);
    }

    #[test]
    fn sharded_mis_seed_controls_tie_salt() {
        let cat = catalog();
        let mut spec = JobSpec::new(Algo::Mis, "internet");
        spec.seed = 9;
        let single = execute(&spec, &cat).unwrap();
        spec.shards = 2;
        let sharded = execute(&spec, &cat).unwrap();
        assert_eq!(sharded.aggregate("set_checksum"), single.aggregate("set_checksum"));
        assert_eq!(sharded.aggregate("set_size"), single.aggregate("set_size"));
    }

    #[test]
    fn sharded_scc_matches_single_pool() {
        let cat = catalog();
        let name = ecl_graphgen::registry::scc_inputs()[0].name;
        let mut spec = JobSpec::new(Algo::Scc, name);
        let single = execute(&spec, &cat).unwrap();
        spec.shards = 3;
        let sharded = execute(&spec, &cat).unwrap();
        assert_eq!(sharded.aggregate("labels_checksum"), single.aggregate("labels_checksum"));
        assert_eq!(sharded.aggregate("num_sccs"), single.aggregate("num_sccs"));
        assert_eq!(sharded.aggregate("outer_iterations"), single.aggregate("outer_iterations"));
    }

    #[test]
    fn sharded_gc_and_mst_fail_cleanly() {
        let cat = catalog();
        let mut gc = JobSpec::new(Algo::Gc, "internet");
        gc.shards = 2;
        assert!(execute(&gc, &cat).unwrap_err().contains("sharded"));
        let mut mst = JobSpec::new(Algo::Mst, "USA-road-d.NY");
        mst.shards = 2;
        assert!(execute(&mst, &cat).unwrap_err().contains("sharded"));
    }

    #[test]
    fn injected_panic_propagates() {
        let cat = catalog();
        let mut spec = JobSpec::new(Algo::Cc, "internet");
        spec.fault = Fault::Panic;
        let r = std::panic::catch_unwind(|| execute(&spec, &cat));
        assert!(r.is_err());
    }
}
