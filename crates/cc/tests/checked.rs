//! ECL-CC under the race sanitizer: all nstat traffic is the
//! algorithm's intentional benign-race idiom (monotonic hooking +
//! pointer jumping), so a checked run must be race-clean with the
//! conflicts showing up only as suppressed findings on `cc.nstat`.

#![allow(clippy::unwrap_used)]

use ecl_cc::{run, CcConfig};
use ecl_check::run_checked;
use ecl_gpusim::Device;
use ecl_graphgen::random::erdos_renyi;

#[test]
fn cc_runs_race_clean_under_checker() {
    let device = Device::test_small();
    let g = erdos_renyi(600, 4.0, 11);
    let config = CcConfig { block_size: 64, ..CcConfig::default() };
    let (result, report) = run_checked(&device, || run(&device, &g, &config));
    assert_eq!(result.labels.len(), g.num_vertices());
    assert!(
        report.is_clean(),
        "CC must be free of unsuppressed findings:\n{}",
        report.render("cc")
    );
    // The benign-race idiom is real: pointer jumping and hooking do
    // collide, and the allowlist is what keeps the run green.
    assert!(!report.suppressed.is_empty(), "nstat races should be seen (and suppressed)");
    assert!(
        report.suppressed.iter().all(|f| f.region.as_deref() == Some("cc.nstat")),
        "only the declared benign region may race: {:?}",
        report.suppressed
    );
}
