//! ECL-CC's application-specific counters (§3.2, §6.1.3).

use ecl_profiling::{AtomicTally, GlobalCounter, LogSketch, ProfileMode};

/// Counters embedded in the ECL-CC kernels.
///
/// The init-kernel pair (`vertices_initialized`, `vertices_traversed`)
/// is Table 4; the `representative()` counters are the §3.2 example
/// ("the number of times the function is called, and the number of
/// times the return value is smaller (or greater) than the old
/// representative").
#[derive(Debug)]
pub struct CcCounters {
    mode: ProfileMode,
    /// Vertices assigned an initial label (Table 4, column 1 — equals
    /// |V| and serves as the reference for the traversal count).
    pub vertices_initialized: GlobalCounter,
    /// Neighbors examined while searching for the first smaller
    /// neighbor (Table 4, column 2).
    pub vertices_traversed: GlobalCounter,
    /// Calls to the `representative()` (find) function.
    pub find_calls: GlobalCounter,
    /// Calls whose return value was smaller than the label the caller
    /// had previously observed (progress was made by someone).
    pub find_smaller: GlobalCounter,
    /// Calls whose return value equaled the previously observed label.
    pub find_unchanged: GlobalCounter,
    /// Outcomes of the hooking `atomicCAS` operations.
    pub hook_cas: AtomicTally,
    /// Pointer-jump shortcuts installed by intermediate pointer
    /// jumping inside `representative()`.
    pub pointer_jumps: GlobalCounter,
    /// Per-vertex distribution of neighbors examined by the init scan
    /// — the streaming form of `vertices_traversed`: the total alone
    /// hides whether work is uniform or dominated by a few hubs, the
    /// p99/max of this sketch shows it.
    pub traversal_len: LogSketch,
}

impl CcCounters {
    /// Fresh counters in the given mode.
    pub fn new(mode: ProfileMode) -> Self {
        Self {
            mode,
            vertices_initialized: GlobalCounter::new(),
            vertices_traversed: GlobalCounter::new(),
            find_calls: GlobalCounter::new(),
            find_smaller: GlobalCounter::new(),
            find_unchanged: GlobalCounter::new(),
            hook_cas: AtomicTally::new(),
            pointer_jumps: GlobalCounter::new(),
            traversal_len: LogSketch::new(),
        }
    }

    /// Whether counters record.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.mode.enabled()
    }

    /// The hook-CAS tally when profiling is on, `None` otherwise (the
    /// counted-atomic wrappers skip recording for `None`).
    #[inline]
    pub fn cas_tally(&self) -> Option<&AtomicTally> {
        if self.enabled() {
            Some(&self.hook_cas)
        } else {
            None
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn enabled_gates_tally_handle() {
        let on = CcCounters::new(ProfileMode::On);
        assert!(on.enabled());
        assert!(on.cas_tally().is_some());
        let off = CcCounters::new(ProfileMode::Off);
        assert!(!off.enabled());
        assert!(off.cas_tally().is_none());
    }

    #[test]
    fn counters_start_zero() {
        let c = CcCounters::new(ProfileMode::On);
        assert_eq!(c.vertices_initialized.get(), 0);
        assert_eq!(c.vertices_traversed.get(), 0);
        assert_eq!(c.find_calls.get(), 0);
        assert_eq!(c.hook_cas.attempted(), 0);
        assert_eq!(c.traversal_len.snapshot().count, 0);
    }

    #[test]
    fn traversal_sketch_total_matches_counter_when_recorded_together() {
        let c = CcCounters::new(ProfileMode::On);
        for len in [0u64, 3, 1, 40] {
            c.traversal_len.record(len);
            for _ in 0..len {
                c.vertices_traversed.inc();
            }
        }
        let snap = c.traversal_len.snapshot();
        assert_eq!(snap.count, 4);
        assert_eq!(snap.sum, c.vertices_traversed.get());
        assert!(snap.p99 >= 40);
    }
}
