//! The ECL-CC kernels: init, degree-binned compute, finalize.

use ecl_check::CheckedSlice;
use ecl_gpusim::atomics::atomic_u32_array;
use ecl_gpusim::{launch_flat_named, CostKind, CountedU32, Device, LaunchConfig};
use ecl_graph::Csr;

use crate::counters::CcCounters;
use crate::CcConfig;

/// Runs all three stages and returns the final labels.
pub fn connected_components(
    device: &Device,
    g: &Csr,
    config: &CcConfig,
    counters: &CcCounters,
) -> Vec<u32> {
    connected_components_profiled(device, g, config, counters, None)
}

/// Like [`connected_components`] but attributing each kernel phase's
/// cost to `profile` (the §6.1.3 observation that "the init kernel ...
/// accounts for 10-20% of the total runtime" is checked against this
/// breakdown).
pub fn connected_components_profiled(
    device: &Device,
    g: &Csr,
    config: &CcConfig,
    counters: &CcCounters,
    profile: Option<&ecl_gpusim::KernelProfile>,
) -> Vec<u32> {
    let n = g.num_vertices();
    let nstat = atomic_u32_array(n, |i| i as u32);
    // Everything ECL-CC does to nstat is an intentional benign race:
    // hooking CASes to the minimum, and pointer jumping / finalize
    // shortcut stores that only ever rewrite a label to an equal-or-
    // smaller representative already reachable from it.
    let nstat = CheckedSlice::benign(
        "cc.nstat",
        &nstat,
        "monotonic label hooking + pointer jumping: stale reads only delay convergence (§2.1)",
    );
    let scoped = |name: &str, f: &mut dyn FnMut()| {
        ecl_trace::sink::phase_span(name, || match profile {
            Some(p) => p.measure(device, name, f),
            None => f(),
        })
    };

    scoped("init", &mut || init(device, g, config, counters, &nstat));

    let (low, medium, high) = partition_by_degree(g, config);
    // Group widths mirror ECL-CC's thread/warp/block specialization:
    // low-degree vertices get one thread, medium a warp-sized group,
    // high a block-sized group cooperating on the adjacency list.
    scoped("compute-low", &mut || {
        compute(device, "cc.compute-low", g, config, counters, &nstat, &low, 1)
    });
    scoped("compute-medium", &mut || {
        compute(device, "cc.compute-medium", g, config, counters, &nstat, &medium, 32)
    });
    scoped("compute-high", &mut || {
        compute(device, "cc.compute-high", g, config, counters, &nstat, &high, 256)
    });

    scoped("finalize", &mut || finalize(device, g, config, &nstat));
    nstat.iter().map(|a| a.load()).collect()
}

/// Initialization: label each vertex with the id of its first smaller
/// neighbor (or itself). The baseline scans until a smaller neighbor
/// appears — a full fruitless scan when none exists, since sorted
/// adjacency lists place the minimum first. The optimized variant
/// checks only the first neighbor (§6.2.2).
fn init(device: &Device, g: &Csr, config: &CcConfig, counters: &CcCounters, nstat: &[CountedU32]) {
    let n = g.num_vertices();
    let cfg = LaunchConfig::cover(n, config.block_size);
    launch_flat_named(device, "cc.init", cfg, |t| {
        if t.global >= n {
            device.charge(CostKind::IdleCheck, 1);
            return;
        }
        let v = t.global as u32;
        let adj = g.neighbors(v);
        let mut label = v;
        let mut scanned = 0u64;
        if config.optimized_init {
            // Sorted lists: the first neighbor is the minimum, so it
            // alone decides whether a smaller neighbor exists.
            if let Some(&first) = adj.first() {
                device.charge(CostKind::ThreadWork, 1);
                scanned += 1;
                if counters.enabled() {
                    counters.vertices_traversed.inc();
                }
                if first < v {
                    label = first;
                }
            }
        } else {
            for &u in adj {
                device.charge(CostKind::ThreadWork, 1);
                scanned += 1;
                if counters.enabled() {
                    counters.vertices_traversed.inc();
                }
                if u < v {
                    label = u;
                    break;
                }
            }
        }
        nstat[t.global].store(label);
        if counters.enabled() {
            counters.vertices_initialized.inc();
            counters.traversal_len.record(scanned);
        }
    });
}

/// `representative()`: follows the label chain to the current root,
/// shortening the path with intermediate pointer jumping as it goes.
/// Chains strictly decrease, so the walk terminates even under
/// concurrent hooking.
fn representative(v: u32, nstat: &[CountedU32], device: &Device, counters: &CcCounters) -> u32 {
    let initial = nstat[v as usize].load();
    let mut curr = initial;
    if curr != v {
        let mut prev = v;
        let mut next = nstat[curr as usize].load();
        while curr > next {
            device.charge(CostKind::ThreadWork, 1);
            // Intermediate pointer jumping: shortcut prev directly to
            // next. next < curr < prev keeps chains decreasing.
            nstat[prev as usize].store(next);
            if counters.enabled() {
                counters.pointer_jumps.inc();
            }
            prev = curr;
            curr = next;
            next = nstat[curr as usize].load();
        }
    }
    if counters.enabled() {
        counters.find_calls.inc();
        if curr < initial {
            counters.find_smaller.inc();
        } else {
            counters.find_unchanged.inc();
        }
    }
    curr
}

/// Compute kernel: each vertex group processes the vertex's adjacency
/// list with `group` cooperating threads, hooking the roots of the two
/// endpoints with `atomicCAS` (smaller id wins, so the final root of a
/// component is its minimum vertex id). Each undirected edge is
/// processed from its larger endpoint only.
#[allow(clippy::too_many_arguments)]
fn compute(
    device: &Device,
    name: &str,
    g: &Csr,
    config: &CcConfig,
    counters: &CcCounters,
    nstat: &[CountedU32],
    verts: &[u32],
    group: usize,
) {
    let total = verts.len() * group;
    let cfg = LaunchConfig::cover(total, config.block_size);
    launch_flat_named(device, name, cfg, |t| {
        if t.global >= total {
            device.charge(CostKind::IdleCheck, 1);
            return;
        }
        let v = verts[t.global / group];
        let lane = t.global % group;
        let adj = g.neighbors(v);
        let mut vstat = representative(v, nstat, device, counters);
        let mut idx = lane;
        while idx < adj.len() {
            let u = adj[idx];
            idx += group;
            device.charge(CostKind::ThreadWork, 1);
            if u >= v {
                // The smaller endpoint's thread owns this edge.
                continue;
            }
            let mut ostat = representative(u, nstat, device, counters);
            while vstat != ostat {
                device.charge(CostKind::Atomic, 1);
                if vstat < ostat {
                    let ret = nstat[ostat as usize].cas(ostat, vstat, counters.cas_tally());
                    if ret == ostat {
                        break;
                    }
                    ostat = ret;
                } else {
                    let ret = nstat[vstat as usize].cas(vstat, ostat, counters.cas_tally());
                    if ret == vstat {
                        break;
                    }
                    vstat = ret;
                }
            }
        }
    });
}

/// Finalization: one last pointer-jumping pass so every entry points
/// directly at its component representative.
fn finalize(device: &Device, g: &Csr, config: &CcConfig, nstat: &[CountedU32]) {
    let n = g.num_vertices();
    let cfg = LaunchConfig::cover(n, config.block_size);
    launch_flat_named(device, "cc.finalize", cfg, |t| {
        if t.global >= n {
            device.charge(CostKind::IdleCheck, 1);
            return;
        }
        let mut curr = nstat[t.global].load();
        let mut next = nstat[curr as usize].load();
        while curr > next {
            device.charge(CostKind::ThreadWork, 1);
            curr = next;
            next = nstat[curr as usize].load();
        }
        nstat[t.global].store(curr);
    });
}

fn partition_by_degree(g: &Csr, config: &CcConfig) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
    let mut low = Vec::new();
    let mut medium = Vec::new();
    let mut high = Vec::new();
    for v in 0..g.num_vertices() as u32 {
        let d = g.degree(v);
        if d < config.bins.low_below {
            low.push(v);
        } else if d < config.bins.medium_below {
            medium.push(v);
        } else {
            high.push(v);
        }
    }
    (low, medium, high)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use ecl_graph::GraphBuilder;
    use ecl_profiling::ProfileMode;

    #[test]
    fn partition_respects_bins() {
        let mut b = GraphBuilder::new_undirected(40);
        // Vertex 0: degree 20 (medium); 21..39: degree 1 or 2 (low).
        for v in 1..=20u32 {
            b.add_edge(0, v);
        }
        let g = b.build();
        let cfg = CcConfig::default();
        let (low, medium, high) = partition_by_degree(&g, &cfg);
        assert!(medium.contains(&0));
        assert!(low.contains(&1));
        assert!(high.is_empty());
        assert_eq!(low.len() + medium.len() + high.len(), 40);
    }

    #[test]
    fn representative_compresses_chain() {
        let device = Device::test_small();
        let counters = CcCounters::new(ProfileMode::On);
        // Chain 4 -> 3 -> 2 -> 1 -> 0.
        let nstat = atomic_u32_array(5, |i| i.saturating_sub(1) as u32);
        let r = representative(4, &nstat, &device, &counters);
        assert_eq!(r, 0);
        assert!(counters.pointer_jumps.get() > 0);
        // Path got shortened: following again is cheaper.
        let jumps_before = counters.pointer_jumps.get();
        let r2 = representative(4, &nstat, &device, &counters);
        assert_eq!(r2, 0);
        assert!(counters.pointer_jumps.get() - jumps_before <= jumps_before);
    }

    #[test]
    fn representative_of_root_is_identity() {
        let device = Device::test_small();
        let counters = CcCounters::new(ProfileMode::On);
        let nstat = atomic_u32_array(3, |i| i as u32);
        assert_eq!(representative(2, &nstat, &device, &counters), 2);
        assert_eq!(counters.find_unchanged.get(), 1);
    }

    #[test]
    fn full_pipeline_on_two_cliques() {
        let device = Device::test_small();
        let mut b = GraphBuilder::new_undirected(10);
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                b.add_edge(u, v);
            }
        }
        for u in 5..10u32 {
            for v in (u + 1)..10 {
                b.add_edge(u, v);
            }
        }
        let g = b.build();
        let counters = CcCounters::new(ProfileMode::On);
        let labels = connected_components(&device, &g, &CcConfig::default(), &counters);
        assert_eq!(labels, vec![0, 0, 0, 0, 0, 5, 5, 5, 5, 5]);
    }
}
