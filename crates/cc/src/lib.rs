//! ECL-CC: connected components on the GPU execution model.
//!
//! Port of the algorithm of Jaiganesh & Burtscher \[22\] as reviewed in
//! §2.1 of the paper. Three stages:
//!
//! 1. **Initialization** — each vertex's label starts at the id of the
//!    first (i.e. smallest, lists are sorted) neighbor with a smaller
//!    id, or its own id. The baseline scans the adjacency list until a
//!    smaller neighbor is found — which, with sorted lists, means a
//!    *full* scan whenever none exists. The §6.2.2 optimization checks
//!    only the first neighbor ([`CcConfig::optimized_init`]).
//! 2. **Computation** — three degree-binned kernels (low / medium /
//!    high) perform union-find hooking with `atomicCAS` and
//!    intermediate pointer jumping, asynchronously and lock-free.
//! 3. **Finalization** — a last pointer-jumping pass makes every label
//!    point at its component representative (the minimum id of the
//!    component).
//!
//! Instrumentation (§6.1.3): vertices initialized, vertices traversed
//! during init, `representative()` call counts and return-value
//! comparisons, and hooking CAS outcomes.

pub mod counters;
pub mod kernels;

use ecl_gpusim::Device;
use ecl_graph::Csr;
use ecl_profiling::ProfileMode;

pub use counters::CcCounters;

/// Degree thresholds of the three compute kernels (ECL-CC customizes
/// kernels "for different vertex degrees (low, medium, and high) to
/// balance the load across the threads", §2.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DegreeBins {
    /// Degrees below this go to the thread-per-vertex kernel.
    pub low_below: usize,
    /// Degrees below this (and >= low) go to the warp-group kernel;
    /// the rest go to the block-group kernel.
    pub medium_below: usize,
}

impl Default for DegreeBins {
    fn default() -> Self {
        // The ECL-CC thresholds: low < 16, medium < 352.
        Self { low_below: 16, medium_below: 352 }
    }
}

/// Configuration of one ECL-CC run.
#[derive(Clone, Copy, Debug)]
pub struct CcConfig {
    /// Apply the §6.2.2 first-neighbor-only init optimization.
    pub optimized_init: bool,
    /// Degree binning of the compute kernels.
    pub bins: DegreeBins,
    /// Threads per block for all kernels.
    pub block_size: usize,
    /// Whether counters record.
    pub mode: ProfileMode,
}

impl Default for CcConfig {
    fn default() -> Self {
        Self {
            optimized_init: false,
            bins: DegreeBins::default(),
            block_size: 256,
            mode: ProfileMode::On,
        }
    }
}

impl CcConfig {
    /// The baseline configuration (full init scan).
    pub fn baseline() -> Self {
        Self::default()
    }

    /// The §6.2.2-optimized configuration (first-neighbor-only init).
    pub fn optimized() -> Self {
        Self { optimized_init: true, ..Self::default() }
    }

    /// Overrides fields named in a tuning [`Schedule`]
    /// (`block_size`, `optimized_init`, `low_bin`, `medium_bin`);
    /// absent knobs leave the current value untouched.
    pub fn apply_schedule(&mut self, s: &ecl_gpusim::Schedule) {
        if let Some(bs) = s.int_knob("block_size") {
            self.block_size = bs.max(1) as usize;
        }
        if let Some(opt) = s.bool_knob("optimized_init") {
            self.optimized_init = opt;
        }
        if let Some(low) = s.int_knob("low_bin") {
            self.bins.low_below = low.max(1) as usize;
        }
        if let Some(med) = s.int_knob("medium_bin") {
            self.bins.medium_below = med.max(1) as usize;
        }
    }
}

/// Result of an ECL-CC run.
#[derive(Debug)]
pub struct CcResult {
    /// Component label per vertex: the minimum vertex id of its
    /// component.
    pub labels: Vec<u32>,
    /// Collected counters.
    pub counters: CcCounters,
}

impl CcResult {
    /// Number of connected components.
    pub fn num_components(&self) -> usize {
        self.labels.iter().enumerate().filter(|&(v, &l)| v as u32 == l).count()
    }
}

/// Runs ECL-CC on an undirected graph.
///
/// # Panics
/// Panics if `g` is directed (connected components are defined on
/// undirected graphs here, matching the paper's inputs).
pub fn run(device: &Device, g: &Csr, config: &CcConfig) -> CcResult {
    assert!(!g.is_directed(), "ECL-CC consumes undirected graphs");
    let counters = CcCounters::new(config.mode);
    let labels = kernels::connected_components(device, g, config, &counters);
    CcResult { labels, counters }
}

/// Runs ECL-CC with a per-kernel cost breakdown (init / compute bins /
/// finalize), like a profiler's kernel table.
pub fn run_profiled(
    device: &Device,
    g: &Csr,
    config: &CcConfig,
) -> (CcResult, ecl_gpusim::KernelProfile) {
    assert!(!g.is_directed(), "ECL-CC consumes undirected graphs");
    let counters = CcCounters::new(config.mode);
    let profile = ecl_gpusim::KernelProfile::new();
    let labels =
        kernels::connected_components_profiled(device, g, config, &counters, Some(&profile));
    (CcResult { labels, counters }, profile)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use ecl_graph::GraphBuilder;

    fn device() -> Device {
        Device::test_small()
    }

    fn undirected(n: usize, edges: &[(u32, u32)]) -> Csr {
        let mut b = GraphBuilder::new_undirected(n);
        for &(u, v) in edges {
            b.add_edge(u, v);
        }
        b.build()
    }

    #[test]
    fn two_components() {
        let g = undirected(6, &[(0, 1), (1, 2), (4, 5)]);
        let r = run(&device(), &g, &CcConfig::baseline());
        assert_eq!(r.labels, vec![0, 0, 0, 3, 4, 4]);
        assert_eq!(r.num_components(), 3);
    }

    #[test]
    fn matches_reference_on_small_graphs() {
        for seed in 0..5 {
            let g = ecl_graphgen::random::erdos_renyi(300, 3.0, seed);
            let expect = ecl_ref::connected_components(&g);
            let r = run(&device(), &g, &CcConfig::baseline());
            assert_eq!(r.labels, expect, "seed {seed}");
        }
    }

    #[test]
    fn optimized_init_same_labels() {
        for seed in 0..5 {
            let g = ecl_graphgen::random::erdos_renyi(300, 4.0, seed + 100);
            let a = run(&device(), &g, &CcConfig::baseline());
            let b = run(&device(), &g, &CcConfig::optimized());
            assert_eq!(a.labels, b.labels, "seed {seed}");
        }
    }

    #[test]
    fn init_counters_baseline_traversal() {
        // Path 0-1-2-3: vertex 0 has no smaller neighbor (scans its
        // whole 1-entry list); 1,2,3 find one immediately.
        let g = undirected(4, &[(0, 1), (1, 2), (2, 3)]);
        let r = run(&device(), &g, &CcConfig::baseline());
        assert_eq!(r.counters.vertices_initialized.get(), 4);
        // v0: scans 1 neighbor; v1..v3: 1 each => 4 total.
        assert_eq!(r.counters.vertices_traversed.get(), 4);
    }

    #[test]
    fn init_traversal_gap_on_hub() {
        // Star with center 0: center scans all 5 neighbors fruitlessly,
        // leaves find the center at once.
        let g = undirected(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]);
        let base = run(&device(), &g, &CcConfig::baseline());
        assert_eq!(base.counters.vertices_traversed.get(), 5 + 5);
        let opt = run(&device(), &g, &CcConfig::optimized());
        // Optimized touches exactly one neighbor per non-isolated vertex.
        assert_eq!(opt.counters.vertices_traversed.get(), 6);
        assert_eq!(base.labels, opt.labels);
    }

    #[test]
    fn isolated_vertices() {
        let g = Csr::empty(5, false);
        let r = run(&device(), &g, &CcConfig::baseline());
        assert_eq!(r.labels, vec![0, 1, 2, 3, 4]);
        assert_eq!(r.num_components(), 5);
        assert_eq!(r.counters.vertices_traversed.get(), 0);
    }

    #[test]
    fn high_degree_vertices_exercise_all_bins() {
        // A hub of degree 400 exercises the high kernel; its leaves the
        // low kernel; a mid-degree clique the medium kernel.
        let mut b = GraphBuilder::new_undirected(500);
        for v in 1..=400u32 {
            b.add_edge(0, v);
        }
        for u in 450..470u32 {
            for v in (u + 1)..470 {
                b.add_edge(u, v);
            }
        }
        let g = b.build();
        let r = run(&device(), &g, &CcConfig::baseline());
        assert_eq!(r.labels, ecl_ref::connected_components(&g));
    }

    #[test]
    fn profile_off_still_correct() {
        let g = ecl_graphgen::grid::torus_2d(8, 8);
        let cfg = CcConfig { mode: ProfileMode::Off, ..CcConfig::baseline() };
        let r = run(&device(), &g, &cfg);
        assert_eq!(r.labels, ecl_ref::connected_components(&g));
        // Counters stay silent when profiling is off.
        assert_eq!(r.counters.vertices_initialized.get(), 0);
        assert_eq!(r.counters.find_calls.get(), 0);
    }

    #[test]
    #[should_panic(expected = "undirected")]
    fn rejects_directed_graph() {
        let mut b = GraphBuilder::new_directed(2);
        b.add_edge(0, 1);
        run(&device(), &b.build(), &CcConfig::baseline());
    }

    #[test]
    fn find_call_counters_active() {
        // A hub whose smaller neighbors are all distinct roots: init
        // links the hub to root 0 only, so compute must hook the other
        // nine roots.
        let mut b = GraphBuilder::new_undirected(101);
        for i in 0..10u32 {
            b.add_edge(i * 10, 100);
        }
        let g = b.build();
        let r = run(&device(), &g, &CcConfig::baseline());
        assert!(r.counters.find_calls.get() > 0);
        // Hook CAS operations happened and mostly succeeded.
        assert!(r.counters.hook_cas.attempted() > 0);
        assert!(r.counters.hook_cas.updated() > 0);
    }

    #[test]
    fn torus_init_heuristic_needs_no_hooks() {
        // On a torus every vertex except 0 has a smaller neighbor, so
        // the init forest already has a single root — the §2.1 claim
        // that the heuristic "leads to less work in the next phase".
        let g = ecl_graphgen::grid::torus_2d(6, 6);
        let r = run(&device(), &g, &CcConfig::baseline());
        assert_eq!(r.num_components(), 1);
        assert_eq!(r.counters.hook_cas.attempted(), 0);
    }

    #[test]
    fn kernel_profile_breakdown() {
        let g = ecl_graphgen::random::erdos_renyi(2000, 6.0, 7);
        let (r, profile) = run_profiled(&device(), &g, &CcConfig::baseline());
        assert_eq!(r.labels, ecl_ref::connected_components(&g));
        // All five phases recorded; shares sum to ~1.
        let names: Vec<String> = profile.records().iter().map(|r| r.name.clone()).collect();
        for phase in ["init", "compute-low", "compute-medium", "compute-high", "finalize"] {
            assert!(names.iter().any(|n| n == phase), "missing phase {phase}");
        }
        let share_sum: f64 = ["init", "compute-low", "compute-medium", "compute-high", "finalize"]
            .iter()
            .map(|p| profile.fraction(p))
            .sum();
        assert!((share_sum - 1.0).abs() < 1e-9, "shares sum to {share_sum}");
        // The §6.1.3 ballpark: init is a real but minority share.
        let init = profile.fraction("init");
        assert!((0.01..0.7).contains(&init), "init share {init} outside the plausible band");
    }

    #[test]
    fn modeled_cost_lower_with_optimized_init_on_gap_input() {
        // Torus: no vertex except id-0-row finds a smaller first
        // neighbor cheaply? Actually in a torus many vertices have a
        // smaller neighbor; use a graph with big init gap: grid where
        // adjacency of low-id vertices is all larger (vertex 0 of each
        // component). A long path ordered backwards maximizes the gap.
        let n = 2000u32;
        let mut b = GraphBuilder::new_undirected(n as usize);
        // Vertex v adjacent to v+1: vertex ids ascending along the
        // path, so every vertex's list starts with the smaller one...
        // invert: connect v to n-1-v pattern to create fruitless scans.
        for v in 0..n / 2 {
            b.add_edge(v, n - 1 - v);
        }
        let g = b.build();
        let d1 = Device::test_small();
        let d2 = Device::test_small();
        run(&d1, &g, &CcConfig::baseline());
        run(&d2, &g, &CcConfig::optimized());
        assert!(d2.modeled_time() <= d1.modeled_time());
    }
}
