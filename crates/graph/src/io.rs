//! Graph (de)serialization.
//!
//! The binary layout mirrors the spirit of the ECL graph format used by
//! the paper's inputs \[11\]: a small header (vertex count, arc count,
//! flags) followed by the offset array, the neighbor array, and — if
//! present — the arc-aligned weight array. All integers are
//! little-endian. Offsets are stored as `u64` so files are portable
//! across platforms.
//!
//! A text edge-list reader/writer is also provided for interop with the
//! common `u v [w]` one-edge-per-line format.

use std::io::{self, BufRead, Read, Write};

use crate::builder::GraphBuilder;
use crate::csr::{Csr, VertexId};
use crate::weighted::WeightedCsr;

const MAGIC: &[u8; 8] = b"ECLGRRS1";

const FLAG_DIRECTED: u32 = 1;
const FLAG_WEIGHTED: u32 = 2;

fn write_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

fn write_body<W: Write>(w: &mut W, g: &Csr, weights: Option<&[u32]>) -> io::Result<()> {
    w.write_all(MAGIC)?;
    let mut flags = 0u32;
    if g.is_directed() {
        flags |= FLAG_DIRECTED;
    }
    if weights.is_some() {
        flags |= FLAG_WEIGHTED;
    }
    write_u32(w, flags)?;
    write_u64(w, g.num_vertices() as u64)?;
    write_u64(w, g.num_arcs() as u64)?;
    for &o in g.offsets() {
        write_u64(w, o as u64)?;
    }
    for &v in g.neighbor_array() {
        write_u32(w, v)?;
    }
    if let Some(ws) = weights {
        for &x in ws {
            write_u32(w, x)?;
        }
    }
    Ok(())
}

struct Header {
    directed: bool,
    weighted: bool,
    n: usize,
    m: usize,
}

fn read_header<R: Read>(r: &mut R) -> io::Result<Header> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let flags = read_u32(r)?;
    let n = read_u64(r)? as usize;
    let m = read_u64(r)? as usize;
    Ok(Header { directed: flags & FLAG_DIRECTED != 0, weighted: flags & FLAG_WEIGHTED != 0, n, m })
}

fn read_body<R: Read>(r: &mut R, h: &Header) -> io::Result<(Csr, Option<Vec<u32>>)> {
    // Header counts are untrusted (a corrupted stream can claim
    // multi-exabyte sizes): cap the pre-allocation and let the vectors
    // grow as data actually arrives — a short stream errors out in
    // read_exact long before memory becomes a concern.
    const PREALLOC_CAP: usize = 1 << 20;
    let mut offsets = Vec::with_capacity(h.n.saturating_add(1).min(PREALLOC_CAP));
    for _ in 0..=h.n {
        offsets.push(read_u64(r)? as usize);
    }
    let mut neighbors = Vec::with_capacity(h.m.min(PREALLOC_CAP));
    for _ in 0..h.m {
        neighbors.push(read_u32(r)?);
    }
    let weights = if h.weighted {
        let mut ws = Vec::with_capacity(h.m.min(PREALLOC_CAP));
        for _ in 0..h.m {
            ws.push(read_u32(r)?);
        }
        Some(ws)
    } else {
        None
    };
    // from_parts re-validates the structure, so corrupt files cannot
    // produce an invalid graph; turn its panic into an io error instead.
    let csr = std::panic::catch_unwind(|| Csr::from_parts(offsets, neighbors, h.directed))
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "structurally invalid graph"))?;
    Ok((csr, weights))
}

/// Serializes an unweighted graph.
pub fn write_csr<W: Write>(w: &mut W, g: &Csr) -> io::Result<()> {
    write_body(w, g, None)
}

/// Deserializes an unweighted graph. Fails with `InvalidData` if the
/// stream holds a weighted graph (use [`read_weighted`]).
pub fn read_csr<R: Read>(r: &mut R) -> io::Result<Csr> {
    let h = read_header(r)?;
    if h.weighted {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "stream holds a weighted graph"));
    }
    Ok(read_body(r, &h)?.0)
}

/// Serializes a weighted graph.
pub fn write_weighted<W: Write>(w: &mut W, g: &WeightedCsr) -> io::Result<()> {
    write_body(w, g.csr(), Some(g.weights()))
}

/// Deserializes a weighted graph.
pub fn read_weighted<R: Read>(r: &mut R) -> io::Result<WeightedCsr> {
    let h = read_header(r)?;
    if !h.weighted {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "stream holds an unweighted graph"));
    }
    let (csr, ws) = read_body(r, &h)?;
    Ok(WeightedCsr::from_parts(csr, ws.expect("weighted flag set")))
}

/// Parses a text edge list (`u v` or `u v w` per line; `#`/`%` comment
/// lines ignored) into a graph with `n = max id + 1` vertices.
pub fn read_edge_list<R: BufRead>(r: R, directed: bool) -> io::Result<Csr> {
    let edges = parse_edges(r)?;
    let n = edges.iter().map(|&(u, v, _)| u.max(v) as usize + 1).max().unwrap_or(0);
    let mut b =
        if directed { GraphBuilder::new_directed(n) } else { GraphBuilder::new_undirected(n) };
    for (u, v, _) in edges {
        b.add_edge(u, v);
    }
    Ok(b.build())
}

/// Like [`read_edge_list`] but keeps the third column as the weight
/// (missing weights default to 1).
pub fn read_weighted_edge_list<R: BufRead>(r: R, directed: bool) -> io::Result<WeightedCsr> {
    let edges = parse_edges(r)?;
    let n = edges.iter().map(|&(u, v, _)| u.max(v) as usize + 1).max().unwrap_or(0);
    let mut b =
        if directed { GraphBuilder::new_directed(n) } else { GraphBuilder::new_undirected(n) };
    for (u, v, w) in edges {
        b.add_weighted_edge(u, v, w);
    }
    Ok(b.build_weighted())
}

fn parse_edges<R: BufRead>(r: R) -> io::Result<Vec<(VertexId, VertexId, u32)>> {
    let mut edges = Vec::new();
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let bad = || {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: expected 'u v [w]'", lineno + 1),
            )
        };
        let u: VertexId = it.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let v: VertexId = it.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let w: u32 = match it.next() {
            Some(s) => s.parse().map_err(|_| bad())?,
            None => 1,
        };
        edges.push((u, v, w));
    }
    Ok(edges)
}

/// Writes a graph as a text edge list. Undirected graphs emit each edge
/// once (canonical `u <= v` arc).
pub fn write_edge_list<W: Write>(w: &mut W, g: &Csr) -> io::Result<()> {
    for (u, v) in g.arcs() {
        if g.is_directed() || u <= v {
            writeln!(w, "{u} {v}")?;
        }
    }
    Ok(())
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        let mut b = GraphBuilder::new_undirected(5);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 3);
        b.add_edge(3, 4);
        b.add_edge(4, 0);
        b.build()
    }

    #[test]
    fn binary_roundtrip_unweighted() {
        let g = sample();
        let mut buf = Vec::new();
        write_csr(&mut buf, &g).unwrap();
        let g2 = read_csr(&mut buf.as_slice()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn binary_roundtrip_weighted() {
        let mut b = GraphBuilder::new_undirected(3);
        b.add_weighted_edge(0, 1, 11);
        b.add_weighted_edge(1, 2, 22);
        let g = b.build_weighted();
        let mut buf = Vec::new();
        write_weighted(&mut buf, &g).unwrap();
        let g2 = read_weighted(&mut buf.as_slice()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn rejects_bad_magic() {
        let buf = b"NOTAGRPH________".to_vec();
        assert!(read_csr(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_truncated_stream() {
        let g = sample();
        let mut buf = Vec::new();
        write_csr(&mut buf, &g).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_csr(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn weighted_unweighted_mismatch() {
        let g = sample();
        let mut buf = Vec::new();
        write_csr(&mut buf, &g).unwrap();
        assert!(read_weighted(&mut buf.as_slice()).is_err());

        let mut b = GraphBuilder::new_undirected(2);
        b.add_weighted_edge(0, 1, 1);
        let wg = b.build_weighted();
        let mut buf = Vec::new();
        write_weighted(&mut buf, &wg).unwrap();
        assert!(read_csr(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn edge_list_roundtrip() {
        let g = sample();
        let mut buf = Vec::new();
        write_edge_list(&mut buf, &g).unwrap();
        let g2 = read_edge_list(io::BufReader::new(buf.as_slice()), false).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn edge_list_comments_and_weights() {
        let text = "# comment\n% other comment\n0 1 7\n\n1 2 9\n";
        let g = read_weighted_edge_list(io::BufReader::new(text.as_bytes()), false).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.weight_between(0, 1), Some(7));
        assert_eq!(g.weight_between(2, 1), Some(9));
    }

    #[test]
    fn edge_list_malformed_line() {
        let text = "0 x\n";
        assert!(read_edge_list(io::BufReader::new(text.as_bytes()), false).is_err());
    }

    #[test]
    fn edge_list_default_weight_is_one() {
        let text = "0 1\n";
        let g = read_weighted_edge_list(io::BufReader::new(text.as_bytes()), false).unwrap();
        assert_eq!(g.weight_between(0, 1), Some(1));
    }

    #[test]
    fn empty_edge_list() {
        let g = read_edge_list(io::BufReader::new("".as_bytes()), true).unwrap();
        assert_eq!(g.num_vertices(), 0);
    }

    #[test]
    fn huge_claimed_sizes_error_instead_of_allocating() {
        // A header claiming astronomically many vertices/arcs must hit
        // end-of-stream, not attempt an exabyte allocation.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&0u32.to_le_bytes()); // flags
        buf.extend_from_slice(&u64::MAX.to_le_bytes()); // n
        buf.extend_from_slice(&u64::MAX.to_le_bytes()); // m
        assert!(read_csr(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn corrupt_structure_is_io_error_not_panic() {
        // Valid header but neighbor id out of range.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&FLAG_DIRECTED.to_le_bytes());
        buf.extend_from_slice(&1u64.to_le_bytes()); // n = 1
        buf.extend_from_slice(&1u64.to_le_bytes()); // m = 1
        buf.extend_from_slice(&0u64.to_le_bytes()); // offsets[0]
        buf.extend_from_slice(&1u64.to_le_bytes()); // offsets[1]
        buf.extend_from_slice(&9u32.to_le_bytes()); // neighbor 9 (out of range)
        assert!(read_csr(&mut buf.as_slice()).is_err());
    }
}
