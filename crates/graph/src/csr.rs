//! Immutable compressed-sparse-row adjacency structure.

/// Vertex identifier. The ECL suite uses C `int`; `u32` matches its
/// value range while keeping adjacency arrays compact.
pub type VertexId = u32;

/// A graph in compressed-sparse-row format.
///
/// `offsets` has `n + 1` entries; the neighbors of vertex `v` are
/// `neighbors[offsets[v] .. offsets[v + 1]]`, sorted ascending.
///
/// For undirected graphs every edge `{u, v}` is stored as the two arcs
/// `u -> v` and `v -> u`, which is how the ECL inputs count "Edges" in
/// Table 1 (e.g. `2d-2e20.sym` lists 4,190,208 arcs for a degree-4
/// torus of 1,048,576 vertices).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Csr {
    offsets: Vec<usize>,
    neighbors: Vec<VertexId>,
    directed: bool,
}

impl Csr {
    /// Builds a CSR graph from raw parts.
    ///
    /// # Panics
    /// Panics (in debug and release) if the parts are structurally
    /// invalid: wrong offset length, non-monotonic offsets, trailing
    /// offset not matching the arc count, or out-of-range neighbor ids.
    /// Sortedness of adjacency lists is only checked in debug builds.
    pub fn from_parts(offsets: Vec<usize>, neighbors: Vec<VertexId>, directed: bool) -> Self {
        assert!(!offsets.is_empty(), "offsets must have n + 1 entries");
        let n = offsets.len() - 1;
        assert_eq!(offsets[0], 0, "offsets[0] must be 0");
        assert_eq!(
            *offsets.last().expect("offsets is non-empty"),
            neighbors.len(),
            "offsets[n] must equal the arc count"
        );
        assert!(offsets.windows(2).all(|w| w[0] <= w[1]), "offsets must be non-decreasing");
        assert!(neighbors.iter().all(|&v| (v as usize) < n), "neighbor ids must be < n");
        debug_assert!(
            (0..n).all(|v| neighbors[offsets[v]..offsets[v + 1]].windows(2).all(|w| w[0] <= w[1])),
            "adjacency lists must be sorted ascending"
        );
        Self { offsets, neighbors, directed }
    }

    /// An empty graph with `n` isolated vertices.
    pub fn empty(n: usize, directed: bool) -> Self {
        Self { offsets: vec![0; n + 1], neighbors: Vec::new(), directed }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of stored arcs (directed edges). For undirected graphs
    /// this is twice the number of edges, matching Table 1's "Edges"
    /// column convention.
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.neighbors.len()
    }

    /// Number of undirected edges for symmetric graphs (arcs / 2,
    /// counting self-loops once), or the arc count for directed graphs.
    pub fn num_edges(&self) -> usize {
        if self.directed {
            self.num_arcs()
        } else {
            let self_loops = (0..self.num_vertices() as VertexId)
                .map(|v| self.neighbors(v).iter().filter(|&&u| u == v).count())
                .sum::<usize>();
            (self.num_arcs() - self_loops) / 2 + self_loops
        }
    }

    /// Whether the graph is directed.
    #[inline]
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// The sorted adjacency list of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.neighbors[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Out-degree of `v` (degree for undirected graphs).
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Start of `v`'s adjacency range in the flat neighbor array.
    /// Exposed because the ECL kernels index arcs globally (e.g. the
    /// SCC propagation kernel is edge-centric).
    #[inline]
    pub fn arc_range(&self, v: VertexId) -> std::ops::Range<usize> {
        self.offsets[v as usize]..self.offsets[v as usize + 1]
    }

    /// The raw offset array (`n + 1` entries).
    #[inline]
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The flat neighbor array.
    #[inline]
    pub fn neighbor_array(&self) -> &[VertexId] {
        &self.neighbors
    }

    /// Iterates over all arcs as `(source, destination)` pairs.
    pub fn arcs(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.num_vertices() as VertexId)
            .flat_map(move |u| self.neighbors(u).iter().map(move |&v| (u, v)))
    }

    /// Whether `u` has an arc to `v` (binary search over the sorted list).
    pub fn has_arc(&self, u: VertexId, v: VertexId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// The transposed graph (all arcs reversed). Adjacency lists of the
    /// result are sorted. For symmetric graphs this is an (expensive)
    /// identity.
    pub fn transpose(&self) -> Csr {
        let n = self.num_vertices();
        let mut in_deg = vec![0usize; n];
        for &v in &self.neighbors {
            in_deg[v as usize] += 1;
        }
        let mut offsets = vec![0usize; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + in_deg[v];
        }
        let mut cursor = offsets.clone();
        let mut neighbors = vec![0 as VertexId; self.neighbors.len()];
        // Iterating sources in ascending order keeps each transposed
        // adjacency list sorted without a per-list sort pass.
        for u in 0..n as VertexId {
            for &v in self.neighbors(u) {
                neighbors[cursor[v as usize]] = u;
                cursor[v as usize] += 1;
            }
        }
        Csr { offsets, neighbors, directed: self.directed }
    }

    /// Checks that for every arc `u -> v` the reverse arc `v -> u`
    /// exists (the structural meaning of "undirected" here).
    pub fn is_symmetric(&self) -> bool {
        self.arcs().all(|(u, v)| self.has_arc(v, u))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn triangle() -> Csr {
        let mut b = GraphBuilder::new_undirected(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(0, 2);
        b.build()
    }

    #[test]
    fn triangle_structure() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_arcs(), 6);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(2), &[0, 1]);
        assert!(g.is_symmetric());
    }

    #[test]
    fn empty_graph() {
        let g = Csr::empty(5, false);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_arcs(), 0);
        assert_eq!(g.num_edges(), 0);
        for v in 0..5 {
            assert_eq!(g.degree(v), 0);
            assert!(g.neighbors(v).is_empty());
        }
    }

    #[test]
    fn zero_vertex_graph() {
        let g = Csr::empty(0, true);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.arcs().count(), 0);
    }

    #[test]
    fn has_arc_queries() {
        let g = triangle();
        assert!(g.has_arc(0, 1));
        assert!(g.has_arc(2, 0));
        assert!(!g.has_arc(0, 0));
    }

    #[test]
    fn directed_path_transpose() {
        let mut b = GraphBuilder::new_directed(4);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 3);
        let g = b.build();
        assert_eq!(g.num_edges(), 3);
        assert!(!g.is_symmetric());
        let t = g.transpose();
        assert_eq!(t.neighbors(1), &[0]);
        assert_eq!(t.neighbors(3), &[2]);
        assert!(t.neighbors(0).is_empty());
        // Transposing twice is the identity.
        assert_eq!(t.transpose(), g);
    }

    #[test]
    fn transpose_preserves_sortedness() {
        let mut b = GraphBuilder::new_directed(5);
        for (u, v) in [(4, 0), (3, 0), (2, 0), (1, 0), (4, 1), (0, 1)] {
            b.add_edge(u, v);
        }
        let t = b.build().transpose();
        assert_eq!(t.neighbors(0), &[1, 2, 3, 4]);
        assert_eq!(t.neighbors(1), &[0, 4]);
    }

    #[test]
    fn arc_range_indexes_flat_array() {
        let g = triangle();
        let r = g.arc_range(1);
        assert_eq!(&g.neighbor_array()[r], g.neighbors(1));
    }

    #[test]
    #[should_panic(expected = "offsets must be non-decreasing")]
    fn rejects_non_monotonic_offsets() {
        Csr::from_parts(vec![0, 2, 1, 3], vec![0, 1, 2], true);
    }

    #[test]
    #[should_panic(expected = "neighbor ids must be < n")]
    fn rejects_out_of_range_neighbor() {
        Csr::from_parts(vec![0, 1], vec![7], true);
    }

    #[test]
    #[should_panic(expected = "offsets[n] must equal the arc count")]
    fn rejects_bad_trailing_offset() {
        Csr::from_parts(vec![0, 2], vec![0], true);
    }

    #[test]
    fn self_loop_edge_count() {
        let mut b = GraphBuilder::new_undirected(2);
        b.add_edge(0, 0);
        b.add_edge(0, 1);
        let g = b.build();
        // Self-loop stored once, edge {0,1} stored as 2 arcs.
        assert_eq!(g.num_arcs(), 3);
        assert_eq!(g.num_edges(), 2);
    }
}
