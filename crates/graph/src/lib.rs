//! CSR graph substrate for the ECL-suite reproduction.
//!
//! All five ECL algorithms consume graphs in compressed-sparse-row (CSR)
//! format, matching the input representation of the paper (§5.2, \[19\]).
//! This crate provides:
//!
//! - [`Csr`]: an immutable CSR adjacency structure for directed or
//!   undirected (symmetric) graphs,
//! - [`WeightedCsr`]: a CSR graph with per-arc `u32` weights (ECL-MST),
//! - [`GraphBuilder`]: an edge-list accumulator that deduplicates, sorts
//!   adjacency lists, and optionally symmetrizes,
//! - [`io`]: a small binary serialization format ("ECLgraph"-like) plus a
//!   text edge-list reader,
//! - [`stats`]: degree statistics matching the columns of Table 1,
//! - [`validate`]: structural invariant checks used by tests and
//!   debug assertions throughout the workspace.
//!
//! Vertex ids are `u32` (the ECL suite uses `int`); arc counts use
//! `usize`. Adjacency lists are always sorted ascending, which ECL-CC's
//! initialization heuristic relies on (§6.1.3: "the adjacency lists are
//! sorted, placing the smallest neighbor first").

pub mod builder;
pub mod csr;
pub mod family;
pub mod io;
pub mod stats;
pub mod validate;
pub mod weighted;

pub use builder::GraphBuilder;
pub use csr::{Csr, VertexId};
pub use family::{DiameterClass, Fingerprint, SkewClass};
pub use stats::DegreeStats;
pub use weighted::{EdgeId, WeightedCsr};
