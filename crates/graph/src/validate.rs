//! Structural invariant checks for CSR graphs.
//!
//! [`Csr::from_parts`](crate::Csr::from_parts) already enforces the
//! cheap invariants at construction. The functions here perform the
//! exhaustive checks used by tests, property tests, and the generators'
//! debug assertions.

use crate::csr::{Csr, VertexId};
use crate::weighted::WeightedCsr;

/// A violated graph invariant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// Adjacency list of the vertex is not sorted ascending.
    UnsortedAdjacency(VertexId),
    /// Adjacency list of the vertex contains a duplicate neighbor.
    DuplicateNeighbor(VertexId, VertexId),
    /// The arc `u -> v` exists but `v -> u` does not, in a graph
    /// claimed undirected.
    MissingReverseArc(VertexId, VertexId),
    /// A self-loop, when checking loop-free graphs.
    SelfLoop(VertexId),
    /// Arc weights of the two directions of an undirected edge differ.
    AsymmetricWeight(VertexId, VertexId),
}

/// Checks sortedness and duplicate-freedom of every adjacency list.
pub fn check_adjacency_lists(g: &Csr) -> Result<(), Violation> {
    for v in 0..g.num_vertices() as VertexId {
        let adj = g.neighbors(v);
        for w in adj.windows(2) {
            if w[0] > w[1] {
                return Err(Violation::UnsortedAdjacency(v));
            }
            if w[0] == w[1] {
                return Err(Violation::DuplicateNeighbor(v, w[0]));
            }
        }
    }
    Ok(())
}

/// Checks that the graph is structurally symmetric (each arc has its
/// reverse). Only meaningful for graphs built as undirected.
pub fn check_symmetry(g: &Csr) -> Result<(), Violation> {
    for (u, v) in g.arcs() {
        if !g.has_arc(v, u) {
            return Err(Violation::MissingReverseArc(u, v));
        }
    }
    Ok(())
}

/// Checks that the graph has no self-loops.
pub fn check_no_self_loops(g: &Csr) -> Result<(), Violation> {
    for v in 0..g.num_vertices() as VertexId {
        if g.has_arc(v, v) {
            return Err(Violation::SelfLoop(v));
        }
    }
    Ok(())
}

/// Checks that both arcs of every undirected edge carry equal weight.
pub fn check_weight_symmetry(g: &WeightedCsr) -> Result<(), Violation> {
    for u in 0..g.num_vertices() as VertexId {
        for (&v, &w) in g.csr().neighbors(u).iter().zip(g.arc_weights(u)) {
            match g.weight_between(v, u) {
                Some(rw) if rw == w => {}
                _ => return Err(Violation::AsymmetricWeight(u, v)),
            }
        }
    }
    Ok(())
}

/// Runs all checks appropriate for an undirected, loop-free input graph
/// (the contract of the MIS/CC/GC/MST inputs).
pub fn check_undirected_input(g: &Csr) -> Result<(), Violation> {
    check_adjacency_lists(g)?;
    check_no_self_loops(g)?;
    check_symmetry(g)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    #[test]
    fn clean_graph_passes() {
        let mut b = GraphBuilder::new_undirected(4).drop_self_loops();
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 3);
        let g = b.build();
        assert_eq!(check_undirected_input(&g), Ok(()));
    }

    #[test]
    fn detects_missing_reverse_arc() {
        let g = Csr::from_parts(vec![0, 1, 1], vec![1], false);
        assert_eq!(check_symmetry(&g), Err(Violation::MissingReverseArc(0, 1)));
    }

    #[test]
    fn detects_self_loop() {
        let mut b = GraphBuilder::new_undirected(2);
        b.add_edge(1, 1);
        let g = b.build();
        assert_eq!(check_no_self_loops(&g), Err(Violation::SelfLoop(1)));
    }

    #[test]
    fn detects_duplicate_neighbor() {
        let g = Csr::from_parts(vec![0, 2], vec![0, 0], true);
        assert_eq!(check_adjacency_lists(&g), Err(Violation::DuplicateNeighbor(0, 0)));
    }

    #[test]
    fn detects_asymmetric_weight() {
        // Hand-build: arc 0->1 weight 3, arc 1->0 weight 4.
        let csr = Csr::from_parts(vec![0, 1, 2], vec![1, 0], false);
        let g = WeightedCsr::from_parts(csr, vec![3, 4]);
        assert_eq!(check_weight_symmetry(&g), Err(Violation::AsymmetricWeight(0, 1)));
    }

    #[test]
    fn weight_symmetry_passes_for_builder_output() {
        let mut b = GraphBuilder::new_undirected(3);
        b.add_weighted_edge(0, 1, 5);
        b.add_weighted_edge(1, 2, 6);
        let g = b.build_weighted();
        assert_eq!(check_weight_symmetry(&g), Ok(()));
    }
}
