//! Edge-list accumulator producing sorted, deduplicated CSR graphs.

use crate::csr::{Csr, VertexId};
use crate::weighted::WeightedCsr;

/// Accumulates edges and builds a [`Csr`] (or [`WeightedCsr`]).
///
/// - Undirected builders symmetrize: `add_edge(u, v)` stores both arcs.
/// - Duplicate arcs are removed; adjacency lists come out sorted.
/// - Self-loops are kept unless [`GraphBuilder::drop_self_loops`] is set
///   (the ECL inputs contain none, so generators usually drop them).
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: usize,
    directed: bool,
    drop_self_loops: bool,
    // (source, destination, weight); weight ignored for unweighted builds.
    edges: Vec<(VertexId, VertexId, u32)>,
}

impl GraphBuilder {
    /// A builder for an undirected graph on `n` vertices.
    pub fn new_undirected(n: usize) -> Self {
        Self { n, directed: false, drop_self_loops: false, edges: Vec::new() }
    }

    /// A builder for a directed graph on `n` vertices.
    pub fn new_directed(n: usize) -> Self {
        Self { n, directed: true, drop_self_loops: false, edges: Vec::new() }
    }

    /// Discard self-loops at build time.
    pub fn drop_self_loops(mut self) -> Self {
        self.drop_self_loops = true;
        self
    }

    /// Number of vertices this builder was created with.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of raw (pre-dedup) edge insertions so far.
    pub fn num_pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Reserve capacity for `additional` more edges.
    pub fn reserve(&mut self, additional: usize) {
        self.edges.reserve(additional);
    }

    /// Adds an unweighted edge (weight recorded as 0).
    ///
    /// # Panics
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) {
        self.add_weighted_edge(u, v, 0);
    }

    /// Adds a weighted edge. For undirected builders both arcs carry the
    /// same weight, as in the ECL-MST inputs.
    pub fn add_weighted_edge(&mut self, u: VertexId, v: VertexId, w: u32) {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge ({u}, {v}) out of range for {} vertices",
            self.n
        );
        self.edges.push((u, v, w));
    }

    fn finish(mut self) -> (Vec<usize>, Vec<VertexId>, Vec<u32>, bool) {
        if self.drop_self_loops {
            self.edges.retain(|&(u, v, _)| u != v);
        }
        let mut arcs = Vec::with_capacity(self.edges.len() * if self.directed { 1 } else { 2 });
        for &(u, v, w) in &self.edges {
            arcs.push((u, v, w));
            if !self.directed && u != v {
                arcs.push((v, u, w));
            }
        }
        // Sort by (source, destination); on duplicates keep the lightest
        // weight, which is what deduplicating a weighted multigraph for
        // MST purposes must do.
        arcs.sort_unstable();
        arcs.dedup_by(|next, prev| prev.0 == next.0 && prev.1 == next.1);

        let mut offsets = vec![0usize; self.n + 1];
        for &(u, _, _) in &arcs {
            offsets[u as usize + 1] += 1;
        }
        for i in 0..self.n {
            offsets[i + 1] += offsets[i];
        }
        let neighbors: Vec<VertexId> = arcs.iter().map(|&(_, v, _)| v).collect();
        let weights: Vec<u32> = arcs.iter().map(|&(_, _, w)| w).collect();
        (offsets, neighbors, weights, self.directed)
    }

    /// Builds the unweighted CSR graph.
    pub fn build(self) -> Csr {
        let (offsets, neighbors, _weights, directed) = self.finish();
        Csr::from_parts(offsets, neighbors, directed)
    }

    /// Builds the weighted CSR graph.
    pub fn build_weighted(self) -> WeightedCsr {
        let (offsets, neighbors, weights, directed) = self.finish();
        WeightedCsr::from_parts(Csr::from_parts(offsets, neighbors, directed), weights)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn dedups_and_sorts() {
        let mut b = GraphBuilder::new_undirected(4);
        b.add_edge(0, 3);
        b.add_edge(0, 1);
        b.add_edge(0, 1); // duplicate
        b.add_edge(1, 0); // duplicate after symmetrization
        b.add_edge(2, 0);
        let g = b.build();
        assert_eq!(g.neighbors(0), &[1, 2, 3]);
        assert_eq!(g.num_edges(), 3);
        assert!(g.is_symmetric());
    }

    #[test]
    fn directed_does_not_symmetrize() {
        let mut b = GraphBuilder::new_directed(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        let g = b.build();
        assert!(g.has_arc(0, 1));
        assert!(!g.has_arc(1, 0));
    }

    #[test]
    fn drop_self_loops() {
        let mut b = GraphBuilder::new_undirected(2).drop_self_loops();
        b.add_edge(0, 0);
        b.add_edge(0, 1);
        let g = b.build();
        assert_eq!(g.num_arcs(), 2);
        assert!(!g.has_arc(0, 0));
    }

    #[test]
    fn keeps_self_loops_by_default() {
        let mut b = GraphBuilder::new_undirected(2);
        b.add_edge(1, 1);
        let g = b.build();
        assert!(g.has_arc(1, 1));
        assert_eq!(g.degree(1), 1);
    }

    #[test]
    fn weighted_dedup_keeps_lightest() {
        let mut b = GraphBuilder::new_undirected(2);
        b.add_weighted_edge(0, 1, 9);
        b.add_weighted_edge(0, 1, 3);
        b.add_weighted_edge(1, 0, 5);
        let g = b.build_weighted();
        assert_eq!(g.csr().num_edges(), 1);
        assert_eq!(g.arc_weights(0), &[3]);
        assert_eq!(g.arc_weights(1), &[3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_edge() {
        let mut b = GraphBuilder::new_undirected(2);
        b.add_edge(0, 5);
    }

    #[test]
    fn empty_build() {
        let g = GraphBuilder::new_undirected(3).build();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_arcs(), 0);
    }

    #[test]
    fn undirected_weight_symmetry() {
        let mut b = GraphBuilder::new_undirected(3);
        b.add_weighted_edge(0, 2, 7);
        b.add_weighted_edge(1, 2, 4);
        let g = b.build_weighted();
        assert_eq!(g.weight_between(0, 2), Some(7));
        assert_eq!(g.weight_between(2, 0), Some(7));
        assert_eq!(g.weight_between(2, 1), Some(4));
        assert_eq!(g.weight_between(0, 1), None);
    }
}
