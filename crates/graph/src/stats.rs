//! Degree statistics matching the columns of the paper's Table 1.

use crate::csr::Csr;

/// Degree statistics of a graph: the `d-avg` / `d-max` columns of
/// Table 1 plus extras used by the analysis (the paper correlates MIS
/// iteration counts with `d-max / d-avg`, §6.1.1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegreeStats {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of stored arcs (Table 1's "Edges" column counts arcs).
    pub num_arcs: usize,
    /// Average (out-)degree.
    pub d_avg: f64,
    /// Maximum (out-)degree.
    pub d_max: usize,
    /// Minimum (out-)degree.
    pub d_min: usize,
    /// `d_max / d_avg`; high values indicate power-law-like skew.
    pub skew: f64,
    /// Coefficient of variation of the degree distribution
    /// (stddev / mean; 0 for regular or empty graphs). Unlike `skew`
    /// it reacts to the whole distribution rather than the single
    /// largest vertex, which makes it the more stable family
    /// discriminator for tuning-manifest buckets.
    pub cv: f64,
}

impl DegreeStats {
    /// Computes degree statistics for `g`.
    pub fn of(g: &Csr) -> Self {
        let n = g.num_vertices();
        let m = g.num_arcs();
        let mut d_max = 0usize;
        let mut d_min = usize::MAX;
        let mut sum_sq = 0.0f64;
        for v in 0..n as u32 {
            let d = g.degree(v);
            d_max = d_max.max(d);
            d_min = d_min.min(d);
            sum_sq += (d * d) as f64;
        }
        if n == 0 {
            d_min = 0;
        }
        let d_avg = if n == 0 { 0.0 } else { m as f64 / n as f64 };
        let skew = if d_avg > 0.0 { d_max as f64 / d_avg } else { 0.0 };
        let cv = if d_avg > 0.0 {
            let variance = (sum_sq / n as f64 - d_avg * d_avg).max(0.0);
            variance.sqrt() / d_avg
        } else {
            0.0
        };
        Self { num_vertices: n, num_arcs: m, d_avg, d_max, d_min, skew, cv }
    }
}

/// A fixed-bucket degree histogram (powers of two), useful for checking
/// that generated graphs have the intended degree distribution shape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DegreeHistogram {
    /// `buckets[k]` counts vertices with degree in `[2^k, 2^(k+1))`;
    /// `buckets[0]` additionally contains degree-0 vertices.
    pub buckets: Vec<usize>,
}

impl DegreeHistogram {
    /// Builds the histogram for `g`.
    pub fn of(g: &Csr) -> Self {
        let mut buckets = vec![0usize; 1];
        for v in 0..g.num_vertices() as u32 {
            let d = g.degree(v);
            let k = if d <= 1 { 0 } else { (usize::BITS - d.leading_zeros()) as usize - 1 };
            if k >= buckets.len() {
                buckets.resize(k + 1, 0);
            }
            buckets[k] += 1;
        }
        Self { buckets }
    }

    /// Total vertices counted.
    pub fn total(&self) -> usize {
        self.buckets.iter().sum()
    }

    /// Fraction of vertices with degree at least `2^k`.
    pub fn tail_fraction(&self, k: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let tail: usize = self.buckets.iter().skip(k).sum();
        tail as f64 / total as f64
    }
}

/// Sampled global clustering coefficient: the fraction of closed
/// wedges among up to `max_wedges_per_vertex²` sampled wedge pairs per
/// vertex. Distinguishes co-purchase/co-authorship inputs (high) from
/// preferential-attachment and random graphs (low) — the property that
/// drives ECL-MST's worklist collapse.
pub fn clustering_coefficient(g: &Csr, max_wedges_per_vertex: usize) -> f64 {
    let mut wedges = 0u64;
    let mut closed = 0u64;
    for v in 0..g.num_vertices() as u32 {
        let adj = g.neighbors(v);
        for (i, &a) in adj.iter().enumerate().take(max_wedges_per_vertex) {
            for &b in adj.iter().skip(i + 1).take(max_wedges_per_vertex) {
                wedges += 1;
                if g.has_arc(a, b) {
                    closed += 1;
                }
            }
        }
    }
    if wedges == 0 {
        0.0
    } else {
        closed as f64 / wedges as f64
    }
}

/// Pseudo-diameter via double-sweep BFS: the eccentricity found by a
/// BFS from `start`, then from the farthest vertex discovered — a
/// standard lower bound on the diameter. Returns the hop count within
/// `start`'s connected component. The §6.1.1 analysis contrasts
/// high-diameter roadmaps with low-diameter power-law graphs; this is
/// the measurement backing that classification for generated inputs.
pub fn pseudo_diameter(g: &Csr, start: VertexId) -> usize {
    let (far, _) = bfs_farthest(g, start);
    let (_, dist) = bfs_farthest(g, far);
    dist
}

fn bfs_farthest(g: &Csr, start: VertexId) -> (VertexId, usize) {
    let n = g.num_vertices();
    let mut dist = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    dist[start as usize] = 0;
    queue.push_back(start);
    let mut far = (start, 0usize);
    while let Some(v) = queue.pop_front() {
        let d = dist[v as usize];
        if d > far.1 {
            far = (v, d);
        }
        for &u in g.neighbors(v) {
            if dist[u as usize] == usize::MAX {
                dist[u as usize] = d + 1;
                queue.push_back(u);
            }
        }
    }
    far
}

use crate::csr::VertexId;

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    #[test]
    fn star_stats() {
        // Star: center 0 connected to 1..=4.
        let mut b = GraphBuilder::new_undirected(5);
        for v in 1..5 {
            b.add_edge(0, v);
        }
        let g = b.build();
        let s = DegreeStats::of(&g);
        assert_eq!(s.num_vertices, 5);
        assert_eq!(s.num_arcs, 8);
        assert_eq!(s.d_max, 4);
        assert_eq!(s.d_min, 1);
        assert!((s.d_avg - 1.6).abs() < 1e-12);
        assert!((s.skew - 2.5).abs() < 1e-12);
        // Degrees 4,1,1,1,1: E[d²]=4, var=4-1.6²=1.44, cv=1.2/1.6.
        assert!((s.cv - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_stats() {
        let s = DegreeStats::of(&crate::csr::Csr::empty(0, false));
        assert_eq!(s.num_vertices, 0);
        assert_eq!(s.d_max, 0);
        assert_eq!(s.d_min, 0);
        assert_eq!(s.d_avg, 0.0);
        assert_eq!(s.cv, 0.0);
    }

    #[test]
    fn isolated_vertices_min_degree_zero() {
        let s = DegreeStats::of(&crate::csr::Csr::empty(3, false));
        assert_eq!(s.d_min, 0);
        assert_eq!(s.skew, 0.0);
    }

    #[test]
    fn histogram_buckets() {
        // Degrees: 4, 1, 1, 1, 1 for the star above.
        let mut b = GraphBuilder::new_undirected(5);
        for v in 1..5 {
            b.add_edge(0, v);
        }
        let h = DegreeHistogram::of(&b.build());
        assert_eq!(h.total(), 5);
        assert_eq!(h.buckets[0], 4); // the 4 leaves
        assert_eq!(*h.buckets.last().unwrap(), 1); // the center (degree 4 -> bucket 2)
        assert_eq!(h.buckets.len(), 3);
        assert!((h.tail_fraction(2) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn clustering_of_triangle_vs_path() {
        let mut b = GraphBuilder::new_undirected(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(0, 2);
        let triangle = b.build();
        assert!((clustering_coefficient(&triangle, 8) - 1.0).abs() < 1e-12);

        let mut b = GraphBuilder::new_undirected(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        let path = b.build();
        assert_eq!(clustering_coefficient(&path, 8), 0.0);
    }

    #[test]
    fn clustering_empty_graph() {
        assert_eq!(clustering_coefficient(&Csr::empty(4, false), 8), 0.0);
    }

    #[test]
    fn pseudo_diameter_of_path_and_cycle() {
        let n = 50;
        let mut b = GraphBuilder::new_undirected(n);
        for v in 0..(n as u32 - 1) {
            b.add_edge(v, v + 1);
        }
        let path = b.build();
        // Double sweep on a path finds the true diameter from any start.
        assert_eq!(pseudo_diameter(&path, 25), n - 1);

        let mut b = GraphBuilder::new_undirected(n);
        for v in 0..n as u32 {
            b.add_edge(v, (v + 1) % n as u32);
        }
        let cycle = b.build();
        assert_eq!(pseudo_diameter(&cycle, 0), n / 2);
    }

    #[test]
    fn pseudo_diameter_isolated_start() {
        let g = Csr::empty(3, false);
        assert_eq!(pseudo_diameter(&g, 1), 0);
    }

    #[test]
    fn regular_graph_skew_is_one() {
        // 4-cycle: every vertex degree 2.
        let mut b = GraphBuilder::new_undirected(4);
        for v in 0..4 {
            b.add_edge(v, (v + 1) % 4);
        }
        let s = DegreeStats::of(&b.build());
        assert!((s.skew - 1.0).abs() < 1e-12);
        assert_eq!(s.d_min, s.d_max);
        assert_eq!(s.cv, 0.0, "regular graph has zero degree variance");
    }
}
