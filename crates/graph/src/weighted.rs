//! Weighted CSR graphs for ECL-MST.

use crate::csr::{Csr, VertexId};

/// Identifier of an undirected edge: the index of the *canonical* arc
/// (the one with `source < destination`, or `source == destination` for
/// self-loops) in the flat neighbor array.
pub type EdgeId = usize;

/// A CSR graph whose arcs carry `u32` weights.
///
/// Weights are aligned with the flat neighbor array: the weight of the
/// arc `neighbor_array()[i]` is `weights()[i]`. For undirected graphs
/// the two arcs of an edge carry the same weight.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WeightedCsr {
    csr: Csr,
    weights: Vec<u32>,
}

impl WeightedCsr {
    /// Pairs a topology with an arc-aligned weight array.
    ///
    /// # Panics
    /// Panics if the weight array length differs from the arc count.
    pub fn from_parts(csr: Csr, weights: Vec<u32>) -> Self {
        assert_eq!(csr.num_arcs(), weights.len(), "one weight per arc required");
        Self { csr, weights }
    }

    /// The underlying topology.
    #[inline]
    pub fn csr(&self) -> &Csr {
        &self.csr
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.csr.num_vertices()
    }

    /// The flat weight array, arc-aligned with
    /// [`Csr::neighbor_array`].
    #[inline]
    pub fn weights(&self) -> &[u32] {
        &self.weights
    }

    /// Weights of the arcs leaving `v`, aligned with
    /// [`Csr::neighbors`].
    #[inline]
    pub fn arc_weights(&self, v: VertexId) -> &[u32] {
        &self.weights[self.csr.arc_range(v)]
    }

    /// The weight of the arc `u -> v`, if present.
    pub fn weight_between(&self, u: VertexId, v: VertexId) -> Option<u32> {
        let idx = self.csr.neighbors(u).binary_search(&v).ok()?;
        Some(self.arc_weights(u)[idx])
    }

    /// Enumerates each undirected edge exactly once as
    /// `(edge_id, u, v, w)` with `u <= v`. `edge_id` is the flat index
    /// of the canonical arc, so ids are unique and stable. This is the
    /// worklist ECL-MST is initialized with ("the worklist is populated
    /// with all unique edges", §2.4).
    pub fn unique_edges(&self) -> Vec<(EdgeId, VertexId, VertexId, u32)> {
        let mut out = Vec::with_capacity(self.csr.num_arcs() / 2 + 1);
        for u in 0..self.csr.num_vertices() as VertexId {
            let range = self.csr.arc_range(u);
            for (i, (&v, &w)) in self.csr.neighbors(u).iter().zip(self.arc_weights(u)).enumerate() {
                if u <= v {
                    out.push((range.start + i, u, v, w));
                }
            }
        }
        out
    }

    /// Total weight over unique edges; `u64` to avoid overflow on large
    /// graphs.
    pub fn total_weight(&self) -> u64 {
        self.unique_edges().iter().map(|&(_, _, _, w)| w as u64).sum()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn weighted_square() -> WeightedCsr {
        let mut b = GraphBuilder::new_undirected(4);
        b.add_weighted_edge(0, 1, 10);
        b.add_weighted_edge(1, 2, 20);
        b.add_weighted_edge(2, 3, 30);
        b.add_weighted_edge(3, 0, 40);
        b.build_weighted()
    }

    #[test]
    fn unique_edges_once_each() {
        let g = weighted_square();
        let edges = g.unique_edges();
        assert_eq!(edges.len(), 4);
        let mut ws: Vec<u32> = edges.iter().map(|&(_, _, _, w)| w).collect();
        ws.sort_unstable();
        assert_eq!(ws, vec![10, 20, 30, 40]);
        // Every edge has u <= v and distinct ids.
        let mut ids: Vec<usize> = edges.iter().map(|&(id, _, _, _)| id).collect();
        ids.dedup();
        assert_eq!(ids.len(), 4);
        assert!(edges.iter().all(|&(_, u, v, _)| u <= v));
    }

    #[test]
    fn total_weight() {
        assert_eq!(weighted_square().total_weight(), 100);
    }

    #[test]
    fn arc_weight_alignment() {
        let g = weighted_square();
        for u in 0..4u32 {
            assert_eq!(g.arc_weights(u).len(), g.csr().degree(u));
        }
        assert_eq!(g.weight_between(1, 2), Some(20));
        assert_eq!(g.weight_between(2, 1), Some(20));
    }

    #[test]
    fn self_loop_edge_id() {
        let mut b = GraphBuilder::new_undirected(2);
        b.add_weighted_edge(0, 0, 5);
        b.add_weighted_edge(0, 1, 6);
        let g = b.build_weighted();
        let edges = g.unique_edges();
        assert_eq!(edges.len(), 2);
        assert!(edges.iter().any(|&(_, u, v, w)| u == 0 && v == 0 && w == 5));
    }

    #[test]
    #[should_panic(expected = "one weight per arc")]
    fn rejects_misaligned_weights() {
        let g = GraphBuilder::new_undirected(2).build();
        WeightedCsr::from_parts(g, vec![1, 2, 3]);
    }
}
