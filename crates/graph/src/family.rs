//! Graph-family fingerprinting for schedule-manifest buckets.
//!
//! The paper's §6 findings are all conditional on graph family: the
//! ECL-CC first-neighbor optimization pays off on low-diameter inputs,
//! the best ECL-SCC block size differs between meshes, and ECL-MST's
//! fixed launch configuration only wins where worklists stay large.
//! `ecl-tune` therefore keys its manifest not by concrete input name
//! but by a coarse *family fingerprint* — degree-skew class, diameter
//! class, directedness — so a schedule tuned on one representative
//! generalizes to structurally similar graphs the catalog has never
//! profiled.

use crate::csr::Csr;
use crate::stats::{pseudo_diameter, DegreeStats};

/// Degree-skew classes, split on the coefficient of variation of the
/// degree distribution. Roadmaps and meshes are near-regular
/// (cv < 0.5), synthetic/co-occurrence graphs spread wider, and
/// preferential-attachment inputs have heavy tails (cv ≥ 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SkewClass {
    /// Near-regular degree distribution (meshes, roadmaps).
    Uniform,
    /// Moderate spread (random and small-world graphs).
    Spread,
    /// Heavy-tailed (power-law / preferential attachment).
    PowerLaw,
}

impl SkewClass {
    /// Classifies a degree coefficient of variation.
    pub fn of_cv(cv: f64) -> SkewClass {
        if cv < 0.5 {
            SkewClass::Uniform
        } else if cv < 2.0 {
            SkewClass::Spread
        } else {
            SkewClass::PowerLaw
        }
    }

    /// Stable wire name.
    pub fn name(&self) -> &'static str {
        match self {
            SkewClass::Uniform => "uniform",
            SkewClass::Spread => "spread",
            SkewClass::PowerLaw => "powerlaw",
        }
    }
}

/// Diameter classes, relative to `log2(n)`: small-world graphs sit at
/// a small multiple of `log n`, meshes and roadmaps far above it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiameterClass {
    /// Pseudo-diameter ≤ 3·log2(n): small-world / power-law.
    Low,
    /// Up to 12·log2(n): in between.
    Mid,
    /// Beyond that: meshes, roadmaps, long paths.
    High,
}

impl DiameterClass {
    /// Classifies a pseudo-diameter measured on an `n`-vertex graph.
    pub fn of(diameter: usize, n: usize) -> DiameterClass {
        let log_n = (n.max(2) as f64).log2();
        let d = diameter as f64;
        if d <= 3.0 * log_n {
            DiameterClass::Low
        } else if d <= 12.0 * log_n {
            DiameterClass::Mid
        } else {
            DiameterClass::High
        }
    }

    /// Stable wire name.
    pub fn name(&self) -> &'static str {
        match self {
            DiameterClass::Low => "low",
            DiameterClass::Mid => "mid",
            DiameterClass::High => "high",
        }
    }
}

/// The structural fingerprint of one concrete graph, with both the
/// raw measurements (served via `GET /v1/graphs`) and the coarse
/// classes forming the manifest bucket key.
#[derive(Clone, Debug, PartialEq)]
pub struct Fingerprint {
    /// Number of vertices.
    pub vertices: usize,
    /// Number of stored arcs.
    pub arcs: usize,
    /// Whether the graph is directed.
    pub directed: bool,
    /// Average degree.
    pub d_avg: f64,
    /// Maximum degree.
    pub d_max: usize,
    /// Coefficient of variation of the degree distribution.
    pub degree_cv: f64,
    /// `d_max / d_avg`.
    pub skew: f64,
    /// Double-sweep BFS pseudo-diameter from vertex 0.
    pub pseudo_diameter: usize,
}

impl Fingerprint {
    /// Measures `g`. Cost is two BFS sweeps plus one degree pass —
    /// cheap enough to run at catalog-registration time.
    pub fn of(g: &Csr) -> Fingerprint {
        let stats = DegreeStats::of(g);
        let diam = if g.num_vertices() == 0 { 0 } else { pseudo_diameter(g, 0) };
        Fingerprint {
            vertices: stats.num_vertices,
            arcs: stats.num_arcs,
            directed: g.is_directed(),
            d_avg: stats.d_avg,
            d_max: stats.d_max,
            degree_cv: stats.cv,
            skew: stats.skew,
            pseudo_diameter: diam,
        }
    }

    /// The degree-skew class.
    pub fn skew_class(&self) -> SkewClass {
        SkewClass::of_cv(self.degree_cv)
    }

    /// The diameter class.
    pub fn diameter_class(&self) -> DiameterClass {
        DiameterClass::of(self.pseudo_diameter, self.vertices)
    }

    /// The manifest bucket key, e.g. `"skew=powerlaw;diam=low;directed=false"`.
    /// Scale-invariant by construction: both classes are ratios, so a
    /// graph generated at 0.002 scale lands in the same bucket as its
    /// full-size counterpart with the same structure.
    pub fn family_key(&self) -> String {
        format!(
            "skew={};diam={};directed={}",
            self.skew_class().name(),
            self.diameter_class().name(),
            self.directed
        )
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn path(n: usize) -> Csr {
        let mut b = GraphBuilder::new_undirected(n);
        for v in 0..(n as u32 - 1) {
            b.add_edge(v, v + 1);
        }
        b.build()
    }

    fn star(n: usize) -> Csr {
        let mut b = GraphBuilder::new_undirected(n);
        for v in 1..n as u32 {
            b.add_edge(0, v);
        }
        b.build()
    }

    #[test]
    fn path_is_uniform_high_diameter() {
        let f = Fingerprint::of(&path(256));
        assert_eq!(f.skew_class(), SkewClass::Uniform);
        assert_eq!(f.diameter_class(), DiameterClass::High);
        assert_eq!(f.family_key(), "skew=uniform;diam=high;directed=false");
    }

    #[test]
    fn star_is_skewed_low_diameter() {
        let f = Fingerprint::of(&star(256));
        // Degrees: one 255, rest 1 → enormous cv.
        assert_eq!(f.skew_class(), SkewClass::PowerLaw);
        assert_eq!(f.diameter_class(), DiameterClass::Low);
        assert_eq!(f.pseudo_diameter, 2);
        assert!(f.degree_cv > 2.0);
        assert!(!f.directed);
    }

    #[test]
    fn directedness_is_part_of_the_key() {
        let mut b = GraphBuilder::new_directed(4);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 3);
        let f = Fingerprint::of(&b.build());
        assert!(f.directed);
        assert!(f.family_key().ends_with("directed=true"));
    }

    #[test]
    fn empty_graph_fingerprints_cleanly() {
        let f = Fingerprint::of(&Csr::empty(0, false));
        assert_eq!(f.vertices, 0);
        assert_eq!(f.pseudo_diameter, 0);
        assert_eq!(f.skew_class(), SkewClass::Uniform);
    }

    #[test]
    fn family_key_is_scale_invariant_for_paths() {
        assert_eq!(
            Fingerprint::of(&path(256)).family_key(),
            Fingerprint::of(&path(2048)).family_key()
        );
    }
}
