//! Atomic-update outcome tracking (§3.1.5).
//!
//! The paper distinguishes two kinds of atomics and their outcomes:
//!
//! - specialized atomics (`atomicMin` / `atomicMax`) "always execute
//!   successfully ... but they may not update the target value" — the
//!   interesting outcome is whether the operation was **effective**;
//! - `atomicCAS` "may fail if the target value does not match the
//!   expected value" — the interesting outcome is **success vs.
//!   failure**.
//!
//! [`AtomicTally`] accumulates attempted / succeeded / effective counts;
//! the MST figure's "useless atomics" metric is
//! [`AtomicTally::useless`].

use crate::counter::GlobalCounter;

/// The outcome of one atomic operation, as classified by the counted
/// atomic wrappers in `ecl-gpusim`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AtomicOutcome {
    /// `atomicCAS` found the expected value and swapped (or a min/max
    /// actually lowered/raised the target).
    Updated,
    /// `atomicMin`/`atomicMax` completed but left the target unchanged.
    NoEffect,
    /// `atomicCAS` found a different value than expected.
    CasFailed,
}

impl AtomicOutcome {
    /// Whether the operation changed the target.
    #[inline]
    pub fn updated(self) -> bool {
        matches!(self, AtomicOutcome::Updated)
    }

    /// Whether the operation was "useless" in the paper's sense
    /// ("atomicCAS failures and atomicMin operations with no effect",
    /// §6.1.4).
    #[inline]
    pub fn useless(self) -> bool {
        !self.updated()
    }
}

/// Cumulative tallies of atomic outcomes.
#[derive(Debug, Default)]
pub struct AtomicTally {
    attempted: GlobalCounter,
    updated: GlobalCounter,
    no_effect: GlobalCounter,
    cas_failed: GlobalCounter,
}

impl AtomicTally {
    /// A zeroed tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one outcome.
    #[inline]
    pub fn record(&self, outcome: AtomicOutcome) {
        self.record_many(outcome, 1);
    }

    /// Records `k` outcomes of the same kind at once. Hot loops that
    /// classify outcomes locally (e.g. a block-local edge sweep) use
    /// this to avoid per-operation contention on the shared tallies.
    #[inline]
    pub fn record_many(&self, outcome: AtomicOutcome, k: u64) {
        if k == 0 {
            return;
        }
        self.attempted.add(k);
        match outcome {
            AtomicOutcome::Updated => self.updated.add(k),
            AtomicOutcome::NoEffect => self.no_effect.add(k),
            AtomicOutcome::CasFailed => self.cas_failed.add(k),
        }
    }

    /// Total operations attempted.
    pub fn attempted(&self) -> u64 {
        self.attempted.get()
    }

    /// Operations that changed the target.
    pub fn updated(&self) -> u64 {
        self.updated.get()
    }

    /// Min/max operations that left the target unchanged.
    pub fn no_effect(&self) -> u64 {
        self.no_effect.get()
    }

    /// Failed compare-and-swap attempts.
    pub fn cas_failed(&self) -> u64 {
        self.cas_failed.get()
    }

    /// "Useless atomics": failures plus no-effect operations.
    pub fn useless(&self) -> u64 {
        self.no_effect() + self.cas_failed()
    }

    /// Fraction of attempted operations that were useless; 0 when
    /// nothing was attempted.
    pub fn useless_fraction(&self) -> f64 {
        let a = self.attempted();
        if a == 0 {
            0.0
        } else {
            self.useless() as f64 / a as f64
        }
    }

    /// Fraction of attempted operations that updated the target.
    pub fn update_fraction(&self) -> f64 {
        let a = self.attempted();
        if a == 0 {
            0.0
        } else {
            self.updated() as f64 / a as f64
        }
    }

    /// Resets all tallies (requires exclusive access).
    pub fn reset(&mut self) {
        self.attempted.reset();
        self.updated.reset();
        self.no_effect.reset();
        self.cas_failed.reset();
    }
}

impl Clone for AtomicTally {
    fn clone(&self) -> Self {
        Self {
            attempted: self.attempted.clone(),
            updated: self.updated.clone(),
            no_effect: self.no_effect.clone(),
            cas_failed: self.cas_failed.clone(),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn outcome_classification() {
        assert!(AtomicOutcome::Updated.updated());
        assert!(!AtomicOutcome::Updated.useless());
        assert!(AtomicOutcome::NoEffect.useless());
        assert!(AtomicOutcome::CasFailed.useless());
    }

    #[test]
    fn tally_accumulates_by_kind() {
        let t = AtomicTally::new();
        t.record(AtomicOutcome::Updated);
        t.record(AtomicOutcome::Updated);
        t.record(AtomicOutcome::NoEffect);
        t.record(AtomicOutcome::CasFailed);
        assert_eq!(t.attempted(), 4);
        assert_eq!(t.updated(), 2);
        assert_eq!(t.no_effect(), 1);
        assert_eq!(t.cas_failed(), 1);
        assert_eq!(t.useless(), 2);
        assert!((t.useless_fraction() - 0.5).abs() < 1e-12);
        assert!((t.update_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_tally_fractions_are_zero() {
        let t = AtomicTally::new();
        assert_eq!(t.useless_fraction(), 0.0);
        assert_eq!(t.update_fraction(), 0.0);
    }

    #[test]
    fn reset_clears_everything() {
        let mut t = AtomicTally::new();
        t.record(AtomicOutcome::CasFailed);
        t.reset();
        assert_eq!(t.attempted(), 0);
        assert_eq!(t.useless(), 0);
    }

    #[test]
    fn concurrent_recording() {
        let t = AtomicTally::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..300 {
                        t.record(if i % 3 == 0 {
                            AtomicOutcome::Updated
                        } else {
                            AtomicOutcome::CasFailed
                        });
                    }
                });
            }
        });
        assert_eq!(t.attempted(), 1200);
        assert_eq!(t.updated(), 400);
        assert_eq!(t.cas_failed(), 800);
    }
}
