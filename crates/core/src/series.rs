//! Recorders for the paper's two figures.
//!
//! - [`BlockSeries`]: per-(outer m, inner n, block) update counts for
//!   ECL-SCC's Figure 1 ("the number of updates performed by each
//!   thread block during every signature-propagation iteration").
//! - [`IterationBars`]: per-kernel-iteration percentage metrics for
//!   ECL-MST's Figure 2 (threads-with-work %, conflict %, useless
//!   atomics %), tagged Regular or Filter.

use parking_lot::Mutex;
use serde::Serialize;

use crate::table::Table;

/// Key of one recorded SCC propagation step.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub struct StepKey {
    /// Outer-loop counter (pruning round), 1-based as in the paper.
    pub m: u32,
    /// Inner signature-propagation iteration, 1-based ("reflecting a
    /// do-while loop").
    pub n: u32,
}

/// Records the number of updates each thread block performed in each
/// signature-propagation iteration. Writes from concurrent blocks go to
/// disjoint indices of a pre-sized row, so recording is lock-free per
/// block; rows are created under a mutex when an iteration first
/// appears.
#[derive(Debug)]
pub struct BlockSeries {
    num_blocks: usize,
    rows: Mutex<Vec<(StepKey, Vec<u64>)>>,
}

impl BlockSeries {
    /// A recorder for `num_blocks` blocks.
    pub fn new(num_blocks: usize) -> Self {
        Self { num_blocks, rows: Mutex::new(Vec::new()) }
    }

    /// Number of blocks per row.
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    /// Records `updates` performed by `block` in iteration `(m, n)`.
    pub fn record(&self, m: u32, n: u32, block: usize, updates: u64) {
        assert!(block < self.num_blocks, "block id out of range");
        let key = StepKey { m, n };
        let mut rows = self.rows.lock();
        match rows.iter_mut().find(|(k, _)| *k == key) {
            Some((_, row)) => row[block] += updates,
            None => {
                let mut row = vec![0u64; self.num_blocks];
                row[block] = updates;
                rows.push((key, row));
            }
        }
    }

    /// All recorded iterations, sorted by (m, n).
    pub fn steps(&self) -> Vec<StepKey> {
        let rows = self.rows.lock();
        let mut keys: Vec<StepKey> = rows.iter().map(|(k, _)| *k).collect();
        keys.sort();
        keys
    }

    /// The per-block update vector of iteration `(m, n)`, if recorded.
    pub fn row(&self, m: u32, n: u32) -> Option<Vec<u64>> {
        let key = StepKey { m, n };
        self.rows.lock().iter().find(|(k, _)| *k == key).map(|(_, r)| r.clone())
    }

    /// Number of inner iterations recorded for outer round `m` (the "43
    /// total signature-propagation iterations" of Figure 1).
    pub fn inner_iterations(&self, m: u32) -> u32 {
        self.steps().iter().filter(|k| k.m == m).map(|k| k.n).max().unwrap_or(0)
    }

    /// Largest outer-round index recorded ("m=1 and m=2 out of 10
    /// total").
    pub fn outer_iterations(&self) -> u32 {
        self.steps().iter().map(|k| k.m).max().unwrap_or(0)
    }

    /// Number of blocks with at least one update in iteration `(m, n)`.
    pub fn active_blocks(&self, m: u32, n: u32) -> usize {
        self.row(m, n).map(|r| r.iter().filter(|&&u| u > 0).count()).unwrap_or(0)
    }

    /// Total updates in iteration `(m, n)`.
    pub fn total_updates(&self, m: u32, n: u32) -> u64 {
        self.row(m, n).map(|r| r.iter().sum()).unwrap_or(0)
    }

    /// Renders one iteration as a `block -> updates` table, skipping
    /// zero-update blocks when `skip_zero` (the tail of Figure 1's
    /// plots is dominated by inactive blocks).
    pub fn to_table(&self, m: u32, n: u32, skip_zero: bool) -> Table {
        let mut t =
            Table::new(&format!("ECL-SCC block updates, m={m}, n={n}"), &["Block", "Updates"]);
        if let Some(row) = self.row(m, n) {
            for (b, &u) in row.iter().enumerate() {
                if !skip_zero || u > 0 {
                    t.row(&[&b.to_string(), &u.to_string()]);
                }
            }
        }
        t
    }
}

/// The kind of an ECL-MST worklist iteration (§6.1.4: "'Regular'
/// iterations ... process the light edges ...; 'Filter' iterations ...
/// handle heavier edges").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum IterationKind {
    /// Light-edge pass.
    Regular,
    /// Heavy-edge / filtering pass.
    Filter,
}

/// One iteration's bar group in Figure 2.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct IterationBar {
    /// Regular or Filter.
    pub kind: IterationKind,
    /// 1-based index within its kind.
    pub index: u32,
    /// Percentage of launched threads that had useful work.
    pub threads_with_work_pct: f64,
    /// Percentage of threads that conflicted on an atomic target.
    pub conflicts_pct: f64,
    /// Percentage of atomics that were useless (CAS failure or
    /// no-effect min).
    pub useless_atomics_pct: f64,
}

/// Accumulates the per-iteration bars of Figure 2.
#[derive(Debug, Default)]
pub struct IterationBars {
    bars: Mutex<Vec<IterationBar>>,
}

impl IterationBars {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one iteration's bars.
    pub fn push(&self, bar: IterationBar) {
        self.bars.lock().push(bar);
    }

    /// All recorded bars in execution order.
    pub fn bars(&self) -> Vec<IterationBar> {
        self.bars.lock().clone()
    }

    /// Bars of one kind only.
    pub fn of_kind(&self, kind: IterationKind) -> Vec<IterationBar> {
        self.bars().into_iter().filter(|b| b.kind == kind).collect()
    }

    /// Renders all bars as a table (one row per iteration).
    pub fn to_table(&self, title: &str) -> Table {
        let mut t = Table::new(
            title,
            &["Iteration", "Kind", "Threads w/ work %", "Conflicts %", "Useless atomics %"],
        );
        for b in self.bars() {
            t.row(&[
                &b.index.to_string(),
                match b.kind {
                    IterationKind::Regular => "Regular",
                    IterationKind::Filter => "Filter",
                },
                &format!("{:.1}", b.threads_with_work_pct),
                &format!("{:.1}", b.conflicts_pct),
                &format!("{:.1}", b.useless_atomics_pct),
            ]);
        }
        t
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn block_series_records_and_queries() {
        let s = BlockSeries::new(4);
        s.record(1, 1, 0, 70);
        s.record(1, 1, 2, 68);
        s.record(1, 2, 0, 10);
        assert_eq!(s.row(1, 1), Some(vec![70, 0, 68, 0]));
        assert_eq!(s.active_blocks(1, 1), 2);
        assert_eq!(s.total_updates(1, 1), 138);
        assert_eq!(s.inner_iterations(1), 2);
        assert_eq!(s.outer_iterations(), 1);
        assert_eq!(s.row(9, 9), None);
        assert_eq!(s.active_blocks(9, 9), 0);
    }

    #[test]
    fn block_series_accumulates_same_key() {
        let s = BlockSeries::new(2);
        s.record(1, 1, 1, 3);
        s.record(1, 1, 1, 4);
        assert_eq!(s.row(1, 1), Some(vec![0, 7]));
    }

    #[test]
    fn block_series_steps_sorted() {
        let s = BlockSeries::new(1);
        s.record(2, 1, 0, 1);
        s.record(1, 3, 0, 1);
        s.record(1, 1, 0, 1);
        let keys = s.steps();
        assert_eq!(
            keys,
            vec![StepKey { m: 1, n: 1 }, StepKey { m: 1, n: 3 }, StepKey { m: 2, n: 1 },]
        );
    }

    #[test]
    #[should_panic(expected = "block id out of range")]
    fn block_series_rejects_bad_block() {
        BlockSeries::new(2).record(1, 1, 5, 1);
    }

    #[test]
    fn block_series_concurrent_recording() {
        let s = BlockSeries::new(64);
        std::thread::scope(|scope| {
            for b in 0..64 {
                let s = &s;
                scope.spawn(move || s.record(1, 1, b, b as u64));
            }
        });
        let row = s.row(1, 1).unwrap();
        assert_eq!(row[63], 63);
        assert_eq!(row.iter().sum::<u64>(), (0..64).sum::<u64>());
    }

    #[test]
    fn block_series_table_skips_zeros() {
        let s = BlockSeries::new(3);
        s.record(1, 1, 1, 5);
        let t = s.to_table(1, 1, true);
        assert_eq!(t.num_rows(), 1);
        let t_all = s.to_table(1, 1, false);
        assert_eq!(t_all.num_rows(), 3);
    }

    #[test]
    fn iteration_bars_roundtrip() {
        let bars = IterationBars::new();
        bars.push(IterationBar {
            kind: IterationKind::Regular,
            index: 1,
            threads_with_work_pct: 90.0,
            conflicts_pct: 30.0,
            useless_atomics_pct: 10.0,
        });
        bars.push(IterationBar {
            kind: IterationKind::Filter,
            index: 1,
            threads_with_work_pct: 50.0,
            conflicts_pct: 5.0,
            useless_atomics_pct: 60.0,
        });
        assert_eq!(bars.bars().len(), 2);
        assert_eq!(bars.of_kind(IterationKind::Filter).len(), 1);
        let t = bars.to_table("fig2");
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.cell(0, 1), "Regular");
        assert_eq!(t.cell(1, 1), "Filter");
    }
}
