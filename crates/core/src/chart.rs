//! Text charts for the harness binaries.
//!
//! The paper presents Figure 1 as per-block scatter plots and
//! Figure 2 as grouped bars; these renderers produce the terminal
//! equivalents so the harness output is "visual" rather than only
//! tabular.

use std::fmt::Write as _;

/// Renders a horizontal bar chart: one labeled row per entry, bars
/// scaled to `width` characters against the maximum value.
pub fn bar_chart(title: &str, entries: &[(String, f64)], width: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let max = entries.iter().map(|(_, v)| *v).fold(0.0f64, f64::max);
    let label_w = entries.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    if max <= 0.0 {
        let _ = writeln!(out, "  (all values zero)");
        return out;
    }
    for (label, v) in entries {
        let bar_len = ((v / max) * width as f64).round() as usize;
        let _ = writeln!(out, "  {label:<label_w$}  {v:>10.1} |{}", "█".repeat(bar_len),);
    }
    out
}

/// Renders a down-sampled series as a fixed-height column chart:
/// `values[i]` plotted over x; used for Figure 1's per-block update
/// profiles. Values are max-pooled into `width` columns.
pub fn column_chart(title: &str, values: &[u64], width: usize, height: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    if values.is_empty() || height == 0 {
        let _ = writeln!(out, "  (no data)");
        return out;
    }
    // Max-pool into `width` columns.
    let cols = width.min(values.len().max(1));
    let mut pooled = vec![0u64; cols];
    for (i, &v) in values.iter().enumerate() {
        let c = i * cols / values.len();
        pooled[c] = pooled[c].max(v);
    }
    let max = pooled.iter().copied().max().unwrap_or(0);
    if max == 0 {
        let _ = writeln!(out, "  (all zero over {} blocks)", values.len());
        return out;
    }
    for row in (1..=height).rev() {
        let threshold = max as f64 * row as f64 / height as f64;
        let mut line = if row == height {
            format!("{max:>8} ")
        } else if row == 1 {
            format!("{:>8} ", 0)
        } else {
            format!("{:>8} ", "")
        };
        for &v in &pooled {
            line.push(if v as f64 >= threshold { '█' } else { ' ' });
        }
        let _ = writeln!(out, "{line}");
    }
    let _ = writeln!(out, "{:>9}{}", "", "-".repeat(cols));
    let _ = writeln!(out, "{:>9}block 0 .. {}", "", values.len() - 1);
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn bar_chart_scales_to_max() {
        let s = bar_chart("test", &[("a".into(), 10.0), ("bb".into(), 5.0)], 10);
        assert!(s.contains("test"));
        let lines: Vec<&str> = s.lines().collect();
        let bars: Vec<usize> = lines[1..].iter().map(|l| l.matches('█').count()).collect();
        assert_eq!(bars[0], 10);
        assert_eq!(bars[1], 5);
    }

    #[test]
    fn bar_chart_zero_values() {
        let s = bar_chart("z", &[("a".into(), 0.0)], 10);
        assert!(s.contains("all values zero"));
    }

    #[test]
    fn column_chart_renders_profile() {
        let values: Vec<u64> = (0..100).map(|i| if i < 50 { 70 } else { 0 }).collect();
        let s = column_chart("updates", &values, 40, 5);
        assert!(s.contains("updates"));
        assert!(s.contains('█'));
        assert!(s.contains("block 0 .. 99"));
        // Left half dense, right half blank on the bottom data row.
        let data_rows: Vec<&str> = s.lines().filter(|l| l.contains('█')).collect();
        assert!(!data_rows.is_empty());
    }

    #[test]
    fn column_chart_empty_and_zero() {
        assert!(column_chart("t", &[], 10, 4).contains("no data"));
        assert!(column_chart("t", &[0, 0, 0], 10, 4).contains("all zero"));
    }

    #[test]
    fn column_chart_pools_down() {
        // 1000 values into 20 columns must not panic and must keep the max.
        let mut values = vec![1u64; 1000];
        values[999] = 50;
        let s = column_chart("t", &values, 20, 4);
        assert!(s.contains("50"));
    }
}
