//! Counter-based manual profiling for irregular parallel algorithms.
//!
//! This crate is the Rust embodiment of the paper's primary
//! contribution (§3): instead of relying on general-purpose profilers,
//! *application-specific events* are counted by instrumenting the
//! algorithm source with cheap counters that are either **thread-local**
//! (one slot per simulated GPU thread) or **global** (one shared atomic
//! tally). On top of the raw counters it provides:
//!
//! - the paper's *general metrics* (§3.1): load balance, iteration
//!   counts, idle/active threads, and atomic-update outcomes,
//! - summary statistics (average / maximum / minimum / standard
//!   deviation) over per-thread counts, Pearson correlation between
//!   metric vectors (the paper correlates iteration counts with degree
//!   skew, §6.1.1), and run-to-run comparison for internally
//!   non-deterministic codes (Table 3),
//! - paper-style table and series rendering used by the experiment
//!   harness binaries.
//!
//! Counters are designed to be safe to increment concurrently from many
//! rayon workers: thread-local counters are `AtomicU64` slots touched
//! with `Relaxed` ordering only by the worker that owns the simulated
//! thread, and global counters are single relaxed atomics. Profiling can
//! be disabled wholesale via [`ProfileMode::Off`], which the overhead
//! benchmark uses to quantify the perturbation the paper discusses in
//! §3 ("our approach introduces overhead and, hence, affects the
//! execution time").

pub mod atomics;
pub mod chart;
pub mod counter;
pub mod histogram;
pub mod metrics;
pub mod registry;
pub mod runs;
pub mod series;
pub mod sketch;
pub mod stats;
pub mod table;
pub mod trace;

pub use atomics::{AtomicOutcome, AtomicTally};
pub use counter::{GlobalCounter, PerThreadCounter, ProfileMode};
pub use histogram::Histogram;
pub use metrics::{imbalance_from_summary, ActivityTally, LoadBalance};
pub use registry::{CounterHandle, Registry, Snapshot};
pub use runs::MultiRun;
pub use series::{BlockSeries, IterationBars};
pub use sketch::{LogSketch, SketchSnapshot, SKETCH_BUCKETS};
pub use stats::{pearson, Summary};
pub use table::Table;
pub use trace::ConvergenceTrace;
