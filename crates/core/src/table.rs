//! Aligned text tables in the style of the paper's result tables.

use std::fmt::Write as _;

/// A simple column-aligned text table with a title row, used by the
/// experiment harness binaries to print each reproduced table.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the cell count differs from the header width.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.iter().map(|s| s.to_string()).collect());
    }

    /// Appends a row of already-owned cells.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Cell accessor for tests (`row`, `col` zero-based).
    pub fn cell(&self, row: usize, col: usize) -> &str {
        &self.rows[row][col]
    }

    /// Renders the table with space-padded, left-aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        let _ = writeln!(out, "{}", "=".repeat(total.max(self.title.len())));
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let _ = write!(line, "{:width$}", cell, width = widths[i]);
            }
            line.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header));
        let _ = writeln!(out, "{}", "-".repeat(total.max(self.title.len())));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row));
        }
        out
    }

    /// Renders the table as CSV (title omitted; header + rows). Cells
    /// containing commas or quotes are quoted.
    pub fn to_csv(&self) -> String {
        fn esc(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        let _ =
            writeln!(out, "{}", self.header.iter().map(|s| esc(s)).collect::<Vec<_>>().join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(|s| esc(s)).collect::<Vec<_>>().join(","));
        }
        out
    }
}

/// Formats a count the way the paper's Table 4 does: `a.bc × 10^e`
/// scientific notation with two fractional digits.
pub fn sci(v: f64) -> String {
    if v == 0.0 {
        return "0".to_string();
    }
    let e = v.abs().log10().floor() as i32;
    let mantissa = v / 10f64.powi(e);
    format!("{mantissa:.2}e{e}")
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("Table X", &["Graph", "Value"]);
        t.row(&["tiny", "1"]);
        t.row(&["a-much-longer-name", "123456"]);
        let s = t.render();
        assert!(s.contains("Table X"));
        assert!(s.contains("Graph"));
        let lines: Vec<&str> = s.lines().collect();
        // Rows after the separator align the second column.
        let h_pos = lines[2].find("Value").unwrap();
        let r1_pos = lines[4].find('1').unwrap();
        assert_eq!(h_pos, r1_pos);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_wrong_width() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new("t", &["name", "note"]);
        t.row(&["x,y", "say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn cell_access() {
        let mut t = Table::new("t", &["a"]);
        t.row_owned(vec!["v".to_string()]);
        assert_eq!(t.cell(0, 0), "v");
        assert_eq!(t.num_rows(), 1);
    }

    #[test]
    fn sci_format() {
        assert_eq!(sci(0.0), "0");
        assert_eq!(sci(1_050_000.0), "1.05e6");
        assert_eq!(sci(65_500.0), "6.55e4");
        assert_eq!(sci(2.0), "2.00e0");
    }

    #[test]
    fn empty_table_renders() {
        let t = Table::new("empty", &["a", "b"]);
        let s = t.render();
        assert!(s.contains("empty"));
        assert_eq!(t.num_rows(), 0);
    }
}
