//! Summary statistics and correlation over counter values.

use serde::Serialize;

/// Average / maximum / minimum / standard deviation of a metric across
/// threads (or vertices), the aggregate form the paper's tables use.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Sum of samples.
    pub sum: f64,
    /// Arithmetic mean (0 for an empty sample set).
    pub avg: f64,
    /// Maximum (0 for an empty sample set).
    pub max: f64,
    /// Minimum (0 for an empty sample set).
    pub min: f64,
    /// Population standard deviation.
    pub std: f64,
}

impl Summary {
    /// Summary of `u64` samples (per-thread counter slots).
    pub fn of_u64(values: &[u64]) -> Self {
        Self::of_iter(values.iter().map(|&v| v as f64))
    }

    /// Summary of `f64` samples.
    pub fn of_f64(values: &[f64]) -> Self {
        Self::of_iter(values.iter().copied())
    }

    fn of_iter(values: impl Iterator<Item = f64> + Clone) -> Self {
        let mut count = 0usize;
        let mut sum = 0.0;
        let mut max = f64::NEG_INFINITY;
        let mut min = f64::INFINITY;
        for v in values.clone() {
            count += 1;
            sum += v;
            max = max.max(v);
            min = min.min(v);
        }
        if count == 0 {
            return Self { count: 0, sum: 0.0, avg: 0.0, max: 0.0, min: 0.0, std: 0.0 };
        }
        let avg = sum / count as f64;
        let var = values.map(|v| (v - avg) * (v - avg)).sum::<f64>() / count as f64;
        Self { count, sum, avg, max, min, std: var.sqrt() }
    }
}

/// Pearson correlation coefficient between two equally long sample
/// vectors. Returns 0 when either vector is constant or the vectors are
/// shorter than 2 (no linear relationship measurable).
///
/// The paper uses this to relate per-thread iteration counts to graph
/// degree skew (r = 0.64), vertex counts (r = −0.37, r ≥ 0.98), and GC
/// invalidation counts to average degree (r ≈ 0.62) — §6.1.
///
/// # Panics
/// Panics if the vectors differ in length.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "correlation requires equal-length vectors");
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let mx = xs.iter().sum::<f64>() / n as f64;
    let my = ys.iter().sum::<f64>() / n as f64;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        return 0.0;
    }
    sxy / (sxx * syy).sqrt()
}

/// Median of a sample set (averaging the two middle elements for even
/// counts). The paper reports the run with the median runtime out of
/// nine (§5.2). Returns 0 for an empty set.
pub fn median(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in median input"));
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        (v[mid - 1] + v[mid]) / 2.0
    }
}

/// Index of the median element (ties to the lower middle), used to pick
/// "the run yielding the median runtime" without re-running.
pub fn median_index(values: &[f64]) -> Option<usize> {
    if values.is_empty() {
        return None;
    }
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).expect("NaN in median input"));
    Some(idx[(values.len() - 1) / 2])
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic() {
        let s = Summary::of_u64(&[1, 2, 3, 4]);
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 10.0);
        assert_eq!(s.avg, 2.5);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.min, 1.0);
        assert!((s.std - (1.25f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_empty() {
        let s = Summary::of_u64(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.avg, 0.0);
        assert_eq!(s.max, 0.0);
        assert_eq!(s.min, 0.0);
    }

    #[test]
    fn summary_single() {
        let s = Summary::of_f64(&[7.5]);
        assert_eq!(s.avg, 7.5);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.min, 7.5);
    }

    #[test]
    fn pearson_perfect_positive() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [10.0, 20.0, 30.0, 40.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_perfect_negative() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [3.0, 2.0, 1.0];
        assert!((pearson(&xs, &ys) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_uncorrelated_constant() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [5.0, 5.0, 5.0];
        assert_eq!(pearson(&xs, &ys), 0.0);
    }

    #[test]
    fn pearson_short_vectors() {
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
        assert_eq!(pearson(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn pearson_length_mismatch_panics() {
        pearson(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn median_index_picks_middle_run() {
        let runtimes = [5.0, 1.0, 3.0];
        assert_eq!(median_index(&runtimes), Some(2));
        assert_eq!(median_index(&[]), None);
        // Even count ties to lower middle.
        assert_eq!(median_index(&[4.0, 1.0, 2.0, 3.0]), Some(2));
    }
}
