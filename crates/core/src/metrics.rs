//! The paper's general metrics (§3.1) built on the raw counters.

use crate::counter::{GlobalCounter, PerThreadCounter};
use crate::stats::Summary;

/// Load balance (§3.1.1): per-thread work counts plus derived imbalance
/// measures.
#[derive(Debug)]
pub struct LoadBalance {
    work: PerThreadCounter,
}

impl LoadBalance {
    /// A tracker for `num_threads` threads.
    pub fn new(num_threads: usize) -> Self {
        Self { work: PerThreadCounter::new(num_threads) }
    }

    /// Records `units` of work done by thread `tid`.
    #[inline]
    pub fn record(&self, tid: usize, units: u64) {
        self.work.add(tid, units);
    }

    /// The underlying per-thread counter.
    pub fn per_thread(&self) -> &PerThreadCounter {
        &self.work
    }

    /// Summary over per-thread work.
    pub fn summary(&self) -> Summary {
        self.work.summary()
    }

    /// Imbalance factor: max / avg work per thread. 1.0 is perfectly
    /// balanced; large values indicate a straggler. Returns 0 for
    /// zero-activity launches (no threads, or no work recorded) — the
    /// guard is explicit because per-launch profiling feeds this into
    /// exported manifests, where a NaN/inf would poison every
    /// downstream comparison.
    pub fn imbalance_factor(&self) -> f64 {
        let s = self.summary();
        imbalance_from_summary(&s)
    }

    /// Fraction of threads that did any work at all. 0 for a launch
    /// with no threads (never NaN).
    pub fn participation(&self) -> f64 {
        let vals = self.work.values();
        if vals.is_empty() {
            return 0.0;
        }
        vals.iter().filter(|&&v| v > 0).count() as f64 / vals.len() as f64
    }
}

/// The max/avg imbalance factor over an already-computed [`Summary`],
/// guarded against the degenerate launches a self-profiling run hits
/// routinely (empty grids, zero-work kernels): any summary whose
/// average is non-positive or non-finite yields 0 instead of NaN/inf.
pub fn imbalance_from_summary(s: &Summary) -> f64 {
    if !(s.avg.is_finite() && s.avg > 0.0) {
        return 0.0;
    }
    let f = s.max / s.avg;
    if f.is_finite() {
        f
    } else {
        0.0
    }
}

/// Idle/active thread tracking (§3.1.3–3.1.4). A thread is *idle* when
/// it was launched but either had no element assigned (last-block
/// remainder) or its element failed the work condition.
#[derive(Debug, Default)]
pub struct ActivityTally {
    active: GlobalCounter,
    idle_unassigned: GlobalCounter,
    idle_no_work: GlobalCounter,
}

impl ActivityTally {
    /// A zeroed tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a thread that actively computed.
    #[inline]
    pub fn record_active(&self) {
        self.active.inc();
    }

    /// Records a launched thread with no assigned element ("some of the
    /// threads in the last block may not have any work assigned").
    #[inline]
    pub fn record_idle_unassigned(&self) {
        self.idle_unassigned.inc();
    }

    /// Records a thread whose element did not fulfill the work
    /// condition ("the assigned thread may not have to do anything").
    #[inline]
    pub fn record_idle_no_work(&self) {
        self.idle_no_work.inc();
    }

    /// Threads that computed.
    pub fn active(&self) -> u64 {
        self.active.get()
    }

    /// Idle threads of both kinds.
    pub fn idle(&self) -> u64 {
        self.idle_unassigned.get() + self.idle_no_work.get()
    }

    /// Idle threads that had no element assigned.
    pub fn idle_unassigned(&self) -> u64 {
        self.idle_unassigned.get()
    }

    /// Idle threads whose element failed the work condition.
    pub fn idle_no_work(&self) -> u64 {
        self.idle_no_work.get()
    }

    /// All launched threads recorded.
    pub fn launched(&self) -> u64 {
        self.active() + self.idle()
    }

    /// Fraction of launched threads that computed (Figure 2's "threads
    /// with work"); 0 when nothing was recorded.
    pub fn active_fraction(&self) -> f64 {
        let l = self.launched();
        if l == 0 {
            0.0
        } else {
            self.active() as f64 / l as f64
        }
    }

    /// Resets all tallies (requires exclusive access).
    pub fn reset(&mut self) {
        self.active.reset();
        self.idle_unassigned.reset();
        self.idle_no_work.reset();
    }
}

impl Clone for ActivityTally {
    fn clone(&self) -> Self {
        Self {
            active: self.active.clone(),
            idle_unassigned: self.idle_unassigned.clone(),
            idle_no_work: self.idle_no_work.clone(),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn balanced_load() {
        let lb = LoadBalance::new(4);
        for tid in 0..4 {
            lb.record(tid, 10);
        }
        assert!((lb.imbalance_factor() - 1.0).abs() < 1e-12);
        assert_eq!(lb.participation(), 1.0);
    }

    #[test]
    fn straggler_detection() {
        let lb = LoadBalance::new(4);
        lb.record(0, 100);
        for tid in 1..4 {
            lb.record(tid, 10);
        }
        // avg = 32.5, max = 100 -> imbalance ≈ 3.08
        assert!(lb.imbalance_factor() > 3.0);
        assert_eq!(lb.participation(), 1.0);
    }

    #[test]
    fn partial_participation() {
        let lb = LoadBalance::new(4);
        lb.record(1, 5);
        lb.record(3, 5);
        assert_eq!(lb.participation(), 0.5);
    }

    #[test]
    fn empty_load_balance() {
        let lb = LoadBalance::new(0);
        assert_eq!(lb.imbalance_factor(), 0.0);
        assert_eq!(lb.participation(), 0.0);
    }

    #[test]
    fn no_work_recorded() {
        // Zero-activity launch on a real grid: threads exist, nothing
        // ran. avg = 0 must not produce 0/0 = NaN.
        let lb = LoadBalance::new(3);
        assert_eq!(lb.imbalance_factor(), 0.0);
        assert!(lb.imbalance_factor().is_finite());
        assert_eq!(lb.participation(), 0.0);
    }

    #[test]
    fn single_thread_is_perfectly_balanced() {
        let lb = LoadBalance::new(1);
        lb.record(0, 42);
        assert!((lb.imbalance_factor() - 1.0).abs() < 1e-12);
        assert_eq!(lb.participation(), 1.0);
    }

    #[test]
    fn imbalance_from_summary_guards_degenerate_inputs() {
        use crate::stats::Summary;
        let zero = Summary::of_u64(&[]);
        assert_eq!(imbalance_from_summary(&zero), 0.0);
        let nan = Summary { count: 1, sum: f64::NAN, avg: f64::NAN, max: 1.0, min: 0.0, std: 0.0 };
        assert_eq!(imbalance_from_summary(&nan), 0.0);
        let inf_max =
            Summary { count: 1, sum: 1.0, avg: 1.0, max: f64::INFINITY, min: 0.0, std: 0.0 };
        assert_eq!(imbalance_from_summary(&inf_max), 0.0);
        let ok = Summary::of_u64(&[10, 30]);
        assert!((imbalance_from_summary(&ok) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn activity_fractions() {
        let a = ActivityTally::new();
        for _ in 0..3 {
            a.record_active();
        }
        a.record_idle_unassigned();
        for _ in 0..6 {
            a.record_idle_no_work();
        }
        assert_eq!(a.launched(), 10);
        assert_eq!(a.active(), 3);
        assert_eq!(a.idle(), 7);
        assert_eq!(a.idle_unassigned(), 1);
        assert_eq!(a.idle_no_work(), 6);
        assert!((a.active_fraction() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn activity_empty() {
        let a = ActivityTally::new();
        assert_eq!(a.active_fraction(), 0.0);
        assert_eq!(a.launched(), 0);
    }

    #[test]
    fn activity_reset() {
        let mut a = ActivityTally::new();
        a.record_active();
        a.record_idle_no_work();
        a.reset();
        assert_eq!(a.launched(), 0);
    }
}
