//! Run-to-run aggregation for internally non-deterministic codes.
//!
//! ECL-MIS is deterministic in its final result but its intermediate
//! behavior depends on thread timing (§3, §6.1.1), so the paper profiles
//! it several times and reports each run side by side (Table 3). This
//! module collects per-run summaries and quantifies their stability.

use crate::stats::{median, Summary};

/// Per-run summaries of one metric across repeated executions.
#[derive(Clone, Debug, Default)]
pub struct MultiRun {
    runs: Vec<Summary>,
    runtimes: Vec<f64>,
}

impl MultiRun {
    /// An empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one run's metric summary (and optional runtime in
    /// seconds, used for median-run selection; pass 0.0 if unused).
    pub fn push(&mut self, summary: Summary, runtime: f64) {
        self.runs.push(summary);
        self.runtimes.push(runtime);
    }

    /// Number of recorded runs.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// True when no runs are recorded.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// The summary of run `i`.
    pub fn run(&self, i: usize) -> &Summary {
        &self.runs[i]
    }

    /// All run summaries.
    pub fn runs(&self) -> &[Summary] {
        &self.runs
    }

    /// The run with the median runtime, which is the run the paper
    /// reports ("we run each code nine times per input and report
    /// results from the run yielding the median runtime", §5.2).
    pub fn median_run(&self) -> Option<&Summary> {
        crate::stats::median_index(&self.runtimes).map(|i| &self.runs[i])
    }

    /// Median runtime across runs.
    pub fn median_runtime(&self) -> f64 {
        median(&self.runtimes)
    }

    /// Relative spread of the per-run averages:
    /// `(max avg − min avg) / median avg`. Small values mean the metric
    /// is stable despite internal non-determinism — the Table 3 finding
    /// ("the iteration counts are a little different for every run, but
    /// the general trends remain the same").
    pub fn avg_spread(&self) -> f64 {
        if self.runs.is_empty() {
            return 0.0;
        }
        let avgs: Vec<f64> = self.runs.iter().map(|s| s.avg).collect();
        let lo = avgs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = avgs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mid = median(&avgs);
        if mid == 0.0 {
            0.0
        } else {
            (hi - lo) / mid
        }
    }

    /// Like [`MultiRun::avg_spread`] but over the per-run maxima, which
    /// vary more (Table 3's Max columns).
    pub fn max_spread(&self) -> f64 {
        if self.runs.is_empty() {
            return 0.0;
        }
        let maxs: Vec<f64> = self.runs.iter().map(|s| s.max).collect();
        let lo = maxs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = maxs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mid = median(&maxs);
        if mid == 0.0 {
            0.0
        } else {
            (hi - lo) / mid
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn s(avg: f64, max: f64) -> Summary {
        Summary { count: 10, sum: avg * 10.0, avg, max, min: 0.0, std: 0.0 }
    }

    #[test]
    fn collects_runs() {
        let mut m = MultiRun::new();
        m.push(s(2.28, 42.0), 1.0);
        m.push(s(2.32, 49.0), 1.2);
        m.push(s(2.26, 37.0), 0.9);
        assert_eq!(m.len(), 3);
        assert_eq!(m.run(1).avg, 2.32);
    }

    #[test]
    fn median_run_selection() {
        let mut m = MultiRun::new();
        m.push(s(1.0, 1.0), 5.0);
        m.push(s(2.0, 2.0), 1.0);
        m.push(s(3.0, 3.0), 3.0);
        // runtimes sorted: 1.0 (run 1), 3.0 (run 2), 5.0 (run 0) -> median run 2.
        assert_eq!(m.median_run().unwrap().avg, 3.0);
        assert_eq!(m.median_runtime(), 3.0);
    }

    #[test]
    fn stable_runs_have_small_spread() {
        let mut m = MultiRun::new();
        m.push(s(2.28, 42.0), 0.0);
        m.push(s(2.32, 49.0), 0.0);
        m.push(s(2.26, 37.0), 0.0);
        assert!(m.avg_spread() < 0.05, "avg spread {}", m.avg_spread());
        assert!(m.max_spread() < 0.35, "max spread {}", m.max_spread());
    }

    #[test]
    fn unstable_runs_have_large_spread() {
        let mut m = MultiRun::new();
        m.push(s(1.0, 10.0), 0.0);
        m.push(s(9.0, 90.0), 0.0);
        assert!(m.avg_spread() > 1.0);
    }

    #[test]
    fn empty_multirun() {
        let m = MultiRun::new();
        assert!(m.is_empty());
        assert!(m.median_run().is_none());
        assert_eq!(m.avg_spread(), 0.0);
        assert_eq!(m.median_runtime(), 0.0);
    }

    #[test]
    fn zero_average_spread_guard() {
        let mut m = MultiRun::new();
        m.push(s(0.0, 0.0), 0.0);
        m.push(s(0.0, 0.0), 0.0);
        assert_eq!(m.avg_spread(), 0.0);
        assert_eq!(m.max_spread(), 0.0);
    }
}
