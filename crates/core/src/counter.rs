//! The two counter granularities of §3: thread-local and global.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::stats::Summary;

/// Whether profiling counters record anything.
///
/// The paper notes that instrumenting code perturbs its timing (§3);
/// `Off` lets the same instrumented source run with counters compiled
/// to no-ops so the perturbation can be measured (see the
/// `bench_profiling_overhead` benchmark).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ProfileMode {
    /// Record all counter events.
    #[default]
    On,
    /// Ignore all counter events (near-zero overhead).
    Off,
}

impl ProfileMode {
    /// True when counters record.
    #[inline]
    pub fn enabled(self) -> bool {
        matches!(self, ProfileMode::On)
    }
}

/// A single cumulative counter shared by all threads ("a global counter
/// shows the total number of times an event occurred across all
/// threads", §3).
#[derive(Debug, Default)]
pub struct GlobalCounter {
    value: AtomicU64,
}

impl GlobalCounter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one event.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `k` events. Relaxed ordering: counts are aggregated only
    /// after the parallel region joins, which provides the necessary
    /// happens-before edge.
    #[inline]
    pub fn add(&self, k: u64) {
        self.value.fetch_add(k, Ordering::Relaxed);
    }

    /// Current total.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero (requires exclusive access, so it cannot race
    /// with concurrent increments).
    pub fn reset(&mut self) {
        *self.value.get_mut() = 0;
    }
}

impl Clone for GlobalCounter {
    fn clone(&self) -> Self {
        Self { value: AtomicU64::new(self.get()) }
    }
}

/// One counter slot per (simulated) thread ("the thread-local counters
/// show the number of times a specific event occurred for each
/// thread", §3).
///
/// Each slot is an `AtomicU64`, but by construction only the rayon
/// worker currently executing that simulated thread increments it, so
/// there is no contention; atomics are needed only to satisfy the
/// aliasing rules of sharing the slice across workers.
#[derive(Debug)]
pub struct PerThreadCounter {
    slots: Box<[AtomicU64]>,
}

impl PerThreadCounter {
    /// A counter with `num_threads` zeroed slots.
    pub fn new(num_threads: usize) -> Self {
        let mut v = Vec::with_capacity(num_threads);
        v.resize_with(num_threads, AtomicU64::default);
        Self { slots: v.into_boxed_slice() }
    }

    /// Number of slots.
    #[inline]
    pub fn num_threads(&self) -> usize {
        self.slots.len()
    }

    /// Adds one event for thread `tid`.
    #[inline]
    pub fn inc(&self, tid: usize) {
        self.add(tid, 1);
    }

    /// Adds `k` events for thread `tid`.
    #[inline]
    pub fn add(&self, tid: usize, k: u64) {
        self.slots[tid].fetch_add(k, Ordering::Relaxed);
    }

    /// Current count of thread `tid`.
    #[inline]
    pub fn get(&self, tid: usize) -> u64 {
        self.slots[tid].load(Ordering::Relaxed)
    }

    /// Copies all slots out.
    pub fn values(&self) -> Vec<u64> {
        self.slots.iter().map(|s| s.load(Ordering::Relaxed)).collect()
    }

    /// Sum over all threads (the global view of a thread-local counter).
    pub fn total(&self) -> u64 {
        self.slots.iter().map(|s| s.load(Ordering::Relaxed)).sum()
    }

    /// Average / max / min / stddev over all thread slots, the form in
    /// which the paper reports per-thread metrics (Tables 2, 3, 5).
    pub fn summary(&self) -> Summary {
        Summary::of_u64(&self.values())
    }

    /// Resets all slots to zero (requires exclusive access).
    pub fn reset(&mut self) {
        for s in self.slots.iter_mut() {
            *s.get_mut() = 0;
        }
    }
}

impl Clone for PerThreadCounter {
    fn clone(&self) -> Self {
        let slots: Vec<AtomicU64> = self.values().into_iter().map(AtomicU64::new).collect();
        Self { slots: slots.into_boxed_slice() }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn global_counter_accumulates() {
        let c = GlobalCounter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn global_counter_reset() {
        let mut c = GlobalCounter::new();
        c.add(9);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn global_counter_concurrent() {
        let c = GlobalCounter::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
    }

    #[test]
    fn per_thread_slots_independent() {
        let c = PerThreadCounter::new(4);
        c.inc(0);
        c.add(2, 10);
        assert_eq!(c.get(0), 1);
        assert_eq!(c.get(1), 0);
        assert_eq!(c.get(2), 10);
        assert_eq!(c.total(), 11);
        assert_eq!(c.values(), vec![1, 0, 10, 0]);
    }

    #[test]
    fn per_thread_summary() {
        let c = PerThreadCounter::new(4);
        for (tid, k) in [(0, 1), (1, 2), (2, 3), (3, 6)] {
            c.add(tid, k);
        }
        let s = c.summary();
        assert_eq!(s.max, 6.0);
        assert_eq!(s.min, 1.0);
        assert!((s.avg - 3.0).abs() < 1e-12);
    }

    #[test]
    fn per_thread_concurrent_disjoint_slots() {
        let c = PerThreadCounter::new(8);
        std::thread::scope(|s| {
            for tid in 0..8 {
                let c = &c;
                s.spawn(move || {
                    for _ in 0..500 {
                        c.inc(tid);
                    }
                });
            }
        });
        assert!(c.values().iter().all(|&v| v == 500));
    }

    #[test]
    fn per_thread_reset() {
        let mut c = PerThreadCounter::new(2);
        c.add(1, 5);
        c.reset();
        assert_eq!(c.total(), 0);
    }

    #[test]
    #[should_panic]
    fn per_thread_out_of_range_panics() {
        PerThreadCounter::new(2).inc(2);
    }

    #[test]
    fn clone_snapshots_values() {
        let c = GlobalCounter::new();
        c.add(3);
        let d = c.clone();
        c.add(1);
        assert_eq!(d.get(), 3);
        assert_eq!(c.get(), 4);
    }

    #[test]
    fn mode_flags() {
        assert!(ProfileMode::On.enabled());
        assert!(!ProfileMode::Off.enabled());
        assert_eq!(ProfileMode::default(), ProfileMode::On);
    }
}
