//! Convergence traces: one scalar per round/iteration.
//!
//! Iterative irregular algorithms converge by shrinking something —
//! undecided vertices (MIS), uncolored vertices (GC), components
//! (MST), surviving edges (SCC). Recording that scalar per round is
//! the cheapest possible progress instrumentation and immediately
//! shows convergence pathologies (plateaus, slow tails) that aggregate
//! counters hide.

use parking_lot::Mutex;

/// An append-only series of per-round scalars.
#[derive(Debug, Default)]
pub struct ConvergenceTrace {
    points: Mutex<Vec<u64>>,
}

impl ConvergenceTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the value observed at the end of a round.
    pub fn push(&self, value: u64) {
        self.points.lock().push(value);
    }

    /// The recorded series.
    pub fn values(&self) -> Vec<u64> {
        self.points.lock().clone()
    }

    /// Number of recorded rounds.
    pub fn len(&self) -> usize {
        self.points.lock().len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.points.lock().is_empty()
    }

    /// True if the series never increases — the expected shape for a
    /// monotonically shrinking quantity.
    pub fn is_non_increasing(&self) -> bool {
        let pts = self.points.lock();
        pts.windows(2).all(|w| w[0] >= w[1])
    }

    /// Number of trailing rounds during which the value changed by at
    /// most `epsilon` — the "slow tail" length.
    pub fn tail_length(&self, epsilon: u64) -> usize {
        let pts = self.points.lock();
        let mut tail = 0;
        for w in pts.windows(2).rev() {
            if w[0].abs_diff(w[1]) <= epsilon {
                tail += 1;
            } else {
                break;
            }
        }
        tail
    }

    /// Renders the trace as a one-line-per-round bar chart.
    pub fn render(&self, title: &str, width: usize) -> String {
        let pts = self.points.lock();
        let entries: Vec<(String, f64)> = pts
            .iter()
            .enumerate()
            .map(|(i, &v)| (format!("round {:>3}", i + 1), v as f64))
            .collect();
        crate::chart::bar_chart(title, &entries, width)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let t = ConvergenceTrace::new();
        t.push(100);
        t.push(40);
        t.push(5);
        assert_eq!(t.values(), vec![100, 40, 5]);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn monotonicity_check() {
        let t = ConvergenceTrace::new();
        for v in [50, 30, 30, 10] {
            t.push(v);
        }
        assert!(t.is_non_increasing());
        t.push(12);
        assert!(!t.is_non_increasing());
    }

    #[test]
    fn tail_detection() {
        let t = ConvergenceTrace::new();
        for v in [100, 50, 10, 9, 9, 8] {
            t.push(v);
        }
        // Last three deltas: 1, 0, 1 -> all <= 1.
        assert_eq!(t.tail_length(1), 3);
        // The final delta (9 -> 8) exceeds 0, so the zero-epsilon tail
        // is empty.
        assert_eq!(t.tail_length(0), 0);
        t.push(8);
        assert_eq!(t.tail_length(0), 1);
        assert_eq!(ConvergenceTrace::new().tail_length(5), 0);
    }

    #[test]
    fn renders_rounds() {
        let t = ConvergenceTrace::new();
        t.push(10);
        t.push(3);
        let s = t.render("undecided", 20);
        assert!(s.contains("round   1"));
        assert!(s.contains("round   2"));
    }

    #[test]
    fn concurrent_pushes_all_land() {
        let t = ConvergenceTrace::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for v in 0..100 {
                        t.push(v);
                    }
                });
            }
        });
        assert_eq!(t.len(), 800);
    }
}
