//! Named counter registries and snapshots.
//!
//! Algorithms typically own their counters directly in a `Counters`
//! struct; the registry exists so harnesses and reports can treat a
//! heterogeneous set of counters uniformly: register during setup, pass
//! `&Registry` into the parallel region, snapshot afterwards.

use crate::atomics::AtomicTally;
use crate::counter::{GlobalCounter, PerThreadCounter};
use crate::metrics::ActivityTally;
use crate::stats::Summary;
use crate::table::Table;

/// Handle to a counter registered in a [`Registry`]. The `kind` is
/// encoded in the type parameter-free handle; using a handle with the
/// wrong accessor panics, which indicates a programming error.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterHandle {
    kind: Kind,
    index: usize,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    Global,
    PerThread,
    Tally,
    Activity,
}

/// A named collection of counters of all granularities.
#[derive(Debug, Default)]
pub struct Registry {
    global: Vec<(String, GlobalCounter)>,
    per_thread: Vec<(String, PerThreadCounter)>,
    tallies: Vec<(String, AtomicTally)>,
    activities: Vec<(String, ActivityTally)>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a global counter under `name`.
    pub fn global(&mut self, name: impl Into<String>) -> CounterHandle {
        self.global.push((name.into(), GlobalCounter::new()));
        CounterHandle { kind: Kind::Global, index: self.global.len() - 1 }
    }

    /// Registers a per-thread counter with `num_threads` slots.
    pub fn per_thread(&mut self, name: impl Into<String>, num_threads: usize) -> CounterHandle {
        self.per_thread.push((name.into(), PerThreadCounter::new(num_threads)));
        CounterHandle { kind: Kind::PerThread, index: self.per_thread.len() - 1 }
    }

    /// Registers an atomic-outcome tally.
    pub fn tally(&mut self, name: impl Into<String>) -> CounterHandle {
        self.tallies.push((name.into(), AtomicTally::new()));
        CounterHandle { kind: Kind::Tally, index: self.tallies.len() - 1 }
    }

    /// Registers an idle/active activity tally.
    pub fn activity(&mut self, name: impl Into<String>) -> CounterHandle {
        self.activities.push((name.into(), ActivityTally::new()));
        CounterHandle { kind: Kind::Activity, index: self.activities.len() - 1 }
    }

    /// The global counter behind `h`.
    ///
    /// # Panics
    /// Panics if `h` is not a global-counter handle from this registry.
    pub fn get_global(&self, h: CounterHandle) -> &GlobalCounter {
        assert_eq!(h.kind, Kind::Global, "handle kind mismatch");
        &self.global[h.index].1
    }

    /// The per-thread counter behind `h`.
    pub fn get_per_thread(&self, h: CounterHandle) -> &PerThreadCounter {
        assert_eq!(h.kind, Kind::PerThread, "handle kind mismatch");
        &self.per_thread[h.index].1
    }

    /// The atomic tally behind `h`.
    pub fn get_tally(&self, h: CounterHandle) -> &AtomicTally {
        assert_eq!(h.kind, Kind::Tally, "handle kind mismatch");
        &self.tallies[h.index].1
    }

    /// The activity tally behind `h`.
    pub fn get_activity(&self, h: CounterHandle) -> &ActivityTally {
        assert_eq!(h.kind, Kind::Activity, "handle kind mismatch");
        &self.activities[h.index].1
    }

    /// Looks up a counter by name across all kinds.
    pub fn find(&self, name: &str) -> Option<CounterHandle> {
        if let Some(i) = self.global.iter().position(|(n, _)| n == name) {
            return Some(CounterHandle { kind: Kind::Global, index: i });
        }
        if let Some(i) = self.per_thread.iter().position(|(n, _)| n == name) {
            return Some(CounterHandle { kind: Kind::PerThread, index: i });
        }
        if let Some(i) = self.tallies.iter().position(|(n, _)| n == name) {
            return Some(CounterHandle { kind: Kind::Tally, index: i });
        }
        if let Some(i) = self.activities.iter().position(|(n, _)| n == name) {
            return Some(CounterHandle { kind: Kind::Activity, index: i });
        }
        None
    }

    /// Captures the current values of every registered counter.
    pub fn snapshot(&self) -> Snapshot {
        let mut entries = Vec::new();
        for (name, c) in &self.global {
            entries.push((name.clone(), Entry::Global { total: c.get() }));
        }
        for (name, c) in &self.per_thread {
            entries
                .push((name.clone(), Entry::PerThread { total: c.total(), summary: c.summary() }));
        }
        for (name, t) in &self.tallies {
            entries.push((
                name.clone(),
                Entry::Atomic {
                    attempted: t.attempted(),
                    updated: t.updated(),
                    no_effect: t.no_effect(),
                    cas_failed: t.cas_failed(),
                },
            ));
        }
        for (name, a) in &self.activities {
            entries.push((
                name.clone(),
                Entry::Activity {
                    active: a.active(),
                    idle_unassigned: a.idle_unassigned(),
                    idle_no_work: a.idle_no_work(),
                },
            ));
        }
        Snapshot { entries }
    }

    /// Resets every registered counter (requires exclusive access).
    pub fn reset(&mut self) {
        for (_, c) in &mut self.global {
            c.reset();
        }
        for (_, c) in &mut self.per_thread {
            c.reset();
        }
        for (_, t) in &mut self.tallies {
            t.reset();
        }
        for (_, a) in &mut self.activities {
            a.reset();
        }
    }
}

/// A point-in-time capture of all counters in a registry.
#[derive(Clone, Debug, PartialEq)]
pub struct Snapshot {
    entries: Vec<(String, Entry)>,
}

/// One captured counter value.
#[derive(Clone, Debug, PartialEq)]
pub enum Entry {
    /// A global counter total.
    Global {
        /// Cumulative event count.
        total: u64,
    },
    /// A per-thread counter, pre-aggregated.
    PerThread {
        /// Sum over all thread slots.
        total: u64,
        /// Avg/max/min/std over thread slots.
        summary: Summary,
    },
    /// An atomic-outcome tally.
    Atomic {
        /// Operations attempted.
        attempted: u64,
        /// Operations that changed the target.
        updated: u64,
        /// Min/max operations with no effect.
        no_effect: u64,
        /// Failed CAS attempts.
        cas_failed: u64,
    },
    /// An idle/active activity tally.
    Activity {
        /// Actively computing threads.
        active: u64,
        /// Launched threads without an assigned element.
        idle_unassigned: u64,
        /// Threads whose element failed the work condition.
        idle_no_work: u64,
    },
}

impl Snapshot {
    /// All captured entries in registration order.
    pub fn entries(&self) -> &[(String, Entry)] {
        &self.entries
    }

    /// The entry registered under `name`.
    pub fn get(&self, name: &str) -> Option<&Entry> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, e)| e)
    }

    /// Renders the snapshot as an aligned text table.
    pub fn to_table(&self, title: &str) -> Table {
        let mut t = Table::new(title, &["Counter", "Total", "Avg", "Max", "Detail"]);
        for (name, e) in &self.entries {
            match e {
                Entry::Global { total } => {
                    t.row(&[name, &total.to_string(), "-", "-", "global"]);
                }
                Entry::PerThread { total, summary } => {
                    t.row(&[
                        name,
                        &total.to_string(),
                        &format!("{:.2}", summary.avg),
                        &format!("{:.0}", summary.max),
                        &format!("per-thread ({} slots)", summary.count),
                    ]);
                }
                Entry::Atomic { attempted, updated, no_effect, cas_failed } => {
                    t.row(&[
                        name,
                        &attempted.to_string(),
                        "-",
                        "-",
                        &format!("updated={updated} no-effect={no_effect} cas-failed={cas_failed}"),
                    ]);
                }
                Entry::Activity { active, idle_unassigned, idle_no_work } => {
                    t.row(&[
                        name,
                        &(active + idle_unassigned + idle_no_work).to_string(),
                        "-",
                        "-",
                        &format!(
                            "active={active} idle-unassigned={idle_unassigned} idle-no-work={idle_no_work}"
                        ),
                    ]);
                }
            }
        }
        t
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn register_record_snapshot() {
        let mut r = Registry::new();
        let g = r.global("hooks");
        let p = r.per_thread("iterations", 4);
        let t = r.tally("cas");
        let a = r.activity("kernel1");

        r.get_global(g).add(7);
        r.get_per_thread(p).add(2, 5);
        r.get_tally(t).record(crate::atomics::AtomicOutcome::CasFailed);
        r.get_activity(a).record_active();

        let snap = r.snapshot();
        assert_eq!(snap.get("hooks"), Some(&Entry::Global { total: 7 }));
        match snap.get("iterations") {
            Some(Entry::PerThread { total, summary }) => {
                assert_eq!(*total, 5);
                assert_eq!(summary.max, 5.0);
            }
            other => panic!("unexpected entry {other:?}"),
        }
        match snap.get("cas") {
            Some(Entry::Atomic { attempted, cas_failed, .. }) => {
                assert_eq!(*attempted, 1);
                assert_eq!(*cas_failed, 1);
            }
            other => panic!("unexpected entry {other:?}"),
        }
        assert!(snap.get("missing").is_none());
    }

    #[test]
    fn find_by_name() {
        let mut r = Registry::new();
        let g = r.global("a");
        let p = r.per_thread("b", 2);
        assert_eq!(r.find("a"), Some(g));
        assert_eq!(r.find("b"), Some(p));
        assert_eq!(r.find("zzz"), None);
    }

    #[test]
    #[should_panic(expected = "handle kind mismatch")]
    fn wrong_kind_panics() {
        let mut r = Registry::new();
        let g = r.global("a");
        r.get_per_thread(g);
    }

    #[test]
    fn reset_clears_all() {
        let mut r = Registry::new();
        let g = r.global("a");
        let p = r.per_thread("b", 2);
        r.get_global(g).add(3);
        r.get_per_thread(p).inc(0);
        r.reset();
        let snap = r.snapshot();
        assert_eq!(snap.get("a"), Some(&Entry::Global { total: 0 }));
        match snap.get("b") {
            Some(Entry::PerThread { total, .. }) => assert_eq!(*total, 0),
            other => panic!("unexpected entry {other:?}"),
        }
    }

    #[test]
    fn snapshot_table_renders_all_kinds() {
        let mut r = Registry::new();
        r.global("g");
        r.per_thread("p", 3);
        r.tally("t");
        r.activity("a");
        let text = r.snapshot().to_table("test").render();
        for name in ["g", "p", "t", "a"] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
    }

    #[test]
    fn snapshot_is_point_in_time() {
        let mut r = Registry::new();
        let g = r.global("g");
        r.get_global(g).add(1);
        let snap = r.snapshot();
        r.get_global(g).add(10);
        assert_eq!(snap.get("g"), Some(&Entry::Global { total: 1 }));
    }
}
