//! Streaming percentile sketches over log-spaced buckets.
//!
//! [`Histogram`](crate::Histogram) is built *after the fact* from a
//! complete value slice. The paper's per-thread distributions
//! (iterations, adjacency lengths, CAS outcomes) additionally need a
//! form that can be recorded **while the kernels run** and merged
//! across runs, kernels, and threads without keeping the raw values:
//! a fixed-width array of power-of-two buckets plus streaming
//! count/sum/min/max. Quantiles come out as upper bucket bounds — a
//! factor-of-two error envelope, which is exactly the resolution the
//! paper's log-scale tables and charts use.
//!
//! All mutation is relaxed-atomic, so a sketch can be shared across
//! simulated threads exactly like [`GlobalCounter`]
//! (crate::GlobalCounter): slots race benignly and are aggregated
//! after the parallel region joins.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::Serialize;

/// Bucket count: bucket 0 holds the value 0, bucket `k` in `1..=64`
/// holds `[2^(k-1), 2^k)`, covering all of `u64` with no saturation.
pub const SKETCH_BUCKETS: usize = 65;

/// A mergeable streaming histogram with percentile estimates.
#[derive(Debug)]
pub struct LogSketch {
    buckets: [AtomicU64; SKETCH_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    /// Minimum seen (`u64::MAX` when empty — resolved by `min()`).
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for LogSketch {
    fn default() -> Self {
        Self::new()
    }
}

impl LogSketch {
    /// An empty sketch.
    pub fn new() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; SKETCH_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// The bucket index `v` falls into (same mapping as
    /// [`Histogram::bucket_of`](crate::Histogram::bucket_of)).
    #[inline]
    pub fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// Inclusive-exclusive value range of bucket `k` (the top bucket's
    /// upper bound saturates at `u64::MAX`).
    pub fn bucket_range(k: usize) -> (u64, u64) {
        match k {
            0 => (0, 1),
            64 => (1u64 << 63, u64::MAX),
            _ => (1u64 << (k - 1), 1u64 << k),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` samples of value `v` (used when folding per-thread
    /// counter slots in at end of run).
    #[inline]
    pub fn record_n(&self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[Self::bucket_of(v)].fetch_add(n, Ordering::Relaxed);
        self.count.fetch_add(n, Ordering::Relaxed);
        self.sum.fetch_add(v.saturating_mul(n), Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Folds a complete value slice in (one sample per element) — the
    /// merge of a per-thread counter's final distribution.
    pub fn record_values(&self, values: &[u64]) {
        for &v in values {
            self.record(v);
        }
    }

    /// Merges `other` into `self`. Sketches share one fixed bucket
    /// layout, so the merge is exact (bucket-wise addition).
    pub fn merge(&self, other: &LogSketch) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            let c = theirs.load(Ordering::Relaxed);
            if c > 0 {
                mine.fetch_add(c, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum.fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min.fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max.fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Total samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        let m = self.min.load(Ordering::Relaxed);
        if self.count() == 0 {
            0
        } else {
            m
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Arithmetic mean (0 when empty — never NaN).
    pub fn mean(&self) -> f64 {
        let c = self.count();
        if c == 0 {
            0.0
        } else {
            self.sum() as f64 / c as f64
        }
    }

    /// The p-quantile (0.0–1.0) as an upper bucket bound, clamped to
    /// the observed maximum. 0 when empty.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]`.
    pub fn quantile(&self, p: f64) -> u64 {
        assert!((0.0..=1.0).contains(&p), "quantile out of range");
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let target = (p * count as f64).ceil().max(1.0) as u64;
        let mut acc = 0u64;
        for (k, b) in self.buckets.iter().enumerate() {
            acc += b.load(Ordering::Relaxed);
            if acc >= target {
                // Largest value the bucket can hold (the top bucket's
                // range is inclusive), clamped to the observed max so a
                // single-sample sketch reports the sample itself.
                let bound = match k {
                    0 => 0,
                    64 => u64::MAX,
                    _ => Self::bucket_range(k).1 - 1,
                };
                return bound.min(self.max());
            }
        }
        self.max()
    }

    /// An immutable copy for export.
    pub fn snapshot(&self) -> SketchSnapshot {
        let buckets: Vec<(u32, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(k, b)| {
                let c = b.load(Ordering::Relaxed);
                if c > 0 {
                    Some((k as u32, c))
                } else {
                    None
                }
            })
            .collect();
        SketchSnapshot {
            count: self.count(),
            sum: self.sum(),
            min: self.min(),
            max: self.max(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            buckets,
        }
    }

    /// Resets to empty (requires exclusive access).
    pub fn reset(&mut self) {
        for b in self.buckets.iter_mut() {
            *b.get_mut() = 0;
        }
        *self.count.get_mut() = 0;
        *self.sum.get_mut() = 0;
        *self.min.get_mut() = u64::MAX;
        *self.max.get_mut() = 0;
    }
}

impl Clone for LogSketch {
    fn clone(&self) -> Self {
        let c = Self::new();
        c.merge(self);
        c
    }
}

/// Immutable export form of a [`LogSketch`]: summary fields plus the
/// non-empty `(bucket index, count)` pairs.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct SketchSnapshot {
    /// Total samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Median upper bound.
    pub p50: u64,
    /// 90th-percentile upper bound.
    pub p90: u64,
    /// 99th-percentile upper bound.
    pub p99: u64,
    /// Non-empty buckets as `(index, count)`.
    pub buckets: Vec<(u32, u64)>,
}

impl SketchSnapshot {
    /// Mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn empty_sketch_is_all_zero() {
        let s = LogSketch::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.quantile(0.0), 0);
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.quantile(1.0), 0);
    }

    #[test]
    fn single_sample() {
        let s = LogSketch::new();
        s.record(7);
        assert_eq!(s.count(), 1);
        assert_eq!(s.min(), 7);
        assert_eq!(s.max(), 7);
        assert_eq!(s.mean(), 7.0);
        // The quantile bound is clamped to the observed max.
        assert_eq!(s.quantile(0.5), 7);
        assert_eq!(s.quantile(1.0), 7);
    }

    #[test]
    fn zeros_land_in_bucket_zero() {
        let s = LogSketch::new();
        s.record_n(0, 10);
        s.record(4);
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.snapshot().buckets, vec![(0, 10), (3, 1)]);
    }

    #[test]
    fn top_bucket_holds_u64_max_without_overflow() {
        let s = LogSketch::new();
        s.record(u64::MAX);
        s.record(u64::MAX); // sum saturates, buckets stay exact
        assert_eq!(LogSketch::bucket_of(u64::MAX), 64);
        assert_eq!(s.count(), 2);
        assert_eq!(s.max(), u64::MAX);
        assert_eq!(s.quantile(1.0), u64::MAX);
        assert_eq!(LogSketch::bucket_range(64).1, u64::MAX);
    }

    #[test]
    fn quantiles_are_monotone_and_bounded() {
        let s = LogSketch::new();
        for v in 0..1000u64 {
            s.record(v);
        }
        let q = |p| s.quantile(p);
        assert!(q(0.1) <= q(0.5) && q(0.5) <= q(0.9) && q(0.9) <= q(1.0));
        assert_eq!(q(1.0), 999);
        // Median of 0..999 is ~500 → bucket upper bound 511.
        assert_eq!(q(0.5), 511);
    }

    #[test]
    fn merge_is_bucketwise_exact() {
        let a = LogSketch::new();
        let b = LogSketch::new();
        a.record_values(&[1, 2, 3]);
        b.record_values(&[100, 200]);
        a.merge(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.sum(), 306);
        assert_eq!(a.min(), 1);
        assert_eq!(a.max(), 200);
        let direct = LogSketch::new();
        direct.record_values(&[1, 2, 3, 100, 200]);
        assert_eq!(a.snapshot(), direct.snapshot());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let a = LogSketch::new();
        a.record_values(&[5, 9]);
        let before = a.snapshot();
        a.merge(&LogSketch::new());
        assert_eq!(a.snapshot(), before);
    }

    #[test]
    fn concurrent_records_aggregate() {
        let s = LogSketch::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for v in 0..1000u64 {
                        s.record(v);
                    }
                });
            }
        });
        assert_eq!(s.count(), 8000);
        assert_eq!(s.sum(), 8 * (999 * 1000 / 2));
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn bad_quantile_panics() {
        LogSketch::new().quantile(-0.1);
    }

    #[test]
    fn snapshot_roundtrips_summary() {
        let s = LogSketch::new();
        s.record_values(&[0, 1, 1, 8, 1 << 40]);
        let snap = s.snapshot();
        assert_eq!(snap.count, 5);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 1 << 40);
        assert!(snap.mean() > 0.0);
        assert_eq!(snap.buckets.iter().map(|&(_, c)| c).sum::<u64>(), 5);
    }

    #[test]
    fn reset_empties() {
        let mut s = LogSketch::new();
        s.record(3);
        s.reset();
        assert_eq!(s.count(), 0);
        assert_eq!(s.min(), 0);
        assert_eq!(s.snapshot().buckets, vec![]);
    }

    #[test]
    fn clone_snapshots_values() {
        let s = LogSketch::new();
        s.record(3);
        let t = s.clone();
        s.record(4);
        assert_eq!(t.count(), 1);
        assert_eq!(s.count(), 2);
    }
}
