//! Log-bucketed histograms of counter values.
//!
//! Per-thread (and per-vertex) counter distributions are heavy-tailed
//! for irregular workloads; a power-of-two-bucket histogram shows the
//! shape at a glance and feeds the text charts the harness prints
//! ("we statistically and visually analyze the code-specific
//! metrics").

use serde::Serialize;

/// A histogram over power-of-two buckets: bucket 0 holds the value 0,
/// bucket `k >= 1` holds values in `[2^(k-1), 2^k)`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
}

impl Histogram {
    /// Builds the histogram of `values`.
    pub fn of(values: &[u64]) -> Self {
        let mut buckets: Vec<u64> = Vec::new();
        for &v in values {
            let k = Self::bucket_of(v);
            if k >= buckets.len() {
                buckets.resize(k + 1, 0);
            }
            buckets[k] += 1;
        }
        Self { buckets, count: values.len() as u64 }
    }

    /// The bucket index a value falls into.
    pub fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// Value range of bucket `k`, inclusive-exclusive — except the top
    /// bucket (index 64, holding `[2^63, u64::MAX]`), whose upper
    /// bound saturates at `u64::MAX` inclusively: `1u64 << 64` would
    /// overflow.
    pub fn bucket_range(k: usize) -> (u64, u64) {
        if k == 0 {
            (0, 1)
        } else if k >= 64 {
            (1u64 << 63, u64::MAX)
        } else {
            (1u64 << (k - 1), 1u64 << k)
        }
    }

    /// Largest value bucket `k` can hold.
    fn bucket_top(k: usize) -> u64 {
        if k >= 64 {
            u64::MAX
        } else {
            Self::bucket_range(k).1 - 1
        }
    }

    /// Raw bucket counts (lowest bucket first).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Total samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Fraction of samples in bucket `k` (0 for out-of-range buckets).
    pub fn fraction(&self, k: usize) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.buckets.get(k).copied().unwrap_or(0) as f64 / self.count as f64
    }

    /// The p-quantile (0.0–1.0) as an upper bucket bound — a cheap
    /// percentile estimate over the bucketed data.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]`.
    pub fn quantile_bound(&self, p: f64) -> u64 {
        assert!((0.0..=1.0).contains(&p), "quantile out of range");
        if self.count == 0 {
            return 0;
        }
        let target = (p * self.count as f64).ceil().max(1.0) as u64;
        let mut acc = 0u64;
        for (k, &c) in self.buckets.iter().enumerate() {
            acc += c;
            if acc >= target {
                return Self::bucket_top(k);
            }
        }
        Self::bucket_top(self.buckets.len().saturating_sub(1))
    }

    /// Merges `other` into `self`. The bucket layout is shared (bucket
    /// `k` always covers the same value range), so histograms built
    /// from value sets with different ranges — and hence different
    /// bucket-vector lengths — merge exactly: the shorter vector is
    /// extended to the longer one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, &theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
    }

    /// Renders the histogram as text bars, one line per non-empty
    /// bucket.
    pub fn render(&self, title: &str, width: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{title}");
        let max = self.buckets.iter().copied().max().unwrap_or(0);
        if max == 0 {
            let _ = writeln!(out, "  (no samples)");
            return out;
        }
        for (k, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let (lo, hi) = Self::bucket_range(k);
            let bar = "#".repeat(((c as f64 / max as f64) * width as f64).ceil() as usize);
            let _ = writeln!(out, "  [{lo:>8}, {hi:>8})  {c:>10}  {bar}");
        }
        out
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(1023), 10);
        assert_eq!(Histogram::bucket_of(1024), 11);
        assert_eq!(Histogram::bucket_range(0), (0, 1));
        assert_eq!(Histogram::bucket_range(3), (4, 8));
    }

    #[test]
    fn counts_and_fractions() {
        let h = Histogram::of(&[0, 0, 1, 2, 3, 4, 100]);
        assert_eq!(h.count(), 7);
        assert_eq!(h.buckets()[0], 2); // the zeros
        assert_eq!(h.buckets()[1], 1); // value 1
        assert_eq!(h.buckets()[2], 2); // 2, 3
        assert_eq!(h.buckets()[3], 1); // 4
        assert!((h.fraction(0) - 2.0 / 7.0).abs() < 1e-12);
        assert_eq!(h.fraction(99), 0.0);
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::of(&[]);
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_bound(0.5), 0);
        assert_eq!(h.quantile_bound(0.0), 0);
        assert_eq!(h.quantile_bound(1.0), 0);
        assert!(h.render("t", 20).contains("no samples"));
    }

    #[test]
    fn single_sample_quantiles() {
        let h = Histogram::of(&[12]);
        assert_eq!(h.count(), 1);
        // All quantiles land in 12's bucket, [8, 16).
        assert_eq!(h.quantile_bound(0.0), 15);
        assert_eq!(h.quantile_bound(0.5), 15);
        assert_eq!(h.quantile_bound(1.0), 15);
    }

    #[test]
    fn top_bucket_saturation() {
        // u64::MAX lands in the final bucket (index 64); the bucket
        // arithmetic must not overflow (`1u64 << 64` would) and the
        // quantile bound saturates at u64::MAX.
        let h = Histogram::of(&[u64::MAX, u64::MAX - 1]);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        assert_eq!(h.buckets().len(), 65);
        assert_eq!(h.buckets()[64], 2);
        assert_eq!(Histogram::bucket_range(64), (1u64 << 63, u64::MAX));
        assert_eq!(h.quantile_bound(0.5), u64::MAX);
        assert_eq!(h.quantile_bound(1.0), u64::MAX);
        assert!(h.render("tail", 10).contains("18446744073709551615"));
    }

    #[test]
    fn merge_mismatched_ranges() {
        // Small-value histogram (3 buckets) absorbs a large-value one
        // (12 buckets) and vice versa — same result either way.
        let small = Histogram::of(&[0, 1, 2]);
        let large = Histogram::of(&[1024, 2048]);
        let mut a = small.clone();
        a.merge(&large);
        let mut b = large.clone();
        b.merge(&small);
        assert_eq!(a, b);
        assert_eq!(a, Histogram::of(&[0, 1, 2, 1024, 2048]));
        assert_eq!(a.count(), 5);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut h = Histogram::of(&[3, 9]);
        let before = h.clone();
        h.merge(&Histogram::of(&[]));
        assert_eq!(h, before);
        let mut e = Histogram::of(&[]);
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn quantiles_monotone() {
        let values: Vec<u64> = (0..1000).collect();
        let h = Histogram::of(&values);
        let q50 = h.quantile_bound(0.5);
        let q90 = h.quantile_bound(0.9);
        let q100 = h.quantile_bound(1.0);
        assert!(q50 <= q90 && q90 <= q100);
        // The median of 0..999 is ~500; the bucket bound is the next
        // power of two minus one.
        assert_eq!(q50, 511);
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn bad_quantile_panics() {
        Histogram::of(&[1]).quantile_bound(1.5);
    }

    #[test]
    fn render_shows_nonempty_buckets() {
        let h = Histogram::of(&[1, 1, 1, 8]);
        let s = h.render("iterations", 10);
        assert!(s.contains("iterations"));
        assert!(s.contains("[       1,        2)"));
        assert!(s.contains("[       8,       16)"));
        // Zero bucket absent.
        assert!(!s.contains("[       0,        1)"));
    }
}
