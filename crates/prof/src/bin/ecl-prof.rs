//! `ecl-prof` — profiling artifact toolbox.
//!
//! ```text
//! ecl-prof gate <baseline.json> <candidate.json> [--threshold R] [--mad-k K]
//!               [--abs-floor F] [--metric SUBSTR]
//! ecl-prof expose <manifest.json>
//! ecl-prof folded <capture.etr>
//! ecl-prof flame  <capture.etr> [-o out.svg]
//! ```
//!
//! `gate` exits 2 on usage/parse errors and 1 when a real regression
//! is detected, so CI can wire it directly into a job step.

use std::fs;
use std::process::ExitCode;

use ecl_prof::{folded_to_svg, gate_files, to_folded, to_prometheus, GateConfig, Manifest};

const USAGE: &str = "usage:
  ecl-prof gate <baseline.json> <candidate.json> [--threshold R] [--mad-k K]
                [--abs-floor F] [--metric SUBSTR]
  ecl-prof expose <manifest.json>
  ecl-prof folded <capture.etr>
  ecl-prof flame  <capture.etr> [-o out.svg]";

fn read(path: &str) -> Result<String, String> {
    fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))
}

fn read_capture(path: &str) -> Result<ecl_trace::Snapshot, String> {
    let bytes = fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    ecl_trace::read_snapshot(&mut bytes.as_slice()).map_err(|e| format!("{path}: {e}"))
}

fn parse_flag<T: std::str::FromStr>(
    args: &mut Vec<String>,
    flag: &str,
) -> Result<Option<T>, String> {
    if let Some(i) = args.iter().position(|a| a == flag) {
        if i + 1 >= args.len() {
            return Err(format!("{flag} needs a value"));
        }
        let raw = args.remove(i + 1);
        args.remove(i);
        return raw.parse().map(Some).map_err(|_| format!("bad value for {flag}: {raw}"));
    }
    Ok(None)
}

fn run() -> Result<bool, String> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = if args.is_empty() { String::new() } else { args.remove(0) };
    match cmd.as_str() {
        "gate" => {
            let mut cfg = GateConfig::default();
            if let Some(t) = parse_flag::<f64>(&mut args, "--threshold")? {
                cfg.rel_threshold = t;
            }
            if let Some(k) = parse_flag::<f64>(&mut args, "--mad-k")? {
                cfg.mad_k = k;
            }
            if let Some(f) = parse_flag::<f64>(&mut args, "--abs-floor")? {
                cfg.abs_floor = f;
            }
            cfg.metric_filter = parse_flag::<String>(&mut args, "--metric")?;
            let [base, cand] = args.as_slice() else {
                return Err(format!("gate wants exactly two files\n{USAGE}"));
            };
            let report = gate_files(&read(base)?, &read(cand)?, &cfg)?;
            print!("{}", report.render());
            Ok(report.passed())
        }
        "expose" => {
            let [path] = args.as_slice() else {
                return Err(format!("expose wants one manifest\n{USAGE}"));
            };
            let manifest = Manifest::from_json(&read(path)?)?;
            print!("{}", to_prometheus(&manifest));
            Ok(true)
        }
        "folded" => {
            let [path] = args.as_slice() else {
                return Err(format!("folded wants one .etr capture\n{USAGE}"));
            };
            print!("{}", to_folded(&read_capture(path)?));
            Ok(true)
        }
        "flame" => {
            let out = parse_flag::<String>(&mut args, "-o")?;
            let [path] = args.as_slice() else {
                return Err(format!("flame wants one .etr capture\n{USAGE}"));
            };
            let svg = folded_to_svg(&to_folded(&read_capture(path)?));
            match out {
                Some(dest) => {
                    fs::write(&dest, svg).map_err(|e| format!("{dest}: {e}"))?;
                    eprintln!("wrote {dest}");
                }
                None => print!("{svg}"),
            }
            Ok(true)
        }
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(true)
        }
        other => Err(format!("unknown subcommand {other:?}\n{USAGE}")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("ecl-prof: {msg}");
            ExitCode::from(2)
        }
    }
}
