//! The global profiling sink: the zero-cost-when-disabled hook the
//! simulator's launch and pool code reports into.
//!
//! Mirrors the design of `ecl_trace::sink` exactly: the hot-path guard
//! ([`is_enabled`]) is one relaxed `AtomicBool` load, so a launch on
//! the disabled path pays a single never-taken branch and skips both
//! the timing instrumentation and the sample allocation entirely.
//! Installed collectors are published as a raw pointer backed by an
//! `Arc` that is retired (kept alive forever) instead of dropped, so a
//! racing `on_launch` can never dereference a freed collector; a
//! session installs a handful of collectors at most, so the
//! intentional leak is bounded and tiny.

use std::sync::atomic::{AtomicBool, AtomicPtr, Ordering};
use std::sync::{Arc, Mutex};

use crate::collector::Collector;
use crate::sample::LaunchSample;

static ENABLED: AtomicBool = AtomicBool::new(false);
static PTR: AtomicPtr<Collector> = AtomicPtr::new(std::ptr::null_mut());
static CURRENT: Mutex<SinkState> = Mutex::new(SinkState { current: None, retired: Vec::new() });

struct SinkState {
    current: Option<Arc<Collector>>,
    /// Arcs kept alive forever so racing `on_launch`s never
    /// dereference a freed collector. Bounded by `install` calls.
    retired: Vec<Arc<Collector>>,
}

fn state() -> std::sync::MutexGuard<'static, SinkState> {
    CURRENT.lock().unwrap_or_else(|e| e.into_inner())
}

/// Installs `collector` as the global sink and enables profiling. A
/// previously installed collector keeps its aggregates (fetch it with
/// [`current`] before replacing) but stops receiving launches.
pub fn install(collector: Arc<Collector>) {
    let mut st = state();
    ENABLED.store(false, Ordering::SeqCst);
    if let Some(old) = st.current.take() {
        st.retired.push(old);
    }
    PTR.store(Arc::as_ptr(&collector) as *mut Collector, Ordering::SeqCst);
    st.current = Some(collector);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Stops profiling and detaches the collector, returning it for
/// snapshotting. Storage stays alive (retired) in case another thread
/// is mid-record.
pub fn uninstall() -> Option<Arc<Collector>> {
    let mut st = state();
    ENABLED.store(false, Ordering::SeqCst);
    PTR.store(std::ptr::null_mut(), Ordering::SeqCst);
    let collector = st.current.take()?;
    st.retired.push(Arc::clone(&collector));
    Some(collector)
}

/// Whether launches are currently profiled — the hot-path guard the
/// simulator reads once per launch (not per thread or block).
#[inline(always)]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The installed collector, if any.
pub fn current() -> Option<Arc<Collector>> {
    state().current.clone()
}

/// Records one completed launch into the installed collector. Callers
/// should build the sample only after checking [`is_enabled`]; this
/// re-checks in case of a concurrent uninstall.
pub fn on_launch(sample: &LaunchSample) {
    if !is_enabled() {
        return;
    }
    let ptr = PTR.load(Ordering::Acquire);
    if !ptr.is_null() {
        // SAFETY: `ptr` came from an Arc that install/uninstall retire
        // instead of dropping, so the Collector outlives every reader.
        unsafe { &*ptr }.record(sample);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::sample::WorkerStat;

    fn sample() -> LaunchSample {
        LaunchSample {
            kernel: "k".into(),
            shape: "flat",
            blocks: 2,
            block_size: 32,
            wall_ns: 10,
            workers: vec![WorkerStat { blocks: 2, claims: 1, busy_ns: 8 }],
            req: 0,
            shard: 0,
        }
    }

    // The sink is process-global, so its tests share one #[test] body
    // to avoid cross-test interference under the parallel test runner.
    #[test]
    fn sink_lifecycle() {
        assert!(!is_enabled());
        on_launch(&sample()); // no sink: must be a no-op

        let c = Arc::new(Collector::new());
        install(Arc::clone(&c));
        assert!(is_enabled());
        on_launch(&sample());
        on_launch(&sample());

        let back = uninstall().expect("collector was installed");
        assert!(!is_enabled());
        assert!(Arc::ptr_eq(&back, &c));
        on_launch(&sample()); // detached: no-op
        assert_eq!(back.launches(), 2);

        // Replacing an installed collector redirects new launches.
        install(Arc::clone(&c));
        let c2 = Arc::new(Collector::new());
        install(Arc::clone(&c2));
        on_launch(&sample());
        assert_eq!(c.launches(), 2);
        assert_eq!(c2.launches(), 1);
        uninstall();
    }
}
