//! pprof-style folded stacks (and an SVG flamegraph) from `ecl-trace`
//! captures.
//!
//! A folded-stack line is `frame;frame;frame <value>` — the format
//! `flamegraph.pl` and speedscope ingest directly. We derive stacks
//! from the trace event stream: `PhaseStart`/`PhaseEnd` events form
//! the host-side phase stack (phases nest; exclusive time is
//! attributed to the deepest open phase), and `BlockStart`/`BlockEnd`
//! pairs contribute simulated-block execution time under the phase
//! that was open when the block started, in a synthetic `<blocks>`
//! frame. Block time is cumulative across pool workers, so — exactly
//! like CPU-time flamegraphs — a `<blocks>` frame can be wider than
//! its parent's wall time.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use ecl_trace::{EventKind, Snapshot};

/// Root frame every stack hangs under.
const ROOT: &str = "run";
/// Synthetic frame for simulated-block execution time.
const BLOCKS_FRAME: &str = "<blocks>";

/// Converts a trace capture into folded stacks, one aggregated
/// `path value` line per unique stack, lexicographically sorted.
/// Values are nanoseconds (wall-clock captures) or event-sequence
/// spans (logical-clock captures).
pub fn to_folded(snap: &Snapshot) -> String {
    let mut totals: BTreeMap<String, u64> = BTreeMap::new();
    // Open host-side phases: (name, start_ts, time consumed by nested phases).
    let mut phase_stack: Vec<(String, u64, u64)> = Vec::new();
    // Open blocks: (thread, block) -> (start_ts, phase path at start).
    let mut open_blocks: BTreeMap<(u32, u32), (u64, String)> = BTreeMap::new();
    let last_ts = snap.events.last().map_or(0, |e| e.ts);

    let path_of = |stack: &[(String, u64, u64)]| -> String {
        let mut p = ROOT.to_string();
        for (name, _, _) in stack {
            p.push(';');
            p.push_str(name);
        }
        p
    };

    let close_phase =
        |stack: &mut Vec<(String, u64, u64)>, totals: &mut BTreeMap<String, u64>, end_ts: u64| {
            let path = path_of(stack);
            if let Some((_, start, child)) = stack.pop() {
                let dur = end_ts.saturating_sub(start);
                *totals.entry(path).or_insert(0) += dur.saturating_sub(child);
                if let Some(parent) = stack.last_mut() {
                    parent.2 += dur;
                }
            }
        };

    for e in &snap.events {
        if e.kind == EventKind::PhaseStart.raw() {
            let name = snap.string(e.payload).unwrap_or("?").to_string();
            phase_stack.push((name, e.ts, 0));
        } else if e.kind == EventKind::PhaseEnd.raw() {
            // Unwind to the matching name (tolerates a lost start/end).
            let name = snap.string(e.payload).unwrap_or("?");
            if phase_stack.iter().any(|(n, _, _)| n == name) {
                while let Some((top, _, _)) = phase_stack.last() {
                    let done = top == name;
                    close_phase(&mut phase_stack, &mut totals, e.ts);
                    if done {
                        break;
                    }
                }
            }
        } else if e.kind == EventKind::BlockStart.raw() {
            open_blocks.insert((e.thread, e.block), (e.ts, path_of(&phase_stack)));
        } else if e.kind == EventKind::BlockEnd.raw() {
            if let Some((start, path)) = open_blocks.remove(&(e.thread, e.block)) {
                *totals.entry(format!("{path};{BLOCKS_FRAME}")).or_insert(0) +=
                    e.ts.saturating_sub(start);
            }
        }
    }
    // Close phases left open at the end of the capture.
    while !phase_stack.is_empty() {
        close_phase(&mut phase_stack, &mut totals, last_ts);
    }

    let mut out = String::new();
    for (path, value) in &totals {
        if *value > 0 {
            let _ = writeln!(out, "{path} {value}");
        }
    }
    out
}

// ---------------------------------------------------------------------------
// SVG flamegraph rendering
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Node {
    self_value: u64,
    children: BTreeMap<String, Node>,
}

impl Node {
    fn total(&self) -> u64 {
        self.self_value + self.children.values().map(Node::total).sum::<u64>()
    }
}

fn build_tree(folded: &str) -> Node {
    let mut root = Node::default();
    for line in folded.lines() {
        let Some((path, value)) = line.rsplit_once(' ') else { continue };
        let Ok(value) = value.parse::<u64>() else { continue };
        let mut node = &mut root;
        for frame in path.split(';') {
            node = node.children.entry(frame.to_string()).or_default();
        }
        node.self_value += value;
    }
    root
}

fn frame_color(name: &str) -> String {
    // Deterministic warm palette keyed by a small string hash.
    let mut h: u32 = 2166136261;
    for b in name.bytes() {
        h = (h ^ u32::from(b)).wrapping_mul(16777619);
    }
    let r = 205 + (h % 50);
    let g = 90 + ((h >> 8) % 110);
    let b = 40 + ((h >> 16) % 40);
    format!("rgb({r},{g},{b})")
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;").replace('"', "&quot;")
}

const WIDTH: f64 = 1200.0;
const ROW: f64 = 17.0;

fn render_node(out: &mut String, name: &str, node: &Node, x: f64, width: f64, depth: usize) {
    let y = depth as f64 * ROW;
    let _ = writeln!(
        out,
        "<g><title>{} ({})</title><rect x=\"{:.2}\" y=\"{:.1}\" width=\"{:.2}\" \
         height=\"{:.1}\" fill=\"{}\" stroke=\"white\" stroke-width=\"0.5\"/>",
        xml_escape(name),
        node.total(),
        x,
        y,
        width,
        ROW,
        frame_color(name)
    );
    if width > 40.0 {
        let shown: String = name.chars().take((width / 7.5) as usize).collect();
        let _ = writeln!(
            out,
            "<text x=\"{:.2}\" y=\"{:.1}\" font-size=\"11\" font-family=\"monospace\" \
             fill=\"#222\">{}</text>",
            x + 3.0,
            y + 12.5,
            xml_escape(&shown)
        );
    }
    out.push_str("</g>\n");
    let total = node.total();
    if total > 0 {
        let mut cx = x;
        for (child_name, child) in &node.children {
            let w = width * child.total() as f64 / total as f64;
            if w >= 0.25 {
                render_node(out, child_name, child, cx, w, depth + 1);
            }
            cx += w;
        }
    }
}

fn tree_depth(node: &Node) -> usize {
    1 + node.children.values().map(tree_depth).max().unwrap_or(0)
}

/// Renders folded stacks (as produced by [`to_folded`]) into a
/// self-contained SVG flamegraph: hover titles carry exact values, no
/// scripts or external assets.
pub fn folded_to_svg(folded: &str) -> String {
    let root = build_tree(folded);
    let depth = tree_depth(&root);
    let height = depth as f64 * ROW + 4.0;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{WIDTH}\" height=\"{height}\" \
         viewBox=\"0 0 {WIDTH} {height}\">"
    );
    out.push_str("<rect width=\"100%\" height=\"100%\" fill=\"#fdfdfd\"/>\n");
    if root.total() > 0 {
        // The synthetic root row shows each top-level stack's children
        // directly; real captures have a single ROOT child.
        let mut cx = 0.0;
        let total = root.total();
        for (name, child) in &root.children {
            let w = WIDTH * child.total() as f64 / total as f64;
            render_node(&mut out, name, child, cx, w, 0);
            cx += w;
        }
    } else {
        out.push_str(
            "<text x=\"8\" y=\"16\" font-size=\"12\" font-family=\"monospace\">\
             (empty capture)</text>\n",
        );
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use ecl_trace::{ClockMode, Tracer, TracerConfig};

    fn capture() -> Snapshot {
        let t =
            Tracer::new(TracerConfig { slots: 2, events_per_slot: 256, clock: ClockMode::Logical });
        t.phase_start("outer");
        t.phase_start("inner");
        t.record(EventKind::BlockStart, 0, 0, 64);
        t.record(EventKind::BlockEnd, 0, 0, 64);
        t.phase_end("inner");
        t.record(EventKind::BlockStart, 1, 0, 64);
        t.record(EventKind::BlockEnd, 1, 0, 64);
        t.phase_end("outer");
        t.snapshot()
    }

    #[test]
    fn folded_stacks_reflect_phase_nesting() {
        let folded = to_folded(&capture());
        assert!(folded.contains("run;outer;inner;<blocks> "), "got:\n{folded}");
        assert!(folded.contains("run;outer;<blocks> "), "got:\n{folded}");
        assert!(folded.contains("run;outer;inner "), "got:\n{folded}");
        // Every line is `path value`.
        for line in folded.lines() {
            let (_, v) = line.rsplit_once(' ').unwrap();
            assert!(v.parse::<u64>().unwrap() > 0);
        }
    }

    #[test]
    fn unclosed_phase_is_closed_at_capture_end() {
        let t =
            Tracer::new(TracerConfig { slots: 1, events_per_slot: 64, clock: ClockMode::Logical });
        t.phase_start("dangling");
        t.record(EventKind::Marker, 0, 0, 0);
        let folded = to_folded(&t.snapshot());
        assert!(folded.contains("run;dangling "), "got:\n{folded}");
    }

    #[test]
    fn mismatched_phase_end_is_tolerated() {
        let t =
            Tracer::new(TracerConfig { slots: 1, events_per_slot: 64, clock: ClockMode::Logical });
        t.phase_end("never-started"); // no matching start: ignored
        t.phase_start("real");
        t.record(EventKind::Marker, 0, 0, 0);
        t.phase_end("real");
        let folded = to_folded(&t.snapshot());
        assert!(folded.contains("run;real "), "got:\n{folded}");
        assert!(!folded.contains("never-started"));
    }

    #[test]
    fn empty_capture_yields_empty_folded() {
        let t =
            Tracer::new(TracerConfig { slots: 1, events_per_slot: 64, clock: ClockMode::Logical });
        assert_eq!(to_folded(&t.snapshot()), "");
    }

    #[test]
    fn svg_renders_and_is_well_formed_enough() {
        let folded = to_folded(&capture());
        let svg = folded_to_svg(&folded);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains("run"));
        assert!(svg.matches("<rect").count() > 2);
        // Escaping: a hostile frame name cannot break out of the XML.
        let svg = folded_to_svg("run;<script>\"x 10\n");
        assert!(!svg.contains("<script>"));
        assert!(svg.contains("&lt;script&gt;"));
    }

    #[test]
    fn empty_folded_svg_is_placeholder() {
        let svg = folded_to_svg("");
        assert!(svg.contains("empty capture"));
    }
}
