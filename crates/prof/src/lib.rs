//! Unified kernel/pool profiling for the suite.
//!
//! Where `ecl-profiling` answers "how many" and `ecl-trace` answers
//! "when", this crate answers "how fast, and how evenly": it turns
//! the simulator into a self-profiling system whose every run can
//! emit a machine-readable performance artifact.
//!
//! The pieces:
//!
//! - [`sample::LaunchSample`] — one kernel launch as observed by the
//!   hooks in `ecl-gpusim`'s launch/pool layer: wall time, grid
//!   geometry, and per-participant block/claim/busy stats.
//! - [`sink`] — the global zero-cost-when-disabled hook the simulator
//!   reports into, mirroring `ecl_trace::sink`: the disabled path is
//!   one relaxed atomic load per *launch*.
//! - [`collector::Collector`] — aggregates samples per kernel into
//!   [`ecl_profiling::LogSketch`] percentile sketches of wall time
//!   and load imbalance, plus utilization and claim-wait totals.
//! - [`manifest::Manifest`] — the versioned (`ecl-prof/1`) JSON run
//!   manifest: git SHA, dispatch policy, gateable metric sample
//!   vectors, kernel stats, counter distributions.
//! - [`expose`] — Prometheus text exposition of a manifest.
//! - [`folded`] — pprof-style folded stacks and an SVG flamegraph
//!   derived from `ecl-trace` captures.
//! - [`gate`] — the noise-aware (median + MAD) regression detector
//!   behind `ecl-prof gate`, comparing two manifests or BENCH JSONs
//!   and exiting nonzero on real slowdowns.
//!
//! The `ecl-prof` binary wires the exposition and gate surfaces into
//! subcommands; `ecl-run --profile` (in `ecl-bench`) produces the
//! artifacts.

pub mod collector;
pub mod expose;
pub mod folded;
pub mod gate;
pub mod json;
pub mod manifest;
pub mod sample;
pub mod sink;

pub use collector::{Collector, KernelStats};
pub use expose::to_prometheus;
pub use folded::{folded_to_svg, to_folded};
pub use gate::{gate_files, GateConfig, GateReport, Status};
pub use manifest::{git_sha, Direction, DispatchInfo, Manifest, Metric, SCHEMA};
pub use sample::{LaunchSample, WorkerStat};
