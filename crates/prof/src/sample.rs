//! Per-launch profile samples, produced by the simulator's launch and
//! pool hooks.

use ecl_profiling::{imbalance_from_summary, Summary};

/// What one pool participant (a parked worker or the submitting
/// thread) did during a single dispatch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerStat {
    /// Blocks this participant executed.
    pub blocks: u64,
    /// Ticket ranges it claimed.
    pub claims: u64,
    /// Nanoseconds spent executing claimed blocks.
    pub busy_ns: u64,
}

/// One kernel launch as observed by the profiling hooks in
/// `ecl-gpusim`: grid geometry, wall time, and the per-participant
/// execution stats of the dispatch pool.
#[derive(Clone, Debug)]
pub struct LaunchSample {
    /// Kernel name (the `*_named` launch name; `flat`/`blocks`/`warps`
    /// for anonymous launches).
    pub kernel: String,
    /// Launch shape (`flat`, `persistent`, `blocks`, `warps`).
    pub shape: &'static str,
    /// Blocks in the grid.
    pub blocks: u64,
    /// Threads per block.
    pub block_size: u64,
    /// Wall time of the dispatch, submitter-side.
    pub wall_ns: u64,
    /// Per-participant stats; empty for zero-block launches.
    pub workers: Vec<WorkerStat>,
    /// Originating request id (`ecl-obs` correlation; 0 = no request
    /// context, e.g. CLI runs).
    pub req: u64,
    /// Shard (simulated device instance) the launch ran on. 0 for
    /// single-pool runs, so existing output is unchanged; `ecl-shard`
    /// multi-pool runs attach the ambient shard id via
    /// `ecl_gpusim::shard`, which keeps concurrent pool instances from
    /// collapsing into one series.
    pub shard: u32,
}

impl LaunchSample {
    /// Worker utilization: busy time over the span all participants
    /// were attached to the launch (`participants × wall`). 0 for
    /// degenerate launches, clamped to 1 (timers of busy and wall are
    /// sampled independently).
    pub fn utilization(&self) -> f64 {
        let span = self.wall_ns.saturating_mul(self.workers.len() as u64);
        if span == 0 {
            return 0.0;
        }
        let busy: u64 = self.workers.iter().map(|w| w.busy_ns).sum();
        (busy as f64 / span as f64).clamp(0.0, 1.0)
    }

    /// Load-imbalance factor over participant busy times (max / avg),
    /// the per-launch form of [`ecl_profiling::LoadBalance`]; 0 for
    /// zero-activity launches, never NaN/inf.
    pub fn imbalance(&self) -> f64 {
        let busy: Vec<u64> = self.workers.iter().map(|w| w.busy_ns).collect();
        imbalance_from_summary(&Summary::of_u64(&busy))
    }

    /// Aggregate ticket-claim wait: time participants were attached to
    /// the launch but not executing blocks (claim contention, queue
    /// scan, parking latency).
    pub fn claim_wait_ns(&self) -> u64 {
        let span = self.wall_ns.saturating_mul(self.workers.len() as u64);
        let busy: u64 = self.workers.iter().map(|w| w.busy_ns).sum();
        span.saturating_sub(busy)
    }

    /// Total ticket claims across participants.
    pub fn claims(&self) -> u64 {
        self.workers.iter().map(|w| w.claims).sum()
    }

    /// Total threads launched.
    pub fn threads(&self) -> u64 {
        self.blocks.saturating_mul(self.block_size)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn sample(workers: Vec<WorkerStat>, wall_ns: u64) -> LaunchSample {
        LaunchSample {
            kernel: "k".into(),
            shape: "flat",
            blocks: 8,
            block_size: 32,
            wall_ns,
            workers,
            req: 0,
            shard: 0,
        }
    }

    #[test]
    fn utilization_and_imbalance() {
        let s = sample(
            vec![
                WorkerStat { blocks: 4, claims: 2, busy_ns: 80 },
                WorkerStat { blocks: 4, claims: 2, busy_ns: 40 },
            ],
            100,
        );
        assert!((s.utilization() - 0.6).abs() < 1e-12);
        // avg busy 60, max 80 -> 1.333…
        assert!((s.imbalance() - 80.0 / 60.0).abs() < 1e-12);
        assert_eq!(s.claim_wait_ns(), 200 - 120);
        assert_eq!(s.claims(), 4);
        assert_eq!(s.threads(), 256);
    }

    #[test]
    fn zero_activity_launch_is_finite() {
        let s = sample(vec![], 0);
        assert_eq!(s.utilization(), 0.0);
        assert_eq!(s.imbalance(), 0.0);
        assert_eq!(s.claim_wait_ns(), 0);
        assert!(s.utilization().is_finite() && s.imbalance().is_finite());
    }

    #[test]
    fn utilization_clamped_to_one() {
        // busy sampled slightly above wall (independent timers).
        let s = sample(vec![WorkerStat { blocks: 1, claims: 1, busy_ns: 110 }], 100);
        assert_eq!(s.utilization(), 1.0);
    }
}
