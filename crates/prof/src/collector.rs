//! Aggregation of [`LaunchSample`]s into per-kernel statistics.

use std::sync::Mutex;

use ecl_profiling::{LogSketch, SketchSnapshot};

use crate::sample::LaunchSample;

/// Running aggregate for one kernel name.
#[derive(Debug)]
struct KernelAgg {
    name: String,
    shape: &'static str,
    shard: u32,
    launches: u64,
    blocks: u64,
    threads: u64,
    /// Per-launch wall time, sketched.
    wall_ns: LogSketch,
    /// Per-launch imbalance factor × 1000, sketched (integer sketch of
    /// a [1, ∞) ratio; 1000 = perfectly balanced).
    imbalance_milli: LogSketch,
    busy_ns_total: u64,
    span_ns_total: u64,
    claim_wait_ns_total: u64,
    claims_total: u64,
}

/// Immutable per-kernel statistics for export.
#[derive(Clone, Debug)]
pub struct KernelStats {
    /// Kernel name.
    pub name: String,
    /// Launch shape.
    pub shape: String,
    /// Shard the launches ran on (0 = single-pool; `ecl-shard` runs
    /// produce one record per (kernel, shard) pair).
    pub shard: u32,
    /// Launches folded into this record.
    pub launches: u64,
    /// Blocks executed across all launches.
    pub blocks: u64,
    /// Threads launched across all launches.
    pub threads: u64,
    /// Per-launch wall-time distribution (ns).
    pub wall_ns: SketchSnapshot,
    /// Per-launch imbalance-factor distribution (milli-units: 1000 =
    /// balanced).
    pub imbalance_milli: SketchSnapshot,
    /// Mean worker utilization across launches (busy / attached span).
    pub utilization: f64,
    /// Total participant time not spent executing blocks (ns).
    pub claim_wait_ns: u64,
    /// Ticket claims across all launches.
    pub claims: u64,
}

/// Thread-safe collector of launch samples, grouped by (kernel name,
/// shard) in first-seen order. Installed globally through [`crate::sink`];
/// recording takes a short mutex (launch completion is coarse-grained
/// — hundreds per run, not millions).
#[derive(Debug, Default)]
pub struct Collector {
    kernels: Mutex<Vec<KernelAgg>>,
}

impl Collector {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one launch sample in.
    pub fn record(&self, sample: &LaunchSample) {
        let imbalance_milli = (sample.imbalance() * 1000.0).round().max(0.0) as u64;
        let busy: u64 = sample.workers.iter().map(|w| w.busy_ns).sum();
        let span = sample.wall_ns.saturating_mul(sample.workers.len() as u64);
        let mut kernels = self.kernels.lock().unwrap_or_else(|e| e.into_inner());
        let agg =
            match kernels.iter_mut().find(|k| k.name == sample.kernel && k.shard == sample.shard) {
                Some(agg) => agg,
                None => {
                    kernels.push(KernelAgg {
                        name: sample.kernel.clone(),
                        shape: sample.shape,
                        shard: sample.shard,
                        launches: 0,
                        blocks: 0,
                        threads: 0,
                        wall_ns: LogSketch::new(),
                        imbalance_milli: LogSketch::new(),
                        busy_ns_total: 0,
                        span_ns_total: 0,
                        claim_wait_ns_total: 0,
                        claims_total: 0,
                    });
                    kernels.last_mut().expect("just pushed")
                }
            };
        agg.launches += 1;
        agg.blocks += sample.blocks;
        agg.threads += sample.threads();
        agg.wall_ns.record(sample.wall_ns);
        if !sample.workers.is_empty() {
            agg.imbalance_milli.record(imbalance_milli);
        }
        agg.busy_ns_total += busy;
        agg.span_ns_total += span;
        agg.claim_wait_ns_total += sample.claim_wait_ns();
        agg.claims_total += sample.claims();
    }

    /// Total launches recorded.
    pub fn launches(&self) -> u64 {
        let kernels = self.kernels.lock().unwrap_or_else(|e| e.into_inner());
        kernels.iter().map(|k| k.launches).sum()
    }

    /// Per-kernel statistics in first-seen order.
    pub fn snapshot(&self) -> Vec<KernelStats> {
        let kernels = self.kernels.lock().unwrap_or_else(|e| e.into_inner());
        kernels
            .iter()
            .map(|k| KernelStats {
                name: k.name.clone(),
                shape: k.shape.to_string(),
                shard: k.shard,
                launches: k.launches,
                blocks: k.blocks,
                threads: k.threads,
                wall_ns: k.wall_ns.snapshot(),
                imbalance_milli: k.imbalance_milli.snapshot(),
                utilization: if k.span_ns_total == 0 {
                    0.0
                } else {
                    (k.busy_ns_total as f64 / k.span_ns_total as f64).clamp(0.0, 1.0)
                },
                claim_wait_ns: k.claim_wait_ns_total,
                claims: k.claims_total,
            })
            .collect()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::sample::WorkerStat;

    fn sample(kernel: &str, wall_ns: u64, busy: &[u64]) -> LaunchSample {
        LaunchSample {
            kernel: kernel.into(),
            shape: "flat",
            blocks: busy.len() as u64 * 2,
            block_size: 64,
            wall_ns,
            workers: busy
                .iter()
                .map(|&b| WorkerStat { blocks: 2, claims: 1, busy_ns: b })
                .collect(),
            req: 0,
            shard: 0,
        }
    }

    #[test]
    fn groups_by_kernel_in_first_seen_order() {
        let c = Collector::new();
        c.record(&sample("init", 100, &[50, 50]));
        c.record(&sample("compute", 200, &[100, 100]));
        c.record(&sample("init", 300, &[200, 100]));
        let snap = c.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].name, "init");
        assert_eq!(snap[0].launches, 2);
        assert_eq!(snap[0].blocks, 8);
        assert_eq!(snap[1].name, "compute");
        assert_eq!(c.launches(), 3);
    }

    #[test]
    fn utilization_aggregates_over_launches() {
        let c = Collector::new();
        c.record(&sample("k", 100, &[100, 100])); // fully busy
        c.record(&sample("k", 100, &[0, 0])); // fully idle
        let snap = c.snapshot();
        assert!((snap[0].utilization - 0.5).abs() < 1e-12);
        assert_eq!(snap[0].claim_wait_ns, 200);
    }

    #[test]
    fn imbalance_sketch_records_milli_units() {
        let c = Collector::new();
        c.record(&sample("k", 100, &[100, 100])); // balanced -> 1000
        let snap = c.snapshot();
        assert_eq!(snap[0].imbalance_milli.count, 1);
        assert_eq!(snap[0].imbalance_milli.min, 1000);
    }

    #[test]
    fn shards_do_not_collapse_into_one_series() {
        let c = Collector::new();
        let mut a = sample("sweep", 100, &[50]);
        let mut b = sample("sweep", 200, &[70]);
        a.shard = 0;
        b.shard = 3;
        c.record(&a);
        c.record(&b);
        c.record(&a);
        let snap = c.snapshot();
        assert_eq!(snap.len(), 2, "one record per (kernel, shard)");
        assert_eq!((snap[0].shard, snap[0].launches), (0, 2));
        assert_eq!((snap[1].shard, snap[1].launches), (3, 1));
        assert_eq!(snap[1].wall_ns.min, 200);
    }

    #[test]
    fn empty_collector_snapshot() {
        let c = Collector::new();
        assert!(c.snapshot().is_empty());
        assert_eq!(c.launches(), 0);
    }
}
