//! Minimal JSON reading and writing.
//!
//! The workspace is offline (the vendored `serde` is a no-op marker,
//! see `shims/serde`), and the gate must *read* manifests and
//! `BENCH_*.json` files back, so this module carries a small
//! recursive-descent parser plus the escape helper the writers share.
//! It accepts strict JSON; numbers are parsed as `f64` (every numeric
//! field the gate compares is either an f64 already or a counter well
//! inside f64's exact-integer range).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects (`None` otherwise).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number behind this value, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string behind this value, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Flattens every numeric leaf into `path -> samples`: a scalar
    /// number becomes a one-sample series, an all-numeric array
    /// becomes a sample vector (run repeats), and nesting joins path
    /// segments with `/`. Array elements that are objects recurse with
    /// their index in the path.
    pub fn numeric_leaves(&self) -> BTreeMap<String, Vec<f64>> {
        let mut out = BTreeMap::new();
        self.collect_leaves("", &mut out);
        out
    }

    fn collect_leaves(&self, path: &str, out: &mut BTreeMap<String, Vec<f64>>) {
        match self {
            Value::Num(n) => {
                out.insert(path.to_string(), vec![*n]);
            }
            Value::Arr(items) => {
                if !items.is_empty() && items.iter().all(|v| matches!(v, Value::Num(_))) {
                    out.insert(path.to_string(), items.iter().filter_map(Value::as_f64).collect());
                } else {
                    for (i, item) in items.iter().enumerate() {
                        // Prefer a "name" member over the positional
                        // index so reordered entries still align.
                        let seg = item
                            .get("name")
                            .and_then(Value::as_str)
                            .map(String::from)
                            .or_else(|| {
                                item.get("algo").and_then(Value::as_str).map(|a| {
                                    let input =
                                        item.get("input").and_then(Value::as_str).unwrap_or("");
                                    format!("{a}:{input}")
                                })
                            })
                            .unwrap_or_else(|| i.to_string());
                        item.collect_leaves(&join(path, &seg), out);
                    }
                }
            }
            Value::Obj(members) => {
                for (k, v) in members {
                    v.collect_leaves(&join(path, k), out);
                }
            }
            _ => {}
        }
    }
}

fn join(path: &str, seg: &str) -> String {
    if path.is_empty() {
        seg.to_string()
    } else {
        format!("{path}/{seg}")
    }
}

/// Escapes `s` for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as JSON: integers without a fraction, everything
/// else with enough digits to round-trip; non-finite values (which
/// JSON cannot carry) as 0.
pub fn num(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Parses a JSON document.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number".to_string())?;
        text.parse::<f64>().map(Value::Num).map_err(|_| format!("bad number '{text}'"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are not needed by any of
                            // our writers; map lone surrogates to the
                            // replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "non-utf8 string".to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("-3.5e2").unwrap(), Value::Num(-350.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Value::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, 2, {"b": "x"}], "c": {"d": null}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].get("b").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("c").unwrap().get("d"), Some(&Value::Null));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("{}garbage").is_err());
        assert!(parse("\"open").is_err());
    }

    #[test]
    fn parses_real_bench_shape() {
        let text = r#"{
          "benchmark": "x",
          "launch_overhead": {"spawn_ns_per_launch": 50431.2, "pool_ns_per_launch": 501.0},
          "end_to_end": [
            {"algo": "cc", "input": "as-skitter", "spawn_s": 0.21, "pool_s": 0.12}
          ]
        }"#;
        let v = parse(text).unwrap();
        let leaves = v.numeric_leaves();
        assert_eq!(leaves["launch_overhead/spawn_ns_per_launch"], vec![50431.2]);
        assert_eq!(leaves["end_to_end/cc:as-skitter/pool_s"], vec![0.12]);
    }

    #[test]
    fn numeric_arrays_become_sample_vectors() {
        let v = parse(r#"{"m": {"samples": [1.0, 2.0, 3.0]}}"#).unwrap();
        assert_eq!(v.numeric_leaves()["m/samples"], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn escape_roundtrips_through_parse() {
        let nasty = "a\"b\\c\nd\te\u{1}f";
        let doc = format!("{{\"k\": \"{}\"}}", escape(nasty));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn num_formats_integers_and_floats() {
        assert_eq!(num(5.0), "5");
        assert_eq!(num(0.125), "0.125");
        assert_eq!(num(f64::NAN), "0");
        assert_eq!(num(f64::INFINITY), "0");
    }
}
