//! Prometheus-style text exposition of a run manifest.
//!
//! Renders the manifest's kernels, metrics, and distributions in the
//! text format scrapers and `promtool` understand: `# HELP`/`# TYPE`
//! headers, `summary`-style quantile series for sketches, and a
//! `ecl_run_info` gauge carrying the run identity as labels.

use std::fmt::Write as _;

use ecl_profiling::SketchSnapshot;

use crate::json;
use crate::manifest::Manifest;

/// Escapes a Prometheus label value (backslash, quote, newline).
fn label(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Turns an arbitrary metric/distribution name into a valid Prometheus
/// metric-name suffix: `[a-zA-Z0-9_]`, everything else folded to `_`.
fn sanitize(name: &str) -> String {
    let mut out: String =
        name.chars().map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' }).collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

fn write_sketch(out: &mut String, metric: &str, labels: &str, s: &SketchSnapshot) {
    for (q, v) in [("0.5", s.p50), ("0.9", s.p90), ("0.99", s.p99)] {
        let sep = if labels.is_empty() { "" } else { "," };
        let _ = writeln!(out, "{metric}{{{labels}{sep}quantile=\"{q}\"}} {v}");
    }
    let _ = writeln!(out, "{metric}_sum{{{labels}}} {}", s.sum);
    let _ = writeln!(out, "{metric}_count{{{labels}}} {}", s.count);
}

/// Renders `manifest` in the Prometheus text exposition format.
pub fn to_prometheus(manifest: &Manifest) -> String {
    let mut out = String::new();

    out.push_str("# HELP ecl_run_info Run identity (value is always 1).\n");
    out.push_str("# TYPE ecl_run_info gauge\n");
    let mut info = vec![
        ("schema".to_string(), manifest.schema.clone()),
        ("git_sha".to_string(), manifest.git_sha.clone()),
        ("dispatch_mode".to_string(), manifest.dispatch.mode.clone()),
        ("workers".to_string(), manifest.dispatch.workers.to_string()),
    ];
    info.extend(manifest.context.iter().cloned());
    let pairs: Vec<String> =
        info.iter().map(|(k, v)| format!("{}=\"{}\"", sanitize(k), label(v))).collect();
    let _ = writeln!(out, "ecl_run_info{{{}}} 1", pairs.join(","));

    for m in &manifest.metrics {
        let name = format!("ecl_{}", sanitize(&m.name));
        let _ = writeln!(
            out,
            "# HELP {name} {} ({}, {} is better).",
            m.name,
            if m.unit.is_empty() { "unitless" } else { &m.unit },
            m.direction.name()
        );
        let _ = writeln!(out, "# TYPE {name} gauge");
        for (i, v) in m.samples.iter().enumerate() {
            let _ = writeln!(out, "{name}{{repeat=\"{i}\"}} {}", json::num(*v));
        }
    }

    if !manifest.kernels.is_empty() {
        // The shard label only appears once a manifest actually holds
        // multi-pool samples: single-pool manifests (every kernel on
        // shard 0) keep their historical label set, so existing
        // scrapers and dashboards see byte-identical series.
        let sharded = manifest.kernels.iter().any(|k| k.shard != 0);
        let kernel_labels = |k: &crate::collector::KernelStats| {
            if sharded {
                format!("kernel=\"{}\",shard=\"{}\"", label(&k.name), k.shard)
            } else {
                format!("kernel=\"{}\"", label(&k.name))
            }
        };
        out.push_str("# HELP ecl_kernel_wall_ns Per-launch wall time by kernel.\n");
        out.push_str("# TYPE ecl_kernel_wall_ns summary\n");
        for k in &manifest.kernels {
            write_sketch(&mut out, "ecl_kernel_wall_ns", &kernel_labels(k), &k.wall_ns);
        }
        out.push_str("# HELP ecl_kernel_imbalance_milli Per-launch load-imbalance factor x1000.\n");
        out.push_str("# TYPE ecl_kernel_imbalance_milli summary\n");
        for k in &manifest.kernels {
            write_sketch(
                &mut out,
                "ecl_kernel_imbalance_milli",
                &kernel_labels(k),
                &k.imbalance_milli,
            );
        }
        out.push_str("# HELP ecl_kernel_utilization Mean worker utilization by kernel.\n");
        out.push_str("# TYPE ecl_kernel_utilization gauge\n");
        for k in &manifest.kernels {
            let _ = writeln!(
                out,
                "ecl_kernel_utilization{{{}}} {}",
                kernel_labels(k),
                json::num(k.utilization)
            );
        }
        out.push_str("# HELP ecl_kernel_launches_total Launches by kernel.\n");
        out.push_str("# TYPE ecl_kernel_launches_total counter\n");
        for k in &manifest.kernels {
            let _ =
                writeln!(out, "ecl_kernel_launches_total{{{}}} {}", kernel_labels(k), k.launches);
        }
        out.push_str("# HELP ecl_kernel_claim_wait_ns_total Ticket-claim wait by kernel.\n");
        out.push_str("# TYPE ecl_kernel_claim_wait_ns_total counter\n");
        for k in &manifest.kernels {
            let _ = writeln!(
                out,
                "ecl_kernel_claim_wait_ns_total{{{}}} {}",
                kernel_labels(k),
                k.claim_wait_ns
            );
        }
    }

    if !manifest.distributions.is_empty() {
        out.push_str("# HELP ecl_distribution Algorithm counter distributions.\n");
        out.push_str("# TYPE ecl_distribution summary\n");
        for (name, sketch) in &manifest.distributions {
            write_sketch(
                &mut out,
                "ecl_distribution",
                &format!("name=\"{}\"", label(name)),
                sketch,
            );
        }
    }

    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::collector::KernelStats;
    use crate::manifest::{Direction, DispatchInfo, Metric, SCHEMA};
    use ecl_profiling::LogSketch;

    fn demo() -> Manifest {
        let sketch = LogSketch::new();
        sketch.record_values(&[5, 9, 1000]);
        Manifest {
            schema: SCHEMA.to_string(),
            git_sha: "abc".into(),
            dispatch: DispatchInfo { mode: "pool".into(), workers: 8, grain: None },
            context: vec![("algo".into(), "mis".into())],
            metrics: vec![Metric {
                name: "wall_seconds".into(),
                unit: "s".into(),
                direction: Direction::Lower,
                samples: vec![0.25, 0.5],
            }],
            kernels: vec![KernelStats {
                name: "select/flip\"x".into(),
                shape: "flat".into(),
                shard: 0,
                launches: 3,
                blocks: 24,
                threads: 768,
                wall_ns: sketch.snapshot(),
                imbalance_milli: sketch.snapshot(),
                utilization: 0.75,
                claim_wait_ns: 999,
                claims: 12,
            }],
            distributions: vec![("mis/iterations".into(), sketch.snapshot())],
        }
    }

    #[test]
    fn exposition_contains_all_sections() {
        let text = to_prometheus(&demo());
        assert!(text.contains("ecl_run_info{schema=\"ecl-prof/1\",git_sha=\"abc\""));
        assert!(text.contains("ecl_wall_seconds{repeat=\"0\"} 0.25"));
        assert!(text.contains("quantile=\"0.5\""));
        assert!(text.contains("ecl_kernel_utilization{kernel=\"select/flip\\\"x\"} 0.75"));
        assert!(text.contains("ecl_kernel_launches_total{kernel=\"select/flip\\\"x\"} 3"));
        assert!(text.contains("ecl_distribution{name=\"mis/iterations\",quantile=\"0.99\"}"));
        assert!(text.contains("ecl_kernel_wall_ns_count{kernel=\"select/flip\\\"x\"} 3"));
    }

    #[test]
    fn metric_names_are_sanitized() {
        assert_eq!(sanitize("kernel/init wall-ns"), "kernel_init_wall_ns");
        assert_eq!(sanitize("9lives"), "_9lives");
        // Every emitted line is either a comment or `name{labels} value`.
        for line in to_prometheus(&demo()).lines() {
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            let name_end = line.find('{').unwrap_or(line.len());
            assert!(
                line[..name_end].chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "bad metric name in line: {line}"
            );
        }
    }
}
