//! The versioned JSON run manifest — the machine-readable record of
//! one profiled run that the gate compares across PRs.
//!
//! A manifest embeds everything needed to decide whether two runs are
//! comparable (schema version, git SHA, dispatch policy, worker
//! count, run context) plus three payload sections: gateable
//! *metrics* (named sample vectors with an explicit better-direction),
//! per-kernel *launch statistics* from the pool hooks, and the
//! algorithm-specific counter *distributions* as percentile sketches.

use std::fmt::Write as _;

use ecl_profiling::SketchSnapshot;

use crate::collector::KernelStats;
use crate::json::{self, Value};

/// Manifest schema identifier. Bump on breaking layout changes; the
/// gate refuses to compare mismatched schemas.
pub const SCHEMA: &str = "ecl-prof/1";

/// Which way a metric improves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Smaller is better (times, waits).
    Lower,
    /// Larger is better (utilization, throughput).
    Higher,
    /// Not gateable (counts that legitimately change).
    Info,
}

impl Direction {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            Direction::Lower => "lower",
            Direction::Higher => "higher",
            Direction::Info => "info",
        }
    }

    /// Decodes a wire name (unknown names are `Info`: never gate what
    /// we do not understand).
    pub fn from_name(s: &str) -> Direction {
        match s {
            "lower" => Direction::Lower,
            "higher" => Direction::Higher,
            _ => Direction::Info,
        }
    }
}

/// One gateable metric: a named sample vector (one sample per repeat).
#[derive(Clone, Debug)]
pub struct Metric {
    /// Stable metric name (e.g. `wall_seconds`, `kernel/init/wall_ns`).
    pub name: String,
    /// Unit label for exposition.
    pub unit: String,
    /// Which way improvement points.
    pub direction: Direction,
    /// Per-repeat samples.
    pub samples: Vec<f64>,
}

/// Dispatch-engine configuration the run executed under.
#[derive(Clone, Debug)]
pub struct DispatchInfo {
    /// Engine (`pool`, `spawn`, `seq`).
    pub mode: String,
    /// Effective worker count.
    pub workers: u64,
    /// Forced claim grain, if any.
    pub grain: Option<u64>,
}

/// A complete profiled-run manifest.
#[derive(Clone, Debug)]
pub struct Manifest {
    /// Schema identifier ([`SCHEMA`]).
    pub schema: String,
    /// Git SHA of the producing tree.
    pub git_sha: String,
    /// Dispatch policy of the run.
    pub dispatch: DispatchInfo,
    /// Free-form run context (`algo`, `input`, `scale`, `seed`, …),
    /// order-preserving.
    pub context: Vec<(String, String)>,
    /// Gateable metrics.
    pub metrics: Vec<Metric>,
    /// Per-kernel launch statistics.
    pub kernels: Vec<KernelStats>,
    /// Named counter distributions.
    pub distributions: Vec<(String, SketchSnapshot)>,
}

/// The git SHA to stamp into manifests: `ECL_GIT_SHA` when set (CI),
/// otherwise `git rev-parse`, otherwise `"unknown"`.
pub fn git_sha() -> String {
    if let Ok(sha) = std::env::var("ECL_GIT_SHA") {
        if !sha.is_empty() {
            return sha;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn sketch_json(s: &SketchSnapshot, indent: &str) -> String {
    let buckets: Vec<String> = s.buckets.iter().map(|&(k, c)| format!("[{k}, {c}]")).collect();
    format!(
        "{{\n{indent}  \"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {},\n\
         {indent}  \"p50\": {}, \"p90\": {}, \"p99\": {},\n\
         {indent}  \"buckets\": [{}]\n{indent}}}",
        s.count,
        s.sum,
        s.min,
        s.max,
        s.p50,
        s.p90,
        s.p99,
        buckets.join(", ")
    )
}

fn sketch_from_value(v: &Value) -> Option<SketchSnapshot> {
    let field = |k: &str| v.get(k).and_then(Value::as_f64).map(|n| n as u64);
    let buckets = v
        .get("buckets")?
        .as_arr()?
        .iter()
        .filter_map(|pair| {
            let pair = pair.as_arr()?;
            Some((pair.first()?.as_f64()? as u32, pair.get(1)?.as_f64()? as u64))
        })
        .collect();
    Some(SketchSnapshot {
        count: field("count")?,
        sum: field("sum")?,
        min: field("min")?,
        max: field("max")?,
        p50: field("p50")?,
        p90: field("p90")?,
        p99: field("p99")?,
        buckets,
    })
}

impl Manifest {
    /// Serializes to pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": \"{}\",", json::escape(&self.schema));
        let _ = writeln!(s, "  \"git_sha\": \"{}\",", json::escape(&self.git_sha));
        let _ = writeln!(
            s,
            "  \"dispatch\": {{\"mode\": \"{}\", \"workers\": {}, \"grain\": {}}},",
            json::escape(&self.dispatch.mode),
            self.dispatch.workers,
            self.dispatch.grain.map_or("null".to_string(), |g| g.to_string())
        );
        s.push_str("  \"context\": {");
        for (i, (k, v)) in self.context.iter().enumerate() {
            let _ = write!(
                s,
                "{}\"{}\": \"{}\"",
                if i == 0 { "" } else { ", " },
                json::escape(k),
                json::escape(v)
            );
        }
        s.push_str("},\n");
        s.push_str("  \"metrics\": [\n");
        for (i, m) in self.metrics.iter().enumerate() {
            let samples: Vec<String> = m.samples.iter().map(|&v| json::num(v)).collect();
            let _ = writeln!(
                s,
                "    {{\"name\": \"{}\", \"unit\": \"{}\", \"direction\": \"{}\", \
                 \"samples\": [{}]}}{}",
                json::escape(&m.name),
                json::escape(&m.unit),
                m.direction.name(),
                samples.join(", "),
                if i + 1 < self.metrics.len() { "," } else { "" }
            );
        }
        s.push_str("  ],\n");
        s.push_str("  \"kernels\": [\n");
        for (i, k) in self.kernels.iter().enumerate() {
            let _ = writeln!(
                s,
                "    {{\n      \"name\": \"{}\", \"shape\": \"{}\", \"shard\": {}, \
                 \"launches\": {}, \"blocks\": {}, \"threads\": {},\n      \"utilization\": {}, \
                 \"claim_wait_ns\": {}, \"claims\": {},\n      \"wall_ns\": {},\n      \
                 \"imbalance_milli\": {}\n    }}{}",
                json::escape(&k.name),
                json::escape(&k.shape),
                k.shard,
                k.launches,
                k.blocks,
                k.threads,
                json::num(k.utilization),
                k.claim_wait_ns,
                k.claims,
                sketch_json(&k.wall_ns, "      "),
                sketch_json(&k.imbalance_milli, "      "),
                if i + 1 < self.kernels.len() { "," } else { "" }
            );
        }
        s.push_str("  ],\n");
        s.push_str("  \"distributions\": [\n");
        for (i, (name, sketch)) in self.distributions.iter().enumerate() {
            let _ = writeln!(
                s,
                "    {{\"name\": \"{}\", \"sketch\": {}}}{}",
                json::escape(name),
                sketch_json(sketch, "    "),
                if i + 1 < self.distributions.len() { "," } else { "" }
            );
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Parses a manifest back from JSON (for the gate and the
    /// exposition subcommands). Sections that are missing parse as
    /// empty; `Err` only on structurally non-JSON input or a missing
    /// schema field.
    pub fn from_json(text: &str) -> Result<Manifest, String> {
        let v = json::parse(text)?;
        Self::from_value(&v)
    }

    /// [`Manifest::from_json`] over an already-parsed [`Value`].
    pub fn from_value(v: &Value) -> Result<Manifest, String> {
        let schema = v
            .get("schema")
            .and_then(Value::as_str)
            .ok_or("not an ecl-prof manifest: no \"schema\" field")?
            .to_string();
        let git_sha = v.get("git_sha").and_then(Value::as_str).unwrap_or("unknown").to_string();
        let dispatch = v
            .get("dispatch")
            .map(|d| DispatchInfo {
                mode: d.get("mode").and_then(Value::as_str).unwrap_or("pool").to_string(),
                workers: d.get("workers").and_then(Value::as_f64).unwrap_or(0.0) as u64,
                grain: d.get("grain").and_then(Value::as_f64).map(|g| g as u64),
            })
            .unwrap_or(DispatchInfo { mode: "pool".into(), workers: 0, grain: None });
        let context = match v.get("context") {
            Some(Value::Obj(members)) => members
                .iter()
                .filter_map(|(k, v)| Some((k.clone(), v.as_str()?.to_string())))
                .collect(),
            _ => Vec::new(),
        };
        let metrics = v
            .get("metrics")
            .and_then(Value::as_arr)
            .unwrap_or(&[])
            .iter()
            .filter_map(|m| {
                Some(Metric {
                    name: m.get("name")?.as_str()?.to_string(),
                    unit: m.get("unit").and_then(Value::as_str).unwrap_or("").to_string(),
                    direction: Direction::from_name(
                        m.get("direction").and_then(Value::as_str).unwrap_or("info"),
                    ),
                    samples: m.get("samples")?.as_arr()?.iter().filter_map(Value::as_f64).collect(),
                })
            })
            .collect();
        let kernels = v
            .get("kernels")
            .and_then(Value::as_arr)
            .unwrap_or(&[])
            .iter()
            .filter_map(|k| {
                Some(KernelStats {
                    name: k.get("name")?.as_str()?.to_string(),
                    shape: k.get("shape").and_then(Value::as_str).unwrap_or("").to_string(),
                    // Default 0 so manifests written before the shard
                    // dimension existed keep parsing (and gating).
                    shard: k.get("shard").and_then(Value::as_f64).unwrap_or(0.0) as u32,
                    launches: k.get("launches")?.as_f64()? as u64,
                    blocks: k.get("blocks").and_then(Value::as_f64).unwrap_or(0.0) as u64,
                    threads: k.get("threads").and_then(Value::as_f64).unwrap_or(0.0) as u64,
                    wall_ns: sketch_from_value(k.get("wall_ns")?)?,
                    imbalance_milli: sketch_from_value(k.get("imbalance_milli")?)?,
                    utilization: k.get("utilization").and_then(Value::as_f64).unwrap_or(0.0),
                    claim_wait_ns: k.get("claim_wait_ns").and_then(Value::as_f64).unwrap_or(0.0)
                        as u64,
                    claims: k.get("claims").and_then(Value::as_f64).unwrap_or(0.0) as u64,
                })
            })
            .collect();
        let distributions = v
            .get("distributions")
            .and_then(Value::as_arr)
            .unwrap_or(&[])
            .iter()
            .filter_map(|d| {
                Some((d.get("name")?.as_str()?.to_string(), sketch_from_value(d.get("sketch")?)?))
            })
            .collect();
        Ok(Manifest { schema, git_sha, dispatch, context, metrics, kernels, distributions })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use ecl_profiling::LogSketch;

    fn demo() -> Manifest {
        let sketch = LogSketch::new();
        sketch.record_values(&[1, 2, 3, 100]);
        Manifest {
            schema: SCHEMA.to_string(),
            git_sha: "abc123".to_string(),
            dispatch: DispatchInfo { mode: "pool".into(), workers: 4, grain: None },
            context: vec![("algo".into(), "cc".into()), ("input".into(), "as-skitter".into())],
            metrics: vec![
                Metric {
                    name: "wall_seconds".into(),
                    unit: "s".into(),
                    direction: Direction::Lower,
                    samples: vec![0.11, 0.12, 0.10],
                },
                Metric {
                    name: "launches".into(),
                    unit: "1".into(),
                    direction: Direction::Info,
                    samples: vec![5.0],
                },
            ],
            kernels: vec![crate::collector::KernelStats {
                name: "init".into(),
                shape: "flat".into(),
                shard: 2,
                launches: 5,
                blocks: 40,
                threads: 1280,
                wall_ns: sketch.snapshot(),
                imbalance_milli: LogSketch::new().snapshot(),
                utilization: 0.82,
                claim_wait_ns: 123,
                claims: 20,
            }],
            distributions: vec![("cc/traverse_len".into(), sketch.snapshot())],
        }
    }

    #[test]
    fn json_roundtrip_preserves_everything_the_gate_needs() {
        let m = demo();
        let text = m.to_json();
        let back = Manifest::from_json(&text).unwrap();
        assert_eq!(back.schema, SCHEMA);
        assert_eq!(back.git_sha, "abc123");
        assert_eq!(back.dispatch.workers, 4);
        assert_eq!(back.context, m.context);
        assert_eq!(back.metrics.len(), 2);
        assert_eq!(back.metrics[0].name, "wall_seconds");
        assert_eq!(back.metrics[0].direction, Direction::Lower);
        assert_eq!(back.metrics[0].samples, vec![0.11, 0.12, 0.10]);
        assert_eq!(back.kernels.len(), 1);
        assert_eq!(back.kernels[0].shard, 2);
        assert_eq!(back.kernels[0].wall_ns, m.kernels[0].wall_ns);
        assert_eq!(back.distributions[0].1, m.distributions[0].1);
    }

    #[test]
    fn json_is_structurally_valid() {
        let text = demo().to_json();
        let v = crate::json::parse(&text).unwrap();
        assert_eq!(v.get("schema").unwrap().as_str(), Some(SCHEMA));
    }

    #[test]
    fn kernels_without_shard_field_parse_as_shard_zero() {
        // Manifests from before the shard dimension keep loading.
        let m = Manifest::from_json(
            r#"{"schema": "ecl-prof/1", "kernels": [
                {"name": "init", "shape": "flat", "launches": 1,
                 "wall_ns": {"count": 1, "sum": 5, "min": 5, "max": 5,
                             "p50": 5, "p90": 5, "p99": 5, "buckets": [[3, 1]]},
                 "imbalance_milli": {"count": 0, "sum": 0, "min": 0, "max": 0,
                                     "p50": 0, "p90": 0, "p99": 0, "buckets": []}}
            ]}"#,
        )
        .unwrap();
        assert_eq!(m.kernels.len(), 1);
        assert_eq!(m.kernels[0].shard, 0);
    }

    #[test]
    fn empty_sections_parse_as_empty() {
        let m = Manifest::from_json(r#"{"schema": "ecl-prof/1"}"#).unwrap();
        assert!(m.metrics.is_empty() && m.kernels.is_empty() && m.distributions.is_empty());
        assert!(Manifest::from_json(r#"{"benchmark": "x"}"#).is_err());
    }

    #[test]
    fn direction_wire_names() {
        for d in [Direction::Lower, Direction::Higher, Direction::Info] {
            assert_eq!(Direction::from_name(d.name()), d);
        }
        assert_eq!(Direction::from_name("sideways"), Direction::Info);
    }

    #[test]
    fn git_sha_is_nonempty() {
        assert!(!git_sha().is_empty());
    }
}
